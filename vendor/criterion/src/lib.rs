//! Offline stand-in for the `criterion` crate (0.5 API subset).
//!
//! Implements the harness surface the workspace benches use —
//! [`Criterion`], benchmark groups, [`BenchmarkId`], [`Throughput`] and
//! the [`criterion_group!`]/[`criterion_main!`] macros — with a simple
//! wall-clock measurement loop: warm-up, then `sample_size` timed
//! batches, reporting mean / best ns-per-iteration to stdout.
//!
//! When the binary is invoked with `--test` (as `cargo test --benches`
//! does), every benchmark runs exactly one iteration so test runs stay
//! fast.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(1),
            sample_size: 20,
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Sets the warm-up duration per benchmark.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the total measurement duration per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into().label();
        run_benchmark(self, None, &label, f);
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Declares the work per iteration for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = Some(n);
        self
    }

    /// Runs a benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().label());
        let mut config = self.criterion.clone();
        if let Some(n) = self.sample_size {
            config.sample_size = n;
        }
        run_benchmark(&config, self.throughput.clone(), &label, |b| f(b, input));
        self
    }

    /// Runs a benchmark without an input value.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label());
        let mut config = self.criterion.clone();
        if let Some(n) = self.sample_size {
            config.sample_size = n;
        }
        run_benchmark(&config, self.throughput.clone(), &label, f);
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

fn run_benchmark<F>(config: &Criterion, throughput: Option<Throughput>, label: &str, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    if config.test_mode {
        f(&mut bencher);
        println!("test {label} ... ok (1 iteration)");
        return;
    }

    // Warm-up: grow the iteration count until one batch fills the warm-up
    // window, giving a per-iteration estimate.
    let mut iters: u64 = 1;
    let per_iter = loop {
        bencher.iters = iters;
        bencher.elapsed = Duration::ZERO;
        f(&mut bencher);
        if bencher.elapsed >= config.warm_up_time || iters >= 1 << 30 {
            break bencher.elapsed.as_secs_f64() / iters as f64;
        }
        iters = iters.saturating_mul(2);
    };

    // Measurement: `sample_size` batches sized to fill the measurement
    // window overall.
    let samples = config.sample_size;
    let batch_secs = config.measurement_time.as_secs_f64() / samples as f64;
    let batch_iters = ((batch_secs / per_iter.max(1e-12)) as u64).max(1);
    let mut best = f64::INFINITY;
    let mut total = 0.0;
    for _ in 0..samples {
        bencher.iters = batch_iters;
        bencher.elapsed = Duration::ZERO;
        f(&mut bencher);
        let ns = bencher.elapsed.as_secs_f64() * 1e9 / batch_iters as f64;
        best = best.min(ns);
        total += ns;
    }
    let mean = total / samples as f64;
    match throughput {
        Some(Throughput::Elements(n)) => {
            let rate = n as f64 / (mean * 1e-9);
            println!("{label:<50} mean {mean:>12.1} ns/iter  best {best:>12.1} ns/iter  {rate:>14.0} elem/s");
        }
        Some(Throughput::Bytes(n)) => {
            let rate = n as f64 / (mean * 1e-9) / (1024.0 * 1024.0);
            println!("{label:<50} mean {mean:>12.1} ns/iter  best {best:>12.1} ns/iter  {rate:>10.1} MiB/s");
        }
        None => {
            println!("{label:<50} mean {mean:>12.1} ns/iter  best {best:>12.1} ns/iter");
        }
    }
}

/// Times the closure under test.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs the routine for the harness-chosen number of iterations and
    /// records the elapsed wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A benchmark label: function name plus optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// A label with a parameter, rendered `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// A label from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn label(&self) -> String {
        match &self.parameter {
            Some(p) if self.function.is_empty() => p.clone(),
            Some(p) => format!("{}/{}", self.function, p),
            None => self.function.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(function: &str) -> Self {
        Self {
            function: function.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(function: String) -> Self {
        Self {
            function,
            parameter: None,
        }
    }
}

/// Units of work per iteration, for rate reporting.
#[derive(Debug, Clone)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Declares a group of benchmark functions, optionally with a custom
/// [`Criterion`] configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
            .sample_size(3);
        c.test_mode = false;
        c
    }

    #[test]
    fn bench_function_runs_the_closure() {
        let mut runs = 0u64;
        quick().bench_function("counts", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
    }

    #[test]
    fn groups_run_with_inputs_and_throughput() {
        let mut c = quick();
        let mut group = c.benchmark_group("group");
        group.throughput(Throughput::Elements(4));
        group.sample_size(2);
        let mut total = 0u64;
        group.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| total += n)
        });
        group.finish();
        assert!(total >= 8, "two samples of n=4 each at minimum");
    }

    #[test]
    fn test_mode_runs_exactly_one_iteration() {
        let mut c = quick();
        c.test_mode = true;
        let mut runs = 0u64;
        c.bench_function("once", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }

    #[test]
    fn benchmark_id_labels() {
        assert_eq!(BenchmarkId::new("f", 3).label(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("p").label(), "p");
        assert_eq!(BenchmarkId::from("plain").label(), "plain");
    }
}
