//! Offline stand-in for the `proptest` crate (API subset).
//!
//! Implements the property-testing surface this workspace uses: the
//! [`Strategy`] trait with `prop_map`/`prop_flat_map`, range and tuple
//! strategies, [`Just`], [`prop::collection::vec`], the [`proptest!`]
//! macro (with optional `#![proptest_config(..)]`), and the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!` macros.
//!
//! Cases are generated from a deterministic per-test RNG (seeded from
//! the test's module path and name), so failures reproduce across runs.
//! Unlike the real crate there is no shrinking: a failing case reports
//! its assertion message only.

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

/// Configuration for a [`proptest!`] block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required per test.
    pub cases: u32,
    /// Upper bound on `prop_assume!` rejections before giving up.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` successful cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case was vetoed by `prop_assume!`; it does not count.
    Reject,
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Builds the failure variant.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }
}

/// The deterministic generator driving strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test identity string (FNV-1a).
    pub fn deterministic(tag: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in tag.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { state: h | 1 }
    }

    /// The next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Derives a follow-up strategy from every generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Result of [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Spans in this workspace fit comfortably in 64 bits.
                self.start.wrapping_add(rng.below(span as u64) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                self.start().wrapping_add(rng.below(span as u64) as $t)
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start() <= self.end(), "empty range strategy");
        self.start() + (self.end() - self.start()) * rng.unit_f64()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Sub-modules mirroring the real crate's `prop::` namespace.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy, TestRng};

        /// A strategy for `Vec`s of values from `element`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// Generates vectors whose length is drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let len = self.size.draw(rng);
                (0..len).map(|_| self.element.new_value(rng)).collect()
            }
        }
    }
}

/// An inclusive length range for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl SizeRange {
    fn draw(&self, rng: &mut TestRng) -> usize {
        let span = (self.max_inclusive - self.min + 1) as u64;
        self.min + rng.below(span) as usize
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            min: r.start,
            max_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        Self {
            min: *r.start(),
            max_inclusive: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            min: n,
            max_inclusive: n,
        }
    }
}

/// Everything a test file normally imports.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless both expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (lhs, rhs) => {
                $crate::prop_assert!(
                    *lhs == *rhs,
                    "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    lhs,
                    rhs
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (lhs, rhs) => {
                $crate::prop_assert!(*lhs == *rhs, $($fmt)+);
            }
        }
    };
}

/// Fails the current case unless both expressions differ.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (lhs, rhs) => {
                $crate::prop_assert!(
                    *lhs != *rhs,
                    "assertion failed: `{}` != `{}`\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    lhs
                );
            }
        }
    };
}

/// Discards the current case (it does not count towards `cases`) unless
/// the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Declares property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body for `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!({$config} $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!({$crate::ProptestConfig::default()} $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ({$config:expr}) => {};
    ({$config:expr}
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut passed: u32 = 0;
            let mut rejected: u32 = 0;
            let mut case_index: u64 = 0;
            while passed < config.cases {
                case_index += 1;
                $(let $arg = $crate::Strategy::new_value(&($strat), &mut rng);)+
                let outcome = (|| -> ::core::result::Result<(), $crate::TestCaseError> {
                    { $body }
                    ::core::result::Result::Ok(())
                })();
                match outcome {
                    ::core::result::Result::Ok(()) => passed += 1,
                    ::core::result::Result::Err($crate::TestCaseError::Reject) => {
                        rejected += 1;
                        assert!(
                            rejected < config.max_global_rejects,
                            "proptest {}: too many prop_assume! rejections ({})",
                            stringify!($name),
                            rejected
                        );
                    }
                    ::core::result::Result::Err($crate::TestCaseError::Fail(message)) => {
                        panic!(
                            "proptest {} failed at generated case #{case_index}: {message}",
                            stringify!($name),
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl!({$config} $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (i64, i64)> {
        (-10_i64..10, 0_i64..5).prop_map(|(a, b)| (a, a + b))
    }

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in -100_i64..100, y in 0_u32..7, z in 0.0f64..1.0) {
            prop_assert!((-100..100).contains(&x));
            prop_assert!(y < 7);
            prop_assert!((0.0..1.0).contains(&z));
        }

        #[test]
        fn mapped_pairs_are_ordered((lo, hi) in pair()) {
            prop_assert!(lo <= hi, "({lo}, {hi}) out of order");
        }

        #[test]
        fn vec_lengths_follow_size_range(xs in prop::collection::vec(0_i64..3, 2..=5)) {
            prop_assert!(xs.len() >= 2 && xs.len() <= 5);
            for x in xs {
                prop_assert!((0..3).contains(&x));
            }
        }

        #[test]
        fn flat_map_uses_outer_value(
            (xs, k) in prop::collection::vec(0_i64..100, 1..=6)
                .prop_flat_map(|xs| { let n = xs.len(); (Just(xs), 0..n) })
        ) {
            prop_assert!(k < xs.len());
        }

        #[test]
        fn assume_discards_without_failing(n in 0_i64..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn configured_case_count_applies(n in 0_i64..1000) {
            // Just exercise the configured path; determinism is checked by
            // the seeded TestRng (same tag, same stream).
            prop_assert!(n >= 0);
        }
    }

    #[test]
    #[should_panic(expected = "failed at generated case")]
    fn failing_property_panics_with_context() {
        proptest! {
            fn always_fails(n in 0_i64..10) {
                prop_assert!(n > 100, "n was {n}");
            }
        }
        always_fails();
    }

    #[test]
    fn deterministic_rng_streams_match() {
        let mut a = crate::TestRng::deterministic("tag");
        let mut b = crate::TestRng::deterministic("tag");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
