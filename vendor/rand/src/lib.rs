//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! Provides the pieces this workspace uses — [`Rng`] with `gen_range` /
//! `gen_bool` / `fill`, [`SeedableRng`], [`rngs::StdRng`] and
//! [`seq::SliceRandom`] — on top of a xoshiro256++ generator seeded via
//! SplitMix64. Deterministic for a fixed seed, but the byte streams do
//! **not** match the real `rand` crate.

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

/// The low-level generator interface: a source of uniform random bits.
pub trait RngCore {
    /// Returns the next 64 uniformly-random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly-random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A type that can be uniformly sampled from a range.
pub trait SampleUniform: Sized {
    /// Uniform draw from the half-open range `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw from the closed range `[lo, hi]`.
    fn sample_closed<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "cannot sample from an empty range");
                let span = (hi as i128 - lo as i128) as u128;
                lo.wrapping_add(uniform_u128(span, rng) as $t)
            }
            fn sample_closed<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "cannot sample from an empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                lo.wrapping_add(uniform_u128(span, rng) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform integer in `[0, span)` by rejection sampling (span > 0).
fn uniform_u128<R: RngCore + ?Sized>(span: u128, rng: &mut R) -> u128 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return u128::from(rng.next_u64()) & (span - 1);
    }
    // 64 bits of entropy cover every span the workspace uses; reject the
    // tail of the 64-bit range that would bias the modulus.
    let span64 = span as u64;
    let zone = u64::MAX - (u64::MAX % span64) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return u128::from(v % span64);
        }
    }
}

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        assert!(lo < hi, "cannot sample from an empty range");
        let u = unit_f64(rng); // [0, 1)
        let v = lo + (hi - lo) * u;
        // Floating rounding can land exactly on `hi`; clamp back inside.
        if v >= hi {
            lo.max(prev_down(hi))
        } else {
            v
        }
    }
    fn sample_closed<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        assert!(lo <= hi, "cannot sample from an empty range");
        if lo == hi {
            return lo;
        }
        let u = unit_f64_closed(rng); // [0, 1]
        lo + (hi - lo) * u
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        f64::sample_half_open(f64::from(lo), f64::from(hi), rng) as f32
    }
    fn sample_closed<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        f64::sample_closed(f64::from(lo), f64::from(hi), rng) as f32
    }
}

/// Uniform in `[0, 1)` with 53 random mantissa bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

/// Uniform in `[0, 1]`.
fn unit_f64_closed<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64
}

/// The largest float strictly below `x` (for finite positive spans).
fn prev_down(x: f64) -> f64 {
    f64::from_bits(x.to_bits() - 1)
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_closed(*self.start(), *self.end(), rng)
    }
}

/// User-facing random-value methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open `a..b` or closed `a..=b`).
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        // Exact at the endpoints so probability-1 faults always fire.
        if p >= 1.0 {
            true
        } else if p <= 0.0 {
            false
        } else {
            unit_f64(self) < p
        }
    }

    /// Fills `dest` with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator by expanding a `u64` through SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64(&mut state).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Statistically strong and fast; **not** stream-compatible with the
    /// real `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(bytes);
            }
            // An all-zero state is a fixed point for xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }
    }
}

/// Slice helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Randomised slice operations.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly-random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[RngCore::next_u64(rng) as usize % self.len()])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
    }

    #[test]
    fn float_ranges_stay_inside_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(-1.5..2.5);
            assert!((-1.5..2.5).contains(&x));
            let y: f64 = rng.gen_range(-0.5..=0.5);
            assert!((-0.5..=0.5).contains(&y));
        }
    }

    #[test]
    fn integer_ranges_cover_endpoints() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v = rng.gen_range(3..=3i64);
            assert_eq!(v, 3);
        }
    }

    #[test]
    fn gen_bool_endpoints_are_exact() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert!(rng.gen_bool(1.0));
            assert!(!rng.gen_bool(0.0));
        }
    }

    #[test]
    fn gen_bool_rate_is_plausible() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation_and_varies() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..20 {
            let mut v: Vec<usize> = (0..6).collect();
            v.shuffle(&mut rng);
            let mut sorted = v.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..6).collect::<Vec<_>>());
            distinct.insert(v);
        }
        assert!(distinct.len() > 1);
    }

    #[test]
    fn works_through_mut_references() {
        fn takes_generic<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen_range(0.0..1.0)
        }
        let mut rng = StdRng::seed_from_u64(6);
        let x = takes_generic(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
