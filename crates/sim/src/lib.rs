//! Autonomous-vehicle simulation for the DATE'14 case study and the
//! paper's experiment engines.
//!
//! The paper evaluates its schedule recommendation two ways; both are
//! reproduced by this crate:
//!
//! * **Table I** — exact expected fusion-interval widths under the
//!   Ascending vs Descending schedules, computed by exhaustive grid
//!   enumeration with an expectimax attacker ([`table1`]),
//! * **Table II** — a case study with LandShark unmanned ground vehicles
//!   in a platoon holding 10 mph, counting rounds whose fusion interval
//!   escapes the `[9.5, 10.5]` mph safety envelope under the Ascending /
//!   Descending / Random schedules ([`table2`]).
//!
//! Supporting substrates: a longitudinal vehicle model ([`vehicle`]), a
//! PI speed controller ([`controller`]), the fusion-bound safety
//! supervisor ([`supervisor`]), the single-vehicle LandShark assembly
//! ([`landshark`]) and the three-vehicle platoon ([`platoon`]).
//!
//! # Example
//!
//! ```
//! use arsf_sim::landshark::{LandShark, LandSharkConfig};
//! use arsf_schedule::SchedulePolicy;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let mut shark = LandShark::new(LandSharkConfig::new(10.0, SchedulePolicy::Ascending));
//! for _ in 0..50 {
//!     shark.step(&mut rng);
//! }
//! // The controller holds the target speed within the safety envelope.
//! assert!((shark.speed() - 10.0).abs() < 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod controller;
pub mod faults;
pub mod landshark;
pub mod platoon;
pub mod supervisor;
pub mod table1;
pub mod table2;
pub mod vehicle;
