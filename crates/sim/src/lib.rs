//! Autonomous-vehicle simulation for the DATE'14 case study and the
//! paper's experiment engines.
//!
//! The paper evaluates its schedule recommendation two ways; both are
//! reproduced by this crate:
//!
//! * **Table I** — exact expected fusion-interval widths under the
//!   Ascending vs Descending schedules, computed by exhaustive grid
//!   enumeration with an expectimax attacker ([`table1`]),
//! * **Table II** — a case study with LandShark unmanned ground vehicles
//!   in a platoon holding 10 mph, counting rounds whose fusion interval
//!   escapes the `[9.5, 10.5]` mph safety envelope under the Ascending /
//!   Descending / Random schedules ([`table2`]).
//!
//! Supporting substrates: a longitudinal vehicle model ([`vehicle`]), a
//! PI speed controller ([`controller`]), the fusion-bound safety
//! supervisor ([`supervisor`]), the single-vehicle LandShark assembly
//! ([`landshark`]) and the three-vehicle platoon ([`platoon`]) — all
//! hosted in [`arsf_core::closed_loop`] (so the scenario/sweep engines
//! can drive them) and re-exported here under their original paths.
//!
//! # Example
//!
//! ```
//! use arsf_sim::landshark::{LandShark, LandSharkConfig};
//! use arsf_schedule::SchedulePolicy;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let mut shark = LandShark::new(LandSharkConfig::new(10.0, SchedulePolicy::Ascending));
//! for _ in 0..50 {
//!     shark.step(&mut rng);
//! }
//! // The controller holds the target speed within the safety envelope.
//! assert!((shark.speed() - 10.0).abs() < 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod faults;
pub mod table1;
pub mod table2;

// The vehicle stack lives in `arsf_core::closed_loop` so the declarative
// scenario runner and the sweep grid can build closed-loop engines; these
// re-exports keep `arsf_sim::landshark::LandShark` & friends the
// canonical simulation-facing paths.
pub use arsf_core::closed_loop::{controller, landshark, platoon, supervisor, vehicle};
