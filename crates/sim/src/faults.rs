//! Random faults in addition to attacks — the paper's Section V
//! extension, quantified.
//!
//! The paper assumes uncompromised sensors are always correct and names
//! random faults as future work; footnote 1 sketches the windowed
//! detector that would tolerate them. This engine runs the full pipeline
//! with **both** a transiently-faulty correct sensor and a stealthy
//! attacker, and measures what actually breaks:
//!
//! * how often the fusion loses the true value (the paper's `fa ≤ f`
//!   guarantee is void in rounds where fault + attack exceed `f`),
//! * how often fusion fails outright (no point reaches coverage `n − f`,
//!   which the controller can at least *detect*),
//! * how the windowed detector trades detection of the faulty sensor
//!   against false condemnations.

use arsf_attack::strategies::PhantomOptimal;
use arsf_attack::AttackerConfig;
use arsf_core::{DetectionMode, FusionPipeline, PipelineConfig};
use arsf_schedule::SchedulePolicy;
use arsf_sensor::{FaultKind, FaultModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration for one fault-plus-attack run.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultAttackConfig {
    /// Number of rounds.
    pub rounds: u64,
    /// The sensor that faults transiently.
    pub faulty_sensor: usize,
    /// Per-round fault probability.
    pub fault_probability: f64,
    /// Fault bias (mph) — far enough outside the error band to matter.
    pub fault_offset: f64,
    /// The compromised sensor, or `None` for the fault-only baseline.
    pub attacked: Option<usize>,
    /// Communication schedule.
    pub schedule: SchedulePolicy,
    /// Windowed-detector window length.
    pub window: usize,
    /// Windowed-detector tolerance (violations allowed per window).
    pub tolerance: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FaultAttackConfig {
    /// GPS faulting 10% of rounds by +3 mph, encoder 0 attacked,
    /// Ascending schedule, a 20-round window tolerating 4 violations.
    fn default() -> Self {
        Self {
            rounds: 2_000,
            faulty_sensor: 2,
            fault_probability: 0.1,
            fault_offset: 3.0,
            attacked: Some(0),
            schedule: SchedulePolicy::Ascending,
            window: 20,
            tolerance: 4,
            seed: 7,
        }
    }
}

/// What one fault-plus-attack run measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultAttackReport {
    /// Rounds executed.
    pub rounds: u64,
    /// Rounds where the fused interval did **not** contain the truth.
    pub truth_lost: u64,
    /// Rounds where fusion failed entirely (`NoAgreement`).
    pub fusion_failures: u64,
    /// Rounds where the immediate overlap check flagged some sensor.
    pub transient_flags: u64,
    /// Round at which the faulty sensor was condemned (if it was).
    pub faulty_condemned_at: Option<u64>,
    /// Sensors other than the faulty one that ended up condemned
    /// (false condemnations — the attacker stays stealthy, so any entry
    /// here indicts the detector's tuning, not the attacker).
    pub false_condemnations: u64,
}

/// Runs the engine.
///
/// # Panics
///
/// Panics if sensor indices exceed the LandShark suite (4 sensors) or the
/// attacked sensor equals the faulty one (the threat model keeps them
/// distinct: the attacker controls a *healthy* sensor).
pub fn run(config: &FaultAttackConfig) -> FaultAttackReport {
    assert!(config.faulty_sensor < 4, "LandShark has 4 sensors");
    if let Some(a) = config.attacked {
        assert!(a < 4, "LandShark has 4 sensors");
        assert_ne!(a, config.faulty_sensor, "attacked sensor must be healthy");
    }

    let mut suite = arsf_sensor::suite::landshark();
    suite.sensors_mut()[config.faulty_sensor] = suite.sensors()[config.faulty_sensor]
        .clone()
        .with_fault(FaultModel::new(
            FaultKind::Bias {
                offset: config.fault_offset,
            },
            config.fault_probability,
        ));

    let pipeline_config =
        PipelineConfig::new(1, config.schedule.clone()).with_detection(DetectionMode::Windowed {
            window: config.window,
            tolerance: config.tolerance,
        });
    let builder = FusionPipeline::builder(suite).config(pipeline_config);
    let mut pipeline = match config.attacked {
        Some(sensor) => builder
            .attacker(
                AttackerConfig::new([sensor], 1),
                Box::new(PhantomOptimal::new()),
            )
            .build(),
        None => builder.build(),
    };

    let mut rng = StdRng::seed_from_u64(config.seed);
    let truth = 10.0;
    let mut report = FaultAttackReport {
        rounds: config.rounds,
        truth_lost: 0,
        fusion_failures: 0,
        transient_flags: 0,
        faulty_condemned_at: None,
        false_condemnations: 0,
    };
    let mut condemned_seen: Vec<usize> = Vec::new();
    for round in 0..config.rounds {
        let out = pipeline.run_round(truth, &mut rng);
        match &out.fusion {
            Ok(fused) => {
                if !fused.contains(truth) {
                    report.truth_lost += 1;
                }
            }
            Err(_) => report.fusion_failures += 1,
        }
        if !out.flagged.is_empty() {
            report.transient_flags += 1;
        }
        for &sensor in &out.condemned {
            if !condemned_seen.contains(&sensor) {
                condemned_seen.push(sensor);
                if sensor == config.faulty_sensor {
                    report.faulty_condemned_at = Some(round);
                } else {
                    report.false_condemnations += 1;
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(fault_probability: f64, tolerance: usize) -> FaultAttackConfig {
        FaultAttackConfig {
            rounds: 600,
            fault_probability,
            tolerance,
            ..FaultAttackConfig::default()
        }
    }

    #[test]
    fn rare_faults_survive_a_tolerant_window() {
        let report = run(&quick(0.05, 6));
        assert_eq!(report.faulty_condemned_at, None, "5% faults fit 6-in-20");
        assert_eq!(report.false_condemnations, 0);
        assert_eq!(report.fusion_failures, 0);
    }

    #[test]
    fn persistent_faults_are_condemned_quickly() {
        let report = run(&quick(0.9, 4));
        let at = report
            .faulty_condemned_at
            .expect("90% fault rate must be condemned");
        assert!(at < 20, "condemned within the first window, got {at}");
        assert_eq!(report.false_condemnations, 0);
    }

    #[test]
    fn over_budget_rounds_are_loud_and_truth_loss_stays_rare() {
        // f = 1 but fault + attack make 2 misbehaving sensors in some
        // rounds: the paper's guarantee is void. What the engine shows:
        // the blatant fault keeps the overlap check firing (the system is
        // not blind), the faulty sensor is condemned, and even then the
        // conservative stealthy attacker rarely manages to push the truth
        // out of the fusion interval (her forgery must stay anchored to
        // evidence she cannot distinguish from the truth).
        let report = run(&FaultAttackConfig {
            rounds: 2_000,
            fault_probability: 0.5,
            schedule: SchedulePolicy::Descending,
            ..FaultAttackConfig::default()
        });
        assert!(report.transient_flags > 200, "the fault must be noticed");
        assert!(report.faulty_condemned_at.is_some());
        assert_eq!(report.false_condemnations, 0);
        assert!(
            report.truth_lost < report.rounds / 20,
            "silent truth loss must stay rare: {} of {}",
            report.truth_lost,
            report.rounds
        );
    }

    #[test]
    fn ascending_neutralises_the_attacker_even_with_faults() {
        // The schedule result extends: under Ascending the fault is the
        // only misbehaviour, so the fault budget f = 1 always covers it.
        let report = run(&FaultAttackConfig {
            rounds: 1_000,
            fault_probability: 0.5,
            schedule: SchedulePolicy::Ascending,
            ..FaultAttackConfig::default()
        });
        assert_eq!(report.truth_lost, 0);
        assert_eq!(report.fusion_failures, 0);
    }

    #[test]
    fn fault_only_baseline_never_loses_truth() {
        // Without the attacker, a single fault stays within f = 1 and the
        // fusion always contains the truth.
        let report = run(&FaultAttackConfig {
            attacked: None,
            fault_probability: 0.3,
            rounds: 800,
            ..FaultAttackConfig::default()
        });
        assert_eq!(report.truth_lost, 0);
        assert_eq!(report.fusion_failures, 0);
    }

    #[test]
    #[should_panic(expected = "attacked sensor must be healthy")]
    fn attacked_equals_faulty_panics() {
        let _ = run(&FaultAttackConfig {
            attacked: Some(2),
            faulty_sensor: 2,
            ..FaultAttackConfig::default()
        });
    }
}
