//! The Table II experiment engine: safety-envelope violation rates in the
//! LandShark case study.
//!
//! Setup (paper Section IV-B): desired speed `v = 10` mph,
//! `δ1 = δ2 = 0.5` mph, four speed sensors (two encoders at 0.2 mph, GPS
//! at 1 mph, camera at 2 mph), fusion with `f = 1`, at most one sensor
//! attacked at any time and "any sensor can be attacked" — modelled as a
//! uniformly random compromised sensor each round. For each schedule the
//! engine reports the fraction of rounds whose fusion interval exceeded
//! 10.5 mph (row 1) or dropped below 9.5 mph (row 2).
//!
//! Since the closed-loop redesign this engine is a thin aggregation over
//! the deterministic sweep grid: [`sweep_grid`] lays the three schedules
//! × `replicates` Monte Carlo seeds out as closed-loop cells,
//! [`report`] executes them (serial or sharded across
//! [`ParallelSweeper`] workers — byte-identical either way), and
//! [`run_all`] pools each schedule's replicate rows into the
//! paper-facing [`Table2Row`]s. Any cell can be re-run in isolation via
//! `sweep_grid(..).scenario(i)`.

use arsf_core::scenario::{AttackerSpec, ClosedLoopSpec, FuserSpec, Scenario, SuiteSpec};
use arsf_core::sweep::{ParallelSweeper, SweepGrid, SweepReport};
use arsf_schedule::SchedulePolicy;

/// Configuration for a Table II run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table2Config {
    /// Number of control rounds per schedule cell.
    pub rounds: u64,
    /// Target speed `v` (mph).
    pub target: f64,
    /// Upper envelope half-width `δ1`.
    pub delta_up: f64,
    /// Lower envelope half-width `δ2`.
    pub delta_down: f64,
    /// RNG seed (each grid cell derives its own stream from it).
    pub seed: u64,
    /// Monte Carlo replicates per schedule (seed-axis length).
    pub replicates: usize,
    /// Worker threads executing the grid.
    pub threads: usize,
    /// Optional dynamics-aware historical-fusion defence: when set, every
    /// cell fuses with the Historical fuser under this `max_rate` bound
    /// (mph/s) instead of plain Marzullo — the follow-up defence's
    /// Table II.
    pub history: Option<f64>,
}

impl Default for Table2Config {
    /// The paper's parameters with 20 000 rounds, one replicate, serial
    /// execution, memoryless (paper) fusion.
    fn default() -> Self {
        Self {
            rounds: 20_000,
            target: 10.0,
            delta_up: 0.5,
            delta_down: 0.5,
            seed: 20140324,
            replicates: 1,
            threads: 1,
            history: None,
        }
    }
}

/// One Table II cell pair: violation rates for a schedule, pooled across
/// the configured replicates.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// The schedule's name.
    pub schedule: String,
    /// Fraction of rounds with fusion upper bound `> v + δ1`.
    pub above: f64,
    /// Fraction of rounds with fusion lower bound `< v − δ2`.
    pub below: f64,
}

/// The schedules Table II compares, in the paper's column order.
pub const SCHEDULES: [SchedulePolicy; 3] = [
    SchedulePolicy::Ascending,
    SchedulePolicy::Descending,
    SchedulePolicy::Random,
];

/// The closed-loop base scenario every Table II cell varies from.
fn base_scenario(config: &Table2Config) -> Scenario {
    let mut scenario = Scenario::new("table2", SuiteSpec::Landshark)
        .with_attacker(AttackerSpec::RandomEachRound)
        .with_rounds(config.rounds)
        .with_seed(config.seed)
        .with_closed_loop(
            ClosedLoopSpec::new(config.target).with_deltas(config.delta_up, config.delta_down),
        );
    if let Some(max_rate) = config.history {
        scenario = scenario.with_fuser(FuserSpec::Historical { max_rate, dt: 0.1 });
    }
    scenario
}

/// The Table II sweep grid: `schedules × replicates` closed-loop cells
/// (schedule axis slow, seed axis fast — matching the generic grid's
/// decode order).
pub fn sweep_grid(config: &Table2Config) -> SweepGrid {
    grid_over(config, SCHEDULES)
}

fn grid_over(
    config: &Table2Config,
    schedules: impl IntoIterator<Item = SchedulePolicy>,
) -> SweepGrid {
    SweepGrid::new(base_scenario(config))
        .schedules(schedules)
        .seeds((0..config.replicates.max(1) as u64).map(|i| config.seed.wrapping_add(i)))
}

/// Executes the Table II grid and returns the raw per-cell sweep report
/// (grid-ordered; byte-identical for any [`Table2Config::threads`]).
pub fn report(config: &Table2Config) -> SweepReport {
    ParallelSweeper::new(config.threads.max(1)).run(&sweep_grid(config))
}

/// Pools one schedule's replicate rows out of a report into a
/// [`Table2Row`] (all replicates run equal round counts, so the mean of
/// rates is the pooled rate).
fn pool(report: &SweepReport, schedule: &SchedulePolicy) -> Table2Row {
    let name = schedule.name();
    let (mut above, mut below, mut cells) = (0.0, 0.0, 0u32);
    for row in report.rows() {
        if row.schedule != name {
            continue;
        }
        let sup = row
            .summary
            .supervisor
            .as_ref()
            .expect("table2 cells are closed-loop");
        above += sup.above_rate;
        below += sup.below_rate;
        cells += 1;
    }
    assert!(cells > 0, "no cells for schedule {name}");
    Table2Row {
        schedule: name.to_string(),
        above: above / f64::from(cells),
        below: below / f64::from(cells),
    }
}

/// Runs one schedule for [`Table2Config::rounds`] control periods per
/// replicate and returns its pooled violation rates.
///
/// Executes a single-schedule grid, so only this schedule's cells run —
/// its replicate seed streams therefore differ from the corresponding
/// [`run_all`] rows (cell indices feed the per-cell seed derivation),
/// though both reproduce the paper's rates.
pub fn run_schedule(policy: SchedulePolicy, config: &Table2Config) -> Table2Row {
    let report =
        ParallelSweeper::new(config.threads.max(1)).run(&grid_over(config, [policy.clone()]));
    pool(&report, &policy)
}

/// Runs the three schedules the paper compares (Ascending, Descending,
/// Random) through the sweep grid and returns their pooled rows in that
/// order.
pub fn run_all(config: &Table2Config) -> Vec<Table2Row> {
    let report = report(config);
    SCHEDULES.iter().map(|s| pool(&report, s)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Table2Config {
        Table2Config {
            rounds: 1500,
            ..Table2Config::default()
        }
    }

    #[test]
    fn ascending_has_zero_violations() {
        let row = run_schedule(SchedulePolicy::Ascending, &quick());
        assert_eq!(row.above, 0.0, "paper: 0% above under Ascending");
        assert_eq!(row.below, 0.0, "paper: 0% below under Ascending");
    }

    #[test]
    fn descending_violates_substantially() {
        let row = run_schedule(SchedulePolicy::Descending, &quick());
        assert!(
            row.above > 0.02,
            "descending must show above-violations, got {}",
            row.above
        );
        assert!(
            row.below > 0.02,
            "descending must show below-violations, got {}",
            row.below
        );
    }

    #[test]
    fn historical_defence_cuts_descending_violations() {
        let memoryless = run_schedule(SchedulePolicy::Descending, &quick());
        let defended = run_schedule(
            SchedulePolicy::Descending,
            &Table2Config {
                history: Some(3.5),
                ..quick()
            },
        );
        assert!(
            defended.above + defended.below < memoryless.above + memoryless.below,
            "history must clip forged extensions: {defended:?} vs {memoryless:?}"
        );
    }

    #[test]
    fn random_sits_between_ascending_and_descending() {
        let config = quick();
        let rows = run_all(&config);
        let total = |r: &Table2Row| r.above + r.below;
        assert!(total(&rows[0]) <= total(&rows[2]));
        assert!(total(&rows[2]) <= total(&rows[1]));
        assert!(total(&rows[2]) > 0.0, "random must show some violations");
    }

    #[test]
    fn run_all_returns_three_labelled_rows() {
        let rows = run_all(&quick());
        let names: Vec<&str> = rows.iter().map(|r| r.schedule.as_str()).collect();
        assert_eq!(names, vec!["ascending", "descending", "random"]);
    }

    #[test]
    fn rows_are_byte_identical_across_thread_counts() {
        // Same config ⇒ identical rows whatever the worker count: the
        // grid's per-cell seed derivation owns all randomness.
        let serial = run_all(&Table2Config {
            rounds: 400,
            replicates: 2,
            threads: 1,
            ..Table2Config::default()
        });
        let parallel = run_all(&Table2Config {
            rounds: 400,
            replicates: 2,
            threads: 4,
            ..Table2Config::default()
        });
        assert_eq!(serial, parallel);
        assert_eq!(format!("{serial:?}"), format!("{parallel:?}"));
    }

    #[test]
    fn replicates_widen_the_seed_axis() {
        let grid = sweep_grid(&Table2Config {
            replicates: 4,
            ..Table2Config::default()
        });
        assert_eq!(grid.len(), 12, "3 schedules x 4 replicates");
        // Every cell is reproducible in isolation.
        let cell = grid.scenario(5);
        assert!(cell.closed_loop.is_some());
        assert_eq!(grid.scenario(5), cell);
    }
}
