//! The Table II experiment engine: safety-envelope violation rates in the
//! LandShark case study.
//!
//! Setup (paper Section IV-B): desired speed `v = 10` mph,
//! `δ1 = δ2 = 0.5` mph, four speed sensors (two encoders at 0.2 mph, GPS
//! at 1 mph, camera at 2 mph), fusion with `f = 1`, at most one sensor
//! attacked at any time and "any sensor can be attacked" — modelled as a
//! uniformly random compromised sensor each round. For each schedule the
//! engine reports the fraction of rounds whose fusion interval exceeded
//! 10.5 mph (row 1) or dropped below 9.5 mph (row 2).

use arsf_schedule::SchedulePolicy;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::landshark::{AttackSelection, LandShark, LandSharkConfig};

/// Configuration for a Table II run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table2Config {
    /// Number of control rounds per schedule.
    pub rounds: u64,
    /// Target speed `v` (mph).
    pub target: f64,
    /// Upper envelope half-width `δ1`.
    pub delta_up: f64,
    /// Lower envelope half-width `δ2`.
    pub delta_down: f64,
    /// RNG seed (each schedule derives its own stream from it).
    pub seed: u64,
}

impl Default for Table2Config {
    /// The paper's parameters with 20 000 rounds.
    fn default() -> Self {
        Self {
            rounds: 20_000,
            target: 10.0,
            delta_up: 0.5,
            delta_down: 0.5,
            seed: 20140324,
        }
    }
}

/// One Table II cell pair: violation rates for a schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// The schedule's name.
    pub schedule: String,
    /// Fraction of rounds with fusion upper bound `> v + δ1`.
    pub above: f64,
    /// Fraction of rounds with fusion lower bound `< v − δ2`.
    pub below: f64,
}

/// Runs one schedule for [`Table2Config::rounds`] control periods and
/// returns its violation rates.
pub fn run_schedule(policy: SchedulePolicy, config: &Table2Config) -> Table2Row {
    let mut rng = StdRng::seed_from_u64(config.seed ^ hash_name(policy.name()));
    let shark_config = LandSharkConfig {
        target_speed: config.target,
        delta_up: config.delta_up,
        delta_down: config.delta_down,
        schedule: policy.clone(),
        f: 1,
        dt: 0.1,
        attack: AttackSelection::RandomEachRound,
        vehicle: crate::vehicle::VehicleParams::default(),
        history: None,
    };
    let mut shark = LandShark::new(shark_config);
    for _ in 0..config.rounds {
        shark.step(&mut rng);
    }
    Table2Row {
        schedule: policy.name().to_string(),
        above: shark.supervisor().upper_rate(),
        below: shark.supervisor().lower_rate(),
    }
}

/// Runs the three schedules the paper compares (Ascending, Descending,
/// Random) and returns their rows in that order.
pub fn run_all(config: &Table2Config) -> Vec<Table2Row> {
    vec![
        run_schedule(SchedulePolicy::Ascending, config),
        run_schedule(SchedulePolicy::Descending, config),
        run_schedule(SchedulePolicy::Random, config),
    ]
}

fn hash_name(name: &str) -> u64 {
    // Tiny FNV-1a so each schedule gets a distinct deterministic stream.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Table2Config {
        Table2Config {
            rounds: 1500,
            ..Table2Config::default()
        }
    }

    #[test]
    fn ascending_has_zero_violations() {
        let row = run_schedule(SchedulePolicy::Ascending, &quick());
        assert_eq!(row.above, 0.0, "paper: 0% above under Ascending");
        assert_eq!(row.below, 0.0, "paper: 0% below under Ascending");
    }

    #[test]
    fn descending_violates_substantially() {
        let row = run_schedule(SchedulePolicy::Descending, &quick());
        assert!(
            row.above > 0.02,
            "descending must show above-violations, got {}",
            row.above
        );
        assert!(
            row.below > 0.02,
            "descending must show below-violations, got {}",
            row.below
        );
    }

    #[test]
    fn random_sits_between_ascending_and_descending() {
        let config = quick();
        let asc = run_schedule(SchedulePolicy::Ascending, &config);
        let desc = run_schedule(SchedulePolicy::Descending, &config);
        let rand = run_schedule(SchedulePolicy::Random, &config);
        let total = |r: &Table2Row| r.above + r.below;
        assert!(total(&asc) <= total(&rand));
        assert!(total(&rand) <= total(&desc));
        assert!(total(&rand) > 0.0, "random must show some violations");
    }

    #[test]
    fn run_all_returns_three_labelled_rows() {
        let rows = run_all(&quick());
        let names: Vec<&str> = rows.iter().map(|r| r.schedule.as_str()).collect();
        assert_eq!(names, vec!["ascending", "descending", "random"]);
    }
}
