//! The Table I experiment engine: expected fusion-interval width under
//! the Ascending vs Descending schedules.
//!
//! Method (paper Section IV-A, reproduced exactly): for each setup
//! `(n, fa, L)` the fusion runs with `f = ⌈n/2⌉ − 1`; all combinations of
//! grid measurements are enumerated and the average fusion width is the
//! expectation. The attacker solves the limited-information problem (2)
//! at each of her slots (the [`arsf_attack::expectimax`] engine).
//!
//! The paper does not pin down *which* sensors are compromised, so the
//! engine takes the adversarial view: for every schedule, the attacker
//! chooses the size-`fa` compromised set that maximises the expected
//! width. (Theorems 3/4 say precise sensors are the profitable targets,
//! but which precise sensor depends on its slot, which depends on the
//! schedule — enumerating subsets resolves this cleanly.)

use arsf_attack::expectimax::{
    expected_fusion_width, expected_honest_width, AttackerStyle, GridScenario,
};
use arsf_attack::worst_case::subsets;
use arsf_fusion::marzullo::max_bounded_f;
use arsf_schedule::SchedulePolicy;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One Table I experimental setup.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Setup {
    /// Interval widths `L` (the paper's length multiset), id order.
    pub widths: Vec<f64>,
    /// Number of compromised sensors `fa`.
    pub fa: usize,
}

impl Table1Setup {
    /// Creates a setup.
    pub fn new(widths: impl Into<Vec<f64>>, fa: usize) -> Self {
        Self {
            widths: widths.into(),
            fa,
        }
    }

    /// The paper's label, e.g. `n = 3, fa = 1, L = {5, 11, 17}`.
    pub fn label(&self) -> String {
        let lens: Vec<String> = self.widths.iter().map(|w| format!("{w}")).collect();
        format!(
            "n = {}, fa = {}, L = {{{}}}",
            self.widths.len(),
            self.fa,
            lens.join(", ")
        )
    }

    /// The fusion fault assumption the paper uses: `⌈n/2⌉ − 1`.
    pub fn f(&self) -> usize {
        max_bounded_f(self.widths.len())
    }
}

/// The eight setups of the paper's Table I.
pub fn paper_setups() -> Vec<Table1Setup> {
    vec![
        Table1Setup::new([5.0, 11.0, 17.0], 1),
        Table1Setup::new([5.0, 11.0, 11.0], 1),
        Table1Setup::new([5.0, 8.0, 17.0, 20.0], 1),
        Table1Setup::new([5.0, 8.0, 8.0, 11.0], 1),
        Table1Setup::new([5.0, 5.0, 5.0, 5.0, 20.0], 1),
        Table1Setup::new([5.0, 5.0, 5.0, 14.0, 20.0], 1),
        Table1Setup::new([5.0, 5.0, 5.0, 5.0, 20.0], 2),
        Table1Setup::new([5.0, 5.0, 5.0, 14.0, 17.0], 2),
    ]
}

/// One evaluated Table I row.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// The setup.
    pub setup: Table1Setup,
    /// `E|S_{N,f}|` under the Ascending schedule (adversarial attacker).
    pub ascending: f64,
    /// `E|S_{N,f}|` under the Descending schedule.
    pub descending: f64,
    /// The no-attack expectation (not in the paper's table; included as
    /// the honest baseline).
    pub honest: f64,
    /// The compromised set the attacker chose under Ascending.
    pub ascending_attacked: Vec<usize>,
    /// The compromised set the attacker chose under Descending.
    pub descending_attacked: Vec<usize>,
}

impl Table1Row {
    /// The Descending-minus-Ascending gap the paper's argument predicts
    /// to be non-negative.
    pub fn gap(&self) -> f64 {
        self.descending - self.ascending
    }
}

/// Evaluates one setup at the given grid step.
///
/// Smaller steps reproduce the paper's "sufficiently high precision"
/// discretisation at higher cost; `step = 1.0` matches the integer grid
/// its interval lengths suggest.
pub fn evaluate_setup(setup: &Table1Setup, step: f64) -> Table1Row {
    let honest_scenario = GridScenario::new(setup.widths.clone(), vec![], setup.f(), step);
    let honest = expected_honest_width(&honest_scenario);

    let (ascending, ascending_attacked) =
        evaluate_schedule(setup, &SchedulePolicy::Ascending, step);
    let (descending, descending_attacked) =
        evaluate_schedule(setup, &SchedulePolicy::Descending, step);

    Table1Row {
        setup: setup.clone(),
        ascending,
        descending,
        honest,
        ascending_attacked,
        descending_attacked,
    }
}

/// The adversarial expected width under one schedule: maximum over all
/// size-`fa` compromised sets.
pub fn evaluate_schedule(
    setup: &Table1Setup,
    policy: &SchedulePolicy,
    step: f64,
) -> (f64, Vec<usize>) {
    let n = setup.widths.len();
    let mut best = f64::NEG_INFINITY;
    let mut best_set = Vec::new();
    for candidate in subsets(n, setup.fa) {
        let width = evaluate_schedule_fixed(setup, policy, &candidate, step);
        if width > best {
            best = width;
            best_set = candidate;
        }
    }
    (best, best_set)
}

/// The expected width under one schedule for a **fixed** compromised set
/// (e.g. the `fa` most precise sensors, the profitable target Theorems 3
/// and 4 point at).
pub fn evaluate_schedule_fixed(
    setup: &Table1Setup,
    policy: &SchedulePolicy,
    attacked: &[usize],
    step: f64,
) -> f64 {
    evaluate_schedule_styled(setup, policy, attacked, step, AttackerStyle::Optimal)
}

/// [`evaluate_schedule_fixed`] with an explicit attacker capability model
/// (e.g. [`AttackerStyle::OneSidedHigh`] for comparison against the
/// paper's reported magnitudes).
pub fn evaluate_schedule_styled(
    setup: &Table1Setup,
    policy: &SchedulePolicy,
    attacked: &[usize],
    step: f64,
    style: AttackerStyle,
) -> f64 {
    let f = setup.f();
    // Deterministic policies ignore the RNG; seeded for the Random case.
    let mut rng = StdRng::seed_from_u64(0);
    let order = policy.order(&setup.widths, 0, &mut rng);
    let scenario =
        GridScenario::new(setup.widths.clone(), attacked.to_vec(), f, step).with_style(style);
    let outcome = expected_fusion_width(&scenario, &order);
    debug_assert!(outcome.stealthy, "expectimax attacker must stay stealthy");
    outcome.expected_width
}

/// The indices of the `fa` most precise (smallest-width) sensors, ties
/// broken by index — the compromised set Theorem 4 says is the most
/// profitable.
pub fn most_precise_set(setup: &Table1Setup) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..setup.widths.len()).collect();
    idx.sort_by(|&a, &b| {
        setup.widths[a]
            .partial_cmp(&setup.widths[b])
            .expect("finite widths")
            .then(a.cmp(&b))
    });
    idx.truncate(setup.fa);
    idx.sort_unstable();
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_setups_have_eight_rows_with_valid_fa() {
        let setups = paper_setups();
        assert_eq!(setups.len(), 8);
        for s in &setups {
            assert!(s.fa <= s.f(), "{}: fa must not exceed f", s.label());
        }
    }

    #[test]
    fn labels_match_paper_notation() {
        let s = Table1Setup::new([5.0, 11.0, 17.0], 1);
        assert_eq!(s.label(), "n = 3, fa = 1, L = {5, 11, 17}");
        assert_eq!(s.f(), 1);
    }

    #[test]
    fn descending_never_beats_ascending_for_the_defender() {
        // Small synthetic setup on a coarse grid so the test stays fast
        // in debug builds; the repro binary runs the paper's full grid.
        let setup = Table1Setup::new([2.0, 4.0, 6.0], 1);
        let row = evaluate_setup(&setup, 2.0);
        assert!(
            row.gap() >= -1e-9,
            "ascending {} vs descending {}",
            row.ascending,
            row.descending
        );
        assert!(row.honest <= row.ascending + 1e-9);
    }

    #[test]
    fn attacked_set_is_reported() {
        let setup = Table1Setup::new([2.0, 4.0, 6.0], 1);
        let row = evaluate_setup(&setup, 2.0);
        assert_eq!(row.ascending_attacked.len(), 1);
        assert_eq!(row.descending_attacked.len(), 1);
    }

    #[test]
    fn most_precise_set_picks_smallest_widths() {
        let setup = Table1Setup::new([5.0, 5.0, 5.0, 14.0, 17.0], 2);
        assert_eq!(most_precise_set(&setup), vec![0, 1]);
        let setup = Table1Setup::new([17.0, 5.0, 11.0], 1);
        assert_eq!(most_precise_set(&setup), vec![1]);
    }

    #[test]
    fn fixed_set_never_exceeds_adversarial_choice() {
        let setup = Table1Setup::new([2.0, 4.0, 6.0], 1);
        for policy in [SchedulePolicy::Ascending, SchedulePolicy::Descending] {
            let (best, _) = evaluate_schedule(&setup, &policy, 2.0);
            let fixed = evaluate_schedule_fixed(&setup, &policy, &most_precise_set(&setup), 2.0);
            assert!(fixed <= best + 1e-9);
        }
    }

    #[test]
    fn first_paper_row_reproduces_the_shape_on_a_coarse_grid() {
        // n = 3, fa = 1, L = {5, 11, 17} with a coarse grid: the ordering
        // (Descending > Ascending) must already show.
        let setup = Table1Setup::new([5.0, 11.0, 17.0], 1);
        let row = evaluate_setup(&setup, 4.0);
        assert!(
            row.descending > row.ascending,
            "descending {} must exceed ascending {}",
            row.descending,
            row.ascending
        );
    }
}
