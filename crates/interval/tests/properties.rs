//! Property-based tests for the interval substrate.
//!
//! These pin down the algebraic laws the fusion and attack layers rely on:
//! intersection/hull lattice laws, closed-interval overlap semantics, and
//! agreement between the sweep-line kernel and the full coverage map.

use arsf_interval::coverage::{k_covered_span, CoverageMap};
use arsf_interval::ops::{all_pairwise_intersect, hull_all, intersection_all, two_widest_sum};
use arsf_interval::{Interval, Scalar};
use proptest::prelude::*;

/// Strategy: a finite, reasonably-sized interval on an integer grid
/// (exact arithmetic keeps the oracle comparisons trivial).
fn grid_interval() -> impl Strategy<Value = Interval<i64>> {
    (-100_i64..100, 0_i64..50)
        .prop_map(|(lo, w)| Interval::new(lo, lo + w).expect("constructed ordered"))
}

fn grid_intervals(max: usize) -> impl Strategy<Value = Vec<Interval<i64>>> {
    prop::collection::vec(grid_interval(), 1..=max)
}

/// Oracle: coverage of point x by brute force.
fn coverage_brute(intervals: &[Interval<i64>], x: i64) -> usize {
    intervals.iter().filter(|s| s.contains(x)).count()
}

/// Oracle: k-covered span by scanning every grid point.
fn k_span_brute(intervals: &[Interval<i64>], k: usize) -> Option<Interval<i64>> {
    if k == 0 {
        return None;
    }
    let lo = intervals.iter().map(|s| s.lo()).min()?;
    let hi = intervals.iter().map(|s| s.hi()).max()?;
    let mut first = None;
    let mut last = None;
    // Integer endpoints mean coverage can only change at integers, so a
    // unit-step scan visits every breakpoint.
    let mut x = lo;
    while x <= hi {
        if coverage_brute(intervals, x) >= k {
            if first.is_none() {
                first = Some(x);
            }
            last = Some(x);
        }
        x += 1;
    }
    match (first, last) {
        (Some(a), Some(b)) => Some(Interval::new(a, b).unwrap()),
        _ => None,
    }
}

proptest! {
    #[test]
    fn intersection_is_commutative(a in grid_interval(), b in grid_interval()) {
        prop_assert_eq!(a.intersection(&b), b.intersection(&a));
    }

    #[test]
    fn hull_is_commutative_and_contains_both(a in grid_interval(), b in grid_interval()) {
        let h = a.hull(&b);
        prop_assert_eq!(h, b.hull(&a));
        prop_assert!(h.contains_interval(&a));
        prop_assert!(h.contains_interval(&b));
    }

    #[test]
    fn intersection_subset_of_operands(a in grid_interval(), b in grid_interval()) {
        if let Some(i) = a.intersection(&b) {
            prop_assert!(a.contains_interval(&i));
            prop_assert!(b.contains_interval(&i));
            prop_assert!(a.intersects(&b));
        } else {
            prop_assert!(!a.intersects(&b));
        }
    }

    #[test]
    fn hull_absorbs_intersection(a in grid_interval(), b in grid_interval()) {
        // Lattice absorption: a ⊆ hull(a, a∩b ...) trivial; here check
        // intersection ⊆ hull.
        if let Some(i) = a.intersection(&b) {
            prop_assert!(a.hull(&b).contains_interval(&i));
        }
    }

    #[test]
    fn translate_preserves_width(a in grid_interval(), d in -50_i64..50) {
        let t = a.translate(d).unwrap();
        prop_assert_eq!(t.width(), a.width());
        prop_assert_eq!(t.lo(), a.lo() + d);
    }

    #[test]
    fn recenter_moves_midpoint(a in grid_interval(), c in -50_i64..50) {
        let r = a.recenter(c).unwrap();
        prop_assert_eq!(r.width(), a.width());
        // Integer midpoint rounds down, so allow off-by-one-half slack.
        prop_assert!((r.midpoint() - c).abs() <= 1);
    }

    #[test]
    fn contains_matches_clamp(a in grid_interval(), x in -200_i64..200) {
        prop_assert_eq!(a.contains(x), a.clamp_point(x) == x);
    }

    #[test]
    fn intersection_all_is_contained_in_every_input(xs in grid_intervals(8)) {
        if let Some(common) = intersection_all(&xs) {
            for s in &xs {
                prop_assert!(s.contains_interval(&common));
            }
        }
    }

    #[test]
    fn hull_all_contains_every_input(xs in grid_intervals(8)) {
        let h = hull_all(&xs).unwrap();
        for s in &xs {
            prop_assert!(h.contains_interval(s));
        }
    }

    #[test]
    fn helly_property_in_one_dimension(xs in grid_intervals(8)) {
        // In 1-D, pairwise intersection <=> non-empty common intersection.
        let pairwise = xs.iter().enumerate().all(|(i, a)| {
            xs.iter().skip(i + 1).all(|b| a.intersects(b))
        });
        prop_assert_eq!(pairwise, all_pairwise_intersect(&xs));
        prop_assert_eq!(pairwise, intersection_all(&xs).is_some());
    }

    #[test]
    fn sweep_agrees_with_bruteforce(xs in grid_intervals(8), k in 1_usize..10) {
        prop_assert_eq!(k_covered_span(&xs, k), k_span_brute(&xs, k));
    }

    #[test]
    fn coverage_map_agrees_with_bruteforce(xs in grid_intervals(8), x in -120_i64..120) {
        let map = CoverageMap::build(&xs);
        prop_assert_eq!(map.coverage_at(x), coverage_brute(&xs, x));
    }

    #[test]
    fn coverage_map_span_agrees_with_sweep(xs in grid_intervals(8), k in 1_usize..10) {
        let map = CoverageMap::build(&xs);
        prop_assert_eq!(map.span_at_least(k), k_covered_span(&xs, k));
    }

    #[test]
    fn k_span_is_monotone_decreasing_in_k(xs in grid_intervals(8)) {
        // Higher k demands more agreement, so the span can only shrink.
        for k in 1..xs.len() {
            let wider = k_covered_span(&xs, k);
            let narrower = k_covered_span(&xs, k + 1);
            if let Some(narrow) = narrower {
                let wide = wider.expect("span at k exists if k+1 does");
                prop_assert!(wide.contains_interval(&narrow));
            }
        }
    }

    #[test]
    fn regions_union_has_expected_coverage(xs in grid_intervals(6), k in 1_usize..7) {
        let map = CoverageMap::build(&xs);
        let regions = map.regions_at_least(k);
        // Every region point has coverage >= k (check endpoints and mids).
        for r in &regions {
            prop_assert!(coverage_brute(&xs, r.lo()) >= k);
            prop_assert!(coverage_brute(&xs, r.hi()) >= k);
            prop_assert!(coverage_brute(&xs, r.midpoint()) >= k);
        }
        // Regions are disjoint and sorted.
        for w in regions.windows(2) {
            prop_assert!(w[0].hi() < w[1].lo());
        }
        // The hull of the regions equals the k-covered span.
        let span = k_covered_span(&xs, k);
        let hull = hull_all(&regions);
        prop_assert_eq!(span, hull);
    }

    #[test]
    fn two_widest_sum_bounds_any_pairwise_hull_width(xs in grid_intervals(8)) {
        prop_assume!(xs.len() >= 2);
        let bound = two_widest_sum(&xs).unwrap();
        // For any two *intersecting* intervals, their hull width is at most
        // the sum of the two largest widths.
        for (i, a) in xs.iter().enumerate() {
            for b in xs.iter().skip(i + 1) {
                if a.intersects(b) {
                    prop_assert!(a.hull(b).width() <= bound);
                }
            }
        }
    }

    #[test]
    fn float_and_integer_sweeps_agree(xs in grid_intervals(8), k in 1_usize..10) {
        let floats: Vec<Interval<f64>> = xs
            .iter()
            .map(|s| Interval::new(s.lo().to_f64(), s.hi().to_f64()).unwrap())
            .collect();
        let int_span = k_covered_span(&xs, k);
        let float_span = k_covered_span(&floats, k);
        match (int_span, float_span) {
            (Some(a), Some(b)) => {
                prop_assert_eq!(a.lo().to_f64(), b.lo());
                prop_assert_eq!(a.hi().to_f64(), b.hi());
            }
            (None, None) => {}
            (a, b) => prop_assert!(false, "mismatch: {:?} vs {:?}", a, b),
        }
    }
}
