//! Sweep-line *k*-coverage kernel.
//!
//! The heart of Marzullo's fusion algorithm is a purely geometric question:
//! *which points of the real line are covered by at least `k` of the `n`
//! given closed intervals?* The fusion interval for `f` assumed faults is
//! the span from the smallest to the largest point covered by at least
//! `n - f` intervals.
//!
//! This module provides two implementations:
//!
//! * [`k_covered_span`] — a single `O(n log n)` endpoint sweep that answers
//!   the span question directly; this is what the fusion crate calls in
//!   production,
//! * [`CoverageMap`] — a full piecewise-constant coverage profile, used by
//!   the naive reference fuser, the attacker's optimisers and the test
//!   suite to cross-validate the sweep.

use crate::{Interval, Scalar};

/// The span (convex hull) of all points covered by at least `k` of the
/// given closed intervals, or `None` when no point reaches coverage `k`.
///
/// Ties at shared endpoints are handled with closed-interval semantics: a
/// point where one interval ends and another begins is covered by both.
///
/// `k == 0` is rejected (`None`): every point of the real line is trivially
/// covered by zero intervals, so the span would be unbounded.
///
/// # Example
///
/// ```
/// use arsf_interval::{coverage::k_covered_span, Interval};
///
/// # fn main() -> Result<(), arsf_interval::IntervalError> {
/// let xs = [
///     Interval::new(0.0, 4.0)?,
///     Interval::new(2.0, 6.0)?,
///     Interval::new(5.0, 9.0)?,
/// ];
/// // Points in >= 2 intervals: [2,4] ∪ [5,6]; the span is [2,6].
/// assert_eq!(k_covered_span(&xs, 2), Some(Interval::new(2.0, 6.0)?));
/// // No point lies in all three.
/// assert_eq!(k_covered_span(&xs, 3), None);
/// # Ok(())
/// # }
/// ```
pub fn k_covered_span<T: Scalar>(intervals: &[Interval<T>], k: usize) -> Option<Interval<T>> {
    if k == 0 || k > intervals.len() {
        return None;
    }
    // Events: +1 at lo, -1 at hi. At equal coordinates the +1 events are
    // processed first so that touching closed intervals count as
    // overlapping at the shared point.
    let mut events: Vec<(T, i8)> = Vec::with_capacity(intervals.len() * 2);
    for s in intervals {
        events.push((s.lo(), 1));
        events.push((s.hi(), -1));
    }
    events.sort_unstable_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .expect("interval endpoints are finite by construction")
            .then(b.1.cmp(&a.1)) // +1 before -1 at equal coordinates
    });

    let mut count: usize = 0;
    let mut lo: Option<T> = None;
    let mut hi: Option<T> = None;
    for (x, delta) in events {
        if delta == 1 {
            count += 1;
            if count >= k && lo.is_none() {
                lo = Some(x);
            }
        } else {
            if count >= k && count - 1 < k {
                // Coverage drops below k just after x; x itself is still
                // covered by k intervals (closed upper endpoint).
                hi = Some(x);
            }
            count -= 1;
        }
    }
    match (lo, hi) {
        (Some(lo), Some(hi)) => {
            Some(Interval::new(lo, hi).expect("sweep produces ordered endpoints"))
        }
        _ => None,
    }
}

/// A piecewise-constant profile of how many intervals cover each point.
///
/// The profile distinguishes coverage *at* breakpoints from coverage on the
/// *open segments* between them, which matters for closed intervals: at a
/// point where one interval ends and the next begins, the point coverage
/// exceeds both neighbouring segment coverages.
///
/// # Example
///
/// ```
/// use arsf_interval::{coverage::CoverageMap, Interval};
///
/// # fn main() -> Result<(), arsf_interval::IntervalError> {
/// let xs = [Interval::new(0.0, 1.0)?, Interval::new(1.0, 2.0)?];
/// let map = CoverageMap::build(&xs);
/// assert_eq!(map.coverage_at(1.0), 2); // both intervals touch x = 1
/// assert_eq!(map.coverage_at(0.5), 1);
/// assert_eq!(map.coverage_at(7.0), 0);
/// assert_eq!(map.max_coverage(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageMap<T> {
    /// Sorted, de-duplicated interval endpoints.
    points: Vec<T>,
    /// `point_cov[i]` = number of intervals containing `points[i]`.
    point_cov: Vec<usize>,
    /// `seg_cov[i]` = number of intervals containing the open segment
    /// `(points[i], points[i + 1])`; has length `points.len() - 1` (or 0).
    seg_cov: Vec<usize>,
}

impl<T: Scalar> CoverageMap<T> {
    /// Builds the coverage profile of the given intervals in
    /// `O(n log n)` time.
    pub fn build(intervals: &[Interval<T>]) -> Self {
        let mut points: Vec<T> = Vec::with_capacity(intervals.len() * 2);
        for s in intervals {
            points.push(s.lo());
            points.push(s.hi());
        }
        points.sort_unstable_by(|a, b| {
            a.partial_cmp(b)
                .expect("interval endpoints are finite by construction")
        });
        points.dedup_by(|a, b| a == b);

        let m = points.len();
        let mut point_diff = vec![0_isize; m + 1];
        let mut seg_diff = vec![0_isize; m + 1];
        for s in intervals {
            let il = index_of(&points, s.lo());
            let ih = index_of(&points, s.hi());
            point_diff[il] += 1;
            point_diff[ih + 1] -= 1;
            // The interval covers open segments il .. ih-1 (between its own
            // endpoints); degenerate intervals cover no segment.
            if ih > il {
                seg_diff[il] += 1;
                seg_diff[ih] -= 1;
            }
        }

        let point_cov = prefix_counts(&point_diff, m);
        let seg_cov = prefix_counts(&seg_diff, m.saturating_sub(1));
        Self {
            points,
            point_cov,
            seg_cov,
        }
    }

    /// The number of intervals covering the point `x`.
    pub fn coverage_at(&self, x: T) -> usize {
        // `pos` is the first index with points[pos] >= x.
        let pos = self.points.partition_point(|p| *p < x);
        if pos < self.points.len() && self.points[pos] == x {
            return self.point_cov[pos];
        }
        if pos == 0 || pos >= self.points.len() {
            // Outside the hull of all endpoints.
            return 0;
        }
        self.seg_cov[pos - 1]
    }

    /// The maximum coverage attained anywhere (0 for an empty profile).
    pub fn max_coverage(&self) -> usize {
        self.point_cov.iter().copied().max().unwrap_or(0)
    }

    /// The span from the first to the last point with coverage at least
    /// `k`, or `None` when coverage never reaches `k` (or `k == 0`).
    ///
    /// Agrees with [`k_covered_span`]; the sweep version is cheaper when
    /// only the span is needed.
    pub fn span_at_least(&self, k: usize) -> Option<Interval<T>> {
        if k == 0 {
            return None;
        }
        let first = self.point_cov.iter().position(|&c| c >= k)?;
        let last = self.point_cov.iter().rposition(|&c| c >= k)?;
        Some(
            Interval::new(self.points[first], self.points[last])
                .expect("points are sorted, so first <= last"),
        )
    }

    /// The breakpoints of the profile (sorted, de-duplicated endpoints).
    pub fn breakpoints(&self) -> &[T] {
        &self.points
    }

    /// Coverage at each breakpoint, parallel to
    /// [`CoverageMap::breakpoints`].
    pub fn point_coverages(&self) -> &[usize] {
        &self.point_cov
    }

    /// Coverage of each *open* segment between consecutive breakpoints;
    /// entry `i` covers `(breakpoints[i], breakpoints[i + 1])` and the
    /// slice is one shorter than [`CoverageMap::breakpoints`].
    ///
    /// Exact even on integer grids where a unit-width segment has no
    /// representable interior point to probe with
    /// [`CoverageMap::coverage_at`].
    pub fn segment_coverages(&self) -> &[usize] {
        &self.seg_cov
    }

    /// The maximal closed sub-intervals on which coverage is at least `k`,
    /// in increasing order.
    ///
    /// Unlike [`CoverageMap::span_at_least`], which returns the convex hull
    /// of the `≥ k` region, this exposes the (possibly disconnected) region
    /// itself. Used by the attacker's optimisers to reason about where
    /// forged intervals can extend the fusion interval.
    ///
    /// # Example
    ///
    /// ```
    /// use arsf_interval::{coverage::CoverageMap, Interval};
    ///
    /// # fn main() -> Result<(), arsf_interval::IntervalError> {
    /// let xs = [
    ///     Interval::new(0.0, 2.0)?,
    ///     Interval::new(1.0, 2.0)?,
    ///     Interval::new(4.0, 6.0)?,
    ///     Interval::new(5.0, 6.0)?,
    /// ];
    /// let map = CoverageMap::build(&xs);
    /// let regions = map.regions_at_least(2);
    /// assert_eq!(
    ///     regions,
    ///     vec![Interval::new(1.0, 2.0)?, Interval::new(5.0, 6.0)?]
    /// );
    /// # Ok(())
    /// # }
    /// ```
    pub fn regions_at_least(&self, k: usize) -> Vec<Interval<T>> {
        if k == 0 {
            return Vec::new();
        }
        let mut regions: Vec<Interval<T>> = Vec::new();
        let mut open: Option<T> = None; // start of the current >= k run
        for i in 0..self.points.len() {
            let point_ok = self.point_cov[i] >= k;
            if point_ok && open.is_none() {
                open = Some(self.points[i]);
            }
            // The run ends at this breakpoint when the following open
            // segment (if any) falls below k, or the profile ends.
            let seg_ok = i < self.seg_cov.len() && self.seg_cov[i] >= k;
            if let Some(start) = open {
                if !seg_ok {
                    if point_ok {
                        regions.push(
                            Interval::new(start, self.points[i])
                                .expect("run endpoints are ordered"),
                        );
                    }
                    open = None;
                }
            }
        }
        regions
    }
}

fn index_of<T: Scalar>(points: &[T], x: T) -> usize {
    let pos = points.partition_point(|p| *p < x);
    debug_assert!(
        pos < points.len() && points[pos] == x,
        "endpoint must be present in the breakpoint list"
    );
    pos
}

fn prefix_counts(diff: &[isize], len: usize) -> Vec<usize> {
    let mut out = Vec::with_capacity(len);
    let mut acc: isize = 0;
    for d in diff.iter().take(len) {
        acc += d;
        debug_assert!(acc >= 0, "coverage count went negative");
        out.push(acc as usize);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(lo: f64, hi: f64) -> Interval<f64> {
        Interval::new(lo, hi).unwrap()
    }

    #[test]
    fn span_rejects_k_zero_and_k_too_large() {
        let xs = [iv(0.0, 1.0)];
        assert_eq!(k_covered_span(&xs, 0), None);
        assert_eq!(k_covered_span(&xs, 2), None);
        assert_eq!(k_covered_span::<f64>(&[], 1), None);
    }

    #[test]
    fn span_k1_is_hull() {
        let xs = [iv(0.0, 1.0), iv(5.0, 6.0), iv(2.0, 3.0)];
        assert_eq!(k_covered_span(&xs, 1), Some(iv(0.0, 6.0)));
    }

    #[test]
    fn span_kn_is_common_intersection_when_nonempty() {
        let xs = [iv(0.0, 3.0), iv(1.0, 4.0), iv(2.0, 5.0)];
        assert_eq!(k_covered_span(&xs, 3), Some(iv(2.0, 3.0)));
    }

    #[test]
    fn touching_endpoints_count_as_double_coverage() {
        let xs = [iv(0.0, 1.0), iv(1.0, 2.0)];
        assert_eq!(k_covered_span(&xs, 2), Some(iv(1.0, 1.0)));
    }

    #[test]
    fn disconnected_coverage_region_yields_spanning_hull() {
        let xs = [iv(0.0, 2.0), iv(1.0, 2.0), iv(4.0, 6.0), iv(5.0, 6.0)];
        // >= 2 region is [1,2] ∪ [5,6]; Marzullo takes the span.
        assert_eq!(k_covered_span(&xs, 2), Some(iv(1.0, 6.0)));
    }

    #[test]
    fn degenerate_intervals_participate() {
        let xs = [iv(1.0, 1.0), iv(0.0, 2.0)];
        assert_eq!(k_covered_span(&xs, 2), Some(iv(1.0, 1.0)));
    }

    #[test]
    fn integer_grid_sweep() {
        let xs = [
            Interval::new(0_i64, 4).unwrap(),
            Interval::new(2, 6).unwrap(),
            Interval::new(5, 9).unwrap(),
        ];
        assert_eq!(
            k_covered_span(&xs, 2),
            Some(Interval::new(2_i64, 6).unwrap())
        );
    }

    #[test]
    fn coverage_map_point_and_segment_queries() {
        let xs = [iv(0.0, 4.0), iv(2.0, 6.0), iv(5.0, 9.0)];
        let map = CoverageMap::build(&xs);
        assert_eq!(map.coverage_at(-1.0), 0);
        assert_eq!(map.coverage_at(0.0), 1);
        assert_eq!(map.coverage_at(3.0), 2);
        assert_eq!(map.coverage_at(4.0), 2);
        assert_eq!(map.coverage_at(4.5), 1);
        assert_eq!(map.coverage_at(5.0), 2);
        assert_eq!(map.coverage_at(9.0), 1);
        assert_eq!(map.coverage_at(9.5), 0);
        assert_eq!(map.max_coverage(), 2);
    }

    #[test]
    fn coverage_map_span_agrees_with_sweep() {
        let xs = [iv(0.0, 4.0), iv(2.0, 6.0), iv(5.0, 9.0), iv(3.0, 3.5)];
        let map = CoverageMap::build(&xs);
        for k in 0..=5 {
            assert_eq!(map.span_at_least(k), k_covered_span(&xs, k), "k = {k}");
        }
    }

    #[test]
    fn coverage_map_empty_profile() {
        let map = CoverageMap::<f64>::build(&[]);
        assert_eq!(map.max_coverage(), 0);
        assert_eq!(map.span_at_least(1), None);
        assert_eq!(map.coverage_at(0.0), 0);
        assert!(map.regions_at_least(1).is_empty());
    }

    #[test]
    fn regions_at_least_splits_disconnected_components() {
        let xs = [iv(0.0, 2.0), iv(1.0, 2.0), iv(4.0, 6.0), iv(5.0, 6.0)];
        let map = CoverageMap::build(&xs);
        assert_eq!(map.regions_at_least(2), vec![iv(1.0, 2.0), iv(5.0, 6.0)]);
        assert_eq!(map.regions_at_least(1), vec![iv(0.0, 2.0), iv(4.0, 6.0)]);
        assert!(map.regions_at_least(3).is_empty());
    }

    #[test]
    fn regions_at_least_handles_single_point_components() {
        let xs = [iv(0.0, 1.0), iv(1.0, 2.0)];
        let map = CoverageMap::build(&xs);
        assert_eq!(map.regions_at_least(2), vec![iv(1.0, 1.0)]);
    }

    #[test]
    fn coverage_with_duplicated_intervals() {
        let xs = [iv(0.0, 1.0); 4];
        let map = CoverageMap::build(&xs);
        assert_eq!(map.max_coverage(), 4);
        assert_eq!(k_covered_span(&xs, 4), Some(iv(0.0, 1.0)));
    }
}
