//! The closed-interval type.

use core::fmt;

use crate::{IntervalError, Scalar};

/// A non-empty closed interval `[lo, hi]` over a [`Scalar`] coordinate type.
///
/// `Interval` is the *abstract sensor* representation from Marzullo's
/// fault-tolerant sensor model: a correct sensor's interval is guaranteed to
/// contain the true value of the measured variable, and the width of the
/// interval encodes the sensor's precision (wider ⇒ less precise).
///
/// Invariants enforced at construction:
///
/// * both endpoints are finite ([`Scalar::is_finite_scalar`]),
/// * `lo <= hi` (degenerate point intervals are allowed, empty ones are not).
///
/// Because the invariant is established by [`Interval::new`], all other
/// operations are total and panic-free.
///
/// # Example
///
/// ```
/// use arsf_interval::Interval;
///
/// # fn main() -> Result<(), arsf_interval::IntervalError> {
/// let gps = Interval::centered(10.2, 0.5)?; // 10.2 mph ± 0.5 mph
/// let camera = Interval::centered(9.8, 1.0)?;
/// let agreed = gps.intersection(&camera).expect("both contain the truth");
/// assert_eq!(agreed, Interval::new(9.7, 10.7)?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Interval<T> {
    lo: T,
    hi: T,
}

impl<T: Scalar> Interval<T> {
    /// Creates the closed interval `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// Returns [`IntervalError::NonFinite`] if either endpoint is NaN or
    /// infinite, and [`IntervalError::Inverted`] if `lo > hi`.
    ///
    /// # Example
    ///
    /// ```
    /// use arsf_interval::Interval;
    ///
    /// # fn main() -> Result<(), arsf_interval::IntervalError> {
    /// let s = Interval::new(-1.0, 4.0)?;
    /// assert_eq!(s.width(), 5.0);
    /// # Ok(())
    /// # }
    /// ```
    pub fn new(lo: T, hi: T) -> Result<Self, IntervalError> {
        if !lo.is_finite_scalar() || !hi.is_finite_scalar() {
            return Err(IntervalError::NonFinite);
        }
        if lo > hi {
            return Err(IntervalError::Inverted);
        }
        Ok(Self { lo, hi })
    }

    /// Creates the degenerate interval `[point, point]`.
    ///
    /// # Errors
    ///
    /// Returns [`IntervalError::NonFinite`] if `point` is NaN or infinite.
    ///
    /// # Example
    ///
    /// ```
    /// use arsf_interval::Interval;
    ///
    /// let p = Interval::degenerate(3.0).unwrap();
    /// assert_eq!(p.width(), 0.0);
    /// assert!(p.contains(3.0));
    /// ```
    pub fn degenerate(point: T) -> Result<Self, IntervalError> {
        Self::new(point, point)
    }

    /// Creates the interval `[center - radius, center + radius]`.
    ///
    /// This is how the paper constructs an abstract-sensor interval from a
    /// raw measurement and the manufacturer's precision guarantee `δ`
    /// (radius), giving a width of `2δ`.
    ///
    /// # Errors
    ///
    /// Returns [`IntervalError::NegativeWidth`] if `radius < 0`, or
    /// [`IntervalError::NonFinite`] if the computed endpoints are not finite.
    ///
    /// # Example
    ///
    /// ```
    /// use arsf_interval::Interval;
    ///
    /// # fn main() -> Result<(), arsf_interval::IntervalError> {
    /// let encoder = Interval::centered(10.0, 0.1)?;
    /// assert_eq!(encoder.lo(), 9.9);
    /// assert_eq!(encoder.hi(), 10.1);
    /// # Ok(())
    /// # }
    /// ```
    pub fn centered(center: T, radius: T) -> Result<Self, IntervalError> {
        if radius < T::ZERO {
            return Err(IntervalError::NegativeWidth);
        }
        Self::new(center - radius, center + radius)
    }

    /// The lower endpoint.
    pub fn lo(&self) -> T {
        self.lo
    }

    /// The upper endpoint.
    pub fn hi(&self) -> T {
        self.hi
    }

    /// The width `hi - lo` (the paper's `|s|`). Zero for degenerate
    /// intervals.
    pub fn width(&self) -> T {
        self.hi - self.lo
    }

    /// The midpoint of the interval, the natural point estimate of a fused
    /// interval.
    ///
    /// For integer scalars the midpoint rounds towards negative infinity.
    ///
    /// # Example
    ///
    /// ```
    /// use arsf_interval::Interval;
    ///
    /// let s = Interval::new(2.0, 5.0).unwrap();
    /// assert_eq!(s.midpoint(), 3.5);
    /// ```
    pub fn midpoint(&self) -> T {
        self.lo + self.width().half()
    }

    /// Returns `true` if `point` lies inside the closed interval.
    pub fn contains(&self, point: T) -> bool {
        self.lo <= point && point <= self.hi
    }

    /// Returns `true` if `other` is entirely contained in `self`.
    ///
    /// # Example
    ///
    /// ```
    /// use arsf_interval::Interval;
    ///
    /// let outer = Interval::new(0, 10).unwrap();
    /// let inner = Interval::new(2, 5).unwrap();
    /// assert!(outer.contains_interval(&inner));
    /// assert!(!inner.contains_interval(&outer));
    /// ```
    pub fn contains_interval(&self, other: &Self) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    /// Returns `true` if the two closed intervals share at least one point.
    ///
    /// Touching endpoints count as intersecting — this matters for the
    /// attack model, where an attacker grazing the fusion interval at a
    /// single point still evades the overlap detector.
    pub fn intersects(&self, other: &Self) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }

    /// The intersection of two intervals, or `None` when they are disjoint.
    ///
    /// # Example
    ///
    /// ```
    /// use arsf_interval::Interval;
    ///
    /// let a = Interval::new(0.0, 2.0).unwrap();
    /// let b = Interval::new(1.0, 3.0).unwrap();
    /// assert_eq!(a.intersection(&b), Some(Interval::new(1.0, 2.0).unwrap()));
    /// let c = Interval::new(5.0, 6.0).unwrap();
    /// assert_eq!(a.intersection(&c), None);
    /// ```
    pub fn intersection(&self, other: &Self) -> Option<Self> {
        if !self.intersects(other) {
            return None;
        }
        Some(Self {
            lo: self.lo.max_scalar(other.lo),
            hi: self.hi.min_scalar(other.hi),
        })
    }

    /// The convex hull (smallest interval containing both inputs).
    ///
    /// # Example
    ///
    /// ```
    /// use arsf_interval::Interval;
    ///
    /// let a = Interval::new(0.0, 1.0).unwrap();
    /// let b = Interval::new(4.0, 5.0).unwrap();
    /// assert_eq!(a.hull(&b), Interval::new(0.0, 5.0).unwrap());
    /// ```
    pub fn hull(&self, other: &Self) -> Self {
        Self {
            lo: self.lo.min_scalar(other.lo),
            hi: self.hi.max_scalar(other.hi),
        }
    }

    /// The interval shifted by `delta` while keeping its width.
    ///
    /// # Errors
    ///
    /// Returns [`IntervalError::NonFinite`] if a shifted endpoint overflows
    /// to a non-finite float value. Integer overflow wraps in release mode
    /// like ordinary integer arithmetic; callers working near the integer
    /// boundaries should pre-validate.
    ///
    /// # Example
    ///
    /// ```
    /// use arsf_interval::Interval;
    ///
    /// # fn main() -> Result<(), arsf_interval::IntervalError> {
    /// let s = Interval::new(1.0, 2.0)?.translate(0.5)?;
    /// assert_eq!(s, Interval::new(1.5, 2.5)?);
    /// # Ok(())
    /// # }
    /// ```
    pub fn translate(self, delta: T) -> Result<Self, IntervalError> {
        Self::new(self.lo + delta, self.hi + delta)
    }

    /// Re-centers the interval at `center`, keeping its width.
    ///
    /// This is the basic move available to the paper's attacker: she cannot
    /// change the width of a compromised sensor's interval (widths are fixed
    /// by the sensor's published precision) but may slide it along the axis.
    ///
    /// # Errors
    ///
    /// Returns [`IntervalError::NonFinite`] if the resulting endpoints are
    /// not finite.
    ///
    /// # Example
    ///
    /// ```
    /// use arsf_interval::Interval;
    ///
    /// # fn main() -> Result<(), arsf_interval::IntervalError> {
    /// let s = Interval::new(0.0, 4.0)?.recenter(10.0)?;
    /// assert_eq!(s, Interval::new(8.0, 12.0)?);
    /// # Ok(())
    /// # }
    /// ```
    pub fn recenter(self, center: T) -> Result<Self, IntervalError> {
        self.translate(center - self.midpoint())
    }

    /// The point of `self` closest to `point` (i.e. `point` clamped to the
    /// interval).
    ///
    /// # Example
    ///
    /// ```
    /// use arsf_interval::Interval;
    ///
    /// let s = Interval::new(0.0, 1.0).unwrap();
    /// assert_eq!(s.clamp_point(7.0), 1.0);
    /// assert_eq!(s.clamp_point(0.5), 0.5);
    /// ```
    pub fn clamp_point(&self, point: T) -> T {
        point.max_scalar(self.lo).min_scalar(self.hi)
    }

    /// Lossy conversion of the endpoints to `f64`, used for rendering and
    /// statistics.
    pub fn to_f64_interval(&self) -> Interval<f64> {
        Interval {
            lo: self.lo.to_f64(),
            hi: self.hi.to_f64(),
        }
    }
}

impl<T: Scalar + fmt::Display> fmt::Display for Interval<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(lo: f64, hi: f64) -> Interval<f64> {
        Interval::new(lo, hi).unwrap()
    }

    #[test]
    fn new_validates_ordering() {
        assert!(Interval::new(1.0, 0.0).is_err());
        assert!(Interval::new(0.0, 0.0).is_ok());
        assert!(Interval::new(0.0, 1.0).is_ok());
    }

    #[test]
    fn new_validates_finiteness() {
        assert_eq!(
            Interval::new(f64::NAN, 1.0).unwrap_err(),
            IntervalError::NonFinite
        );
        assert_eq!(
            Interval::new(0.0, f64::INFINITY).unwrap_err(),
            IntervalError::NonFinite
        );
    }

    #[test]
    fn centered_rejects_negative_radius() {
        assert_eq!(
            Interval::centered(0.0, -1.0).unwrap_err(),
            IntervalError::NegativeWidth
        );
    }

    #[test]
    fn centered_has_expected_width() {
        let s = Interval::centered(10.0, 0.5).unwrap();
        assert_eq!(s.width(), 1.0);
        assert_eq!(s.midpoint(), 10.0);
    }

    #[test]
    fn contains_is_closed() {
        let s = iv(1.0, 2.0);
        assert!(s.contains(1.0));
        assert!(s.contains(2.0));
        assert!(s.contains(1.5));
        assert!(!s.contains(0.999));
        assert!(!s.contains(2.001));
    }

    #[test]
    fn intersects_counts_touching_endpoints() {
        assert!(iv(0.0, 1.0).intersects(&iv(1.0, 2.0)));
        assert!(!iv(0.0, 1.0).intersects(&iv(1.0001, 2.0)));
        // Symmetric.
        assert!(iv(1.0, 2.0).intersects(&iv(0.0, 1.0)));
    }

    #[test]
    fn intersection_of_touching_intervals_is_degenerate() {
        let p = iv(0.0, 1.0).intersection(&iv(1.0, 2.0)).unwrap();
        assert_eq!(p.width(), 0.0);
        assert_eq!(p.lo(), 1.0);
    }

    #[test]
    fn intersection_of_nested_intervals_is_inner() {
        let outer = iv(0.0, 10.0);
        let inner = iv(3.0, 4.0);
        assert_eq!(outer.intersection(&inner), Some(inner));
        assert_eq!(inner.intersection(&outer), Some(inner));
    }

    #[test]
    fn hull_spans_gaps() {
        assert_eq!(iv(0.0, 1.0).hull(&iv(3.0, 4.0)), iv(0.0, 4.0));
        assert_eq!(iv(3.0, 4.0).hull(&iv(0.0, 1.0)), iv(0.0, 4.0));
    }

    #[test]
    fn translate_and_recenter_preserve_width() {
        let s = iv(1.0, 4.0);
        assert_eq!(s.translate(2.0).unwrap(), iv(3.0, 6.0));
        let r = s.recenter(0.0).unwrap();
        assert_eq!(r.width(), s.width());
        assert_eq!(r.midpoint(), 0.0);
    }

    #[test]
    fn clamp_point_projects_onto_interval() {
        let s = iv(-1.0, 1.0);
        assert_eq!(s.clamp_point(-5.0), -1.0);
        assert_eq!(s.clamp_point(5.0), 1.0);
        assert_eq!(s.clamp_point(0.25), 0.25);
    }

    #[test]
    fn integer_intervals_work() {
        let s = Interval::new(-3_i64, 5).unwrap();
        assert_eq!(s.width(), 8);
        assert_eq!(s.midpoint(), 1);
        assert!(s.contains(5));
        assert!(!s.contains(6));
    }

    #[test]
    fn integer_midpoint_rounds_down() {
        let s = Interval::new(0_i64, 3).unwrap();
        assert_eq!(s.midpoint(), 1);
        let neg = Interval::new(-3_i64, 0).unwrap();
        assert_eq!(neg.midpoint(), -2);
    }

    #[test]
    fn display_formats_as_pair() {
        assert_eq!(iv(1.0, 2.5).to_string(), "[1, 2.5]");
        assert_eq!(Interval::new(1_i64, 2).unwrap().to_string(), "[1, 2]");
    }

    #[test]
    fn to_f64_interval_preserves_endpoints() {
        let s = Interval::new(-2_i32, 7).unwrap().to_f64_interval();
        assert_eq!(s.lo(), -2.0);
        assert_eq!(s.hi(), 7.0);
    }

    #[test]
    fn interval_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Interval<f64>>();
        assert_send_sync::<Interval<i64>>();
    }
}
