//! Slice-level operations over collections of intervals.
//!
//! These free functions operate on `&[Interval<T>]` and implement the
//! set-level primitives the fusion and attack layers are built from:
//! common intersection (the paper's `S_{C,0}` and `Δ`), convex hull
//! (`S_{N,n-1}`), and pairwise-overlap checks (any two *correct* intervals
//! must intersect because both contain the true value).

use crate::{Interval, Scalar};

/// The intersection of all intervals in `intervals`, or `None` when the
/// slice is empty or the common intersection is empty.
///
/// In the paper's notation this is `S_{C,0}` when applied to the correct
/// intervals, and `Δ` when applied to the correct readings of the
/// compromised sensors.
///
/// # Example
///
/// ```
/// use arsf_interval::{ops::intersection_all, Interval};
///
/// # fn main() -> Result<(), arsf_interval::IntervalError> {
/// let xs = [
///     Interval::new(0.0, 3.0)?,
///     Interval::new(1.0, 4.0)?,
///     Interval::new(2.0, 5.0)?,
/// ];
/// assert_eq!(intersection_all(&xs), Some(Interval::new(2.0, 3.0)?));
/// # Ok(())
/// # }
/// ```
pub fn intersection_all<T: Scalar>(intervals: &[Interval<T>]) -> Option<Interval<T>> {
    let (first, rest) = intervals.split_first()?;
    rest.iter()
        .try_fold(*first, |acc, next| acc.intersection(next))
}

/// The convex hull of all intervals in `intervals`, or `None` when the
/// slice is empty.
///
/// This equals Marzullo fusion with `f = n - 1` (every point covered by at
/// least one interval is admissible).
///
/// # Example
///
/// ```
/// use arsf_interval::{ops::hull_all, Interval};
///
/// # fn main() -> Result<(), arsf_interval::IntervalError> {
/// let xs = [Interval::new(0.0, 1.0)?, Interval::new(9.0, 10.0)?];
/// assert_eq!(hull_all(&xs), Some(Interval::new(0.0, 10.0)?));
/// # Ok(())
/// # }
/// ```
pub fn hull_all<T: Scalar>(intervals: &[Interval<T>]) -> Option<Interval<T>> {
    let (first, rest) = intervals.split_first()?;
    Some(rest.iter().fold(*first, |acc, next| acc.hull(next)))
}

/// Returns `true` when every pair of intervals in the slice intersects.
///
/// All *correct* sensors satisfy this (each contains the true value), so a
/// violation proves that at least one sensor in the slice is faulty or
/// compromised. Runs in `O(n log n)` by checking the equivalent condition
/// `max(lo) <= min(hi)`-per-overlap via a sort-free scan: pairwise
/// intersection of closed 1-D intervals holds iff the largest lower bound
/// is at most the smallest upper bound.
///
/// # Example
///
/// ```
/// use arsf_interval::{ops::all_pairwise_intersect, Interval};
///
/// # fn main() -> Result<(), arsf_interval::IntervalError> {
/// let consistent = [Interval::new(0.0, 2.0)?, Interval::new(1.0, 3.0)?];
/// assert!(all_pairwise_intersect(&consistent));
/// let inconsistent = [Interval::new(0.0, 1.0)?, Interval::new(2.0, 3.0)?];
/// assert!(!all_pairwise_intersect(&inconsistent));
/// # Ok(())
/// # }
/// ```
pub fn all_pairwise_intersect<T: Scalar>(intervals: &[Interval<T>]) -> bool {
    match intersection_all(intervals) {
        Some(_) => true,
        // For 1-D closed intervals, Helly's theorem (d = 1) says pairwise
        // intersection implies a common point, so an empty common
        // intersection certifies some disjoint pair.
        None => intervals.is_empty(),
    }
}

/// Indices of intervals in `candidates` that do **not** intersect
/// `reference`.
///
/// This is the paper's detection rule: any transmitted interval disjoint
/// from the fusion interval is flagged as compromised.
///
/// # Example
///
/// ```
/// use arsf_interval::{ops::disjoint_indices, Interval};
///
/// # fn main() -> Result<(), arsf_interval::IntervalError> {
/// let fused = Interval::new(0.0, 1.0)?;
/// let sensors = [
///     Interval::new(0.5, 2.0)?,  // overlaps
///     Interval::new(3.0, 4.0)?,  // disjoint -> flagged
/// ];
/// assert_eq!(disjoint_indices(&sensors, &fused), vec![1]);
/// # Ok(())
/// # }
/// ```
pub fn disjoint_indices<T: Scalar>(
    candidates: &[Interval<T>],
    reference: &Interval<T>,
) -> Vec<usize> {
    candidates
        .iter()
        .enumerate()
        .filter(|(_, s)| !s.intersects(reference))
        .map(|(i, _)| i)
        .collect()
}

/// The widths of all intervals, in slice order.
///
/// # Example
///
/// ```
/// use arsf_interval::{ops::widths, Interval};
///
/// # fn main() -> Result<(), arsf_interval::IntervalError> {
/// let xs = [Interval::new(0.0, 5.0)?, Interval::new(1.0, 2.0)?];
/// assert_eq!(widths(&xs), vec![5.0, 1.0]);
/// # Ok(())
/// # }
/// ```
pub fn widths<T: Scalar>(intervals: &[Interval<T>]) -> Vec<T> {
    intervals.iter().map(Interval::width).collect()
}

/// The sum of the two largest widths among `intervals`, or `None` when
/// fewer than two intervals are given.
///
/// Theorem 2 of the paper bounds the fusion interval width by this quantity
/// applied to the *correct* intervals.
///
/// # Example
///
/// ```
/// use arsf_interval::{ops::two_widest_sum, Interval};
///
/// # fn main() -> Result<(), arsf_interval::IntervalError> {
/// let xs = [
///     Interval::new(0.0, 1.0)?,
///     Interval::new(0.0, 5.0)?,
///     Interval::new(0.0, 3.0)?,
/// ];
/// assert_eq!(two_widest_sum(&xs), Some(8.0));
/// # Ok(())
/// # }
/// ```
pub fn two_widest_sum<T: Scalar>(intervals: &[Interval<T>]) -> Option<T> {
    if intervals.len() < 2 {
        return None;
    }
    let mut widest = T::ZERO;
    let mut second = T::ZERO;
    let mut seen_one = false;
    for s in intervals {
        let w = s.width();
        if !seen_one {
            widest = w;
            seen_one = true;
        } else if w > widest {
            second = widest;
            widest = w;
        } else if w > second || intervals.len() == 2 {
            second = second.max_scalar(w);
        }
    }
    Some(widest + second)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(lo: f64, hi: f64) -> Interval<f64> {
        Interval::new(lo, hi).unwrap()
    }

    #[test]
    fn intersection_all_empty_slice_is_none() {
        assert_eq!(intersection_all::<f64>(&[]), None);
    }

    #[test]
    fn intersection_all_single_is_identity() {
        let s = iv(1.0, 2.0);
        assert_eq!(intersection_all(&[s]), Some(s));
    }

    #[test]
    fn intersection_all_disjoint_is_none() {
        assert_eq!(intersection_all(&[iv(0.0, 1.0), iv(2.0, 3.0)]), None);
    }

    #[test]
    fn hull_all_empty_slice_is_none() {
        assert_eq!(hull_all::<f64>(&[]), None);
    }

    #[test]
    fn hull_all_is_order_independent() {
        let a = [iv(0.0, 1.0), iv(5.0, 6.0), iv(2.0, 3.0)];
        let b = [iv(5.0, 6.0), iv(2.0, 3.0), iv(0.0, 1.0)];
        assert_eq!(hull_all(&a), hull_all(&b));
        assert_eq!(hull_all(&a), Some(iv(0.0, 6.0)));
    }

    #[test]
    fn pairwise_intersect_empty_and_single_are_true() {
        assert!(all_pairwise_intersect::<f64>(&[]));
        assert!(all_pairwise_intersect(&[iv(0.0, 1.0)]));
    }

    #[test]
    fn pairwise_intersect_chain_without_common_point_is_false() {
        // a∩b ≠ ∅ and b∩c ≠ ∅ but a∩c = ∅; by Helly in 1-D,
        // all-pairwise-intersect must report false only when some PAIR is
        // disjoint — here (a, c) is disjoint, so false is correct.
        let a = iv(0.0, 1.0);
        let b = iv(0.9, 2.1);
        let c = iv(2.0, 3.0);
        assert!(!all_pairwise_intersect(&[a, b, c]));
    }

    #[test]
    fn disjoint_indices_flags_only_nonoverlapping() {
        let fused = iv(0.0, 2.0);
        let sensors = [iv(-1.0, 0.0), iv(2.0, 3.0), iv(5.0, 6.0), iv(1.0, 1.5)];
        // Touching endpoints intersect, so only index 2 is disjoint.
        assert_eq!(disjoint_indices(&sensors, &fused), vec![2]);
    }

    #[test]
    fn widths_preserves_order() {
        assert_eq!(widths(&[iv(0.0, 2.0), iv(1.0, 1.5)]), vec![2.0, 0.5]);
    }

    #[test]
    fn two_widest_sum_basic() {
        assert_eq!(two_widest_sum::<f64>(&[]), None);
        assert_eq!(two_widest_sum(&[iv(0.0, 1.0)]), None);
        assert_eq!(two_widest_sum(&[iv(0.0, 1.0), iv(0.0, 2.0)]), Some(3.0));
        assert_eq!(
            two_widest_sum(&[iv(0.0, 5.0), iv(0.0, 1.0), iv(0.0, 4.0)]),
            Some(9.0)
        );
    }

    #[test]
    fn two_widest_sum_with_duplicate_maxima() {
        assert_eq!(
            two_widest_sum(&[iv(0.0, 5.0), iv(10.0, 15.0), iv(0.0, 1.0)]),
            Some(10.0)
        );
    }

    #[test]
    fn two_widest_sum_all_equal() {
        assert_eq!(
            two_widest_sum(&[iv(0.0, 2.0), iv(1.0, 3.0), iv(2.0, 4.0)]),
            Some(4.0)
        );
    }
}
