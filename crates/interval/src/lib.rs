//! Closed-interval arithmetic and *k*-coverage primitives for
//! attack-resilient sensor fusion.
//!
//! This crate is the numeric substrate of the [DATE 2014 paper
//! *Attack-Resilient Sensor Fusion*][paper] reproduction. Every sensor
//! reading in that system is abstracted as a **closed real interval**
//! guaranteed (for a correct sensor) to contain the true value of the
//! measured physical variable. Everything the fusion layer, the attacker and
//! the detector do reduces to a handful of interval operations implemented
//! here:
//!
//! * [`Interval`] — a validated closed interval `[lo, hi]` generic over a
//!   [`Scalar`] coordinate type (`f64`, `f32`, `i64`, `i32`),
//! * slice-level operations ([`ops`]) — common intersection, convex hull,
//!   pairwise-overlap checks,
//! * the sweep-line *k*-coverage kernel ([`coverage`]) — the smallest and
//!   largest points contained in at least `k` of `n` intervals, which is
//!   exactly the primitive behind Marzullo's fusion algorithm,
//! * ASCII diagram rendering ([`render`]) used to regenerate the paper's
//!   interval figures in a terminal.
//!
//! # Example
//!
//! Three sensors measure the same speed; the middle of the pack is computed
//! as the span of points covered by at least two of them:
//!
//! ```
//! use arsf_interval::{coverage::k_covered_span, Interval};
//!
//! # fn main() -> Result<(), arsf_interval::IntervalError> {
//! let readings = [
//!     Interval::new(9.0, 11.0)?,
//!     Interval::new(9.5, 10.5)?,
//!     Interval::new(10.0, 12.0)?,
//! ];
//! let fused = k_covered_span(&readings, 2).expect("two readings overlap");
//! assert_eq!(fused, Interval::new(9.5, 11.0)?);
//! # Ok(())
//! # }
//! ```
//!
//! [paper]: https://doi.org/10.7873/DATE.2014.067

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coverage;
mod error;
mod interval;
pub mod ops;
pub mod render;
mod scalar;

pub use error::IntervalError;
pub use interval::Interval;
pub use scalar::Scalar;
