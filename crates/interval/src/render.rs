//! ASCII rendering of interval diagrams.
//!
//! The paper communicates most of its intuition through interval diagrams
//! (Figures 1–5): stacked horizontal bars for sensor intervals, sinusoid
//! bars for attacked sensors, and fusion intervals below a dashed
//! separator. This module reproduces those diagrams in plain text so the
//! `repro_fig*` binaries can regenerate every figure in a terminal.
//!
//! # Example
//!
//! ```
//! use arsf_interval::render::{Diagram, RowStyle};
//! use arsf_interval::Interval;
//!
//! # fn main() -> Result<(), arsf_interval::IntervalError> {
//! let mut d = Diagram::new();
//! d.row("s1", Interval::new(0.0, 4.0)?, RowStyle::Correct);
//! d.row("a1", Interval::new(3.0, 6.0)?, RowStyle::Attacked);
//! d.separator();
//! d.row("S", Interval::new(0.0, 6.0)?, RowStyle::Fusion);
//! let text = d.render(40);
//! assert!(text.contains("s1"));
//! assert!(text.contains('~')); // attacked intervals drawn as sinusoids
//! # Ok(())
//! # }
//! ```

use crate::{Interval, Scalar};

/// Visual style of a diagram row, mirroring the paper's figure language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RowStyle {
    /// A correct sensor interval: `|----------|`.
    Correct,
    /// An attacked (forged) interval, drawn as a sinusoid: `~~~~~~~~`.
    Attacked,
    /// A fusion interval: `#==========#`.
    Fusion,
    /// A single marked point (e.g. the true value): `*`.
    Marker,
}

/// One labelled row of a [`Diagram`].
#[derive(Debug, Clone, PartialEq)]
struct Row {
    label: String,
    interval: Interval<f64>,
    style: RowStyle,
}

/// Items laid out vertically: either an interval row or a separator line.
#[derive(Debug, Clone, PartialEq)]
enum Item {
    Row(Row),
    Separator,
}

/// A builder for multi-row interval diagrams rendered as ASCII art.
///
/// Rows are displayed in insertion order; [`Diagram::separator`] inserts the
/// dashed horizontal line the paper uses to divide sensor intervals from
/// fusion intervals. See the [module documentation](self) for an example.
#[derive(Debug, Clone, Default)]
pub struct Diagram {
    items: Vec<Item>,
}

impl Diagram {
    /// Creates an empty diagram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a labelled interval row. Non-`f64` scalars can be converted
    /// with [`Interval::to_f64_interval`] first.
    pub fn row<T: Scalar>(
        &mut self,
        label: impl Into<String>,
        interval: Interval<T>,
        style: RowStyle,
    ) -> &mut Self {
        self.items.push(Item::Row(Row {
            label: label.into(),
            interval: interval.to_f64_interval(),
            style,
        }));
        self
    }

    /// Appends a marked point (rendered as a one-character row).
    pub fn point(&mut self, label: impl Into<String>, x: f64) -> &mut Self {
        let interval = Interval::degenerate(x).expect("marker coordinate must be finite");
        self.items.push(Item::Row(Row {
            label: label.into(),
            interval,
            style: RowStyle::Marker,
        }));
        self
    }

    /// Appends the dashed separator between sensor and fusion rows.
    pub fn separator(&mut self) -> &mut Self {
        self.items.push(Item::Separator);
        self
    }

    /// Renders the diagram using `columns` characters for the coordinate
    /// axis (minimum 16; narrower requests are widened to 16).
    ///
    /// Returns an empty string for a diagram with no interval rows.
    pub fn render(&self, columns: usize) -> String {
        let columns = columns.max(16);
        let rows: Vec<&Row> = self
            .items
            .iter()
            .filter_map(|it| match it {
                Item::Row(r) => Some(r),
                Item::Separator => None,
            })
            .collect();
        if rows.is_empty() {
            return String::new();
        }

        let lo = rows
            .iter()
            .map(|r| r.interval.lo())
            .fold(f64::INFINITY, f64::min);
        let hi = rows
            .iter()
            .map(|r| r.interval.hi())
            .fold(f64::NEG_INFINITY, f64::max);
        let span = if hi > lo { hi - lo } else { 1.0 };
        let label_width = rows
            .iter()
            .map(|r| r.label.chars().count())
            .max()
            .unwrap_or(0);
        let scale = |x: f64| -> usize {
            let t = (x - lo) / span;
            ((t * (columns - 1) as f64).round() as usize).min(columns - 1)
        };

        let mut out = String::new();
        for item in &self.items {
            match item {
                Item::Separator => {
                    out.push_str(&" ".repeat(label_width + 2));
                    out.push_str(&"-".repeat(columns));
                    out.push('\n');
                }
                Item::Row(row) => {
                    let start = scale(row.interval.lo());
                    let end = scale(row.interval.hi());
                    let mut line = vec![' '; columns];
                    match row.style {
                        RowStyle::Marker => line[start] = '*',
                        RowStyle::Correct => draw_bar(&mut line, start, end, '-', '|'),
                        RowStyle::Attacked => draw_bar(&mut line, start, end, '~', '~'),
                        RowStyle::Fusion => draw_bar(&mut line, start, end, '=', '#'),
                    }
                    let padded = format!("{:>label_width$}", row.label);
                    out.push_str(&padded);
                    out.push_str(": ");
                    out.extend(line);
                    out.push('\n');
                }
            }
        }
        // Axis with endpoint annotations.
        out.push_str(&" ".repeat(label_width + 2));
        let lo_text = format_coord(lo);
        let hi_text = format_coord(hi);
        let pad = columns.saturating_sub(lo_text.len() + hi_text.len());
        out.push_str(&lo_text);
        out.push_str(&" ".repeat(pad));
        out.push_str(&hi_text);
        out.push('\n');
        out
    }
}

fn draw_bar(line: &mut [char], start: usize, end: usize, fill: char, cap: char) {
    if start == end {
        line[start] = cap;
        return;
    }
    for c in line.iter_mut().take(end + 1).skip(start) {
        *c = fill;
    }
    line[start] = cap;
    line[end] = cap;
}

fn format_coord(x: f64) -> String {
    if (x - x.round()).abs() < 1e-9 {
        format!("{}", x.round() as i64)
    } else {
        format!("{x:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(lo: f64, hi: f64) -> Interval<f64> {
        Interval::new(lo, hi).unwrap()
    }

    #[test]
    fn empty_diagram_renders_empty() {
        assert_eq!(Diagram::new().render(40), "");
        // A separator alone still counts as "no rows".
        let mut d = Diagram::new();
        d.separator();
        assert_eq!(d.render(40), "");
    }

    #[test]
    fn single_row_spans_full_width() {
        let mut d = Diagram::new();
        d.row("s", iv(0.0, 10.0), RowStyle::Correct);
        let text = d.render(20);
        let line = text.lines().next().unwrap();
        assert!(line.starts_with("s: |"));
        assert!(line.trim_end().ends_with('|'));
    }

    #[test]
    fn styles_use_distinct_glyphs() {
        let mut d = Diagram::new();
        d.row("c", iv(0.0, 10.0), RowStyle::Correct);
        d.row("a", iv(0.0, 10.0), RowStyle::Attacked);
        d.separator();
        d.row("f", iv(0.0, 10.0), RowStyle::Fusion);
        let text = d.render(24);
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].contains('-') && lines[0].contains('|'));
        assert!(lines[1].contains('~'));
        assert!(lines[2].chars().all(|c| c == '-' || c == ' '));
        assert!(lines[3].contains('=') && lines[3].contains('#'));
    }

    #[test]
    fn marker_renders_single_star() {
        let mut d = Diagram::new();
        d.row("s", iv(0.0, 10.0), RowStyle::Correct);
        d.point("v", 5.0);
        let text = d.render(21);
        let marker_line = text.lines().nth(1).unwrap();
        assert_eq!(marker_line.matches('*').count(), 1);
    }

    #[test]
    fn degenerate_interval_renders_single_cap() {
        let mut d = Diagram::new();
        d.row("wide", iv(0.0, 10.0), RowStyle::Correct);
        d.row("pt", iv(5.0, 5.0), RowStyle::Correct);
        let text = d.render(40);
        let pt_line = text.lines().nth(1).unwrap();
        assert_eq!(pt_line.matches('|').count(), 1);
    }

    #[test]
    fn axis_line_shows_bounds() {
        let mut d = Diagram::new();
        d.row("s", iv(-2.0, 7.5), RowStyle::Correct);
        let text = d.render(30);
        let axis = text.lines().last().unwrap();
        assert!(axis.contains("-2"));
        assert!(axis.contains("7.5"));
    }

    #[test]
    fn narrow_width_is_clamped() {
        let mut d = Diagram::new();
        d.row("s", iv(0.0, 1.0), RowStyle::Correct);
        // Must not panic even for absurdly small widths.
        let text = d.render(1);
        assert!(!text.is_empty());
    }

    #[test]
    fn labels_are_right_aligned() {
        let mut d = Diagram::new();
        d.row("long-label", iv(0.0, 1.0), RowStyle::Correct);
        d.row("s", iv(0.0, 1.0), RowStyle::Correct);
        let text = d.render(20);
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("long-label: "));
        assert!(lines[1].starts_with("         s: "));
    }
}
