//! The coordinate types intervals are defined over.

use core::fmt::Debug;
use core::ops::{Add, Sub};

/// A coordinate type usable as an interval endpoint.
///
/// The trait is deliberately small: intervals only ever need ordering,
/// addition/subtraction (widths, translations), halving (midpoints) and a
/// lossy view as `f64` for rendering and statistics. It is implemented for
/// `f64`, `f32`, `i64` and `i32`; sensor-facing code uses `f64`, while the
/// exhaustive-enumeration experiment engines use integer grids for exact
/// arithmetic.
///
/// This trait is not sealed — downstream code may implement it for a custom
/// fixed-point type — but implementations must uphold the documented
/// contract of each method (in particular, [`Scalar::is_finite_scalar`] must
/// reject values that break ordering, such as floating-point NaN).
///
/// # Example
///
/// ```
/// use arsf_interval::Scalar;
///
/// assert_eq!(7_i64.half(), 3);
/// assert_eq!(7.0_f64.half(), 3.5);
/// assert!(f64::NAN.is_finite_scalar() == false);
/// ```
pub trait Scalar:
    Copy + PartialOrd + PartialEq + Debug + Add<Output = Self> + Sub<Output = Self>
{
    /// The additive identity.
    const ZERO: Self;

    /// Returns `true` when the value participates in a total order with all
    /// other finite values (floating-point NaN and infinities return
    /// `false`; all integer values return `true`).
    fn is_finite_scalar(&self) -> bool;

    /// Half of the value, rounding towards negative infinity for integers.
    fn half(self) -> Self;

    /// Lossy conversion used only for rendering and summary statistics.
    fn to_f64(self) -> f64;

    /// The smaller of `self` and `other`.
    ///
    /// Unlike [`Ord::min`] this is available for float scalars; both
    /// arguments must be finite (checked by callers at interval-construction
    /// time).
    fn min_scalar(self, other: Self) -> Self {
        if other < self {
            other
        } else {
            self
        }
    }

    /// The larger of `self` and `other`.
    fn max_scalar(self, other: Self) -> Self {
        if other > self {
            other
        } else {
            self
        }
    }
}

impl Scalar for f64 {
    const ZERO: Self = 0.0;

    fn is_finite_scalar(&self) -> bool {
        self.is_finite()
    }

    fn half(self) -> Self {
        self * 0.5
    }

    fn to_f64(self) -> f64 {
        self
    }
}

impl Scalar for f32 {
    const ZERO: Self = 0.0;

    fn is_finite_scalar(&self) -> bool {
        self.is_finite()
    }

    fn half(self) -> Self {
        self * 0.5
    }

    fn to_f64(self) -> f64 {
        f64::from(self)
    }
}

impl Scalar for i64 {
    const ZERO: Self = 0;

    fn is_finite_scalar(&self) -> bool {
        true
    }

    fn half(self) -> Self {
        self.div_euclid(2)
    }

    fn to_f64(self) -> f64 {
        self as f64
    }
}

impl Scalar for i32 {
    const ZERO: Self = 0;

    fn is_finite_scalar(&self) -> bool {
        true
    }

    fn half(self) -> Self {
        self.div_euclid(2)
    }

    fn to_f64(self) -> f64 {
        f64::from(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floats_reject_non_finite() {
        assert!(1.0_f64.is_finite_scalar());
        assert!(!f64::NAN.is_finite_scalar());
        assert!(!f64::INFINITY.is_finite_scalar());
        assert!(!f64::NEG_INFINITY.is_finite_scalar());
        assert!(!f32::NAN.is_finite_scalar());
    }

    #[test]
    fn integers_are_always_finite() {
        assert!(i64::MAX.is_finite_scalar());
        assert!(i64::MIN.is_finite_scalar());
        assert!(0_i32.is_finite_scalar());
    }

    #[test]
    fn half_rounds_towards_negative_infinity_for_integers() {
        assert_eq!(7_i64.half(), 3);
        assert_eq!((-7_i64).half(), -4);
        assert_eq!(6_i32.half(), 3);
        assert_eq!((-6_i32).half(), -3);
    }

    #[test]
    fn half_is_exact_for_floats() {
        assert_eq!(7.0_f64.half(), 3.5);
        assert_eq!((-1.0_f32).half(), -0.5);
    }

    #[test]
    fn min_max_scalar_agree_with_ordering() {
        assert_eq!(3.0_f64.min_scalar(5.0), 3.0);
        assert_eq!(3.0_f64.max_scalar(5.0), 5.0);
        assert_eq!(5_i64.min_scalar(3), 3);
        assert_eq!(5_i64.max_scalar(3), 5);
        // Equal values return self.
        assert_eq!(4_i32.min_scalar(4), 4);
        assert_eq!(4_i32.max_scalar(4), 4);
    }

    #[test]
    fn to_f64_is_value_preserving_for_small_values() {
        assert_eq!(41_i64.to_f64(), 41.0);
        assert_eq!((-3_i32).to_f64(), -3.0);
        assert_eq!(2.5_f32.to_f64(), 2.5);
    }
}
