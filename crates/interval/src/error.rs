//! Error type for interval construction.

use core::fmt;

/// Error returned when an [`Interval`](crate::Interval) cannot be
/// constructed from the given endpoints.
///
/// # Example
///
/// ```
/// use arsf_interval::{Interval, IntervalError};
///
/// let err = Interval::new(2.0, 1.0).unwrap_err();
/// assert!(matches!(err, IntervalError::Inverted));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum IntervalError {
    /// The lower endpoint was strictly greater than the upper endpoint.
    Inverted,
    /// An endpoint was not a finite value (floating-point NaN or infinity).
    NonFinite,
    /// A radius or width argument was negative.
    NegativeWidth,
}

impl fmt::Display for IntervalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IntervalError::Inverted => {
                write!(f, "lower endpoint was greater than upper endpoint")
            }
            IntervalError::NonFinite => write!(f, "endpoint was not a finite value"),
            IntervalError::NegativeWidth => write!(f, "width or radius was negative"),
        }
    }
}

impl std::error::Error for IntervalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_without_trailing_punctuation() {
        for err in [
            IntervalError::Inverted,
            IntervalError::NonFinite,
            IntervalError::NegativeWidth,
        ] {
            let msg = err.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_good_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_good_error::<IntervalError>();
    }
}
