//! Property test bridging the static detectability layer to the dynamic
//! engines: any grid the linter passes without error findings, when
//! actually swept, never contradicts its cells'
//! [`DetectReport`](arsf_analyze::DetectReport)s — a provably invisible
//! cell records zero flagged rounds and an empty condemned set, a
//! provably flagged cell flags every fused round (and condemns its
//! certain violators once the detector has seen its latency's worth of
//! rounds), and under provable false-alarm freedom only the report's
//! suspects are ever condemned.
//!
//! The pools cross the stealth-clamped attackers, a probability-1
//! overwhelming fault (the provably-flagged witness), sub-certain
//! faults, silence, every fuser family and all four stock detector
//! configurations, so each arm of the verdict derivation is exercised
//! against real simulated rounds.

use arsf_analyze::{analyze_grid, detect_report, DetectVerdict, Severity};
use arsf_core::scenario::{
    AttackerSpec, ClosedLoopSpec, FuserSpec, Scenario, StrategySpec, SuiteSpec, TruthSpec,
};
use arsf_core::sweep::SweepGrid;
use arsf_core::DetectionMode;
use arsf_sensor::{FaultKind, FaultModel};
use proptest::prelude::*;

fn suite_pool(i: usize) -> SuiteSpec {
    match i % 3 {
        0 => SuiteSpec::Landshark,
        1 => SuiteSpec::Widths(vec![5.0, 11.0, 17.0]),
        _ => SuiteSpec::Widths(vec![4.0, 8.0, 12.0, 16.0, 20.0]),
    }
}

fn fuser_pool(i: usize) -> FuserSpec {
    match i % 6 {
        0 => FuserSpec::Marzullo,
        1 => FuserSpec::BrooksIyengar,
        2 => FuserSpec::Intersection,
        3 => FuserSpec::Hull,
        4 => FuserSpec::InverseVariance,
        _ => FuserSpec::Historical {
            max_rate: 3.5,
            dt: 0.1,
        },
    }
}

fn attacker_pool(i: usize) -> AttackerSpec {
    let fixed = |sensors: Vec<usize>, strategy| AttackerSpec::Fixed { sensors, strategy };
    match i % 6 {
        0 => AttackerSpec::None,
        1 => fixed(vec![0], StrategySpec::PhantomOptimal),
        2 => fixed(vec![2], StrategySpec::GreedyLow),
        3 => fixed(vec![0, 1], StrategySpec::GreedyHigh),
        4 => fixed(vec![1], StrategySpec::Truthful),
        _ => AttackerSpec::RandomEachRound,
    }
}

fn fault_set_pool(i: usize) -> Vec<(usize, FaultModel)> {
    match i % 5 {
        0 => vec![],
        // Probability-1 overwhelming bias: the certain-violator witness.
        1 => vec![(2, FaultModel::new(FaultKind::Bias { offset: 50.0 }, 1.0))],
        // Sub-certain firing: contingent even when the magnitude is huge.
        2 => vec![(0, FaultModel::new(FaultKind::Bias { offset: 50.0 }, 0.25))],
        3 => vec![(1, FaultModel::new(FaultKind::Silent, 1.0))],
        // Certain firing but small magnitude: contingent the other way.
        _ => vec![(2, FaultModel::new(FaultKind::Scale { factor: 1.1 }, 1.0))],
    }
}

fn detector_pool(i: usize) -> DetectionMode {
    match i % 4 {
        0 => DetectionMode::Off,
        1 => DetectionMode::Immediate,
        2 => DetectionMode::Windowed {
            window: 10,
            tolerance: 2,
        },
        _ => DetectionMode::Windowed {
            window: 5,
            tolerance: 0,
        },
    }
}

/// Guards the bridge property against vacuity: the exhaustive walk of
/// the small pool cross-product must yield lint-clean cells of all three
/// verdict classes — otherwise the property below would quietly be
/// checking an empty arm.
#[test]
fn the_pools_exercise_every_verdict_class() {
    let mut invisible = 0usize;
    let mut flagged = 0usize;
    let mut contingent = 0usize;
    for fuser in 0..6 {
        for attacker in 0..6 {
            for faults in 0..5 {
                for detector in 0..4 {
                    let base = Scenario::new("prop-coverage", SuiteSpec::Landshark)
                        .with_rounds(1)
                        .with_detector(detector_pool(detector));
                    let grid = SweepGrid::new(base)
                        .fusers(vec![fuser_pool(fuser)])
                        .attackers(vec![attacker_pool(attacker)])
                        .fault_sets(vec![fault_set_pool(faults)]);
                    if analyze_grid(&grid)
                        .iter()
                        .any(|f| f.severity == Severity::Error)
                    {
                        continue;
                    }
                    for cell in 0..grid.len() {
                        match detect_report(&grid.scenario(cell)).verdict {
                            DetectVerdict::ProvablyInvisible { .. } => invisible += 1,
                            DetectVerdict::ProvablyFlagged { .. } => flagged += 1,
                            DetectVerdict::Contingent => contingent += 1,
                            _ => {}
                        }
                    }
                }
            }
        }
    }
    assert!(invisible >= 50, "only {invisible} provably invisible cells");
    assert!(flagged >= 5, "only {flagged} provably flagged cells");
    assert!(contingent >= 50, "only {contingent} contingent cells");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn lint_clean_grids_never_contradict_their_detect_verdicts(
        suite in 0usize..3,
        fuser_a in 0usize..6,
        fuser_b in 0usize..6,
        attacker in 0usize..6,
        faults in 0usize..5,
        detector_a in 0usize..4,
        detector_b in 0usize..4,
        ramp in 0usize..2,
        closed_loop in 0usize..2,
        seed in 0u64..1000,
    ) {
        // Closed-loop execution physically requires the LandShark suite.
        let closed_loop = closed_loop == 1;
        let suite = if closed_loop { SuiteSpec::Landshark } else { suite_pool(suite) };
        let truth = if ramp == 1 {
            TruthSpec::Ramp { start: 10.0, rate_per_round: 0.3 }
        } else {
            TruthSpec::Constant(10.0)
        };
        let mut base = Scenario::new("prop-detect", suite)
            .with_truth(truth)
            .with_rounds(12)
            .with_seed(seed);
        if closed_loop {
            base = base.with_closed_loop(ClosedLoopSpec::new(10.0));
        }
        let grid = SweepGrid::new(base)
            .fusers(vec![fuser_pool(fuser_a), fuser_pool(fuser_b)])
            .attackers(vec![AttackerSpec::None, attacker_pool(attacker)])
            .fault_sets(vec![fault_set_pool(faults)])
            .detectors(vec![detector_pool(detector_a), detector_pool(detector_b)]);

        if analyze_grid(&grid).iter().any(|f| f.severity == Severity::Error) {
            // The structural linter rejected the grid; cells may not run.
            return Ok(());
        }

        let report = grid.run_serial();
        for row in report.rows() {
            let detect = detect_report(&grid.scenario(row.cell));
            let summary = &row.summary;
            let fused = summary.rounds - summary.fusion_failures;

            // Universally sound, whatever the verdict: detection only
            // assesses rounds whose fusion succeeded.
            prop_assert!(
                summary.flagged_rounds <= fused,
                "cell {}: {} flagged rounds out of only {fused} fused",
                row.cell, summary.flagged_rounds
            );

            match detect.verdict {
                DetectVerdict::ProvablyInvisible { reason } => {
                    prop_assert_eq!(
                        summary.flagged_rounds, 0,
                        "cell {}: flagged despite provable invisibility ({:?}, {:?})",
                        row.cell, reason, &detect
                    );
                    prop_assert!(
                        summary.condemned.is_empty(),
                        "cell {}: condemned {:?} despite provable invisibility ({:?})",
                        row.cell, &summary.condemned, reason
                    );
                }
                DetectVerdict::ProvablyFlagged { within } => {
                    prop_assert_eq!(
                        summary.flagged_rounds, fused,
                        "cell {}: only {} of {fused} fused rounds flagged despite certain \
                         violators {:?}",
                        row.cell, summary.flagged_rounds, &detect.certain
                    );
                    if detect.detector.condemns && fused >= within as u64 {
                        for sensor in &detect.certain {
                            prop_assert!(
                                summary.condemned.contains(sensor),
                                "cell {}: certain violator {sensor} not condemned after \
                                 {fused} fused rounds (latency {within}): {:?}",
                                row.cell, &summary.condemned
                            );
                        }
                    }
                }
                DetectVerdict::Contingent => {}
                _ => {}
            }

            if let Some(suspects) = &detect.suspects {
                for sensor in &summary.condemned {
                    prop_assert!(
                        suspects.contains(sensor),
                        "cell {}: sensor {sensor} condemned despite provable false-alarm \
                         freedom (suspects {:?})",
                        row.cell, suspects
                    );
                }
            }
        }
    }
}
