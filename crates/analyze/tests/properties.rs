//! Property test for the lint/runtime contract: a sweep grid that
//! `arsf-analyze` passes with **no error-severity findings** is actually
//! runnable — every cell's scenario validates, builds a runner, and runs
//! its rounds without a [`ScenarioError`].
//!
//! The pools deliberately include unsound draws (a 3-sensor suite with
//! `f = 2`, two attacked sensors under `f = 1`, a fault on a sensor the
//! suite does not have) so both directions are exercised: the linter
//! rejects them as errors, and everything it lets through runs.

use arsf_analyze::{analyze_grid, Severity};
use arsf_core::scenario::{AttackerSpec, Scenario, StrategySpec, SuiteSpec};
use arsf_core::sweep::SweepGrid;
use arsf_core::{DetectionMode, ScenarioRunner};
use arsf_sensor::{FaultKind, FaultModel};
use proptest::prelude::*;

fn suite_pool(i: usize) -> SuiteSpec {
    match i % 3 {
        0 => SuiteSpec::Landshark,
        // Three sensors: unsound under f = 2, and sensor index 3 is out
        // of range for it.
        1 => SuiteSpec::Widths(vec![5.0, 11.0, 17.0]),
        _ => SuiteSpec::Widths(vec![4.0, 8.0, 12.0, 16.0, 20.0]),
    }
}

fn attacker_pool(i: usize) -> AttackerSpec {
    let fixed = |sensors: Vec<usize>, strategy| AttackerSpec::Fixed { sensors, strategy };
    match i % 5 {
        0 => AttackerSpec::None,
        1 => fixed(vec![0], StrategySpec::PhantomOptimal),
        2 => fixed(vec![1], StrategySpec::GreedyLow),
        // Two compromised sensors: an attacker-budget error unless f >= 2.
        3 => fixed(vec![0, 1], StrategySpec::GreedyHigh),
        _ => AttackerSpec::RandomEachRound,
    }
}

fn fault_set_pool(i: usize) -> Vec<(usize, FaultModel)> {
    match i % 4 {
        0 => vec![],
        1 => vec![(0, FaultModel::new(FaultKind::Bias { offset: 3.0 }, 0.25))],
        // Valid on the 5-sensor suites, out of range on the 3-sensor one.
        2 => vec![(3, FaultModel::new(FaultKind::Silent, 0.5))],
        _ => vec![
            (1, FaultModel::new(FaultKind::Scale { factor: 1.5 }, 0.4)),
            (2, FaultModel::new(FaultKind::StuckAt { value: 12.0 }, 0.3)),
        ],
    }
}

fn detector_pool(i: usize) -> DetectionMode {
    match i % 4 {
        0 => DetectionMode::Off,
        1 => DetectionMode::Immediate,
        2 => DetectionMode::Windowed {
            window: 5,
            tolerance: 1,
        },
        // Dead window (tolerance >= window): a warning, still runnable.
        _ => DetectionMode::Windowed {
            window: 5,
            tolerance: 5,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn grids_without_error_findings_build_and_run(
        suite in 0usize..3,
        f in 0usize..3,
        attacker_a in 0usize..5,
        attacker_b in 0usize..5,
        faults in 0usize..4,
        detector in 0usize..4,
        empty_rounds in 0usize..2,
        replicate in 0usize..2,
        seed in 0u64..1000,
    ) {
        let base = Scenario::new("prop-lint", suite_pool(suite))
            .with_f(f)
            .with_rounds(10)
            .with_seed(seed);
        let mut grid = SweepGrid::new(base)
            .attackers(vec![attacker_pool(attacker_a), attacker_pool(attacker_b)])
            .fault_sets(vec![fault_set_pool(faults)])
            .detectors(vec![detector_pool(detector)]);
        if empty_rounds == 1 {
            // An empty-run warning, not an error: the cell still "runs".
            grid = grid.rounds(vec![10, 0]);
        }
        if replicate == 1 {
            grid = grid.seeds(vec![seed, seed.wrapping_add(1)]);
        }

        let findings = analyze_grid(&grid);
        if findings.iter().any(|f| f.severity == Severity::Error) {
            // The linter rejected the grid; nothing more to check.
            return Ok(());
        }

        // No error findings: every cell must validate, build, and run.
        for cell in 0..grid.len() {
            let scenario = grid.scenario(cell);
            prop_assert!(
                scenario.validate().is_ok(),
                "cell {cell} fails validate despite a lint-clean grid: {:?}",
                scenario.validate()
            );
            let runner = ScenarioRunner::try_new(&scenario);
            prop_assert!(
                runner.is_ok(),
                "cell {cell} fails to build despite a lint-clean grid"
            );
            if let Ok(mut runner) = runner {
                let summary = runner.run();
                prop_assert_eq!(summary.rounds, scenario.rounds, "cell {}", cell);
            }
        }
    }
}
