//! Property test bridging the static dominance layer to the dynamic
//! engines: any sweep grid the linter passes without error-severity
//! findings, when actually swept and recorded, never inverts a
//! cross-cell ordering the dominance pass proves. The derived lattice is
//! a *sound* abstraction of the dynamics — every `order-edge` the
//! analyzer emits is a claim about real recorded metrics, and this test
//! holds the analyzer to it.
//!
//! The pools cross the Marzullo-family fusers with the unprotected
//! inverse-variance baseline (so the containment and invisibility
//! certificates produce fuser-axis edges), all three rankable schedules
//! (so Table II's asc ⪯ random ⪯ desc chain produces schedule-axis
//! edges), the stealth-clamped attackers that arm the schedule ordering,
//! and detectors on and off (detector-axis invisibility edges).

use arsf_analyze::{analyze_grid, dominance_report, vet_baseline_dominance, Location, Severity};
use arsf_core::scenario::{AttackerSpec, FuserSpec, Scenario, StrategySpec, SuiteSpec};
use arsf_core::sweep::store::Baseline;
use arsf_core::sweep::SweepGrid;
use arsf_core::DetectionMode;
use arsf_schedule::SchedulePolicy;
use proptest::prelude::*;

fn fuser_pool(i: usize) -> FuserSpec {
    match i % 4 {
        0 => FuserSpec::Marzullo,
        1 => FuserSpec::BrooksIyengar,
        2 => FuserSpec::InverseVariance,
        _ => FuserSpec::Historical {
            max_rate: 3.5,
            dt: 0.1,
        },
    }
}

fn attacker_pool(i: usize) -> AttackerSpec {
    // Every draw is stealth-clamped with at most one attacked sensor per
    // round, so the schedule-ordering rule arms on every lint-clean cell.
    match i % 3 {
        0 => AttackerSpec::Fixed {
            sensors: vec![0],
            strategy: StrategySpec::PhantomOptimal,
        },
        1 => AttackerSpec::Fixed {
            sensors: vec![1],
            strategy: StrategySpec::GreedyHigh,
        },
        _ => AttackerSpec::RandomEachRound,
    }
}

fn schedule_pool(i: usize) -> Vec<SchedulePolicy> {
    match i % 3 {
        0 => vec![SchedulePolicy::Ascending, SchedulePolicy::Descending],
        1 => vec![
            SchedulePolicy::Ascending,
            SchedulePolicy::Descending,
            SchedulePolicy::Random,
        ],
        _ => vec![SchedulePolicy::Ascending, SchedulePolicy::Random],
    }
}

fn detector_pool(i: usize) -> Vec<DetectionMode> {
    match i % 3 {
        0 => vec![DetectionMode::Off, DetectionMode::Immediate],
        1 => vec![DetectionMode::Immediate],
        _ => vec![
            DetectionMode::Off,
            DetectionMode::Windowed {
                window: 10,
                tolerance: 3,
            },
        ],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn lint_clean_swept_grids_never_invert_a_provable_edge(
        fuser_a in 0usize..4,
        fuser_b in 0usize..4,
        attacker in 0usize..3,
        schedules in 0usize..3,
        detectors in 0usize..3,
        rounds in 100u64..140,
        seed in 0u64..1000,
    ) {
        let base = Scenario::new("prop-dominance", SuiteSpec::Landshark)
            .with_rounds(rounds)
            .with_seed(seed)
            .with_attacker(attacker_pool(attacker));
        let grid = SweepGrid::new(base)
            .fusers(vec![fuser_pool(fuser_a), fuser_pool(fuser_b)])
            .schedules(schedule_pool(schedules))
            .detectors(detector_pool(detectors))
            .seeds(vec![seed, seed.wrapping_add(1)]);

        if analyze_grid(&grid).iter().any(|f| f.severity == Severity::Error) {
            // The structural linter rejected the grid; cells may not run.
            return Ok(());
        }

        // The grids above always admit at least the schedule chain: the
        // derivation itself must find edges (no vacuous passes here).
        let derived = dominance_report(&grid);
        prop_assert!(
            !derived.edges.is_empty(),
            "no provable edges over {} cells despite rankable schedules",
            grid.len()
        );

        // Sweep for real, freeze the report, and hold every recorded
        // metric to every provable ordering.
        let baseline = Baseline::from_report(&grid, &grid.run_serial());
        let location = Location::Grid { name: "prop-dominance".to_string() };
        let violations = vet_baseline_dominance(&grid, &baseline, &location);
        prop_assert!(
            violations.is_empty(),
            "a lint-clean swept grid inverted a provable ordering: {violations:?}"
        );
    }
}
