//! Property test bridging the static guarantee layer to the dynamic
//! engines: any grid the linter passes without error findings, when
//! actually swept, never produces a cell whose observed widths exceed
//! its [`GuaranteeReport`](arsf_analyze::GuaranteeReport) bound — and
//! never loses the truth in a cell whose containment the report proves.
//!
//! The pools deliberately cross every fuser with silence, corruption,
//! ramping truth and closed-loop execution, so the static evaluator's
//! worst-case-over-silent-configurations reasoning, its per-fuser bound
//! formulas and its containment side conditions are all exercised
//! against real simulated rounds.

use arsf_analyze::{analyze_grid, guarantee_report, Severity};
use arsf_core::scenario::{
    AttackerSpec, ClosedLoopSpec, FuserSpec, Scenario, StrategySpec, SuiteSpec, TruthSpec,
};
use arsf_core::sweep::SweepGrid;
use arsf_core::DetectionMode;
use arsf_sensor::{FaultKind, FaultModel};
use proptest::prelude::*;

/// Slack for comparing observed widths against derived bounds: the
/// bounds are exact width sums, the observations accumulate rounding.
const EPSILON: f64 = 1e-9;

fn suite_pool(i: usize) -> SuiteSpec {
    match i % 3 {
        0 => SuiteSpec::Landshark,
        1 => SuiteSpec::Widths(vec![5.0, 11.0, 17.0]),
        _ => SuiteSpec::Widths(vec![4.0, 8.0, 12.0, 16.0, 20.0]),
    }
}

fn fuser_pool(i: usize) -> FuserSpec {
    match i % 8 {
        0 => FuserSpec::Marzullo,
        1 => FuserSpec::BrooksIyengar,
        2 => FuserSpec::Intersection,
        3 => FuserSpec::Hull,
        4 => FuserSpec::InverseVariance,
        5 => FuserSpec::MidpointMedian,
        // A dynamics bound loose enough to track the slow ramp…
        6 => FuserSpec::Historical {
            max_rate: 3.5,
            dt: 0.1,
        },
        // …and one too tight for any drifting truth.
        _ => FuserSpec::Historical {
            max_rate: 0.001,
            dt: 0.1,
        },
    }
}

fn attacker_pool(i: usize) -> AttackerSpec {
    let fixed = |sensors: Vec<usize>, strategy| AttackerSpec::Fixed { sensors, strategy };
    match i % 6 {
        0 => AttackerSpec::None,
        1 => fixed(vec![0], StrategySpec::PhantomOptimal),
        2 => fixed(vec![2], StrategySpec::GreedyLow),
        3 => fixed(vec![0, 1], StrategySpec::GreedyHigh),
        4 => fixed(vec![1], StrategySpec::Truthful),
        _ => AttackerSpec::RandomEachRound,
    }
}

fn fault_set_pool(i: usize) -> Vec<(usize, FaultModel)> {
    match i % 5 {
        0 => vec![],
        1 => vec![(0, FaultModel::new(FaultKind::Bias { offset: 3.0 }, 0.25))],
        2 => vec![(3, FaultModel::new(FaultKind::Silent, 0.5))],
        3 => vec![
            (1, FaultModel::new(FaultKind::Silent, 1.0)),
            (2, FaultModel::new(FaultKind::StuckAt { value: 12.0 }, 0.3)),
        ],
        _ => vec![(2, FaultModel::new(FaultKind::Scale { factor: 1.5 }, 0.4))],
    }
}

fn truth_pool(i: usize) -> TruthSpec {
    match i % 3 {
        0 => TruthSpec::Constant(10.0),
        // Within the loose historical dynamics bound (0.3 ≤ 3.5 · 0.1).
        1 => TruthSpec::Ramp {
            start: 10.0,
            rate_per_round: 0.3,
        },
        _ => TruthSpec::Ramp {
            start: 10.0,
            rate_per_round: -2.0,
        },
    }
}

/// Guards the property above against vacuity: over an exhaustive walk
/// of the small pool cross-product, a healthy share of grids must
/// survive the linter, and among the surviving cells there must be both
/// bounded-width ones and provable-containment ones — otherwise the
/// bridge property would be quietly checking nothing.
#[test]
fn the_pools_exercise_bounded_and_containment_cells() {
    let mut ran = 0usize;
    let mut bounded = 0usize;
    let mut contained = 0usize;
    for fuser in 0..8 {
        for attacker in 0..6 {
            for faults in 0..5 {
                let base = Scenario::new("prop-coverage", SuiteSpec::Landshark)
                    .with_f(1)
                    .with_rounds(1)
                    .with_detector(DetectionMode::Immediate);
                let grid = SweepGrid::new(base)
                    .fusers(vec![fuser_pool(fuser)])
                    .attackers(vec![attacker_pool(attacker)])
                    .fault_sets(vec![fault_set_pool(faults)]);
                if analyze_grid(&grid)
                    .iter()
                    .any(|f| f.severity == Severity::Error)
                {
                    continue;
                }
                for cell in 0..grid.len() {
                    let report = guarantee_report(&grid.scenario(cell));
                    ran += 1;
                    bounded += usize::from(report.width_bound.is_some());
                    contained += usize::from(report.truth_containment);
                }
            }
        }
    }
    assert!(ran >= 100, "only {ran} lint-clean cells in the pool walk");
    assert!(bounded * 2 >= ran, "only {bounded}/{ran} cells bounded");
    assert!(
        contained >= 10,
        "only {contained}/{ran} cells containment-provable"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn lint_clean_grids_never_exceed_their_static_bounds(
        suite in 0usize..3,
        f in 0usize..3,
        fuser_a in 0usize..8,
        fuser_b in 0usize..8,
        attacker in 0usize..6,
        faults in 0usize..5,
        truth in 0usize..3,
        closed_loop in 0usize..3,
        seed in 0u64..1000,
    ) {
        // Closed-loop execution physically requires the LandShark suite;
        // force it so the draw exercises the vehicle path instead of
        // being rejected by the structural linter.
        let suite = if closed_loop > 0 { SuiteSpec::Landshark } else { suite_pool(suite) };
        let mut base = Scenario::new("prop-guarantee", suite)
            .with_f(f)
            .with_truth(truth_pool(truth))
            .with_rounds(12)
            .with_seed(seed)
            .with_detector(DetectionMode::Immediate);
        match closed_loop {
            1 => base = base.with_closed_loop(ClosedLoopSpec::new(10.0)),
            2 => base = base.with_closed_loop(ClosedLoopSpec::new(10.0).with_platoon(2, 0.05)),
            _ => {}
        }
        let grid = SweepGrid::new(base)
            .fusers(vec![fuser_pool(fuser_a), fuser_pool(fuser_b)])
            .attackers(vec![AttackerSpec::None, attacker_pool(attacker)])
            .fault_sets(vec![fault_set_pool(faults)]);

        if analyze_grid(&grid).iter().any(|f| f.severity == Severity::Error) {
            // The structural linter rejected the grid; cells may not run.
            return Ok(());
        }

        let report = grid.run_serial();
        for row in report.rows() {
            let guarantees = guarantee_report(&grid.scenario(row.cell));
            if let Some(bound) = guarantees.width_bound {
                if let Some(observed) = row.summary.widths.max() {
                    prop_assert!(
                        observed <= bound + EPSILON,
                        "cell {}: observed max width {observed} exceeds static bound {bound} \
                         ({guarantees:?})",
                        row.cell
                    );
                }
                for (vehicle, summary) in row.summary.vehicles.iter().enumerate() {
                    if let Some(observed) = summary.widths.max() {
                        prop_assert!(
                            observed <= bound + EPSILON,
                            "cell {} vehicle {vehicle}: observed max width {observed} exceeds \
                             static bound {bound}",
                            row.cell
                        );
                    }
                }
            }
            if guarantees.truth_containment {
                prop_assert_eq!(
                    row.summary.truth_lost, 0,
                    "cell {}: truth lost {} times despite statically provable containment \
                     ({:?})",
                    row.cell, row.summary.truth_lost, &guarantees
                );
                for (vehicle, summary) in row.summary.vehicles.iter().enumerate() {
                    prop_assert_eq!(
                        summary.truth_lost, 0,
                        "cell {} vehicle {vehicle}: truth lost despite provable containment",
                        row.cell
                    );
                }
            }
        }
    }
}
