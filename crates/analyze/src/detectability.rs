//! Static detectability derivation: per-cell detection verdicts from the
//! declaration alone (paper Section III-A and Footnote 1), with no
//! simulation — the detection-side twin of the guarantee layer
//! ([`guarantee_report`](crate::guarantee_report)).
//!
//! [`detect_report`] abstractly evaluates one [`Scenario`]: from the
//! attacker's [`StrategyVisibility`], the fault set, the fuser's
//! geometry and the detector's static [`DetectorModel`], it classifies
//! the cell into a [`DetectVerdict`]:
//!
//! * [`DetectVerdict::ProvablyInvisible`] — the overlap check provably
//!   never fires: detection is off, the fuser's output intersects every
//!   transmitted interval by construction (hull, intersection), the
//!   suite is honest, or every forgery is stealth-clamped within budget
//!   (Section III-A: the forged interval always touches a point of
//!   maximal coverage inside the Marzullo interval);
//! * [`DetectVerdict::ProvablyFlagged`] — some sensor's corruption is so
//!   large it must land disjoint from the fused interval every fused
//!   round (a probability-1 fault whose offset exceeds the cell's static
//!   width bound plus the sensor's half-width), so it is flagged every
//!   fused round and condemned within a derivable number of rounds;
//! * [`DetectVerdict::Contingent`] — whether the check fires depends on
//!   magnitudes or runtime state; no static claim either way.
//!
//! The report also carries a **false-alarm-freedom** certificate: when
//! the fused interval provably contains the truth (or provably
//! intersects everything), an honest sensor's interval — which contains
//! the truth — can never be disjoint from it, so only the corrupted
//! sensors ([`DetectReport::suspects`]) can ever be flagged or
//! condemned.
//!
//! Four lints surface the layer ([`detect_lints`], a dedicated pass like
//! the guarantee lints): `detect-verdict` (info, one per cell),
//! `detect-invisible` (warn: the detector is on but geometrically can
//! never fire), `detect-coverage` (info, grid-level attack × detector
//! matrix), and `detect-violation` (error, the pass-driver rule
//! [`vet_baseline_detectability`] uses when a stored `flagged_rounds` or
//! condemnation set contradicts its cell's verdict).

use arsf_core::scenario::{AttackerSpec, FuserSpec, Scenario, StrategyVisibility};
use arsf_core::sweep::store::Baseline;
use arsf_core::sweep::SweepGrid;
use arsf_detect::DetectorModel;
use arsf_sensor::FaultKind;

use crate::guarantees::guarantee_report;
use crate::{sort_findings, Finding, Lint, Location, Severity};

/// Absolute slack when comparing recorded round counts against derived
/// bounds: the counts are exact integers round-tripped through `f64`, so
/// anything beyond rounding noise is a genuine violation.
const EPSILON: f64 = 1e-9;

/// Why a cell is provably invisible to its detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum InvisibleReason {
    /// Detection is disabled: nothing is ever flagged.
    DetectorOff,
    /// The fuser's output provably intersects every transmitted interval
    /// (hull contains them all; a non-empty intersection is inside them
    /// all), so the overlap check is vacuous for *any* attacker.
    FuserGeometry,
    /// No sensor can transmit a corrupted interval, and honest intervals
    /// provably overlap the fusion interval (false-alarm freedom).
    HonestSuite,
    /// Every forgery is stealth-clamped (Section III-A): with at most
    /// one attacked sensor per round inside the fault budget, the forged
    /// interval always touches a point of maximal coverage, which lies
    /// inside the Marzullo/Brooks–Iyengar interval.
    StealthClamp,
}

impl InvisibleReason {
    /// The phrase finding messages use.
    pub fn describe(self) -> &'static str {
        match self {
            InvisibleReason::DetectorOff => "detection is off, nothing is ever flagged",
            InvisibleReason::FuserGeometry => {
                "the fused interval intersects every transmitted interval by construction, \
                 so the overlap check is vacuous"
            }
            InvisibleReason::HonestSuite => {
                "no sensor can transmit a corrupted interval, and honest intervals provably \
                 overlap the fusion interval"
            }
            InvisibleReason::StealthClamp => {
                "the Section III-A stealth clamp keeps every forged interval in contact with \
                 the fusion interval"
            }
        }
    }
}

/// The static detection verdict of one attacker × fault set × detector
/// cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum DetectVerdict {
    /// The overlap check provably never fires: the recorded
    /// `flagged_rounds` must be 0 and the condemned set empty.
    ProvablyInvisible {
        /// Why the check can never fire.
        reason: InvisibleReason,
    },
    /// Some sensor provably violates the overlap check every fused
    /// round: `flagged_rounds` must equal the fused-round count.
    ProvablyFlagged {
        /// Violating *fused* rounds until the detector's verdict is
        /// final: the condemnation latency when the detector can
        /// condemn (1 for the immediate rule, `tolerance + 1` for a
        /// windowed detector), else 1 (the first flag).
        within: usize,
    },
    /// No static claim: detection depends on magnitudes and runtime
    /// state.
    Contingent,
}

impl DetectVerdict {
    /// The short label finding messages use.
    pub fn label(&self) -> &'static str {
        match self {
            DetectVerdict::ProvablyInvisible { .. } => "provably invisible",
            DetectVerdict::ProvablyFlagged { .. } => "provably flagged",
            DetectVerdict::Contingent => "contingent",
        }
    }
}

/// The statically derived detectability of one scenario cell.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct DetectReport {
    /// Declared suite size `n`.
    pub n: usize,
    /// The fusion fault assumption `f`.
    pub f: usize,
    /// Worst-case corrupt transmitting sensors (see
    /// [`StaticModel::corrupt`](arsf_core::scenario::StaticModel::corrupt)).
    pub corrupt: usize,
    /// The cell's verdict.
    pub verdict: DetectVerdict,
    /// The detector's static characteristics.
    pub detector: DetectorModel,
    /// Whether honest sensors are provably never flagged: the fused
    /// interval provably contains the truth (so it intersects every
    /// truth-containing interval), or provably intersects everything.
    pub false_alarm_free: bool,
    /// Sensors that provably violate the overlap check every fused round
    /// (the witnesses behind [`DetectVerdict::ProvablyFlagged`]).
    pub certain: Vec<usize>,
    /// When false-alarm freedom holds, the closed set of sensors that
    /// can ever be flagged or condemned: the attacked set union the
    /// corrupting-faulted sensors (every sensor, for the
    /// random-each-round attacker). `None` when honest sensors cannot be
    /// statically exonerated.
    pub suspects: Option<Vec<usize>>,
    /// Fused outputs per round (platoon size closed-loop, else 1).
    pub vehicles: usize,
}

/// Whether the fuser's output provably intersects every transmitted
/// interval, making the overlap check vacuous: the hull contains every
/// input, and a successful intersection is non-empty inside every input.
/// Detection only runs on successfully fused rounds, so the failed
/// intersection case never reaches the check.
fn fuser_geometry_vacuous(fuser: &FuserSpec) -> bool {
    matches!(fuser, FuserSpec::Hull | FuserSpec::Intersection)
}

/// The distinct in-range sensors carrying a non-silent (corrupting)
/// fault. A silent sensor transmits nothing when the fault fires and its
/// correct reading when it does not, so it never shows the check a
/// corrupted interval.
fn corrupting_faulted(scenario: &Scenario, n: usize) -> Vec<usize> {
    let mut out: Vec<usize> = scenario
        .faults
        .iter()
        .filter(|(sensor, fault)| *sensor < n && !matches!(fault.kind(), FaultKind::Silent))
        .map(|(sensor, _)| *sensor)
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// The truth's range over the run, when statically known: the trajectory
/// is linear, so the endpoints bound it. `None` closed-loop (the truth
/// is the vehicle's actual speed) or for an empty run.
fn truth_range(scenario: &Scenario) -> Option<(f64, f64)> {
    if scenario.closed_loop.is_some() || scenario.rounds == 0 {
        return None;
    }
    let start = scenario.truth.at(0);
    let end = scenario.truth.at(scenario.rounds - 1);
    Some((start.min(end), start.max(end)))
}

/// The minimum distance from a fault's transmitted center to the truth,
/// over the whole run — the certainty margin of the fault's corruption.
/// `None` when the fault kind places no static claim.
fn fault_margin(kind: FaultKind, truth: (f64, f64)) -> Option<f64> {
    let (lo, hi) = truth;
    // Distance from a point to the truth range.
    let dist = |point: f64| {
        if point < lo {
            lo - point
        } else if point > hi {
            point - hi
        } else {
            0.0
        }
    };
    match kind {
        FaultKind::Bias { offset } => Some(offset.abs()),
        FaultKind::StuckAt { value } => Some(dist(value)),
        // The scaled center `truth · factor` sits `|truth| · |factor−1|`
        // from the truth; minimise over the run's truth range.
        FaultKind::Scale { factor } => Some(dist(0.0) * (factor - 1.0).abs()),
        FaultKind::Silent => None,
        // `FaultKind` is non-exhaustive: an unknown kind gets no claim.
        _ => None,
    }
}

/// Sensors that provably violate the overlap check every fused round:
/// the fault must fire every round (probability 1), place the interval's
/// center further from the truth than the static width bound plus the
/// sensor's half-width (the fused interval provably contains the truth
/// and is no wider than the bound, so disjointness is forced), and
/// nothing may override the transmission (the sensor is not attacked,
/// carries exactly one fault, and the run is open-loop with a known
/// truth range).
fn certain_violators(scenario: &Scenario, widths: &[f64]) -> Vec<usize> {
    if fuser_geometry_vacuous(&scenario.fuser) {
        return Vec::new(); // the check can never fire at all
    }
    let guarantees = guarantee_report(scenario);
    let (Some(bound), true) = (guarantees.width_bound, guarantees.truth_containment) else {
        return Vec::new(); // no static frame to prove disjointness in
    };
    let Some(truth) = truth_range(scenario) else {
        return Vec::new();
    };
    // An attacked sensor's transmission is forged by the strategy, not
    // the fault; random-each-round can attack anyone.
    let attacked: Vec<usize> = match &scenario.attacker {
        AttackerSpec::None => Vec::new(),
        AttackerSpec::Fixed { sensors, .. } => sensors.clone(),
        // Random-each-round (or an unknown attacker) can touch anyone:
        // no per-sensor claim survives.
        _ => return Vec::new(),
    };
    let n = widths.len();
    let mut out = Vec::new();
    for (sensor, fault) in &scenario.faults {
        let sensor = *sensor;
        if sensor >= n || attacked.contains(&sensor) {
            continue;
        }
        // A sensor with several fault entries has ambiguous composition
        // semantics; make no claim about it.
        if scenario.faults.iter().filter(|(s, _)| *s == sensor).count() != 1 {
            continue;
        }
        if fault.probability() < 1.0 {
            continue;
        }
        let Some(margin) = fault_margin(fault.kind(), truth) else {
            continue;
        };
        if margin > bound + widths[sensor] / 2.0 + EPSILON {
            out.push(sensor);
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Whether every possible corruption is provably stealthy under this
/// fuser: Marzullo-family fusion, all corruption coming from a
/// stealth-clamped attacker touching at most one sensor per round, and
/// the corruption budget within `f` in every silent configuration (so
/// the clamp's maximal-coverage touch point provably lies inside the
/// fused interval).
fn stealth_invisible(scenario: &Scenario, n: usize) -> bool {
    if !matches!(
        scenario.fuser,
        FuserSpec::Marzullo | FuserSpec::BrooksIyengar
    ) {
        return false;
    }
    if !corrupting_faulted(scenario, n).is_empty() {
        return false;
    }
    scenario.attacker.visibility() != StrategyVisibility::Opportunistic
        && scenario.attacker.max_attacked_per_round() <= 1
        && guarantee_report(scenario).truth_containment
}

/// Statically derives the [`DetectReport`] of one scenario.
///
/// # Example
///
/// ```
/// use arsf_analyze::{detect_report, DetectVerdict, InvisibleReason};
/// use arsf_core::scenario::{AttackerSpec, Scenario, StrategySpec, SuiteSpec};
///
/// // The paper's stealthy phantom attacker against Marzullo fusion with
/// // immediate detection: provably never flagged, before a single round
/// // is simulated.
/// let scenario = Scenario::new("doc", SuiteSpec::Landshark).with_attacker(
///     AttackerSpec::Fixed { sensors: vec![0], strategy: StrategySpec::PhantomOptimal },
/// );
/// let report = detect_report(&scenario);
/// assert_eq!(
///     report.verdict,
///     DetectVerdict::ProvablyInvisible { reason: InvisibleReason::StealthClamp },
/// );
/// assert!(report.false_alarm_free);
/// assert_eq!(report.suspects, Some(vec![0]));
/// ```
pub fn detect_report(scenario: &Scenario) -> DetectReport {
    let model = scenario.static_model();
    let n = model.widths.len();
    let detector = scenario.detector.model();
    let geometry = fuser_geometry_vacuous(&scenario.fuser);
    let false_alarm_free = geometry || guarantee_report(scenario).truth_containment;
    let certain = certain_violators(scenario, &model.widths);

    let verdict = if !detector.flags {
        DetectVerdict::ProvablyInvisible {
            reason: InvisibleReason::DetectorOff,
        }
    } else if geometry {
        DetectVerdict::ProvablyInvisible {
            reason: InvisibleReason::FuserGeometry,
        }
    } else if !certain.is_empty() {
        DetectVerdict::ProvablyFlagged {
            within: detector.condemnation_latency().unwrap_or(1),
        }
    } else if model.corrupt == 0 && false_alarm_free {
        DetectVerdict::ProvablyInvisible {
            reason: InvisibleReason::HonestSuite,
        }
    } else if stealth_invisible(scenario, n) {
        DetectVerdict::ProvablyInvisible {
            reason: InvisibleReason::StealthClamp,
        }
    } else {
        DetectVerdict::Contingent
    };

    let suspects = if false_alarm_free {
        Some(match &scenario.attacker {
            AttackerSpec::RandomEachRound => (0..n).collect(),
            attacker => {
                let mut suspects = corrupting_faulted(scenario, n);
                if let AttackerSpec::Fixed { sensors, strategy } = attacker {
                    if *strategy != arsf_core::scenario::StrategySpec::Truthful {
                        suspects.extend(sensors.iter().copied().filter(|&s| s < n));
                    }
                }
                suspects.sort_unstable();
                suspects.dedup();
                suspects
            }
        })
    } else {
        None
    };

    DetectReport {
        n,
        f: model.f,
        corrupt: model.corrupt,
        verdict,
        detector,
        false_alarm_free,
        certain,
        suspects,
        vehicles: model.vehicles,
    }
}

/// The detector label finding messages use (the configuration, not just
/// the stock name, so two windowed cells stay distinguishable).
fn detector_label(scenario: &Scenario) -> String {
    match scenario.detector {
        arsf_core::DetectionMode::Windowed { window, tolerance } => {
            format!("windowed({window},{tolerance})")
        }
        arsf_core::DetectionMode::Off => "off".to_string(),
        arsf_core::DetectionMode::Immediate => "immediate".to_string(),
        // `DetectionMode` is non-exhaustive; fall back to the debug form.
        other => format!("{other:?}").to_lowercase(),
    }
}

/// Lint: the cell's statically derived detection verdict, for the
/// record.
struct DetectVerdictLint;

impl Lint for DetectVerdictLint {
    fn id(&self) -> &'static str {
        "detect-verdict"
    }
    fn severity(&self) -> Severity {
        Severity::Info
    }
    fn description(&self) -> &'static str {
        "reports the statically derived detection verdict (provably invisible, provably \
         flagged, or contingent) and the false-alarm-freedom certificate"
    }
    fn check_scenario(&self, scenario: &Scenario, out: &mut Vec<Finding>) {
        let report = detect_report(scenario);
        let detail = match report.verdict {
            DetectVerdict::ProvablyInvisible { reason } => {
                format!(
                    "{} ({}); static flagged_rounds bound 0",
                    report.verdict.label(),
                    reason.describe()
                )
            }
            DetectVerdict::ProvablyFlagged { within } => {
                let fate = if report.detector.condemns {
                    format!("condemned within {within} violating fused round(s)")
                } else {
                    "flagged from the first fused round (this detector never condemns)".to_string()
                };
                format!(
                    "{}: sensor(s) {:?} violate the overlap check every fused round, {fate}",
                    report.verdict.label(),
                    report.certain,
                )
            }
            DetectVerdict::Contingent => format!(
                "{}: static analysis cannot place the corrupted intervals relative to the \
                 fusion interval",
                report.verdict.label()
            ),
        };
        let faf = match &report.suspects {
            Some(suspects) => format!(
                "; false-alarm freedom provable (only sensors {suspects:?} can ever be flagged)"
            ),
            None => String::new(),
        };
        out.push(Finding {
            lint: self.id(),
            severity: self.severity(),
            location: Location::Scenario {
                name: scenario.name.clone(),
            },
            message: format!(
                "attacker `{}` × fuser `{}` × detector `{}`: {detail}{faf}",
                scenario.attacker.label(),
                scenario.fuser.name(),
                detector_label(scenario),
            ),
        });
    }
}

/// Lint: the detector is enabled but geometrically can never fire.
struct DetectInvisible;

impl Lint for DetectInvisible {
    fn id(&self) -> &'static str {
        "detect-invisible"
    }
    fn severity(&self) -> Severity {
        Severity::Warn
    }
    fn description(&self) -> &'static str {
        "an enabled detector whose overlap check can never fire under this fuser: the \
         detection columns are vacuous"
    }
    fn check_scenario(&self, scenario: &Scenario, out: &mut Vec<Finding>) {
        let report = detect_report(scenario);
        if report.detector.flags && fuser_geometry_vacuous(&scenario.fuser) {
            out.push(Finding {
                lint: self.id(),
                severity: self.severity(),
                location: Location::Scenario {
                    name: scenario.name.clone(),
                },
                message: format!(
                    "detector `{}` can never fire under fuser `{}`: the fused interval \
                     intersects every transmitted interval by construction, so the \
                     detection columns are vacuous for any attacker",
                    detector_label(scenario),
                    scenario.fuser.name(),
                ),
            });
        }
    }
}

/// Lint: the grid-level attack × detector detectability matrix.
struct DetectCoverage;

impl Lint for DetectCoverage {
    fn id(&self) -> &'static str {
        "detect-coverage"
    }
    fn severity(&self) -> Severity {
        Severity::Info
    }
    fn description(&self) -> &'static str {
        "summarises, per attacker × detector pair, how many grid cells are provably \
         invisible, provably flagged, or contingent"
    }
    fn check_grid(&self, grid: &SweepGrid, out: &mut Vec<Finding>) {
        // (attacker label, detector label) → (invisible, flagged,
        // contingent, total), in first-seen order for determinism.
        let mut pairs: Vec<(String, String, [usize; 4])> = Vec::new();
        for cell in grid.cells() {
            let report = detect_report(&cell.scenario);
            let attacker = cell.scenario.attacker.label();
            let detector = detector_label(&cell.scenario);
            let slot = match pairs
                .iter_mut()
                .find(|(a, d, _)| *a == attacker && *d == detector)
            {
                Some((_, _, counts)) => counts,
                None => {
                    pairs.push((attacker, detector, [0; 4]));
                    // Just pushed, so the vector is non-empty.
                    let last = pairs.len() - 1;
                    &mut pairs[last].2
                }
            };
            match report.verdict {
                DetectVerdict::ProvablyInvisible { .. } => slot[0] += 1,
                DetectVerdict::ProvablyFlagged { .. } => slot[1] += 1,
                DetectVerdict::Contingent => slot[2] += 1,
            }
            slot[3] += 1;
        }
        for (attacker, detector, [invisible, flagged, contingent, total]) in pairs {
            out.push(Finding {
                lint: self.id(),
                severity: self.severity(),
                location: Location::Grid {
                    name: grid.base().name.clone(),
                },
                message: format!(
                    "attacker `{attacker}` × detector `{detector}`: {invisible}/{total} \
                     cell(s) provably invisible, {flagged} provably flagged, {contingent} \
                     contingent"
                ),
            });
        }
    }
}

/// Pass-driver rule id for a stored detection column contradicting its
/// cell's static verdict.
struct DetectViolation;

impl Lint for DetectViolation {
    fn id(&self) -> &'static str {
        "detect-violation"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn description(&self) -> &'static str {
        "a stored baseline detection column contradicts its cell's statically derived \
         detectability verdict"
    }
}

/// The detectability lints, as a dedicated registry (kept out of the
/// default [`registry`](crate::registry) for the same reason as the
/// guarantee lints: this is an opt-in analysis pass, not a structural
/// precondition).
pub fn detect_lints() -> Vec<Box<dyn Lint>> {
    vec![
        Box::new(DetectVerdictLint),
        Box::new(DetectInvisible),
        Box::new(DetectCoverage),
        Box::new(DetectViolation),
    ]
}

/// Runs the detectability lints over one scenario, most-severe-first.
pub fn analyze_scenario_detectability(scenario: &Scenario) -> Vec<Finding> {
    let mut findings = Vec::new();
    for lint in detect_lints() {
        lint.check_scenario(scenario, &mut findings);
    }
    sort_findings(&mut findings);
    findings
}

/// Runs the detectability lints over every cell of a grid (each finding
/// relocated to its [`Location::Cell`]) plus the grid-level hooks (the
/// coverage matrix), most-severe-first.
///
/// This derives a [`DetectVerdict`] for every cell without running a
/// single simulation round.
pub fn analyze_grid_detectability(grid: &SweepGrid) -> Vec<Finding> {
    let mut findings = Vec::new();
    for cell in grid.cells() {
        for mut finding in analyze_scenario_detectability(&cell.scenario) {
            finding.location = Location::Cell { cell: cell.index };
            findings.push(finding);
        }
    }
    for lint in detect_lints() {
        lint.check_grid(grid, &mut findings);
    }
    sort_findings(&mut findings);
    findings
}

/// `true` when the grid declares at least one cell with a corruptible
/// sensor and *every* such cell is provably invisible to its detector:
/// the grid's detection columns are all vacuous, so freezing it as a
/// golden baseline needs an explicit opt-in (`--allow-invisible` on the
/// record paths).
pub fn detection_vacuous(grid: &SweepGrid) -> bool {
    let mut saw_corruptible = false;
    for cell in grid.cells() {
        if cell.scenario.static_model().corrupt == 0 {
            continue;
        }
        saw_corruptible = true;
        let report = detect_report(&cell.scenario);
        if !matches!(report.verdict, DetectVerdict::ProvablyInvisible { .. }) {
            return false;
        }
    }
    saw_corruptible
}

/// Parses a stored pipe-joined condemned label (`"0|2"`) into sensor
/// indices; entries that fail to parse are skipped (the baseline parser
/// already vets the file's shape).
fn parse_condemned(label: &str) -> Vec<usize> {
    label
        .split('|')
        .filter(|part| !part.is_empty())
        .filter_map(|part| part.trim().parse().ok())
        .collect()
}

/// Vets every stored [`CellRecord`](arsf_core::sweep::store::CellRecord)
/// of `baseline` against the statically derived detectability of the
/// corresponding `grid` cell — the detection-side soundness oracle for
/// golden baselines.
///
/// For every cell, the recorded `flagged_rounds` must not exceed the
/// fused-round count (`rounds − fusion_failures`; detection only runs on
/// fused rounds). Provably invisible cells must record 0 flagged rounds
/// and an empty condemned set; provably flagged cells must record a
/// flagged count equal to the fused-round count, with every certain
/// sensor condemned once the detector has seen its latency's worth of
/// rounds; and under false-alarm freedom only the cell's suspects may
/// appear in the condemned set. Violations are `detect-violation` errors
/// carrying the cell index, column, bound and observed value, located at
/// `location` (the baseline file, typically).
///
/// Records whose cell index falls outside the grid are skipped — the
/// baseline pass (`baseline-address`) already flags grid/baseline
/// mismatches.
pub fn vet_baseline_detectability(
    grid: &SweepGrid,
    baseline: &Baseline,
    location: &Location,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    for record in &baseline.rows {
        let cell = record.cell as usize;
        if cell >= grid.len() {
            continue;
        }
        let scenario = grid.scenario(cell);
        let report = detect_report(&scenario);

        let mut violation = |column: &str, message: String| {
            findings.push(Finding {
                lint: "detect-violation",
                severity: Severity::Error,
                location: location.clone(),
                message: format!("cell {cell} `{column}`: {message}"),
            });
        };

        let rounds = record
            .label("rounds")
            .and_then(|value| value.parse::<f64>().ok())
            .unwrap_or(scenario.rounds as f64);
        let failures = record
            .metric("fusion_failures")
            .flatten()
            .unwrap_or(0.0)
            .max(0.0);
        let fused = (rounds - failures).max(0.0);
        let flagged = record.metric("flagged_rounds").flatten();
        let condemned = record.label("condemned").map(parse_condemned);

        if let Some(flagged) = flagged {
            // Universally sound: detection only assesses fused rounds.
            if flagged > fused + EPSILON {
                violation(
                    "flagged_rounds",
                    format!(
                        "observed {flagged} exceeds the {fused} fused round(s) the detector \
                         can assess ({rounds} rounds − {failures} fusion failures)"
                    ),
                );
            }
            match report.verdict {
                DetectVerdict::ProvablyInvisible { reason } => {
                    if flagged > EPSILON {
                        violation(
                            "flagged_rounds",
                            format!(
                                "observed {flagged} exceeds the static bound 0: the cell is \
                                 provably invisible ({})",
                                reason.describe()
                            ),
                        );
                    }
                }
                DetectVerdict::ProvablyFlagged { .. } => {
                    if flagged < fused - EPSILON {
                        violation(
                            "flagged_rounds",
                            format!(
                                "observed {flagged} is below the static lower bound {fused}: \
                                 sensor(s) {:?} provably violate the overlap check every \
                                 fused round",
                                report.certain
                            ),
                        );
                    }
                }
                DetectVerdict::Contingent => {}
            }
        }

        if let Some(condemned) = &condemned {
            if let DetectVerdict::ProvablyInvisible { reason } = report.verdict {
                if !condemned.is_empty() {
                    violation(
                        "condemned",
                        format!(
                            "sensor(s) {condemned:?} condemned in a provably invisible cell \
                             ({})",
                            reason.describe()
                        ),
                    );
                }
            }
            if let DetectVerdict::ProvablyFlagged { within } = report.verdict {
                if report.detector.condemns && fused >= within as f64 {
                    for sensor in &report.certain {
                        if !condemned.contains(sensor) {
                            violation(
                                "condemned",
                                format!(
                                    "sensor {sensor} provably violates every fused round and \
                                     must be condemned within {within} violating fused \
                                     round(s), but the stored condemned set is {condemned:?}"
                                ),
                            );
                        }
                    }
                }
            }
            if let Some(suspects) = &report.suspects {
                for sensor in condemned {
                    if !suspects.contains(sensor) {
                        violation(
                            "condemned",
                            format!(
                                "sensor {sensor} condemned despite provable false-alarm \
                                 freedom: only sensors {suspects:?} can ever violate the \
                                 overlap check"
                            ),
                        );
                    }
                }
            }
        }
    }
    sort_findings(&mut findings);
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use arsf_core::scenario::{ClosedLoopSpec, StrategySpec, SuiteSpec, TruthSpec};
    use arsf_core::DetectionMode;
    use arsf_sensor::{FaultKind, FaultModel};

    fn attacked(scenario: Scenario, sensors: Vec<usize>, strategy: StrategySpec) -> Scenario {
        scenario.with_attacker(AttackerSpec::Fixed { sensors, strategy })
    }

    fn verdict(scenario: &Scenario) -> DetectVerdict {
        detect_report(scenario).verdict
    }

    #[test]
    fn disabled_detection_is_invisible_regardless_of_attacker() {
        let scenario = attacked(
            Scenario::new("d", SuiteSpec::Landshark).with_detector(DetectionMode::Off),
            vec![0],
            StrategySpec::GreedyHigh,
        );
        assert_eq!(
            verdict(&scenario),
            DetectVerdict::ProvablyInvisible {
                reason: InvisibleReason::DetectorOff
            }
        );
    }

    #[test]
    fn geometric_fusers_disarm_the_overlap_check() {
        for fuser in [FuserSpec::Hull, FuserSpec::Intersection] {
            let scenario = attacked(
                Scenario::new("d", SuiteSpec::Landshark).with_fuser(fuser.clone()),
                vec![0],
                StrategySpec::GreedyLow,
            );
            assert_eq!(
                verdict(&scenario),
                DetectVerdict::ProvablyInvisible {
                    reason: InvisibleReason::FuserGeometry
                },
                "{fuser:?}"
            );
            assert!(detect_report(&scenario).false_alarm_free);
            let findings = analyze_scenario_detectability(&scenario);
            assert!(
                findings
                    .iter()
                    .any(|f| f.lint == "detect-invisible" && f.severity == Severity::Warn),
                "{fuser:?}: {findings:?}"
            );
        }
    }

    #[test]
    fn honest_marzullo_suite_is_invisible_and_false_alarm_free() {
        let report = detect_report(&Scenario::new("d", SuiteSpec::Landshark));
        assert_eq!(
            report.verdict,
            DetectVerdict::ProvablyInvisible {
                reason: InvisibleReason::HonestSuite
            }
        );
        assert!(report.false_alarm_free);
        assert_eq!(report.suspects, Some(vec![]));
    }

    #[test]
    fn stealth_clamped_attacks_are_provably_invisible() {
        for strategy in [
            StrategySpec::PhantomOptimal,
            StrategySpec::GreedyHigh,
            StrategySpec::GreedyLow,
        ] {
            for fuser in [FuserSpec::Marzullo, FuserSpec::BrooksIyengar] {
                let scenario = attacked(
                    Scenario::new("d", SuiteSpec::Landshark).with_fuser(fuser.clone()),
                    vec![2],
                    strategy,
                );
                assert_eq!(
                    verdict(&scenario),
                    DetectVerdict::ProvablyInvisible {
                        reason: InvisibleReason::StealthClamp
                    },
                    "{strategy:?} × {fuser:?}"
                );
                assert_eq!(detect_report(&scenario).suspects, Some(vec![2]));
            }
        }
        // Random-each-round forges one phantom sensor per round: stealthy,
        // but any sensor is a suspect.
        let random =
            Scenario::new("d", SuiteSpec::Landshark).with_attacker(AttackerSpec::RandomEachRound);
        let report = detect_report(&random);
        assert_eq!(
            report.verdict,
            DetectVerdict::ProvablyInvisible {
                reason: InvisibleReason::StealthClamp
            }
        );
        assert_eq!(report.suspects, Some(vec![0, 1, 2, 3]));
    }

    #[test]
    fn multi_sensor_stealth_attacks_are_contingent() {
        // With two sensors forged per round, the clamp's coverage
        // argument no longer closes (and the budget exceeds f = 1
        // anyway): no invisibility claim.
        let scenario = attacked(
            Scenario::new("d", SuiteSpec::Landshark),
            vec![0, 1],
            StrategySpec::PhantomOptimal,
        );
        assert_eq!(verdict(&scenario), DetectVerdict::Contingent);
        assert!(!detect_report(&scenario).false_alarm_free);
    }

    #[test]
    fn non_marzullo_fusers_leave_stealth_contingent() {
        // The stealth theorem places the touch point inside the
        // *Marzullo* interval; history-refined or weighted fusers can
        // exclude it (the committed descending-schedule baselines indeed
        // record thousands of flagged rounds for these cells).
        for fuser in [
            FuserSpec::InverseVariance,
            FuserSpec::Historical {
                max_rate: 3.5,
                dt: 0.1,
            },
            FuserSpec::MidpointMedian,
        ] {
            let scenario = attacked(
                Scenario::new("d", SuiteSpec::Landshark).with_fuser(fuser.clone()),
                vec![0],
                StrategySpec::PhantomOptimal,
            );
            assert_eq!(verdict(&scenario), DetectVerdict::Contingent, "{fuser:?}");
        }
    }

    #[test]
    fn certain_bias_fault_is_provably_flagged() {
        // Sensor 2 (width 1.0) biased by 4.0 with probability 1: the
        // fused interval stays within the static bound 2.0 of the truth,
        // and the biased center sits 4.0 > 2.0 + 0.5 away — disjoint
        // every round.
        let scenario = Scenario::new("d", SuiteSpec::Landshark)
            .with_fault(2, FaultModel::new(FaultKind::Bias { offset: 4.0 }, 1.0))
            .with_rounds(120);
        let report = detect_report(&scenario);
        assert_eq!(report.verdict, DetectVerdict::ProvablyFlagged { within: 1 });
        assert_eq!(report.certain, vec![2]);
        assert_eq!(report.suspects, Some(vec![2]));

        let windowed = scenario.with_detector(DetectionMode::Windowed {
            window: 10,
            tolerance: 3,
        });
        assert_eq!(
            verdict(&windowed),
            DetectVerdict::ProvablyFlagged { within: 4 }
        );
    }

    #[test]
    fn sub_certain_faults_are_contingent() {
        let base = Scenario::new("d", SuiteSpec::Landshark);
        // Fires only half the time: no per-round claim.
        let sometimes = base
            .clone()
            .with_fault(2, FaultModel::new(FaultKind::Bias { offset: 4.0 }, 0.5));
        assert_eq!(verdict(&sometimes), DetectVerdict::Contingent);
        // Offset below the bound + half-width margin: may still overlap.
        let small = base
            .clone()
            .with_fault(2, FaultModel::new(FaultKind::Bias { offset: 2.0 }, 1.0));
        assert_eq!(verdict(&small), DetectVerdict::Contingent);
        // Closed-loop truth has no static range to measure the margin in.
        let closed = base
            .with_fault(2, FaultModel::new(FaultKind::Bias { offset: 4.0 }, 1.0))
            .with_closed_loop(ClosedLoopSpec::new(10.0));
        assert_eq!(verdict(&closed), DetectVerdict::Contingent);
    }

    #[test]
    fn stuck_and_scale_margins_use_the_truth_range() {
        let base = Scenario::new("d", SuiteSpec::Landshark).with_rounds(100);
        // Stuck at 50 while the truth holds 10: margin 40.
        let stuck = base
            .clone()
            .with_fault(2, FaultModel::new(FaultKind::StuckAt { value: 50.0 }, 1.0));
        assert!(matches!(
            verdict(&stuck),
            DetectVerdict::ProvablyFlagged { .. }
        ));
        // A ramp that reaches the stuck value erases the margin.
        let crossed = stuck.with_truth(TruthSpec::Ramp {
            start: 10.0,
            rate_per_round: 1.0, // reaches 50 at round 40
        });
        assert_eq!(verdict(&crossed), DetectVerdict::Contingent);
        // Scale 6× at truth 10: center 60, margin 50.
        let scaled = base
            .clone()
            .with_fault(2, FaultModel::new(FaultKind::Scale { factor: 6.0 }, 1.0));
        assert!(matches!(
            verdict(&scaled),
            DetectVerdict::ProvablyFlagged { .. }
        ));
        // Scale near 1 stays within the bound: contingent.
        let near = base.with_fault(2, FaultModel::new(FaultKind::Scale { factor: 1.1 }, 1.0));
        assert_eq!(verdict(&near), DetectVerdict::Contingent);
    }

    #[test]
    fn attacked_sensors_are_never_certain_violators() {
        // The attacker forges the faulted sensor's transmissions, so the
        // huge bias never reaches the wire.
        let scenario = attacked(
            Scenario::new("d", SuiteSpec::Landshark)
                .with_fault(2, FaultModel::new(FaultKind::Bias { offset: 9.0 }, 1.0)),
            vec![2],
            StrategySpec::PhantomOptimal,
        );
        let report = detect_report(&scenario);
        assert!(report.certain.is_empty());
        assert_eq!(report.verdict, DetectVerdict::Contingent);
    }

    #[test]
    fn grid_pass_relocates_cells_and_emits_the_coverage_matrix() {
        let grid = SweepGrid::new(attacked(
            Scenario::new("d", SuiteSpec::Landshark),
            vec![0],
            StrategySpec::PhantomOptimal,
        ))
        .fusers(vec![FuserSpec::Marzullo, FuserSpec::InverseVariance])
        .detectors(vec![DetectionMode::Off, DetectionMode::Immediate]);
        let findings = analyze_grid_detectability(&grid);
        let verdicts: Vec<_> = findings
            .iter()
            .filter(|f| f.lint == "detect-verdict")
            .collect();
        assert_eq!(verdicts.len(), grid.len());
        assert!(verdicts
            .iter()
            .all(|f| matches!(f.location, Location::Cell { .. })));
        let coverage: Vec<_> = findings
            .iter()
            .filter(|f| f.lint == "detect-coverage")
            .collect();
        // One attacker × two detector labels.
        assert_eq!(coverage.len(), 2);
        assert!(coverage[0].message.contains("provably invisible"));
    }

    #[test]
    fn vetting_flags_contradicted_verdicts() {
        use arsf_core::sweep::store::Baseline;
        let grid = SweepGrid::new(
            attacked(
                Scenario::new("d", SuiteSpec::Landshark),
                vec![0],
                StrategySpec::PhantomOptimal,
            )
            .with_rounds(20),
        );
        let report = grid.run_serial();
        let mut baseline = Baseline::from_report(&grid, &report);
        let location = Location::Cell { cell: 0 };

        // The honest run matches its invisible verdict.
        assert!(vet_baseline_detectability(&grid, &baseline, &location).is_empty());

        // Corrupt the flagged count: the invisible cell must record 0.
        let slot = baseline.rows[0]
            .metrics
            .iter_mut()
            .find(|(name, _)| name == "flagged_rounds")
            .expect("flagged_rounds column");
        slot.1 = Some(7.0);
        let findings = vet_baseline_detectability(&grid, &baseline, &location);
        let violation = findings
            .iter()
            .find(|f| f.lint == "detect-violation")
            .expect("the corrupted count is flagged");
        assert_eq!(violation.severity, Severity::Error);
        for needle in ["cell 0", "flagged_rounds", "7", "bound 0"] {
            assert!(
                violation.message.contains(needle),
                "missing `{needle}`: {}",
                violation.message
            );
        }
        slot_reset(&mut baseline.rows[0].metrics, "flagged_rounds", Some(0.0));

        // A condemned sensor outside the suspect set under provable
        // false-alarm freedom is a violation too.
        let condemned = baseline.rows[0]
            .labels
            .iter_mut()
            .find(|(name, _)| name == "condemned")
            .expect("condemned column");
        condemned.1 = "1".to_string();
        let findings = vet_baseline_detectability(&grid, &baseline, &location);
        assert!(
            findings
                .iter()
                .any(|f| f.lint == "detect-violation" && f.message.contains("condemned")),
            "{findings:?}"
        );
    }

    fn slot_reset(metrics: &mut [(String, Option<f64>)], name: &str, value: Option<f64>) {
        if let Some(slot) = metrics.iter_mut().find(|(n, _)| n == name) {
            slot.1 = value;
        }
    }

    #[test]
    fn flagged_cells_must_record_every_fused_round() {
        use arsf_core::sweep::store::Baseline;
        let grid = SweepGrid::new(
            Scenario::new("d", SuiteSpec::Landshark)
                .with_fault(2, FaultModel::new(FaultKind::Bias { offset: 4.0 }, 1.0))
                .with_rounds(30),
        );
        let report = grid.run_serial();
        let mut baseline = Baseline::from_report(&grid, &report);
        let location = Location::Cell { cell: 0 };
        let findings = vet_baseline_detectability(&grid, &baseline, &location);
        assert!(
            findings.is_empty(),
            "the real run satisfies its provably-flagged verdict: {findings:?}\nrow: {:?} {:?}",
            baseline.rows[0].labels,
            baseline.rows[0].metrics,
        );
        // Understate the flagged count: below the static lower bound.
        slot_reset(&mut baseline.rows[0].metrics, "flagged_rounds", Some(5.0));
        let findings = vet_baseline_detectability(&grid, &baseline, &location);
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("below the static lower bound")),
            "{findings:?}"
        );
        // Overstate it past the fused-round count: also a violation.
        slot_reset(&mut baseline.rows[0].metrics, "flagged_rounds", Some(500.0));
        let findings = vet_baseline_detectability(&grid, &baseline, &location);
        assert!(
            findings.iter().any(|f| f.message.contains("exceeds")),
            "{findings:?}"
        );
    }

    #[test]
    fn vacuous_detection_grids_are_detected() {
        // Every corruptible cell invisible (detector off): vacuous.
        let vacuous = SweepGrid::new(attacked(
            Scenario::new("d", SuiteSpec::Landshark).with_detector(DetectionMode::Off),
            vec![0],
            StrategySpec::PhantomOptimal,
        ));
        assert!(detection_vacuous(&vacuous));
        // An honest grid has nothing to detect: not "vacuous", just
        // honest.
        let honest = SweepGrid::new(Scenario::new("d", SuiteSpec::Landshark));
        assert!(!detection_vacuous(&honest));
        // A contingent cell (inverse-variance) keeps the grid
        // non-vacuous.
        let mixed = SweepGrid::new(attacked(
            Scenario::new("d", SuiteSpec::Landshark),
            vec![0],
            StrategySpec::PhantomOptimal,
        ))
        .fusers(vec![FuserSpec::Marzullo, FuserSpec::InverseVariance]);
        assert!(!detection_vacuous(&mixed));
    }

    #[test]
    fn detect_lint_ids_are_unique_and_described() {
        let lints = detect_lints();
        let mut ids: Vec<&str> = lints.iter().map(|l| l.id()).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), before);
        for lint in &lints {
            assert!(!lint.description().is_empty(), "{} undocumented", lint.id());
        }
    }
}
