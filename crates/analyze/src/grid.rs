//! The sweep-grid pass: axis-level lints plus per-cell scenario lints
//! over the axis combinations that can actually differ.
//!
//! A grid with millions of cells cannot be linted by materialising
//! every cell, and does not need to be: the scenario-level properties a
//! lint can observe depend only on (suite, fault set, attacker) — the
//! budget and soundness checks — and on (detector, rounds) — the window
//! checks. [`analyze_grid`] therefore scans two small combination
//! groups, pins every other axis to its first value, and rewrites each
//! finding's location to the representative cell's grid index via
//! [`SweepGrid::cell_index`]. Findings are deduplicated by
//! `(lint, message)` so a base-scenario property (say an inverted
//! envelope, which every cell inherits) is reported once.

use std::collections::HashSet;

use arsf_core::sweep::{AxisCoords, SweepGrid};

use crate::{registry, sort_findings, Finding, Lint, Location};

/// Grid-level static analysis as a method on [`SweepGrid`] itself.
///
/// `arsf-core` cannot depend on this crate, so the entry point the
/// ISSUE promises (`SweepGrid::analyze()`) is provided as an extension
/// trait: `use arsf_analyze::AnalyzeGrid;` brings it into scope.
pub trait AnalyzeGrid {
    /// Runs every registered lint over the grid; see [`analyze_grid`].
    fn analyze(&self) -> Vec<Finding>;
}

impl AnalyzeGrid for SweepGrid {
    fn analyze(&self) -> Vec<Finding> {
        analyze_grid(self)
    }
}

/// Runs every registered lint over a sweep grid.
///
/// Axis-level checks (`duplicate-axis-value`, `seed-collision`) see the
/// whole grid; scenario-level checks run over the
/// suites × fault-sets × attackers and detectors × rounds combination
/// groups with the remaining axes pinned, each finding relocated to a
/// representative [`Location::Cell`]. Findings come back sorted
/// most-severe-first.
pub fn analyze_grid(grid: &SweepGrid) -> Vec<Finding> {
    let lints = registry();
    let mut findings = Vec::new();
    for lint in &lints {
        lint.check_grid(grid, &mut findings);
    }

    let mut seen: HashSet<(&'static str, String)> = HashSet::new();
    for suite in 0..grid.suite_axis().len() {
        for fault_set in 0..grid.fault_set_axis().len() {
            for attacker in 0..grid.attacker_axis().len() {
                let coords = AxisCoords {
                    suite,
                    fault_set,
                    attacker,
                    ..AxisCoords::default()
                };
                scan_cell(grid, coords, &lints, &mut seen, &mut findings);
            }
        }
    }
    for detector in 0..grid.detector_axis().len() {
        for rounds in 0..grid.rounds_axis().len() {
            let coords = AxisCoords {
                detector,
                rounds,
                ..AxisCoords::default()
            };
            scan_cell(grid, coords, &lints, &mut seen, &mut findings);
        }
    }

    sort_findings(&mut findings);
    findings
}

/// Lints one representative cell, relocating scenario findings to the
/// cell index and deduplicating by `(lint, message)` across cells.
fn scan_cell(
    grid: &SweepGrid,
    coords: AxisCoords,
    lints: &[Box<dyn Lint>],
    seen: &mut HashSet<(&'static str, String)>,
    out: &mut Vec<Finding>,
) {
    let cell = grid.cell_index(coords);
    let scenario = grid.scenario(cell);
    let mut cell_findings = Vec::new();
    for lint in lints {
        lint.check_scenario(&scenario, &mut cell_findings);
    }
    for mut finding in cell_findings {
        if seen.insert((finding.lint, finding.message.clone())) {
            finding.location = Location::Cell { cell };
            out.push(finding);
        }
    }
}

#[cfg(test)]
mod tests {
    use arsf_core::scenario::{AttackerSpec, ClosedLoopSpec, Scenario, StrategySpec, SuiteSpec};
    use arsf_core::sweep::SweepGrid;
    use arsf_core::DetectionMode;

    use super::AnalyzeGrid;
    use crate::{Location, Severity};

    #[test]
    fn grid_findings_point_at_representative_cells() {
        // Cells vary fusers (2) × attackers (2, second over budget) ×
        // seeds (2); seeds vary fastest, suites slowest.
        let base = Scenario::new("grid", SuiteSpec::Landshark);
        let grid = SweepGrid::new(base)
            .attackers([
                AttackerSpec::None,
                AttackerSpec::Fixed {
                    sensors: vec![0, 1],
                    strategy: StrategySpec::GreedyHigh,
                },
            ])
            .fusers([
                arsf_core::scenario::FuserSpec::Marzullo,
                arsf_core::scenario::FuserSpec::BrooksIyengar,
            ])
            .seeds([1, 2]);
        let findings = grid.analyze();
        let budget: Vec<_> = findings
            .iter()
            .filter(|f| f.lint == "attacker-budget")
            .collect();
        assert_eq!(budget.len(), 1, "one finding per distinct message");
        // attacker index 1, all other axes pinned to 0: cell index is
        // attacker * (schedules * fusers * detectors * rounds * seeds)
        // = 1 * (1 * 2 * 1 * 1 * 2) = 4.
        assert_eq!(budget[0].location, Location::Cell { cell: 4 });
        assert_eq!(budget[0].severity, Severity::Error);
    }

    #[test]
    fn base_scenario_findings_are_reported_once() {
        let base = Scenario::new("envelope", SuiteSpec::Landshark)
            .with_closed_loop(ClosedLoopSpec::new(30.0).with_deltas(1.0, 0.25));
        let grid = SweepGrid::new(base)
            .detectors([DetectionMode::Off, DetectionMode::Immediate])
            .rounds([10, 20]);
        let findings = grid.analyze();
        let envelope: Vec<_> = findings
            .iter()
            .filter(|f| f.lint == "envelope-order")
            .collect();
        assert_eq!(envelope.len(), 1, "deduplicated across all scanned cells");
        assert_eq!(envelope[0].location, Location::Cell { cell: 0 });
    }

    #[test]
    fn window_findings_come_from_the_detector_rounds_group() {
        let grid = SweepGrid::new(Scenario::new("w", SuiteSpec::Landshark))
            .detectors([
                DetectionMode::Immediate,
                DetectionMode::Windowed {
                    window: 500,
                    tolerance: 3,
                },
            ])
            .rounds([100, 1000]);
        let findings = grid.analyze();
        let window: Vec<_> = findings
            .iter()
            .filter(|f| f.lint == "detector-window")
            .collect();
        // Only (windowed, 100 rounds) trips: window 500 > 100.
        assert_eq!(window.len(), 1);
        // detector=1, rounds=0, seeds len 1: cell = (1 * 2 + 0) * 1 = 2.
        assert_eq!(window[0].location, Location::Cell { cell: 2 });
    }

    #[test]
    fn a_clean_grid_has_no_findings() {
        let grid = SweepGrid::new(Scenario::new("clean", SuiteSpec::Landshark))
            .fusers([
                arsf_core::scenario::FuserSpec::Marzullo,
                arsf_core::scenario::FuserSpec::BrooksIyengar,
            ])
            .seeds([7, 8, 9]);
        assert!(grid.analyze().is_empty());
    }
}
