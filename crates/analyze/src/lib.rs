//! Static analysis over ARSF experiment definitions.
//!
//! The paper's guarantees only hold under *structural* preconditions —
//! Marzullo/Brooks–Iyengar containment needs `n > 2f`, the attacker must
//! stay within the corruption budget, and the closed-loop envelope needs
//! `δ1 ≤ δ2` — yet scenarios, sweep grids and golden baselines are plain
//! data that can silently violate them. This crate checks the data
//! *before* anything runs:
//!
//! * [`analyze_scenario`] lints one [`Scenario`] (presets, grid cells);
//! * [`analyze_grid`] lints a whole [`SweepGrid`] — axis-level checks
//!   plus per-cell scenario lints over the axis combinations that can
//!   actually differ, each finding pointed at a representative cell
//!   (also available as [`SweepGrid::analyze`](AnalyzeGrid::analyze));
//! * [`analyze_baseline_file`] / [`analyze_baseline_dir`] lint persisted
//!   [`Baseline`](arsf_core::sweep::store::Baseline)s — recomputed
//!   content addresses, orphaned files, missing recordings — and
//!   [`tolerance_findings`] flags check-harness tolerances that match no
//!   column anywhere;
//! * [`guarantee_report`] statically derives each cell's worst-case
//!   fusion guarantees (bound regime, Theorem-2 width bound,
//!   truth-containment provability) from the declaration alone, surfaced
//!   by [`analyze_scenario_guarantees`] / [`analyze_grid_guarantees`]
//!   and enforced over stored baselines by [`vet_baseline_guarantees`];
//! * [`detect_report`] statically derives each cell's detectability
//!   verdict — whether its attacker × fault set is provably invisible to
//!   the configured detector, provably flagged every fused round, or
//!   contingent on runtime state — plus a false-alarm-freedom
//!   certificate, surfaced by [`analyze_scenario_detectability`] /
//!   [`analyze_grid_detectability`] and enforced over stored baselines
//!   by [`vet_baseline_detectability`] ([`detection_vacuous`] backs the
//!   record-time refusal of grids whose detection columns are all
//!   provably vacuous);
//! * [`dominance_report`] statically derives a partial order over a
//!   grid's cells — [`OrderEdge`]s between cells differing in exactly
//!   one axis coordinate where the theory proves a metric ordering
//!   (Table II's schedule chain, containment/invisibility certificates,
//!   and the width-bound lattice over attackers, fault sets and
//!   historical fusion) — surfaced by [`analyze_grid_dominance`] and
//!   enforced over stored baselines by [`vet_baseline_dominance`].
//!
//! # Lints and severities
//!
//! Every check is a [`Lint`]: an object-safe rule with an id, a fixed
//! [`Severity`] and typed [`Finding`]s carrying a [`Location`]. The
//! built-in rules live in [`registry`]; pass drivers add a few findings
//! the trait cannot express (`baseline-parse`, `baseline-io`,
//! `baseline-orphan`, `baseline-missing`, `baseline-skipped`,
//! `tolerance-dead`, `guarantee-violation`) because they concern files
//! or cross-file context rather than one parsed value. The guarantee
//! lints (`guarantee-unbounded`, `guarantee-vacuous`, `guarantee-width`)
//! form their own dedicated pass ([`guarantee_lints`]), run by
//! `sweep_lint guarantees` and the record-time gates rather than the
//! default registry; the detectability lints (`detect-verdict`,
//! `detect-invisible`, `detect-coverage`, `detect-violation`) likewise
//! form their own pass ([`detect_lints`]), run by `sweep_lint
//! detectability`; and the dominance lints (`order-edge`,
//! `order-vacuous`, `order-violation`) form a fourth pass
//! ([`order_lints`]), run by `sweep_lint dominance` and the record-time
//! `--allow-disorder` gate.
//!
//! [`Severity::Error`] marks definitions the engines reject or the
//! paper's theorems void outright; [`Severity::Warn`] marks degenerate
//! but runnable definitions; [`Severity::Info`] marks worst-case
//! pessimism worth knowing about. [`exit_code`] maps a finding set to
//! the `sweep_lint` process convention: `2` if any error, `1` if any
//! warning, else `0` (info findings alone are clean).
//!
//! # Example
//!
//! ```
//! use arsf_analyze::{analyze_grid, exit_code, Severity};
//! use arsf_core::scenario::{Scenario, SuiteSpec};
//! use arsf_core::sweep::SweepGrid;
//!
//! // n = 3 sensors with f = 2 violates the n > 2f soundness bound.
//! let base = Scenario::new("unsound", SuiteSpec::Widths(vec![1.0, 2.0, 3.0])).with_f(2);
//! let findings = analyze_grid(&SweepGrid::new(base));
//! assert!(findings.iter().any(|f| f.lint == "fusion-soundness"));
//! assert_eq!(exit_code(&findings), 2);
//! assert_eq!(findings[0].severity, Severity::Error);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod baseline;
mod detectability;
mod dominance;
mod grid;
mod guarantees;
mod lints;

use std::fmt;
use std::path::PathBuf;

use arsf_core::scenario::Scenario;

pub use baseline::{
    analyze_baseline_dir, analyze_baseline_file, tolerance_findings, BaselineContext,
};
pub use detectability::{
    analyze_grid_detectability, analyze_scenario_detectability, detect_lints, detect_report,
    detection_vacuous, vet_baseline_detectability, DetectReport, DetectVerdict, InvisibleReason,
};
pub use dominance::{
    analyze_grid_dominance, dominance_report, order_lints, vet_baseline_dominance, BoundInversion,
    DominanceReport, FRegression, OrderEdge, OrderRule,
};
pub use grid::{analyze_grid, AnalyzeGrid};
pub use guarantees::{
    analyze_grid_guarantees, analyze_scenario_guarantees, guarantee_lints, guarantee_report,
    vet_baseline_guarantees, GuaranteeReport,
};

/// How bad a finding is.
///
/// Ordered: `Info < Warn < Error`, so `findings.iter().map(|f|
/// f.severity).max()` is the overall verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Worth knowing, but sound and runnable; never fails a lint run.
    Info,
    /// Degenerate or wasteful, but the engines will execute it.
    Warn,
    /// The engines reject it, or the paper's guarantees are void.
    Error,
}

impl Severity {
    /// The renderer's lowercase tag: `error`, `warning` or `info`.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warning",
            Severity::Error => "error",
        }
    }
}

/// Where a finding points: the preset, grid cell, axis value, file or
/// tolerance column it is about.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Location {
    /// A named scenario (a registry preset or a stand-alone definition).
    Scenario {
        /// The scenario's name.
        name: String,
    },
    /// One grid cell, by grid-order index.
    Cell {
        /// The cell index (`SweepGrid::scenario(cell)` reproduces it).
        cell: usize,
    },
    /// One or more positions on a named grid axis.
    Axis {
        /// The axis name (`suites`, `fusers`, `seeds`, …).
        axis: &'static str,
        /// The offending indices within the axis.
        indices: Vec<usize>,
    },
    /// A file on disk (a baseline, or the baseline directory itself).
    File {
        /// The path as given to the pass driver.
        path: PathBuf,
    },
    /// A golden grid known to the harness (used when its baseline file
    /// is missing, so there is no file to point at).
    Grid {
        /// The golden grid's registry name.
        name: String,
    },
    /// A tolerance column in a check-harness configuration.
    Column {
        /// The configured column or family name.
        column: String,
    },
    /// An ordered pair of grid cells a dominance edge connects.
    CellPair {
        /// The ⪯ side's grid-order cell index.
        lesser: usize,
        /// The ⪰ side's grid-order cell index.
        greater: usize,
    },
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Location::Scenario { name } => write!(f, "scenario `{name}`"),
            Location::Cell { cell } => write!(f, "cell {cell}"),
            Location::Axis { axis, indices } => {
                let ids: Vec<String> = indices.iter().map(|i| i.to_string()).collect();
                write!(f, "{axis} axis [{}]", ids.join(", "))
            }
            Location::File { path } => write!(f, "{}", path.display()),
            Location::Grid { name } => write!(f, "golden grid `{name}`"),
            Location::Column { column } => write!(f, "tolerance `{column}`"),
            Location::CellPair { lesser, greater } => write!(f, "cells {lesser} ⪯ {greater}"),
        }
    }
}

/// One problem a lint found.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// The id of the lint (or pass-driver rule) that produced it.
    pub lint: &'static str,
    /// The finding's severity.
    pub severity: Severity,
    /// What the finding is about.
    pub location: Location,
    /// Human-readable explanation, self-contained (no context needed).
    pub message: String,
}

impl Finding {
    /// Renders the finding as one `severity[lint] location: message`
    /// line.
    pub fn render(&self) -> String {
        format!(
            "{}[{}] {}: {}",
            self.severity.label(),
            self.lint,
            self.location,
            self.message
        )
    }
}

/// An object-safe static-analysis rule.
///
/// A lint declares an id and a fixed severity, then overrides whichever
/// `check_*` hooks apply to it — the default implementations are no-ops,
/// so a scenario-only lint ignores grids and baselines for free. Hooks
/// push [`Finding`]s carrying the lint's own id and severity.
pub trait Lint {
    /// Stable kebab-case identifier, e.g. `fusion-soundness`.
    fn id(&self) -> &'static str;
    /// The severity of every finding this lint produces.
    fn severity(&self) -> Severity;
    /// One sentence describing what the lint rejects.
    fn description(&self) -> &'static str;

    /// Checks one scenario (a preset or a materialised grid cell).
    fn check_scenario(&self, scenario: &Scenario, out: &mut Vec<Finding>) {
        let _ = (scenario, out);
    }

    /// Checks grid-level structure (axis values, seed derivation).
    fn check_grid(&self, grid: &arsf_core::sweep::SweepGrid, out: &mut Vec<Finding>) {
        let _ = (grid, out);
    }

    /// Checks one successfully parsed baseline file.
    fn check_baseline(&self, baseline: &BaselineContext<'_>, out: &mut Vec<Finding>) {
        let _ = (baseline, out);
    }
}

/// All built-in lints, in deterministic order.
pub fn registry() -> Vec<Box<dyn Lint>> {
    lints::all()
}

/// Runs every registered lint over one scenario.
///
/// Findings come back sorted most-severe-first (stable within a
/// severity, so the registry order breaks ties).
pub fn analyze_scenario(scenario: &Scenario) -> Vec<Finding> {
    let mut findings = Vec::new();
    for lint in registry() {
        lint.check_scenario(scenario, &mut findings);
    }
    sort_findings(&mut findings);
    findings
}

/// Stable-sorts findings most-severe-first.
pub(crate) fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by_key(|f| std::cmp::Reverse(f.severity));
}

/// The `sweep_lint` process exit code for a finding set: `2` if any
/// [`Severity::Error`], else `1` if any [`Severity::Warn`], else `0`
/// ([`Severity::Info`] findings alone are clean).
pub fn exit_code(findings: &[Finding]) -> i32 {
    match findings.iter().map(|f| f.severity).max() {
        Some(Severity::Error) => 2,
        Some(Severity::Warn) => 1,
        _ => 0,
    }
}

/// Renders findings for humans: one line per finding plus a summary
/// tail (`clean` when there are none).
pub fn render(findings: &[Finding]) -> String {
    let mut out = String::new();
    let mut errors = 0usize;
    let mut warnings = 0usize;
    let mut notes = 0usize;
    for finding in findings {
        match finding.severity {
            Severity::Error => errors += 1,
            Severity::Warn => warnings += 1,
            Severity::Info => notes += 1,
        }
        out.push_str(&finding.render());
        out.push('\n');
    }
    if findings.is_empty() {
        out.push_str("clean: no findings\n");
    } else {
        out.push_str(&format!(
            "{errors} error(s), {warnings} warning(s), {notes} note(s)\n"
        ));
    }
    out
}

/// Renders findings as a JSON array (dependency-free; locations are
/// pre-rendered strings, matching the human renderer).
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("[\n");
    for (i, finding) in findings.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"lint\": {}, \"severity\": {}, \"location\": {}, \"message\": {}}}{}\n",
            json_string(finding.lint),
            json_string(finding.severity.label()),
            json_string(&finding.location.to_string()),
            json_string(&finding.message),
            if i + 1 < findings.len() { "," } else { "" }
        ));
    }
    out.push_str("]\n");
    out
}

/// Renders labelled pass findings for humans: a `== pass ==` header per
/// pass, each pass's findings (or a per-pass `clean` line), and one
/// overall summary tail — the text shape of `sweep_lint all`.
pub fn render_passes(passes: &[(&str, Vec<Finding>)]) -> String {
    let mut out = String::new();
    let mut errors = 0usize;
    let mut warnings = 0usize;
    let mut notes = 0usize;
    for (pass, findings) in passes {
        out.push_str(&format!("== {pass} ==\n"));
        for finding in findings {
            match finding.severity {
                Severity::Error => errors += 1,
                Severity::Warn => warnings += 1,
                Severity::Info => notes += 1,
            }
            out.push_str(&finding.render());
            out.push('\n');
        }
        if findings.is_empty() {
            out.push_str("clean: no findings\n");
        }
    }
    out.push_str(&format!(
        "{errors} error(s), {warnings} warning(s), {notes} note(s)\n"
    ));
    out
}

/// Renders labelled pass findings as a JSON array. Every object carries
/// the stable `"schema": 1` marker and the pass name alongside the
/// fields [`render_json`] emits, so downstream tooling can key on them
/// across `sweep_lint` subcommands.
pub fn render_json_passes(passes: &[(&str, Vec<Finding>)]) -> String {
    let total: usize = passes.iter().map(|(_, f)| f.len()).sum();
    let mut emitted = 0usize;
    let mut out = String::from("[\n");
    for (pass, findings) in passes {
        for finding in findings {
            emitted += 1;
            out.push_str(&format!(
                "  {{\"schema\": 1, \"pass\": {}, \"lint\": {}, \"severity\": {}, \
                 \"location\": {}, \"message\": {}}}{}\n",
                json_string(pass),
                json_string(finding.lint),
                json_string(finding.severity.label()),
                json_string(&finding.location.to_string()),
                json_string(&finding.message),
                if emitted < total { "," } else { "" }
            ));
        }
    }
    out.push_str("]\n");
    out
}

/// Minimal JSON string escaping (the same subset the baseline store
/// emits: quotes, backslashes and control characters).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(severity: Severity) -> Finding {
        Finding {
            lint: "test-lint",
            severity,
            location: Location::Cell { cell: 3 },
            message: "something".to_string(),
        }
    }

    #[test]
    fn severity_orders_info_warn_error() {
        assert!(Severity::Info < Severity::Warn);
        assert!(Severity::Warn < Severity::Error);
    }

    #[test]
    fn exit_code_maps_severities_to_the_process_convention() {
        assert_eq!(exit_code(&[]), 0);
        assert_eq!(exit_code(&[finding(Severity::Info)]), 0);
        assert_eq!(
            exit_code(&[finding(Severity::Info), finding(Severity::Warn)]),
            1
        );
        assert_eq!(
            exit_code(&[finding(Severity::Warn), finding(Severity::Error)]),
            2
        );
    }

    #[test]
    fn renderer_names_the_location_and_counts_by_severity() {
        let findings = [finding(Severity::Error), finding(Severity::Warn)];
        let text = render(&findings);
        assert!(text.contains("error[test-lint] cell 3: something"));
        assert!(text.contains("warning[test-lint] cell 3: something"));
        assert!(text.contains("1 error(s), 1 warning(s), 0 note(s)"));
        assert!(render(&[]).contains("clean: no findings"));
    }

    #[test]
    fn json_renderer_escapes_and_separates() {
        let mut f = finding(Severity::Warn);
        f.message = "a \"quoted\"\nmessage".to_string();
        let json = render_json(&[f.clone(), f]);
        assert!(json.contains("\\\"quoted\\\"\\n"));
        assert_eq!(json.matches("\"lint\": \"test-lint\"").count(), 2);
        assert!(json.trim_end().ends_with(']'));
    }

    #[test]
    fn registry_ids_are_unique_and_described() {
        let lints = registry();
        let mut ids: Vec<&str> = lints.iter().map(|l| l.id()).collect();
        assert!(!ids.is_empty());
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), before, "duplicate lint id in registry");
        for lint in &lints {
            assert!(!lint.description().is_empty(), "{} undocumented", lint.id());
        }
    }

    #[test]
    fn locations_render_distinctly() {
        let axis = Location::Axis {
            axis: "fusers",
            indices: vec![0, 2],
        };
        assert_eq!(axis.to_string(), "fusers axis [0, 2]");
        let preset = Location::Scenario {
            name: "baseline-open-loop".to_string(),
        };
        assert_eq!(preset.to_string(), "scenario `baseline-open-loop`");
        let column = Location::Column {
            column: "vehicle_mean_widths".to_string(),
        };
        assert_eq!(column.to_string(), "tolerance `vehicle_mean_widths`");
        let pair = Location::CellPair {
            lesser: 4,
            greater: 17,
        };
        assert_eq!(pair.to_string(), "cells 4 ⪯ 17");
    }

    #[test]
    fn pass_renderers_carry_schema_pass_and_headers() {
        let passes = vec![
            ("presets", vec![finding(Severity::Warn)]),
            ("dominance", vec![]),
        ];
        let text = render_passes(&passes);
        assert!(text.contains("== presets ==\n"));
        assert!(text.contains("== dominance ==\nclean: no findings"));
        assert!(text.ends_with("0 error(s), 1 warning(s), 0 note(s)\n"));

        let json = render_json_passes(&passes);
        assert!(json.contains("\"schema\": 1"));
        assert!(json.contains("\"pass\": \"presets\""));
        assert!(json.trim_end().ends_with(']'));
        // Comma placement: a single object means no trailing comma.
        assert_eq!(json.matches("},").count(), 0);
        // The legacy single-pass renderer stays comma-correct too.
        let two = render_json_passes(&[
            ("a", vec![finding(Severity::Info)]),
            ("b", vec![finding(Severity::Info)]),
        ]);
        assert_eq!(two.matches("},").count(), 1);
    }
}
