//! Static guarantee derivation: per-cell worst-case fusion bounds from
//! the declaration alone (paper Sections II-A and III-B), with no
//! simulation.
//!
//! [`guarantee_report`] abstractly evaluates one [`Scenario`]: from the
//! declared sensor widths, the fault assumption `f`, and the worst-case
//! corruption/silence budgets of the fault set and attacker, it derives
//! the Marzullo bound regime, a worst-case fused-width bound (Theorem 2,
//! extended to every [`FuserSpec`] the engines run, the historical
//! dynamics-bound fuser, and per-vehicle platoon suites), and whether
//! truth-containment is *provable* under the declared budgets.
//!
//! Three lints surface the report ([`guarantee_lints`], kept out of the
//! default [`registry`](crate::registry) because the guarantee view is a
//! dedicated pass, not a structural precondition):
//!
//! * `guarantee-unbounded` (error) — the declared budget lands in the
//!   no-bound regime: whatever the sweep records is unfalsifiable;
//! * `guarantee-vacuous` (warn) — a bound exists but exceeds the widest
//!   single sensor, i.e. the guarantee is weaker than trusting the least
//!   precise sensor alone;
//! * `guarantee-width` (info) — the derived bound itself.
//!
//! [`vet_baseline_guarantees`] turns the report into a soundness oracle
//! over stored [`Baseline`]s: every `CellRecord`'s width and truth-loss
//! columns must respect the cell's statically derived bound, and a
//! drifted-but-within-tolerance cell that violates a theorem is flagged
//! as a `guarantee-violation` error.

use arsf_core::scenario::{FuserSpec, Scenario, StaticModel};
use arsf_core::sweep::store::Baseline;
use arsf_core::sweep::SweepGrid;
use arsf_fusion::bounds::{
    historical_width_bound, regime, static_theorem2_bound, static_width_bound, BoundRegime,
};

use crate::{sort_findings, Finding, Lint, Location, Severity};

/// Absolute slack when comparing a recorded metric against a derived
/// bound: the bounds are exact sums of declared widths, the metrics are
/// round-tripped `f64`s, so anything beyond rounding noise is a genuine
/// violation.
const EPSILON: f64 = 1e-9;

/// The statically derived guarantees of one scenario cell.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct GuaranteeReport {
    /// Declared suite size `n`.
    pub n: usize,
    /// The fusion fault assumption `f`.
    pub f: usize,
    /// Worst-case corrupt transmitting sensors (see
    /// [`StaticModel::corrupt`]).
    pub corrupt: usize,
    /// Worst-case silenced sensors (see [`StaticModel::silent`]).
    pub silent: usize,
    /// The Marzullo regime of the declared budget, taken worst-case over
    /// silent configurations (a budget exceeding `f` reads as
    /// [`BoundRegime::Unbounded`]).
    pub regime: BoundRegime,
    /// Worst-case fused width, when provable; `None` is the no-bound
    /// verdict.
    pub width_bound: Option<f64>,
    /// The widest single declared width — the "trust one sensor" span a
    /// useful bound should not exceed.
    pub span: f64,
    /// Whether the fused interval provably contains the truth every
    /// round under the declared budgets.
    pub truth_containment: bool,
    /// Fused outputs per round the bound applies to (platoon size
    /// closed-loop, else 1); every vehicle carries the same suite, so
    /// the scalar bound replicates.
    pub vehicles: usize,
}

impl GuaranteeReport {
    /// `true` when no finite width bound is provable.
    pub fn unbounded(&self) -> bool {
        self.width_bound.is_none()
    }

    /// `true` when the bound exists but exceeds the widest single
    /// declared width: the fused output may be worse than trusting the
    /// least precise sensor alone.
    pub fn vacuous(&self) -> bool {
        self.width_bound
            .is_some_and(|bound| bound > self.span + EPSILON)
    }
}

/// The regime label used in finding messages.
fn regime_label(regime: BoundRegime) -> &'static str {
    match regime {
        BoundRegime::CorrectWidthBounded => "f < ⌈n/3⌉ (correct-width bounded)",
        BoundRegime::SomeWidthBounded => "f < ⌈n/2⌉ (some-width bounded)",
        BoundRegime::Unbounded => "f ≥ ⌈n/2⌉ or budget > f (unbounded)",
    }
}

/// Worst case over silent configurations: with `silent` sensors able to
/// drop out, every count `k ∈ 0..=silent` of absentees is reachable, and
/// the analysis must hold for all of them. `bound_at(present)` returns
/// the single-configuration bound; the worst case is `None` if any
/// configuration is unbounded, else the maximum. Configurations with
/// nothing transmitting produce no fused interval and are skipped.
fn worst_over_silent(model: &StaticModel, bound_at: impl Fn(usize) -> Option<f64>) -> Option<f64> {
    let n = model.widths.len();
    let mut worst: Option<f64> = None;
    for k in 0..=model.silent.min(n.saturating_sub(1)) {
        let bound = bound_at(n - k)?;
        worst = Some(worst.map_or(bound, |w: f64| w.max(bound)));
    }
    worst
}

/// The worst regime (in guarantee strength) across silent
/// configurations, folding a corruption budget above `f` into
/// [`BoundRegime::Unbounded`].
fn budget_regime(model: &StaticModel) -> BoundRegime {
    let n = model.widths.len();
    let rank = |r: BoundRegime| match r {
        BoundRegime::CorrectWidthBounded => 0,
        BoundRegime::SomeWidthBounded => 1,
        BoundRegime::Unbounded => 2,
    };
    let mut worst = BoundRegime::CorrectWidthBounded;
    for k in 0..=model.silent.min(n.saturating_sub(1)) {
        let present = n - k;
        let f = model.f.min(present - 1);
        let r = if model.corrupt.min(present) > f {
            BoundRegime::Unbounded
        } else {
            regime(present, f)
        };
        if rank(r) > rank(worst) {
            worst = r;
        }
    }
    worst
}

/// Marzullo-family truth containment: every silent configuration must
/// keep the corruption budget within the (clamped) fault assumption.
fn marzullo_containment(model: &StaticModel) -> bool {
    let n = model.widths.len();
    if n == 0 {
        return false;
    }
    (0..=model.silent.min(n - 1)).all(|k| {
        let present = n - k;
        model.corrupt.min(present) <= model.f.min(present - 1)
    })
}

/// Whether the historical fuser's propagated history provably keeps
/// tracking the truth: the per-round drift must be statically known and
/// within the dynamics bound. A silenced round leaves the history
/// unpropagated while a ramping truth keeps moving, so silence voids the
/// proof unless the truth is constant; closed-loop truth (the vehicle's
/// actual speed) has no static drift bound at all.
fn history_tracks_truth(model: &StaticModel, max_rate: f64, dt: f64) -> bool {
    if !max_rate.is_finite() || max_rate < 0.0 || !dt.is_finite() {
        return false;
    }
    match model.truth_rate {
        None => false,
        Some(rate) => rate == 0.0 || (model.silent == 0 && rate <= max_rate * dt.abs() + EPSILON),
    }
}

/// Statically derives the [`GuaranteeReport`] of one scenario.
///
/// # Example
///
/// ```
/// use arsf_analyze::guarantee_report;
/// use arsf_core::scenario::{AttackerSpec, Scenario, StrategySpec, SuiteSpec};
///
/// // The landshark suite (widths 0.2|0.2|1|2) under f = 1 with one
/// // compromised sensor: f < ⌈4/3⌉, so the fused interval is provably
/// // no wider than the widest declared sensor — 2.0 mph — and contains
/// // the truth, before a single round is simulated.
/// let scenario = Scenario::new("doc", SuiteSpec::Landshark).with_attacker(
///     AttackerSpec::Fixed { sensors: vec![0], strategy: StrategySpec::PhantomOptimal },
/// );
/// let report = guarantee_report(&scenario);
/// assert_eq!(report.width_bound, Some(2.0));
/// assert!(report.truth_containment);
/// assert!(!report.vacuous());
/// ```
pub fn guarantee_report(scenario: &Scenario) -> GuaranteeReport {
    let model = scenario.static_model();
    let n = model.widths.len();
    let span = model.widths.iter().copied().fold(0.0_f64, f64::max);
    let mut ascending = model.widths.clone();
    ascending.sort_by(|a, b| a.total_cmp(b));
    // The budget every fuser below reasons about: in the worst case all
    // `silent` sensors are absent *and* all `corrupt` budgets land on
    // transmitting sensors.
    let reach = model.silent + model.corrupt;

    let (width_bound, truth_containment) = match &scenario.fuser {
        FuserSpec::Marzullo | FuserSpec::BrooksIyengar => (
            // Brooks–Iyengar's output interval coincides with Marzullo's,
            // so one analysis covers both.
            worst_over_silent(&model, |present| {
                static_width_bound(&model.widths, present, model.f, model.corrupt)
            }),
            marzullo_containment(&model),
        ),
        FuserSpec::Historical { max_rate, dt } => (
            // History only ever refines the memoryless interval (conflict
            // falls back to it), so the memoryless bound carries over.
            worst_over_silent(&model, |present| {
                historical_width_bound(
                    &model.widths,
                    present,
                    model.f,
                    model.corrupt,
                    *max_rate,
                    *dt,
                )
            }),
            marzullo_containment(&model) && history_tracks_truth(&model, *max_rate, *dt),
        ),
        // The common intersection is a subset of every transmitting
        // interval, in particular of some honest one; with `reach`
        // sensors possibly absent-or-corrupt, the narrowest certainly
        // honest transmitting width is the `reach`-th ascending one. A
        // corrupt interval can pull the intersection off the truth (or
        // empty it — a fusion failure, which records no width).
        FuserSpec::Intersection => (
            (reach < n).then(|| ascending[reach]),
            model.corrupt == 0 && n > 0,
        ),
        // The hull contains every transmitting interval: a single
        // corrupt sensor stretches it arbitrarily (width-preserving
        // forgery still moves the interval), so a bound only exists for
        // honest suites — the hull of truth-containing intervals, which
        // Theorem 2's two-widest sum covers. Containment needs one
        // honest transmitting sensor.
        FuserSpec::Hull => (
            (model.corrupt == 0)
                .then(|| static_theorem2_bound(&model.widths))
                .flatten(),
            reach < n,
        ),
        // Inverse-variance fusion's radius is `sqrt(1/Σ 1/σᵢ²)`, never
        // above the smallest transmitting σ; the narrowest certainly
        // honest width bounds it as for intersection. The weighted mean
        // chases corrupt readings, so truth containment is never
        // provable (it is a probabilistic baseline, not a resilient
        // fuser).
        FuserSpec::InverseVariance => ((reach < n).then(|| ascending[reach]), false),
        // The median of transmitted half-widths is bounded by the widest
        // declared width as long as corrupt readings cannot claim the
        // median position in the worst (most silenced) configuration.
        FuserSpec::MidpointMedian => {
            let present = n - model.silent.min(n);
            (
                (present > 0 && model.corrupt < present.div_ceil(2)).then_some(span),
                false,
            )
        }
        // `FuserSpec` is non-exhaustive: a fuser this analysis does not
        // know gets no guarantees, which is the sound default.
        _ => (None, false),
    };

    GuaranteeReport {
        n,
        f: model.f,
        corrupt: model.corrupt,
        silent: model.silent,
        regime: budget_regime(&model),
        width_bound,
        span,
        truth_containment,
        vehicles: model.vehicles,
    }
}

/// Lint: the declared budget admits no static width bound.
struct GuaranteeUnbounded;

impl Lint for GuaranteeUnbounded {
    fn id(&self) -> &'static str {
        "guarantee-unbounded"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn description(&self) -> &'static str {
        "the declared fault/attacker budget admits no static fused-width bound; \
         recorded results are unfalsifiable"
    }
    fn check_scenario(&self, scenario: &Scenario, out: &mut Vec<Finding>) {
        let report = guarantee_report(scenario);
        if report.unbounded() {
            out.push(Finding {
                lint: self.id(),
                severity: self.severity(),
                location: Location::Scenario {
                    name: scenario.name.clone(),
                },
                message: format!(
                    "fuser `{}`: budget {} corrupt + {} silent of n = {} under f = {} lands in \
                     the no-bound regime ({}); no static width bound exists",
                    scenario.fuser.name(),
                    report.corrupt,
                    report.silent,
                    report.n,
                    report.f,
                    regime_label(report.regime),
                ),
            });
        }
    }
}

/// Lint: the static bound exceeds the widest single sensor.
struct GuaranteeVacuous;

impl Lint for GuaranteeVacuous {
    fn id(&self) -> &'static str {
        "guarantee-vacuous"
    }
    fn severity(&self) -> Severity {
        Severity::Warn
    }
    fn description(&self) -> &'static str {
        "the static width bound exceeds the suite's span: the guarantee is weaker than \
         trusting the least precise sensor alone"
    }
    fn check_scenario(&self, scenario: &Scenario, out: &mut Vec<Finding>) {
        let report = guarantee_report(scenario);
        if report.vacuous() {
            let bound = report.width_bound.unwrap_or(f64::NAN);
            out.push(Finding {
                lint: self.id(),
                severity: self.severity(),
                location: Location::Scenario {
                    name: scenario.name.clone(),
                },
                message: format!(
                    "fuser `{}`: static width bound {bound} exceeds the suite's span {} \
                     (widest declared sensor); the fused output may be worse than trusting \
                     the least precise sensor alone",
                    scenario.fuser.name(),
                    report.span,
                ),
            });
        }
    }
}

/// Lint: the derived bound, reported for the record.
struct GuaranteeWidth;

impl Lint for GuaranteeWidth {
    fn id(&self) -> &'static str {
        "guarantee-width"
    }
    fn severity(&self) -> Severity {
        Severity::Info
    }
    fn description(&self) -> &'static str {
        "reports the statically derived worst-case fused width and truth-containment verdict"
    }
    fn check_scenario(&self, scenario: &Scenario, out: &mut Vec<Finding>) {
        let report = guarantee_report(scenario);
        let Some(bound) = report.width_bound else {
            return; // guarantee-unbounded already carries the verdict
        };
        let containment = if report.truth_containment {
            "truth containment provable"
        } else {
            "truth containment not provable"
        };
        let vehicles = if report.vehicles > 1 {
            format!(", per vehicle × {}", report.vehicles)
        } else {
            String::new()
        };
        out.push(Finding {
            lint: self.id(),
            severity: self.severity(),
            location: Location::Scenario {
                name: scenario.name.clone(),
            },
            message: format!(
                "fuser `{}`: regime {} with n = {}, f = {}, budget {} corrupt + {} silent: \
                 worst-case fused width ≤ {bound}, {containment}{vehicles}",
                scenario.fuser.name(),
                regime_label(report.regime),
                report.n,
                report.f,
                report.corrupt,
                report.silent,
            ),
        });
    }
}

/// The guarantee lints, as a dedicated registry.
///
/// Deliberately *not* part of [`registry`](crate::registry): the default
/// pass checks structural preconditions every definition must satisfy,
/// while the guarantee pass is an opt-in analysis layer (`sweep_lint
/// guarantees`, the record-time unbounded-cell gate, baseline vetting) —
/// several legitimate registry presets intentionally explore vacuous or
/// attacked regimes.
pub fn guarantee_lints() -> Vec<Box<dyn Lint>> {
    vec![
        Box::new(GuaranteeUnbounded),
        Box::new(GuaranteeVacuous),
        Box::new(GuaranteeWidth),
        Box::new(GuaranteeViolation),
    ]
}

/// Runs the guarantee lints over one scenario, most-severe-first.
pub fn analyze_scenario_guarantees(scenario: &Scenario) -> Vec<Finding> {
    let mut findings = Vec::new();
    for lint in guarantee_lints() {
        lint.check_scenario(scenario, &mut findings);
    }
    sort_findings(&mut findings);
    findings
}

/// Runs the guarantee lints over every cell of a grid, each finding
/// relocated to its [`Location::Cell`], most-severe-first.
///
/// This derives a bound (or a no-bound verdict) for every cell without
/// running a single simulation round.
pub fn analyze_grid_guarantees(grid: &SweepGrid) -> Vec<Finding> {
    let mut findings = Vec::new();
    for cell in grid.cells() {
        for mut finding in analyze_scenario_guarantees(&cell.scenario) {
            finding.location = Location::Cell { cell: cell.index };
            findings.push(finding);
        }
    }
    sort_findings(&mut findings);
    findings
}

/// Pass-driver rule id for a stored metric violating its static bound.
struct GuaranteeViolation;

impl Lint for GuaranteeViolation {
    fn id(&self) -> &'static str {
        "guarantee-violation"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn description(&self) -> &'static str {
        "a stored baseline metric violates its cell's statically derived guarantee"
    }
}

/// Vets every stored [`CellRecord`](arsf_core::sweep::store::CellRecord)
/// of `baseline` against the statically derived guarantees of the
/// corresponding `grid` cell — a soundness oracle for golden baselines.
///
/// For every cell with a provable width bound, the recorded `max_width`,
/// `mean_width` and per-vehicle width columns must not exceed it; for
/// every cell with provable truth containment, the recorded `truth_lost`,
/// `truth_loss_rate` and per-vehicle truth-loss columns must be zero.
/// Violations are `guarantee-violation` errors carrying the cell index,
/// column, bound and observed value, located at `location` (the baseline
/// file, typically).
///
/// Records whose cell index falls outside the grid are skipped — the
/// baseline pass (`baseline-address`) already flags grid/baseline
/// mismatches.
pub fn vet_baseline_guarantees(
    grid: &SweepGrid,
    baseline: &Baseline,
    location: &Location,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    for record in &baseline.rows {
        let cell = record.cell as usize;
        if cell >= grid.len() {
            continue;
        }
        let report = guarantee_report(&grid.scenario(cell));

        let mut violation = |column: &str, message: String| {
            findings.push(Finding {
                lint: "guarantee-violation",
                severity: Severity::Error,
                location: location.clone(),
                message: format!("cell {cell} `{column}`: {message}"),
            });
        };

        if let Some(bound) = report.width_bound {
            let mut width_columns = vec!["max_width".to_string(), "mean_width".to_string()];
            for vehicle in 0..report.vehicles {
                width_columns.push(format!("vehicle_max_widths[{vehicle}]"));
                width_columns.push(format!("vehicle_mean_widths[{vehicle}]"));
            }
            for column in &width_columns {
                if let Some(Some(observed)) = record.metric(column) {
                    if observed > bound + EPSILON {
                        violation(
                            column,
                            format!(
                                "observed {observed} exceeds the static Theorem-2 width \
                                 bound {bound}"
                            ),
                        );
                    }
                }
            }
        }

        if report.truth_containment {
            let mut loss_columns = vec!["truth_lost".to_string(), "truth_loss_rate".to_string()];
            for vehicle in 0..report.vehicles {
                loss_columns.push(format!("vehicle_truth_lost[{vehicle}]"));
            }
            for column in &loss_columns {
                if let Some(Some(observed)) = record.metric(column) {
                    if observed > 0.0 {
                        violation(
                            column,
                            format!(
                                "observed {observed}, but truth containment is statically \
                                 provable under the declared budgets (expected 0)"
                            ),
                        );
                    }
                }
            }
        }
    }
    sort_findings(&mut findings);
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use arsf_core::scenario::{AttackerSpec, ClosedLoopSpec, StrategySpec, SuiteSpec, TruthSpec};
    use arsf_sensor::{FaultKind, FaultModel};

    fn attacked(scenario: Scenario, sensors: Vec<usize>) -> Scenario {
        scenario.with_attacker(AttackerSpec::Fixed {
            sensors,
            strategy: StrategySpec::PhantomOptimal,
        })
    }

    #[test]
    fn honest_landshark_is_tightly_bounded() {
        let report = guarantee_report(&Scenario::new("g", SuiteSpec::Landshark));
        assert_eq!(report.regime, BoundRegime::CorrectWidthBounded);
        assert_eq!(report.width_bound, Some(2.0));
        assert!(report.truth_containment);
        assert!(!report.vacuous());
        assert!(!report.unbounded());
    }

    #[test]
    fn attacked_three_sensor_suite_is_vacuous() {
        // Table I's n = 3 suite: f = 1 = ⌈3/3⌉, one attacked sensor →
        // the some-width regime, bound = 11 + 17 = 28 > span 17.
        let scenario = attacked(
            Scenario::new("g", SuiteSpec::Widths(vec![5.0, 11.0, 17.0])),
            vec![0],
        );
        let report = guarantee_report(&scenario);
        assert_eq!(report.regime, BoundRegime::SomeWidthBounded);
        assert_eq!(report.width_bound, Some(28.0));
        assert!(report.vacuous());
        assert!(report.truth_containment);
        let findings = analyze_scenario_guarantees(&scenario);
        assert!(findings.iter().any(|f| f.lint == "guarantee-vacuous"));
    }

    #[test]
    fn over_budget_attack_is_unbounded() {
        let scenario = attacked(Scenario::new("g", SuiteSpec::Landshark), vec![0, 2]);
        let report = guarantee_report(&scenario);
        assert!(report.unbounded());
        assert!(!report.truth_containment);
        let findings = analyze_scenario_guarantees(&scenario);
        let unbounded = findings
            .iter()
            .find(|f| f.lint == "guarantee-unbounded")
            .expect("the no-bound verdict is flagged");
        assert_eq!(unbounded.severity, Severity::Error);
        assert!(!findings.iter().any(|f| f.lint == "guarantee-width"));
    }

    #[test]
    fn silence_degrades_the_regime() {
        // One silenced + one attacked landshark sensor: the k = 1
        // configuration has n = 3, f = 1 → some-width regime, so the
        // worst-case bound is the two-widest sum.
        let scenario = attacked(Scenario::new("g", SuiteSpec::Landshark), vec![0])
            .with_fault(1, FaultModel::new(FaultKind::Silent, 0.5));
        let report = guarantee_report(&scenario);
        assert_eq!(report.regime, BoundRegime::SomeWidthBounded);
        assert_eq!(report.width_bound, Some(3.0));
        assert!(report.truth_containment);
        assert!(report.vacuous());
    }

    #[test]
    fn intersection_and_inverse_variance_bound_by_ascending_reach() {
        for fuser in [FuserSpec::Intersection, FuserSpec::InverseVariance] {
            let scenario = attacked(Scenario::new("g", SuiteSpec::Landshark), vec![3])
                .with_fuser(fuser.clone());
            let report = guarantee_report(&scenario);
            // One of {0.2, 0.2, 1, 2} may be corrupt: the narrowest
            // certainly-honest width is the second ascending one.
            assert_eq!(report.width_bound, Some(0.2));
            assert!(!report.truth_containment, "{fuser:?}");
        }
        let honest = Scenario::new("g", SuiteSpec::Landshark).with_fuser(FuserSpec::Intersection);
        assert!(guarantee_report(&honest).truth_containment);
    }

    #[test]
    fn hull_is_bounded_only_when_honest() {
        let honest = Scenario::new("g", SuiteSpec::Landshark).with_fuser(FuserSpec::Hull);
        let report = guarantee_report(&honest);
        assert_eq!(report.width_bound, Some(3.0));
        assert!(report.truth_containment);
        let attacked = attacked(honest, vec![0]);
        let report = guarantee_report(&attacked);
        assert!(report.unbounded());
        assert!(report.truth_containment); // 3 honest sensors remain
    }

    #[test]
    fn midpoint_median_needs_an_honest_majority() {
        let ok = attacked(Scenario::new("g", SuiteSpec::Landshark), vec![0])
            .with_fuser(FuserSpec::MidpointMedian);
        assert_eq!(guarantee_report(&ok).width_bound, Some(2.0));
        let outvoted = attacked(Scenario::new("g", SuiteSpec::Landshark), vec![0, 1])
            .with_fuser(FuserSpec::MidpointMedian);
        assert!(guarantee_report(&outvoted).unbounded());
    }

    #[test]
    fn historical_containment_needs_a_compatible_drift() {
        let base = attacked(Scenario::new("g", SuiteSpec::Landshark), vec![0]).with_fuser(
            FuserSpec::Historical {
                max_rate: 3.5,
                dt: 0.1,
            },
        );
        let report = guarantee_report(&base);
        assert_eq!(report.width_bound, Some(2.0));
        assert!(report.truth_containment); // constant truth

        let slow_ramp = base.clone().with_truth(TruthSpec::Ramp {
            start: 10.0,
            rate_per_round: 0.3, // ≤ max_rate · dt = 0.35
        });
        assert!(guarantee_report(&slow_ramp).truth_containment);

        let fast_ramp = base.clone().with_truth(TruthSpec::Ramp {
            start: 10.0,
            rate_per_round: 0.5,
        });
        let report = guarantee_report(&fast_ramp);
        assert!(!report.truth_containment);
        assert_eq!(report.width_bound, Some(2.0)); // width still bounded

        let closed = base.with_closed_loop(ClosedLoopSpec::new(10.0));
        assert!(!guarantee_report(&closed).truth_containment);
    }

    #[test]
    fn platoon_cells_replicate_the_bound_per_vehicle() {
        let scenario = Scenario::new("g", SuiteSpec::Landshark)
            .with_closed_loop(ClosedLoopSpec::new(10.0).with_platoon(3, 0.05));
        let report = guarantee_report(&scenario);
        assert_eq!(report.vehicles, 3);
        assert_eq!(report.width_bound, Some(2.0));
        assert!(report.truth_containment);
    }

    #[test]
    fn grid_pass_relocates_findings_to_cells() {
        let grid = SweepGrid::new(attacked(Scenario::new("g", SuiteSpec::Landshark), vec![0]))
            .fusers(vec![FuserSpec::Marzullo, FuserSpec::Hull]);
        let findings = analyze_grid_guarantees(&grid);
        assert_eq!(findings.len(), 2);
        assert!(findings
            .iter()
            .all(|f| matches!(f.location, Location::Cell { .. })));
        // The hull cell is unbounded (error first), the Marzullo cell
        // reports its bound.
        assert_eq!(findings[0].lint, "guarantee-unbounded");
        assert_eq!(findings[1].lint, "guarantee-width");
    }

    #[test]
    fn guarantee_lint_ids_are_unique_and_described() {
        let lints = guarantee_lints();
        let mut ids: Vec<&str> = lints.iter().map(|l| l.id()).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), before);
        for lint in &lints {
            assert!(!lint.description().is_empty(), "{} undocumented", lint.id());
        }
    }
}
