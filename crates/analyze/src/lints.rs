//! The built-in lint rules.
//!
//! Scenario lints check one [`Scenario`] (a registry preset or a
//! materialised grid cell); grid lints check axis-level structure;
//! baseline lints check one parsed baseline file. See the crate docs
//! for the severity conventions and [`crate::registry`] for the full
//! ordered list.

use std::collections::{BTreeSet, HashMap};

use arsf_core::scenario::{faults_label, AttackerSpec, Scenario};
use arsf_core::sweep::store::{detector_label, fuser_label};
use arsf_core::sweep::{derive_seed, SweepGrid};
use arsf_core::DetectionMode;

use crate::{BaselineContext, Finding, Lint, Location, Severity};

/// Every built-in lint, in deterministic (roughly layer) order.
pub(crate) fn all() -> Vec<Box<dyn Lint>> {
    vec![
        Box::new(ScenarioValidates),
        Box::new(FusionSoundness),
        Box::new(AttackerBudget),
        Box::new(FaultBudget),
        Box::new(CombinedBudget),
        Box::new(DetectorWindow),
        Box::new(EnvelopeOrder),
        Box::new(EmptyRun),
        Box::new(DuplicateAxisValue),
        Box::new(SeedCollision),
        Box::new(BaselineAddress),
        Box::new(BaselineFilename),
    ]
}

fn scenario_location(scenario: &Scenario) -> Location {
    Location::Scenario {
        name: scenario.name.clone(),
    }
}

fn distinct_fault_sensors(scenario: &Scenario) -> BTreeSet<usize> {
    scenario.faults.iter().map(|(sensor, _)| *sensor).collect()
}

fn distinct_attacked_sensors(scenario: &Scenario) -> BTreeSet<usize> {
    match &scenario.attacker {
        AttackerSpec::Fixed { sensors, .. } => sensors.iter().copied().collect(),
        _ => BTreeSet::new(),
    }
}

/// `scenario-validate` (error): the engines reject the definition.
struct ScenarioValidates;

impl Lint for ScenarioValidates {
    fn id(&self) -> &'static str {
        "scenario-validate"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn description(&self) -> &'static str {
        "the scenario fails Scenario::validate, so no engine can execute it"
    }
    fn check_scenario(&self, scenario: &Scenario, out: &mut Vec<Finding>) {
        if let Err(err) = scenario.validate() {
            out.push(Finding {
                lint: self.id(),
                severity: self.severity(),
                location: scenario_location(scenario),
                message: err.to_string(),
            });
        }
    }
}

/// `fusion-soundness` (error): `n ≤ 2f` voids the containment theorems.
struct FusionSoundness;

impl Lint for FusionSoundness {
    fn id(&self) -> &'static str {
        "fusion-soundness"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn description(&self) -> &'static str {
        "the suite has n <= 2f sensors, voiding the n > 2f containment precondition"
    }
    fn check_scenario(&self, scenario: &Scenario, out: &mut Vec<Finding>) {
        let n = scenario.suite.len();
        if n <= 2 * scenario.f {
            out.push(Finding {
                lint: self.id(),
                severity: self.severity(),
                location: scenario_location(scenario),
                message: format!(
                    "suite `{}` has n = {n} sensors with f = {}: Marzullo/Brooks-Iyengar \
                     containment needs n > 2f",
                    scenario.suite.label(),
                    scenario.f
                ),
            });
        }
    }
}

/// `attacker-budget` (error): the fixed compromised set exceeds `f`.
struct AttackerBudget;

impl Lint for AttackerBudget {
    fn id(&self) -> &'static str {
        "attacker-budget"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn description(&self) -> &'static str {
        "a fixed attacker compromises more distinct sensors than the fault assumption f"
    }
    fn check_scenario(&self, scenario: &Scenario, out: &mut Vec<Finding>) {
        let attacked = distinct_attacked_sensors(scenario);
        if attacked.len() > scenario.f {
            out.push(Finding {
                lint: self.id(),
                severity: self.severity(),
                location: scenario_location(scenario),
                message: format!(
                    "attacker `{}` compromises {} distinct sensors but the fault assumption \
                     is f = {}: the fused interval is not guaranteed to contain the truth",
                    scenario.attacker.label(),
                    attacked.len(),
                    scenario.f
                ),
            });
        }
    }
}

/// `fault-budget` (warning): the injected fault set exceeds `f`.
struct FaultBudget;

impl Lint for FaultBudget {
    fn id(&self) -> &'static str {
        "fault-budget"
    }
    fn severity(&self) -> Severity {
        Severity::Warn
    }
    fn description(&self) -> &'static str {
        "fault injection touches more distinct sensors than the fault assumption f"
    }
    fn check_scenario(&self, scenario: &Scenario, out: &mut Vec<Finding>) {
        let faulted = distinct_fault_sensors(scenario);
        if faulted.len() > scenario.f {
            out.push(Finding {
                lint: self.id(),
                severity: self.severity(),
                location: scenario_location(scenario),
                message: format!(
                    "fault set `{}` touches {} distinct sensors with f = {}: the run is a \
                     deliberate over-budget stress, not a theorem-covered configuration",
                    faults_label(&scenario.faults),
                    faulted.len(),
                    scenario.f
                ),
            });
        }
    }
}

/// `combined-budget` (info): faults and attacker are each within `f`,
/// but can jointly corrupt more than `f` sensors in one round.
struct CombinedBudget;

impl Lint for CombinedBudget {
    fn id(&self) -> &'static str {
        "combined-budget"
    }
    fn severity(&self) -> Severity {
        Severity::Info
    }
    fn description(&self) -> &'static str {
        "faults plus attacker can jointly corrupt more than f sensors in one round"
    }
    fn check_scenario(&self, scenario: &Scenario, out: &mut Vec<Finding>) {
        let faulted = distinct_fault_sensors(scenario);
        let attacked = distinct_attacked_sensors(scenario);
        if faulted.len() > scenario.f || attacked.len() > scenario.f {
            return; // already an attacker-budget / fault-budget finding
        }
        let (combined, qualifier) = match &scenario.attacker {
            AttackerSpec::RandomEachRound => (faulted.len() + 1, "up to "),
            _ => (faulted.union(&attacked).count(), ""),
        };
        if combined > scenario.f {
            out.push(Finding {
                lint: self.id(),
                severity: self.severity(),
                location: scenario_location(scenario),
                message: format!(
                    "faults and attacker together can corrupt {qualifier}{combined} distinct \
                     sensors in a round with f = {}: rows measure behaviour beyond the \
                     corruption budget",
                    scenario.f
                ),
            });
        }
    }
}

/// `detector-window` (warning): a windowed detector that can never fill
/// its window or never condemn.
struct DetectorWindow;

impl Lint for DetectorWindow {
    fn id(&self) -> &'static str {
        "detector-window"
    }
    fn severity(&self) -> Severity {
        Severity::Warn
    }
    fn description(&self) -> &'static str {
        "a windowed detector's window is empty, exceeds the run length, tracks no \
         sensors, or its tolerance its window"
    }
    fn check_scenario(&self, scenario: &Scenario, out: &mut Vec<Finding>) {
        if let DetectionMode::Windowed { window, tolerance } = scenario.detector {
            if window == 0 {
                out.push(Finding {
                    lint: self.id(),
                    severity: self.severity(),
                    location: scenario_location(scenario),
                    message: "windowed detector window is 0: an empty window can never \
                              observe anything, and the engines refuse to build it"
                        .to_string(),
                });
                // The unfillable / uncondemnable diagnoses below are just
                // restatements of the same degenerate value.
                return;
            }
            if scenario.suite.is_empty() {
                out.push(Finding {
                    lint: self.id(),
                    severity: self.severity(),
                    location: scenario_location(scenario),
                    message: "windowed detector over an empty suite: there is no sensor to \
                              track, so it can never flag or condemn"
                        .to_string(),
                });
            }
            if window as u64 > scenario.rounds {
                out.push(Finding {
                    lint: self.id(),
                    severity: self.severity(),
                    location: scenario_location(scenario),
                    message: format!(
                        "windowed detector window {window} exceeds the {}-round run: the \
                         window never fills",
                        scenario.rounds
                    ),
                });
            }
            if tolerance >= window {
                out.push(Finding {
                    lint: self.id(),
                    severity: self.severity(),
                    location: scenario_location(scenario),
                    message: format!(
                        "windowed detector tolerance {tolerance} >= window {window}: a window \
                         holds at most {window} violations, so the detector can never condemn"
                    ),
                });
            }
        }
    }
}

/// `envelope-order` (warning): `δ1 > δ2` inverts the paper's envelope
/// assumption.
struct EnvelopeOrder;

impl Lint for EnvelopeOrder {
    fn id(&self) -> &'static str {
        "envelope-order"
    }
    fn severity(&self) -> Severity {
        Severity::Warn
    }
    fn description(&self) -> &'static str {
        "the closed-loop envelope has delta1 > delta2, inverting the paper's assumption"
    }
    fn check_scenario(&self, scenario: &Scenario, out: &mut Vec<Finding>) {
        if let Some(spec) = &scenario.closed_loop {
            let finite = spec.delta_up.is_finite() && spec.delta_down.is_finite();
            if finite && spec.delta_up > spec.delta_down {
                out.push(Finding {
                    lint: self.id(),
                    severity: self.severity(),
                    location: scenario_location(scenario),
                    message: format!(
                        "envelope half-widths \u{3b4}1 = {} > \u{3b4}2 = {}: the case study's \
                         safety argument assumes \u{3b4}1 <= \u{3b4}2",
                        spec.delta_up, spec.delta_down
                    ),
                });
            }
        }
    }
}

/// `empty-run` (warning): zero rounds makes every metric vacuous.
struct EmptyRun;

impl Lint for EmptyRun {
    fn id(&self) -> &'static str {
        "empty-run"
    }
    fn severity(&self) -> Severity {
        Severity::Warn
    }
    fn description(&self) -> &'static str {
        "the scenario runs zero rounds, so every metric is vacuous"
    }
    fn check_scenario(&self, scenario: &Scenario, out: &mut Vec<Finding>) {
        if scenario.rounds == 0 {
            out.push(Finding {
                lint: self.id(),
                severity: self.severity(),
                location: scenario_location(scenario),
                message: "the scenario runs 0 rounds: every metric will be vacuous".to_string(),
            });
        }
    }
}

/// `duplicate-axis-value` (warning): the same value twice on one axis.
struct DuplicateAxisValue;

impl DuplicateAxisValue {
    fn check_axis(&self, axis: &'static str, labels: &[String], out: &mut Vec<Finding>) {
        let mut positions: HashMap<&str, Vec<usize>> = HashMap::new();
        for (i, label) in labels.iter().enumerate() {
            positions.entry(label).or_default().push(i);
        }
        let mut duplicated: Vec<(&str, Vec<usize>)> = positions
            .into_iter()
            .filter(|(_, indices)| indices.len() > 1)
            .collect();
        duplicated.sort_by_key(|(_, indices)| indices[0]);
        for (label, indices) in duplicated {
            let note = if axis == "seeds" {
                " (derived per-cell seeds still differ, but the replicate is unintended \
                 unless the values were meant to vary)"
            } else {
                ""
            };
            out.push(Finding {
                lint: self.id(),
                severity: self.severity(),
                location: Location::Axis {
                    axis,
                    indices: indices.clone(),
                },
                message: format!(
                    "value `{label}` appears {} times on the {axis} axis: duplicate cells \
                     multiply the grid without adding coverage{note}",
                    indices.len()
                ),
            });
        }
    }
}

impl Lint for DuplicateAxisValue {
    fn id(&self) -> &'static str {
        "duplicate-axis-value"
    }
    fn severity(&self) -> Severity {
        Severity::Warn
    }
    fn description(&self) -> &'static str {
        "an axis lists the same value twice, multiplying grid size without adding coverage"
    }
    fn check_grid(&self, grid: &SweepGrid, out: &mut Vec<Finding>) {
        let labelled: [(&'static str, Vec<String>); 8] = [
            (
                "suites",
                grid.suite_axis().iter().map(|s| s.label()).collect(),
            ),
            (
                "fault_sets",
                grid.fault_set_axis()
                    .iter()
                    .map(|f| faults_label(f))
                    .collect(),
            ),
            (
                "attackers",
                grid.attacker_axis().iter().map(|a| a.label()).collect(),
            ),
            (
                "schedules",
                grid.schedule_axis()
                    .iter()
                    .map(|s| s.name().to_string())
                    .collect(),
            ),
            (
                "fusers",
                grid.fuser_axis().iter().map(fuser_label).collect(),
            ),
            (
                "detectors",
                grid.detector_axis().iter().map(detector_label).collect(),
            ),
            (
                "rounds",
                grid.rounds_axis().iter().map(|r| r.to_string()).collect(),
            ),
            (
                "seeds",
                grid.seed_axis().iter().map(|s| s.to_string()).collect(),
            ),
        ];
        for (axis, labels) in &labelled {
            self.check_axis(axis, labels, out);
        }
    }
}

/// `seed-collision` (warning): two cells derive the same RNG seed.
struct SeedCollision;

impl Lint for SeedCollision {
    fn id(&self) -> &'static str {
        "seed-collision"
    }
    fn severity(&self) -> Severity {
        Severity::Warn
    }
    fn description(&self) -> &'static str {
        "two grid cells derive the same per-cell RNG seed and sample identical streams"
    }
    fn check_grid(&self, grid: &SweepGrid, out: &mut Vec<Finding>) {
        let seeds = grid.seed_axis();
        let cells = grid.len();
        let mut first_cell: HashMap<u64, usize> = HashMap::with_capacity(cells);
        for cell in 0..cells {
            // Seeds are the fastest-varying axis, so the seed-axis value
            // of cell i is seeds[i % seeds.len()].
            let base = seeds[cell % seeds.len()];
            let derived = derive_seed(base, cell as u64);
            if let Some(&earlier) = first_cell.get(&derived) {
                out.push(Finding {
                    lint: self.id(),
                    severity: self.severity(),
                    location: Location::Cell { cell },
                    message: format!(
                        "derived seed {derived:#018x} collides with cell {earlier} (seed axis \
                         values {} and {base}): the two cells sample identical measurement \
                         streams",
                        seeds[earlier % seeds.len()]
                    ),
                });
            } else {
                first_cell.insert(derived, cell);
            }
        }
    }
}

/// `baseline-address` (error): the stored content address does not match
/// the recomputed address of the embedded definition.
struct BaselineAddress;

impl Lint for BaselineAddress {
    fn id(&self) -> &'static str {
        "baseline-address"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn description(&self) -> &'static str {
        "the stored content address does not match the recomputed address of the definition"
    }
    fn check_baseline(&self, baseline: &BaselineContext<'_>, out: &mut Vec<Finding>) {
        if let Err(err) = baseline.baseline.verify_address() {
            out.push(Finding {
                lint: self.id(),
                severity: self.severity(),
                location: Location::File {
                    path: baseline.path.to_path_buf(),
                },
                message: err.to_string(),
            });
        }
    }
}

/// `baseline-filename` (error): the file stem is not the stored address,
/// so `Baseline::load_for_grid` can never find (or would mis-trust) it.
struct BaselineFilename;

impl Lint for BaselineFilename {
    fn id(&self) -> &'static str {
        "baseline-filename"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn description(&self) -> &'static str {
        "the baseline's file stem is not its stored content address"
    }
    fn check_baseline(&self, baseline: &BaselineContext<'_>, out: &mut Vec<Finding>) {
        let stem = baseline
            .path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        if stem != baseline.baseline.address {
            out.push(Finding {
                lint: self.id(),
                severity: self.severity(),
                location: Location::File {
                    path: baseline.path.to_path_buf(),
                },
                message: format!(
                    "file stem `{stem}` does not match the stored address {}: the check \
                     harness looks baselines up by address and will never read this file",
                    baseline.baseline.address
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use arsf_core::scenario::{
        AttackerSpec, ClosedLoopSpec, FuserSpec, Scenario, StrategySpec, SuiteSpec,
    };
    use arsf_core::sweep::{derive_seed, SweepGrid};
    use arsf_core::DetectionMode;
    use arsf_sensor::{FaultKind, FaultModel};

    use crate::{analyze_grid, analyze_scenario, Location, Severity};

    fn ids(findings: &[crate::Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.lint).collect()
    }

    #[test]
    fn a_default_scenario_is_clean() {
        let findings = analyze_scenario(&Scenario::new("clean", SuiteSpec::Landshark));
        assert!(findings.is_empty(), "unexpected findings: {findings:?}");
    }

    #[test]
    fn fusion_soundness_flags_n_3_f_2_as_error() {
        let scenario = Scenario::new("unsound", SuiteSpec::Widths(vec![1.0, 2.0, 3.0])).with_f(2);
        let findings = analyze_scenario(&scenario);
        assert_eq!(ids(&findings), vec!["fusion-soundness"]);
        assert_eq!(findings[0].severity, Severity::Error);
        assert!(findings[0].message.contains("n = 3"));
        assert!(findings[0].message.contains("f = 2"));
    }

    #[test]
    fn attacker_budget_counts_distinct_sensors() {
        let over = Scenario::new("over", SuiteSpec::Landshark).with_attacker(AttackerSpec::Fixed {
            sensors: vec![0, 2],
            strategy: StrategySpec::PhantomOptimal,
        });
        assert!(ids(&analyze_scenario(&over)).contains(&"attacker-budget"));

        // The same sensor listed twice is one compromised sensor.
        let duplicated =
            Scenario::new("dup", SuiteSpec::Landshark).with_attacker(AttackerSpec::Fixed {
                sensors: vec![0, 0],
                strategy: StrategySpec::PhantomOptimal,
            });
        assert!(!ids(&analyze_scenario(&duplicated)).contains(&"attacker-budget"));
    }

    #[test]
    fn fault_budget_warns_and_combined_budget_is_informational() {
        let faulty = Scenario::new("faulty", SuiteSpec::Landshark)
            .with_fault(0, FaultModel::new(FaultKind::Silent, 1.0))
            .with_fault(1, FaultModel::new(FaultKind::Silent, 1.0));
        let findings = analyze_scenario(&faulty);
        let budget = findings.iter().find(|f| f.lint == "fault-budget");
        assert_eq!(budget.map(|f| f.severity), Some(Severity::Warn));

        // Table II's model: one fault plus a random-each-round attacker is
        // within each individual budget but jointly exceeds f = 1 — an
        // Info note, so preset linting stays clean.
        let table2 = Scenario::new("t2", SuiteSpec::Landshark)
            .with_fault(2, FaultModel::new(FaultKind::Silent, 1.0))
            .with_attacker(AttackerSpec::RandomEachRound);
        let findings = analyze_scenario(&table2);
        assert_eq!(ids(&findings), vec!["combined-budget"]);
        assert_eq!(findings[0].severity, Severity::Info);
        assert!(findings[0].message.contains("up to 2"));
    }

    #[test]
    fn detector_window_flags_unfillable_and_uncondemnable_windows() {
        let long_window = Scenario::new("w", SuiteSpec::Landshark)
            .with_detector(DetectionMode::Windowed {
                window: 200,
                tolerance: 3,
            })
            .with_rounds(50);
        let findings = analyze_scenario(&long_window);
        assert_eq!(ids(&findings), vec!["detector-window"]);
        assert!(findings[0].message.contains("never fills"));

        let dead =
            Scenario::new("d", SuiteSpec::Landshark).with_detector(DetectionMode::Windowed {
                window: 5,
                tolerance: 5,
            });
        let findings = analyze_scenario(&dead);
        assert_eq!(ids(&findings), vec!["detector-window"]);
        assert!(findings[0].message.contains("never condemn"));
    }

    #[test]
    fn detector_window_flags_degenerate_configurations() {
        // window = 0: the engines panic building it; exactly one finding
        // (the redundant unfillable/uncondemnable restatements are
        // suppressed).
        let empty_window =
            Scenario::new("z", SuiteSpec::Landshark).with_detector(DetectionMode::Windowed {
                window: 0,
                tolerance: 0,
            });
        let findings = analyze_scenario(&empty_window);
        assert_eq!(ids(&findings), vec!["detector-window"]);
        assert!(findings[0].message.contains("window is 0"));
        assert!(findings[0].message.contains("refuse"));

        // An empty suite builds but tracks nothing: the windowed detector
        // is inert. (The empty suite itself also trips the structural
        // suite lints, so just look for our message.)
        let no_sensors =
            Scenario::new("n", SuiteSpec::Widths(vec![])).with_detector(DetectionMode::Windowed {
                window: 4,
                tolerance: 1,
            });
        let findings = analyze_scenario(&no_sensors);
        assert!(
            findings
                .iter()
                .any(|f| f.lint == "detector-window" && f.message.contains("no sensor to track")),
            "{findings:?}"
        );
    }

    #[test]
    fn envelope_order_and_empty_run_warn() {
        let inverted = Scenario::new("inv", SuiteSpec::Landshark)
            .with_closed_loop(ClosedLoopSpec::new(30.0).with_deltas(1.0, 0.25));
        assert!(ids(&analyze_scenario(&inverted)).contains(&"envelope-order"));

        let ok = Scenario::new("ok", SuiteSpec::Landshark)
            .with_closed_loop(ClosedLoopSpec::new(30.0).with_deltas(0.25, 1.0));
        assert!(analyze_scenario(&ok).is_empty());

        let empty = Scenario::new("empty", SuiteSpec::Landshark).with_rounds(0);
        assert!(ids(&analyze_scenario(&empty)).contains(&"empty-run"));
    }

    #[test]
    fn invalid_envelope_is_a_validate_error_not_an_order_warning() {
        let bad = Scenario::new("nan", SuiteSpec::Landshark)
            .with_closed_loop(ClosedLoopSpec::new(f64::NAN));
        let findings = analyze_scenario(&bad);
        assert_eq!(ids(&findings), vec!["scenario-validate"]);
        assert_eq!(findings[0].severity, Severity::Error);
    }

    #[test]
    fn duplicate_axis_value_points_at_the_offending_indices() {
        let grid = SweepGrid::new(Scenario::new("dup", SuiteSpec::Landshark)).fusers([
            FuserSpec::Marzullo,
            FuserSpec::BrooksIyengar,
            FuserSpec::Marzullo,
        ]);
        let findings = analyze_grid(&grid);
        let dup: Vec<_> = findings
            .iter()
            .filter(|f| f.lint == "duplicate-axis-value")
            .collect();
        assert_eq!(dup.len(), 1);
        assert_eq!(
            dup[0].location,
            Location::Axis {
                axis: "fusers",
                indices: vec![0, 2],
            }
        );
        assert!(dup[0].message.contains("`marzullo` appears 2 times"));
    }

    #[test]
    fn seed_collision_is_detected_via_the_splitmix_derivation() {
        // derive_seed(b, c) = sm(b ^ sm(c)); cells 0 and 1 decode seed-axis
        // values a and b, so choosing b = a ^ sm(0) ^ sm(1) makes both
        // cells derive the same seed.
        fn sm(mut z: u64) -> u64 {
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        let a = 2014_u64;
        let b = a ^ sm(0) ^ sm(1);
        assert_eq!(derive_seed(a, 0), derive_seed(b, 1), "construction broken");

        let grid = SweepGrid::new(Scenario::new("collide", SuiteSpec::Landshark)).seeds([a, b]);
        let findings = analyze_grid(&grid);
        let collision: Vec<_> = findings
            .iter()
            .filter(|f| f.lint == "seed-collision")
            .collect();
        assert_eq!(collision.len(), 1);
        assert_eq!(collision[0].location, Location::Cell { cell: 1 });
        assert!(collision[0].message.contains("collides with cell 0"));

        // Distinct default-style seeds do not collide.
        let clean = SweepGrid::new(Scenario::new("ok", SuiteSpec::Landshark)).seeds([1, 2, 3]);
        assert!(analyze_grid(&clean).is_empty());
    }
}
