//! The baseline pass: lint persisted sweep baselines and the baseline
//! directory as a whole.
//!
//! Per-file checks (address integrity, filename/address agreement) run
//! through the [`Lint`] registry against a [`BaselineContext`]. The
//! directory driver adds findings the trait cannot express because they
//! concern unreadable files or cross-file context:
//!
//! * `baseline-parse` (error) — the file is not a readable baseline;
//! * `baseline-io` (error) — the directory itself cannot be listed;
//! * `baseline-orphan` (warning) — a `*.json` file whose 16-hex stem no
//!   known golden grid references;
//! * `baseline-missing` (warning) — a known golden grid with no
//!   recorded baseline file;
//! * `baseline-skipped` (info) — a `*.json` file whose stem is not a
//!   content address, so no baseline check ever looks at it;
//! * `tolerance-dead` (warning, via [`tolerance_findings`]) — a
//!   configured tolerance column that matches nothing anywhere.

use std::path::Path;

use arsf_core::sweep::diff::DiffConfig;
use arsf_core::sweep::store::{baseline_path, Baseline};

use crate::{registry, sort_findings, Finding, Location, Severity};

/// One parsed baseline file, as seen by [`Lint::check_baseline`](crate::Lint::check_baseline).
#[derive(Debug)]
pub struct BaselineContext<'a> {
    /// The file the baseline was loaded from.
    pub path: &'a Path,
    /// The parsed baseline.
    pub baseline: &'a Baseline,
}

/// Lints one baseline file: parses it, then runs every registered lint.
///
/// An unreadable or unparsable file yields a single `baseline-parse`
/// error finding rather than a panic or an `Err` — malformed input is
/// exactly what the analyzer exists to report.
pub fn analyze_baseline_file(path: &Path) -> Vec<Finding> {
    let baseline = match Baseline::load(path) {
        Ok(baseline) => baseline,
        Err(err) => {
            return vec![Finding {
                lint: "baseline-parse",
                severity: Severity::Error,
                location: Location::File {
                    path: path.to_path_buf(),
                },
                message: err.to_string(),
            }]
        }
    };
    let ctx = BaselineContext {
        path,
        baseline: &baseline,
    };
    let mut findings = Vec::new();
    for lint in registry() {
        lint.check_baseline(&ctx, &mut findings);
    }
    sort_findings(&mut findings);
    findings
}

/// Lints a baseline directory against the set of known golden grids.
///
/// `known` pairs each golden grid's name with its expected content
/// address (`arsf-bench`'s `golden::all()` provides it; this crate
/// cannot depend on the grids themselves). Every `*.json` file whose
/// stem looks like a content address (16 lowercase hex digits) is
/// linted with [`analyze_baseline_file`] and checked for orphanhood;
/// other JSON files (e.g. a throughput report living in the same
/// directory) are not baselines and are skipped with an info-level
/// `baseline-skipped` finding each, so a typo'd baseline name stays
/// visible.
pub fn analyze_baseline_dir(dir: &Path, known: &[(String, String)]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(err) => {
            return vec![Finding {
                lint: "baseline-io",
                severity: Severity::Error,
                location: Location::File {
                    path: dir.to_path_buf(),
                },
                message: format!("cannot list baseline directory: {err}"),
            }]
        }
    };
    let mut paths: Vec<std::path::PathBuf> = entries
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|path| path.extension().is_some_and(|ext| ext == "json"))
        .collect();
    paths.sort();

    for path in &paths {
        let stem = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        if !is_content_address(&stem) {
            // Not a baseline (e.g. a throughput report sharing the
            // directory) — but say so, because a typo'd baseline name
            // would otherwise silently escape every check.
            findings.push(Finding {
                lint: "baseline-skipped",
                severity: Severity::Info,
                location: Location::File { path: path.clone() },
                message: format!(
                    "`{stem}.json` is not a content-addressed baseline (expected a 16-hex \
                     stem): skipped by every baseline check"
                ),
            });
            continue;
        }
        findings.extend(analyze_baseline_file(path));
        if !known.iter().any(|(_, address)| *address == stem) {
            findings.push(Finding {
                lint: "baseline-orphan",
                severity: Severity::Warn,
                location: Location::File { path: path.clone() },
                message: format!(
                    "no golden grid references address {stem}: the file is never checked and \
                     likely predates a grid change (delete it or re-record)"
                ),
            });
        }
    }

    for (name, address) in known {
        let expected = baseline_path(dir, address);
        if !expected.exists() {
            findings.push(Finding {
                lint: "baseline-missing",
                severity: Severity::Warn,
                location: Location::Grid { name: name.clone() },
                message: format!(
                    "no recorded baseline {address}.json in {}: record one with \
                     `scenario_sweep --baseline record`",
                    dir.display()
                ),
            });
        }
    }

    sort_findings(&mut findings);
    findings
}

/// Whether a file stem is a sweep content address (16 lowercase hex
/// digits, the FNV-1a rendering the store emits).
fn is_content_address(stem: &str) -> bool {
    stem.len() == 16
        && stem
            .chars()
            .all(|c| c.is_ascii_hexdigit() && !c.is_ascii_uppercase())
}

/// Flags configured tolerance columns that match no metric column in
/// any of the given baselines (`tolerance-dead`, warning).
///
/// A tolerance entry matches a column either exactly or as a *family*:
/// `vehicle_mean_widths` covers `vehicle_mean_widths[0]`,
/// `vehicle_mean_widths[1]`, … — the same rule
/// [`DiffConfig::tolerance_for`] applies. Matching is evaluated across
/// **all** baselines at once because one check-harness configuration is
/// applied to every grid: a family that only exists in the closed-loop
/// grid is alive, not dead.
pub fn tolerance_findings(config: &DiffConfig, baselines: &[&Baseline]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (column, _) in config.column_entries() {
        let matched = baselines.iter().any(|baseline| {
            baseline.rows.iter().any(|row| {
                row.metrics
                    .iter()
                    .any(|(name, _)| column_matches(column, name))
            })
        });
        if !matched {
            findings.push(Finding {
                lint: "tolerance-dead",
                severity: Severity::Warn,
                location: Location::Column {
                    column: column.clone(),
                },
                message: format!(
                    "tolerance for `{column}` matches no column in any of the {} baseline(s) \
                     checked: it guards nothing (typo, or the column was renamed)",
                    baselines.len()
                ),
            });
        }
    }
    sort_findings(&mut findings);
    findings
}

/// Whether a configured tolerance name covers a concrete metric column,
/// exactly or as an indexed family prefix.
fn column_matches(configured: &str, column: &str) -> bool {
    if configured == column {
        return true;
    }
    column
        .strip_prefix(configured)
        .is_some_and(|rest| rest.starts_with('[') && rest.ends_with(']'))
}

#[cfg(test)]
mod tests {
    use std::path::Path;

    use arsf_core::scenario::{Scenario, SuiteSpec};
    use arsf_core::sweep::diff::{DiffConfig, Tolerance};
    use arsf_core::sweep::store::Baseline;
    use arsf_core::sweep::SweepGrid;

    use super::{analyze_baseline_dir, analyze_baseline_file, tolerance_findings};

    fn tiny_baseline() -> Baseline {
        let grid = SweepGrid::new(Scenario::new("tiny", SuiteSpec::Landshark).with_rounds(5));
        Baseline::from_report(&grid, &grid.run_serial())
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("arsf-analyze-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn a_recorded_baseline_is_clean_and_corruption_is_an_error() {
        let dir = temp_dir("corrupt");
        let baseline = tiny_baseline();
        let path = baseline.save(&dir).unwrap();
        assert!(analyze_baseline_file(&path).is_empty());

        // Hand-corrupt the embedded definition without updating the
        // stored address — exactly what a careless manual edit does.
        let text = std::fs::read_to_string(&path).unwrap();
        let corrupted = text.replace("rounds=5", "rounds=6");
        assert_ne!(text, corrupted, "fixture must actually change");
        std::fs::write(&path, corrupted).unwrap();
        let findings = analyze_baseline_file(&path);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].lint, "baseline-address");
        assert!(findings[0].message.contains("does not match"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unparsable_files_and_misnamed_files_are_flagged() {
        let dir = temp_dir("parse");
        let garbage = dir.join("0123456789abcdef.json");
        std::fs::write(&garbage, "{ not json").unwrap();
        let findings = analyze_baseline_file(&garbage);
        assert_eq!(findings[0].lint, "baseline-parse");

        let baseline = tiny_baseline();
        let misnamed = dir.join("fedcba9876543210.json");
        std::fs::write(&misnamed, baseline.to_json()).unwrap();
        let findings = analyze_baseline_file(&misnamed);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].lint, "baseline-filename");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn directory_pass_reports_orphans_missing_and_skipped_non_baselines() {
        let dir = temp_dir("dir");
        let baseline = tiny_baseline();
        baseline.save(&dir).unwrap();
        // A non-address JSON file (like the committed throughput report)
        // is not linted as a baseline, but its skip is made visible.
        std::fs::write(dir.join("throughput.json"), "{}").unwrap();

        // Known set: one grid matching the saved file, one unrecorded.
        let known = vec![
            ("tiny".to_string(), baseline.address.clone()),
            ("unrecorded".to_string(), "00000000deadbeef".to_string()),
        ];
        let findings = analyze_baseline_dir(&dir, &known);
        assert_eq!(findings.len(), 2);
        assert_eq!(findings[0].lint, "baseline-missing");
        assert!(findings[0].message.contains("00000000deadbeef"));
        assert_eq!(findings[1].lint, "baseline-skipped");
        assert_eq!(findings[1].severity, crate::Severity::Info);
        assert!(findings[1].message.contains("throughput"));

        // Drop the known entry: the saved file becomes an orphan.
        let findings = analyze_baseline_dir(&dir, &[]);
        assert_eq!(findings.len(), 2);
        assert_eq!(findings[0].lint, "baseline-orphan");
        assert!(findings[0].message.contains(&baseline.address));
        assert_eq!(findings[1].lint, "baseline-skipped");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_directory_is_an_io_error_finding() {
        let findings = analyze_baseline_dir(Path::new("/nonexistent/arsf-baselines"), &[]);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].lint, "baseline-io");
    }

    #[test]
    fn dead_tolerances_are_flagged_and_families_stay_alive() {
        let baseline = tiny_baseline();
        let config = DiffConfig::near_exact()
            .with_column("mean_width", Tolerance::new(1e-9, 0.0))
            .with_column("vehicle_mean_widths", Tolerance::new(1e-9, 0.0))
            .with_column("mean_widht", Tolerance::new(1e-9, 0.0));
        let findings = tolerance_findings(&config, &[&baseline]);
        // The open-loop tiny baseline has no vehicle columns, so both the
        // family and the typo are dead against it alone.
        let dead: Vec<&str> = findings
            .iter()
            .map(|f| f.message.split('`').nth(1).unwrap())
            .collect();
        assert_eq!(dead, vec!["vehicle_mean_widths", "mean_widht"]);
        assert!(findings.iter().all(|f| f.lint == "tolerance-dead"));
    }
}
