//! Static dominance derivation: cross-cell orderings from the theory
//! alone, with no simulation — the relational third layer over the
//! per-cell guarantee ([`guarantee_report`]) and detectability
//! ([`detect_report`](crate::detect_report)) layers.
//!
//! The paper's central empirical claim is an *ordering*, not a number:
//! under the ascending transmission schedule an adaptive attacker learns
//! least and causes zero safety violations, descending is worst, and
//! random sits between (Table II). [`dominance_report`] abstractly
//! evaluates a [`SweepGrid`] and derives a partial order over its cells:
//! [`OrderEdge`]s `lesser ⪯ greater` between cells that differ in
//! **exactly one** axis coordinate, each proved by one [`OrderRule`]:
//!
//! * [`OrderRule::ScheduleOrdering`] — ascending ⪯ random ⪯ descending,
//!   when an armed stealthy (adaptive) attacker is present and no
//!   corrupting fault muddies the signal. Which recorded counters the
//!   edge is vetted over is itself certificate-gated, because a changed
//!   schedule reshuffles the whole round trajectory and only a
//!   certificate makes a counter per-seed comparable: the truth-loss
//!   counters are vetted when both cells prove truth containment (both
//!   then record exactly `0`), `flagged_rounds` when both cells prove
//!   invisibility, and the closed-loop `preemptions` counter always —
//!   that ordering *is* Table II's headline claim (zero violations under
//!   ascending vs. dozens under descending, a gap that dwarfs seed
//!   noise), and `--allow-disorder` on the record paths is the designed
//!   escape hatch for exotic grids.
//! * [`OrderRule::ContainmentCertificate`] — the lesser cell's fused
//!   interval provably contains the truth every round
//!   ([`GuaranteeReport::truth_containment`]), so its `truth_lost`
//!   counters are exactly `0`; a neighbour without the certificate can
//!   only record `≥ 0`. Deterministically sound on any axis.
//! * [`OrderRule::InvisibilityCertificate`] — the lesser cell is
//!   provably invisible to its detector
//!   ([`DetectVerdict::ProvablyInvisible`]), so its `flagged_rounds` is
//!   exactly `0`; same argument.
//! * [`OrderRule::HistoryDefense`] — dynamics-aware historical fusion
//!   intersects the propagated previous interval with the memoryless
//!   Marzullo fusion, so its *worst-case width bound* never exceeds
//!   Marzullo's. Bound-level only: per-seed recorded widths routinely
//!   cross (the bound orders suprema, not samples), so no stored column
//!   is vetted — an inverted pair of derived bounds is reported as an
//!   analyzer inconsistency instead.
//! * [`OrderRule::AttackerStrength`] — the attacker-strength lattice
//!   ([`AttackerSpec::strength_partial_cmp`][cmp]): a strictly weaker
//!   attacker cannot have a larger worst-case width bound. Bound-level
//!   only, same reasoning.
//! * [`OrderRule::FaultInclusion`] — fault-set inclusion `S ⊆ S′`
//!   cannot shrink the worst-case width bound. Bound-level only.
//!
//! The Theorem-2 bound's **f-monotonicity** is checked per cell rather
//! than per pair — the fault budget `f` is base-scenario configuration,
//! not a grid axis — by recomputing the bound at `f − 1` and requiring
//! it not to exceed the bound at `f` ([`FRegression`] when it does).
//!
//! Three lints surface the layer ([`order_lints`], a dedicated pass like
//! the guarantee and detectability passes): `order-edge` (info, one per
//! provable edge), `order-vacuous` (warn: the grid admits single-axis
//! cell pairs but no provable ordering on any of them), and
//! `order-violation` (error: a derived-bound inversion or f-regression
//! at analysis time, or — via [`vet_baseline_dominance`] — a stored
//! baseline whose metrics contradict a provable edge beyond the
//! near-exact tolerance floor).
//!
//! [cmp]: arsf_core::scenario::AttackerSpec::strength_partial_cmp

use std::cmp::Ordering;

use arsf_core::scenario::{FuserSpec, Scenario, StrategyVisibility};
use arsf_core::sweep::diff::Tolerance;
use arsf_core::sweep::store::Baseline;
use arsf_core::sweep::{AxisCoords, SweepGrid};
use arsf_sensor::FaultKind;

use crate::detectability::{detect_report, DetectVerdict};
use crate::guarantees::{guarantee_report, GuaranteeReport};
use crate::{sort_findings, Finding, Lint, Location, Severity};

/// Absolute slack when comparing two derived width bounds: both come
/// from the same closed-form evaluation, so anything beyond rounding
/// noise is a genuine inversion.
const EPSILON: f64 = 1e-9;

/// Stored columns ordered by the schedule rule when both cells carry
/// both certificates (the paper's full Table II counter set; columns
/// absent or null in a record are skipped at vet time, so open-loop
/// grids simply have no `preemptions` to check).
const SCHEDULE_METRICS: &[&str] = &[
    "preemptions",
    "truth_lost",
    "truth_loss_rate",
    "flagged_rounds",
];

/// Schedule-rule columns when only truth containment is certified.
const SCHEDULE_TRUTH_METRICS: &[&str] = &["preemptions", "truth_lost", "truth_loss_rate"];

/// Schedule-rule columns when only invisibility is certified.
const SCHEDULE_FLAG_METRICS: &[&str] = &["preemptions", "flagged_rounds"];

/// Schedule-rule columns with neither certificate: the safety-violation
/// counter alone, Table II's headline ordering.
const SCHEDULE_CORE_METRICS: &[&str] = &["preemptions"];

/// Stored columns ordered by a containment certificate.
const TRUTH_METRICS: &[&str] = &["truth_lost", "truth_loss_rate"];

/// Stored columns ordered by an invisibility certificate.
const FLAG_METRICS: &[&str] = &["flagged_rounds"];

/// The theory rule proving one dominance edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum OrderRule {
    /// Table II's schedule ordering: ascending ⪯ random ⪯ descending on
    /// the violation counters when an armed stealthy attacker adapts to
    /// what it has seen.
    ScheduleOrdering,
    /// The attacker-strength lattice: a strictly weaker attacker cannot
    /// have a larger worst-case width bound.
    AttackerStrength,
    /// Fault-set inclusion: `S ⊆ S′` cannot shrink the worst-case width
    /// bound.
    FaultInclusion,
    /// Historical fusion's worst-case width bound never exceeds the
    /// memoryless Marzullo bound it intersects with.
    HistoryDefense,
    /// The lesser cell provably keeps the truth inside its fused
    /// interval, so its truth-loss counters are exactly zero.
    ContainmentCertificate,
    /// The lesser cell is provably invisible to its detector, so its
    /// flagged-rounds counter is exactly zero.
    InvisibilityCertificate,
}

impl OrderRule {
    /// A short human label, e.g. `schedule ordering`.
    pub fn label(self) -> &'static str {
        match self {
            OrderRule::ScheduleOrdering => "schedule ordering",
            OrderRule::AttackerStrength => "attacker strength",
            OrderRule::FaultInclusion => "fault inclusion",
            OrderRule::HistoryDefense => "history defense",
            OrderRule::ContainmentCertificate => "containment certificate",
            OrderRule::InvisibilityCertificate => "invisibility certificate",
        }
    }

    /// One sentence stating the theory behind the rule.
    pub fn describe(self) -> &'static str {
        match self {
            OrderRule::ScheduleOrdering => {
                "Table II: a schedule exposing fewer correct intervals to an adaptive \
                 attacker cannot cause more violations"
            }
            OrderRule::AttackerStrength => {
                "a strictly weaker attacker cannot have a larger worst-case fused width \
                 bound"
            }
            OrderRule::FaultInclusion => {
                "adding faults to a fault set cannot shrink the worst-case fused width \
                 bound"
            }
            OrderRule::HistoryDefense => {
                "historical fusion intersects the propagated previous interval with the \
                 memoryless fusion, so its width bound never exceeds Marzullo's"
            }
            OrderRule::ContainmentCertificate => {
                "a cell whose fused interval provably contains the truth records exactly \
                 zero truth losses"
            }
            OrderRule::InvisibilityCertificate => {
                "a cell provably invisible to its detector records exactly zero flagged \
                 rounds"
            }
        }
    }
}

/// One provable dominance edge: `lesser ⪯ greater`, cells differing in
/// exactly the named axis coordinate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct OrderEdge {
    /// The ⪯ side, by grid-order cell index.
    pub lesser: usize,
    /// The ⪰ side, by grid-order cell index.
    pub greater: usize,
    /// The one axis the two cells differ on (`schedules`, `fusers`, …).
    pub axis: &'static str,
    /// The rule proving the ordering.
    pub rule: OrderRule,
    /// Stored columns the ordering is vetted over (`lesser ≤ greater`
    /// up to the near-exact floor). Empty for bound-level rules, whose
    /// claim orders derived worst-case bounds, not per-seed samples.
    pub metrics: &'static [&'static str],
    /// The compared `(lesser, greater)` static width bounds, when the
    /// rule orders bounds.
    pub bounds: Option<(f64, f64)>,
}

/// A bound-level rule application whose derived bounds came out
/// inverted — the theory says `lesser`'s bound cannot exceed
/// `greater`'s, yet the abstract evaluator produced the opposite. An
/// analyzer inconsistency, surfaced as an `order-violation` error.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct BoundInversion {
    /// The cell the rule claims is ⪯.
    pub lesser: usize,
    /// The cell the rule claims is ⪰.
    pub greater: usize,
    /// The one axis the two cells differ on.
    pub axis: &'static str,
    /// The rule whose claim the derived bounds contradict.
    pub rule: OrderRule,
    /// The lesser cell's derived width bound.
    pub lesser_bound: f64,
    /// The greater cell's derived width bound.
    pub greater_bound: f64,
}

/// A cell whose Theorem-2 width bound *shrank* when the declared fault
/// budget was raised back from `f − 1` to `f` — equivalently, lowering
/// `f` increased the bound. Monotonicity in `f` is a theorem, so this
/// is an analyzer inconsistency, surfaced as an `order-violation`.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct FRegression {
    /// The offending cell.
    pub cell: usize,
    /// The cell's declared fault budget.
    pub f: usize,
    /// The derived bound at `f − 1`.
    pub lower_f_bound: f64,
    /// The derived bound at `f`.
    pub bound: f64,
}

/// The statically derived partial order over one grid's cells.
#[derive(Debug, Clone, PartialEq, Default)]
#[non_exhaustive]
pub struct DominanceReport {
    /// Every provable edge, in grid order of the lower-indexed cell.
    pub edges: Vec<OrderEdge>,
    /// Single-axis-differing cell pairs `(a, b, axis)` with `a < b` in
    /// grid order and no provable ordering in either direction.
    pub incomparable: Vec<(usize, usize, &'static str)>,
    /// Bound-level claims contradicted by the derived bounds.
    pub inversions: Vec<BoundInversion>,
    /// Per-cell f-monotonicity violations of the width bound.
    pub f_regressions: Vec<FRegression>,
}

/// Per-cell facts the pair rules consume, computed once per cell.
struct CellFacts {
    scenario: Scenario,
    containment: bool,
    invisible: bool,
    width_bound: Option<f64>,
}

fn cell_facts(grid: &SweepGrid) -> Vec<CellFacts> {
    grid.cells()
        .map(|cell| {
            let guarantees: GuaranteeReport = guarantee_report(&cell.scenario);
            let invisible = matches!(
                detect_report(&cell.scenario).verdict,
                DetectVerdict::ProvablyInvisible { .. }
            );
            CellFacts {
                containment: guarantees.truth_containment,
                invisible,
                width_bound: guarantees.width_bound,
                scenario: cell.scenario,
            }
        })
        .collect()
}

/// Enumerates every unordered pair of cells differing in exactly one
/// axis coordinate, each pair exactly once (`a < b` in grid order).
fn single_axis_pairs(grid: &SweepGrid) -> Vec<(usize, usize, &'static str)> {
    type Len = fn(&SweepGrid) -> usize;
    type Get = fn(&AxisCoords) -> usize;
    type Set = fn(&mut AxisCoords, usize);
    const AXES: [(&str, Len, Get, Set); 8] = [
        (
            "suites",
            |g| g.suite_axis().len(),
            |c| c.suite,
            |c, v| c.suite = v,
        ),
        (
            "fault_sets",
            |g| g.fault_set_axis().len(),
            |c| c.fault_set,
            |c, v| c.fault_set = v,
        ),
        (
            "attackers",
            |g| g.attacker_axis().len(),
            |c| c.attacker,
            |c, v| c.attacker = v,
        ),
        (
            "schedules",
            |g| g.schedule_axis().len(),
            |c| c.schedule,
            |c, v| c.schedule = v,
        ),
        (
            "fusers",
            |g| g.fuser_axis().len(),
            |c| c.fuser,
            |c, v| c.fuser = v,
        ),
        (
            "detectors",
            |g| g.detector_axis().len(),
            |c| c.detector,
            |c, v| c.detector = v,
        ),
        (
            "rounds",
            |g| g.rounds_axis().len(),
            |c| c.rounds,
            |c, v| c.rounds = v,
        ),
        (
            "seeds",
            |g| g.seed_axis().len(),
            |c| c.seed,
            |c, v| c.seed = v,
        ),
    ];
    let mut pairs = Vec::new();
    for index in 0..grid.len() {
        let coords = grid.coords(index);
        for (axis, len, get, set) in AXES {
            for other in get(&coords) + 1..len(grid) {
                let mut neighbour = coords;
                set(&mut neighbour, other);
                pairs.push((index, grid.cell_index(neighbour), axis));
            }
        }
    }
    pairs
}

/// `true` when the scenario's attacker is the stealthy adaptive kind the
/// schedule ordering reasons about, with at least one sensor to forge,
/// and no corrupting fault adds schedule-independent violations that
/// would swamp the ordering.
fn schedule_ordering_armed(scenario: &Scenario) -> bool {
    scenario.attacker.visibility() == StrategyVisibility::Stealthy
        && scenario.attacker.max_attacked_per_round() >= 1
        && scenario
            .faults
            .iter()
            .all(|(_, fault)| matches!(fault.kind(), FaultKind::Silent))
}

/// Applies every pair rule to one single-axis pair, pushing edges and
/// bound inversions.
fn edges_for_pair(
    facts: &[CellFacts],
    a: usize,
    b: usize,
    axis: &'static str,
    edges: &mut Vec<OrderEdge>,
    inversions: &mut Vec<BoundInversion>,
) {
    let edge = |lesser: usize,
                greater: usize,
                rule: OrderRule,
                metrics: &'static [&'static str],
                bounds: Option<(f64, f64)>| OrderEdge {
        lesser,
        greater,
        axis,
        rule,
        metrics,
        bounds,
    };

    // Certificate rules: deterministically sound on any axis, strict
    // direction only (two certified cells both record exactly zero, so
    // neither dominates the other).
    let (fa, fb) = (&facts[a], &facts[b]);
    if fa.containment != fb.containment {
        let (l, g) = if fa.containment { (a, b) } else { (b, a) };
        edges.push(edge(
            l,
            g,
            OrderRule::ContainmentCertificate,
            TRUTH_METRICS,
            None,
        ));
    }
    if fa.invisible != fb.invisible {
        let (l, g) = if fa.invisible { (a, b) } else { (b, a) };
        edges.push(edge(
            l,
            g,
            OrderRule::InvisibilityCertificate,
            FLAG_METRICS,
            None,
        ));
    }

    // A bound-level claim `l ⪯ g`: emit the edge when the derived bounds
    // agree, an inversion finding when they contradict the theory.
    let mut bound_claim = |l: usize, g: usize, rule: OrderRule| {
        if let (Some(lb), Some(gb)) = (facts[l].width_bound, facts[g].width_bound) {
            if lb <= gb + EPSILON {
                edges.push(edge(l, g, rule, &[], Some((lb, gb))));
            } else {
                inversions.push(BoundInversion {
                    lesser: l,
                    greater: g,
                    axis,
                    rule,
                    lesser_bound: lb,
                    greater_bound: gb,
                });
            }
        }
    };

    match axis {
        "schedules" => {
            let ranks = (
                fa.scenario.schedule.exposure_rank(),
                fb.scenario.schedule.exposure_rank(),
            );
            if let (Some(ra), Some(rb)) = ranks {
                if ra != rb && schedule_ordering_armed(&fa.scenario) {
                    let (l, g) = if ra < rb { (a, b) } else { (b, a) };
                    // A changed schedule reshuffles the whole round
                    // trajectory, so a counter is only per-seed
                    // comparable across the pair when a certificate pins
                    // it (both cells then record exactly zero); the
                    // closed-loop preemption counter is Table II's
                    // headline ordering and is always vetted.
                    let metrics = match (
                        fa.containment && fb.containment,
                        fa.invisible && fb.invisible,
                    ) {
                        (true, true) => SCHEDULE_METRICS,
                        (true, false) => SCHEDULE_TRUTH_METRICS,
                        (false, true) => SCHEDULE_FLAG_METRICS,
                        (false, false) => SCHEDULE_CORE_METRICS,
                    };
                    edges.push(edge(l, g, OrderRule::ScheduleOrdering, metrics, None));
                }
            }
        }
        "fusers" => {
            let historical = |s: &Scenario| matches!(s.fuser, FuserSpec::Historical { .. });
            let marzullo = |s: &Scenario| matches!(s.fuser, FuserSpec::Marzullo);
            if historical(&fa.scenario) && marzullo(&fb.scenario) {
                bound_claim(a, b, OrderRule::HistoryDefense);
            } else if historical(&fb.scenario) && marzullo(&fa.scenario) {
                bound_claim(b, a, OrderRule::HistoryDefense);
            }
        }
        "attackers" => {
            match fa
                .scenario
                .attacker
                .strength_partial_cmp(&fb.scenario.attacker)
            {
                Some(Ordering::Less) => bound_claim(a, b, OrderRule::AttackerStrength),
                Some(Ordering::Greater) => bound_claim(b, a, OrderRule::AttackerStrength),
                _ => {}
            }
        }
        "fault_sets" => {
            let subset =
                |x: &Scenario, y: &Scenario| x.faults.iter().all(|entry| y.faults.contains(entry));
            let a_in_b = subset(&fa.scenario, &fb.scenario);
            let b_in_a = subset(&fb.scenario, &fa.scenario);
            if a_in_b && !b_in_a {
                bound_claim(a, b, OrderRule::FaultInclusion);
            } else if b_in_a && !a_in_b {
                bound_claim(b, a, OrderRule::FaultInclusion);
            }
        }
        _ => {}
    }
}

/// Derives the full partial order over a grid's cells from the
/// declarations alone — no cell is ever simulated.
pub fn dominance_report(grid: &SweepGrid) -> DominanceReport {
    let facts = cell_facts(grid);
    let mut edges = Vec::new();
    let mut inversions = Vec::new();
    let mut incomparable = Vec::new();
    for (a, b, axis) in single_axis_pairs(grid) {
        let before = edges.len() + inversions.len();
        edges_for_pair(&facts, a, b, axis, &mut edges, &mut inversions);
        if edges.len() + inversions.len() == before {
            incomparable.push((a, b, axis));
        }
    }

    // f-monotonicity self-check: the bound at f − 1 must not exceed the
    // bound at f. Cells whose budget is 0 or whose bound vanishes at
    // either f have nothing to compare.
    let mut f_regressions = Vec::new();
    for (cell, fact) in facts.iter().enumerate() {
        let (Some(bound), true) = (fact.width_bound, fact.scenario.f > 0) else {
            continue;
        };
        let weaker = fact.scenario.clone().with_f(fact.scenario.f - 1);
        if let Some(lower_f_bound) = guarantee_report(&weaker).width_bound {
            if lower_f_bound > bound + EPSILON {
                f_regressions.push(FRegression {
                    cell,
                    f: fact.scenario.f,
                    lower_f_bound,
                    bound,
                });
            }
        }
    }

    DominanceReport {
        edges,
        incomparable,
        inversions,
        f_regressions,
    }
}

/// Info lint: one finding per provable dominance edge.
struct OrderEdgeLint;

impl Lint for OrderEdgeLint {
    fn id(&self) -> &'static str {
        "order-edge"
    }
    fn severity(&self) -> Severity {
        Severity::Info
    }
    fn description(&self) -> &'static str {
        "a provable cross-cell metric ordering derived from the theory (Table II \
         schedule ordering, certificates, or the width-bound lattice)"
    }
    fn check_grid(&self, grid: &SweepGrid, out: &mut Vec<Finding>) {
        for edge in dominance_report(grid).edges {
            let claim = if let Some((lb, gb)) = edge.bounds {
                format!("the worst-case width bound ({lb:.6} ≤ {gb:.6})")
            } else {
                edge.metrics.join(", ")
            };
            out.push(Finding {
                lint: self.id(),
                severity: self.severity(),
                location: Location::CellPair {
                    lesser: edge.lesser,
                    greater: edge.greater,
                },
                message: format!(
                    "`{}` axis: {} proves cell {} ⪯ cell {} on {claim}",
                    edge.axis,
                    edge.rule.label(),
                    edge.lesser,
                    edge.greater,
                ),
            });
        }
    }
}

/// Warn lint: the grid admits single-axis pairs but proves none of them.
struct OrderVacuous;

impl Lint for OrderVacuous {
    fn id(&self) -> &'static str {
        "order-vacuous"
    }
    fn severity(&self) -> Severity {
        Severity::Warn
    }
    fn description(&self) -> &'static str {
        "the grid has single-axis cell pairs but no provable ordering on any of them, \
         so the dominance pass cannot vet its baselines"
    }
    fn check_grid(&self, grid: &SweepGrid, out: &mut Vec<Finding>) {
        let report = dominance_report(grid);
        if report.edges.is_empty() && !report.incomparable.is_empty() {
            out.push(Finding {
                lint: self.id(),
                severity: self.severity(),
                location: Location::Grid {
                    name: grid.base().name.clone(),
                },
                message: format!(
                    "{} single-axis cell pair(s), none provably ordered: no armed axis \
                     (stealthy schedule comparison, certificate gap, or width-bound \
                     lattice) applies to this grid",
                    report.incomparable.len()
                ),
            });
        }
    }
}

/// Error lint: the analyzer's own bound lattice is inconsistent — a
/// bound-level dominance claim is contradicted by the derived bounds, or
/// the Theorem-2 bound fails f-monotonicity. (The same `order-violation`
/// id is used by [`vet_baseline_dominance`] for stored metrics that
/// contradict a provable edge.)
struct OrderViolation;

impl Lint for OrderViolation {
    fn id(&self) -> &'static str {
        "order-violation"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn description(&self) -> &'static str {
        "a derived or stored metric ordering contradicts a provable dominance edge"
    }
    fn check_grid(&self, grid: &SweepGrid, out: &mut Vec<Finding>) {
        let report = dominance_report(grid);
        for inversion in report.inversions {
            out.push(Finding {
                lint: self.id(),
                severity: self.severity(),
                location: Location::CellPair {
                    lesser: inversion.lesser,
                    greater: inversion.greater,
                },
                message: format!(
                    "`{}` axis: {} claims cell {} ⪯ cell {}, but the derived width \
                     bounds invert ({:.6} > {:.6}) — analyzer inconsistency",
                    inversion.axis,
                    inversion.rule.label(),
                    inversion.lesser,
                    inversion.greater,
                    inversion.lesser_bound,
                    inversion.greater_bound,
                ),
            });
        }
        for regression in report.f_regressions {
            out.push(Finding {
                lint: self.id(),
                severity: self.severity(),
                location: Location::Cell {
                    cell: regression.cell,
                },
                message: format!(
                    "width bound fails f-monotonicity: lowering f from {} to {} raises \
                     the bound from {:.6} to {:.6} — analyzer inconsistency",
                    regression.f,
                    regression.f - 1,
                    regression.bound,
                    regression.lower_f_bound,
                ),
            });
        }
    }
}

/// The dominance lints, a dedicated pass like
/// [`guarantee_lints`](crate::guarantee_lints) and
/// [`detect_lints`](crate::detect_lints) — kept out of the default
/// [`registry`](crate::registry) because `order-edge` is deliberately
/// chatty (one info finding per provable edge).
pub fn order_lints() -> Vec<Box<dyn Lint>> {
    vec![
        Box::new(OrderEdgeLint),
        Box::new(OrderVacuous),
        Box::new(OrderViolation),
    ]
}

/// Runs the dominance pass over a grid: every provable edge as an info
/// finding located at its cell pair, a warning when nothing is provable,
/// and errors for internal bound inversions, sorted most-severe-first.
pub fn analyze_grid_dominance(grid: &SweepGrid) -> Vec<Finding> {
    let mut findings = Vec::new();
    for lint in order_lints() {
        lint.check_grid(grid, &mut findings);
    }
    sort_findings(&mut findings);
    findings
}

/// Vets a stored baseline against every provable dominance edge: for
/// each edge and each of its record-vetted columns present (non-null) in
/// both cells' records, the lesser cell's value must not exceed the
/// greater cell's beyond the same near-exact floor the diff harness
/// uses. Violations come back as `order-violation` errors at `location`
/// naming both cells, the column, the direction and the proving rule.
///
/// Bound-level edges (empty [`OrderEdge::metrics`]) are not checked
/// against records: their claim orders worst-case *bounds*, and per-seed
/// samples legitimately cross.
pub fn vet_baseline_dominance(
    grid: &SweepGrid,
    baseline: &Baseline,
    location: &Location,
) -> Vec<Finding> {
    let report = dominance_report(grid);
    // The same floor as `DiffConfig::near_exact()`: absorbs last-ulp
    // libm variation, fails any real inversion.
    let floor = Tolerance::new(1e-12, 1e-12);
    let record = |cell: usize| baseline.rows.iter().find(|row| row.cell == cell as u64);
    let mut findings = Vec::new();
    for edge in &report.edges {
        let (Some(lesser), Some(greater)) = (record(edge.lesser), record(edge.greater)) else {
            continue;
        };
        for &column in edge.metrics {
            let (Some(Some(lv)), Some(Some(gv))) = (lesser.metric(column), greater.metric(column))
            else {
                continue;
            };
            if lv > gv && !floor.allows(gv, lv) {
                findings.push(Finding {
                    lint: "order-violation",
                    severity: Severity::Error,
                    location: location.clone(),
                    message: format!(
                        "cells {l} ⪯ {g} `{column}`: stored {lv} at cell {l} exceeds \
                         stored {gv} at cell {g}, inverting the provable `{axis}`-axis \
                         ordering ({rule}: {why})",
                        l = edge.lesser,
                        g = edge.greater,
                        axis = edge.axis,
                        rule = edge.rule.label(),
                        why = edge.rule.describe(),
                    ),
                });
            }
        }
    }
    sort_findings(&mut findings);
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use arsf_core::scenario::{AttackerSpec, StrategySpec, SuiteSpec};
    use arsf_core::DetectionMode;
    use arsf_schedule::SchedulePolicy;

    fn attacked_base() -> Scenario {
        Scenario::new("dom", SuiteSpec::Landshark)
            .with_attacker(AttackerSpec::Fixed {
                sensors: vec![0],
                strategy: StrategySpec::PhantomOptimal,
            })
            .with_rounds(60)
    }

    fn edge_set(report: &DominanceReport) -> Vec<(usize, usize, OrderRule)> {
        report
            .edges
            .iter()
            .map(|e| (e.lesser, e.greater, e.rule))
            .collect()
    }

    #[test]
    fn schedule_chain_orders_ascending_random_descending() {
        // Schedules are the only multi-valued axis, so every edge is a
        // schedule edge: asc ⪯ random, random ⪯ desc, asc ⪯ desc, per
        // seed-axis value. Grid order: schedules slow, seeds fast.
        let grid = SweepGrid::new(attacked_base())
            .schedules([
                SchedulePolicy::Ascending,
                SchedulePolicy::Descending,
                SchedulePolicy::Random,
            ])
            .seeds([1, 2]);
        let report = dominance_report(&grid);
        let schedule_edges: Vec<_> = report
            .edges
            .iter()
            .filter(|e| e.rule == OrderRule::ScheduleOrdering)
            .map(|e| (e.lesser, e.greater))
            .collect();
        // Cells: 0,1 = asc × seeds; 2,3 = desc; 4,5 = random.
        let expected = [(0, 2), (1, 3), (0, 4), (1, 5), (4, 2), (5, 3)];
        assert_eq!(schedule_edges.len(), 6);
        for pair in expected {
            assert!(schedule_edges.contains(&pair), "missing edge {pair:?}");
        }
        for edge in &report.edges {
            if edge.rule == OrderRule::ScheduleOrdering {
                assert_eq!(edge.axis, "schedules");
                assert!(edge.metrics.contains(&"preemptions"));
                assert!(edge.metrics.contains(&"flagged_rounds"));
            }
        }
        assert!(report.inversions.is_empty());
        assert!(report.f_regressions.is_empty());
    }

    #[test]
    fn honest_attacker_disarms_the_schedule_rule() {
        let base = Scenario::new("honest", SuiteSpec::Landshark).with_rounds(60);
        let grid = SweepGrid::new(base)
            .schedules([SchedulePolicy::Ascending, SchedulePolicy::Descending])
            .seeds([1, 2]);
        let report = dominance_report(&grid);
        assert!(
            !report
                .edges
                .iter()
                .any(|e| e.rule == OrderRule::ScheduleOrdering),
            "an unarmed grid must not claim schedule ordering"
        );
    }

    #[test]
    fn certificates_order_marzullo_below_inverse_variance() {
        let grid = SweepGrid::new(attacked_base().with_detector(DetectionMode::Immediate))
            .fusers([FuserSpec::Marzullo, FuserSpec::InverseVariance]);
        let report = dominance_report(&grid);
        let edges = edge_set(&report);
        // Cell 0 = Marzullo (containment + stealth-invisible), cell 1 =
        // inverse-variance (neither certificate).
        assert!(edges.contains(&(0, 1, OrderRule::ContainmentCertificate)));
        assert!(edges.contains(&(0, 1, OrderRule::InvisibilityCertificate)));
    }

    #[test]
    fn history_defense_is_bound_level_only() {
        let grid = SweepGrid::new(attacked_base()).fusers([
            FuserSpec::Historical {
                max_rate: 3.5,
                dt: 0.1,
            },
            FuserSpec::Marzullo,
        ]);
        let report = dominance_report(&grid);
        let edge = report
            .edges
            .iter()
            .find(|e| e.rule == OrderRule::HistoryDefense)
            .expect("historical vs marzullo admits a history-defense edge");
        assert_eq!((edge.lesser, edge.greater), (0, 1));
        assert!(
            edge.metrics.is_empty(),
            "per-seed recorded widths may cross; only the bounds are ordered"
        );
        let (lb, gb) = edge.bounds.expect("both cells have static width bounds");
        assert!(lb <= gb + EPSILON);
        assert!(report.inversions.is_empty());
    }

    #[test]
    fn attacker_strength_orders_honest_below_stealthy() {
        let base = Scenario::new("str", SuiteSpec::Landshark).with_rounds(60);
        let grid = SweepGrid::new(base).attackers([
            AttackerSpec::None,
            AttackerSpec::Fixed {
                sensors: vec![0],
                strategy: StrategySpec::PhantomOptimal,
            },
        ]);
        let report = dominance_report(&grid);
        let edge = report
            .edges
            .iter()
            .find(|e| e.rule == OrderRule::AttackerStrength)
            .expect("honest vs armed stealthy admits a strength edge");
        assert_eq!((edge.lesser, edge.greater), (0, 1));
        assert!(edge.metrics.is_empty());
        assert!(edge.bounds.is_some());
    }

    #[test]
    fn fault_inclusion_orders_subset_below_superset() {
        use arsf_sensor::FaultModel;
        // The superset adds a silent fault: the corruption budget stays
        // within f, so both cells keep a width bound to compare.
        let silent = FaultModel::new(FaultKind::Silent, 1.0);
        let bias = FaultModel::new(FaultKind::Bias { offset: 0.5 }, 1.0);
        let base = Scenario::new("faults", SuiteSpec::Landshark).with_rounds(60);
        let grid = SweepGrid::new(base).fault_sets([vec![(1, bias)], vec![(1, bias), (2, silent)]]);
        let report = dominance_report(&grid);
        let edge = report
            .edges
            .iter()
            .find(|e| e.rule == OrderRule::FaultInclusion)
            .expect("S ⊂ S' admits a fault-inclusion edge");
        assert_eq!((edge.lesser, edge.greater), (0, 1));
        assert_eq!(edge.axis, "fault_sets");
    }

    #[test]
    fn symmetric_grid_is_vacuous() {
        // Honest attacker, both fusers containment-certified and
        // invisible, same schedule: every pair is incomparable.
        let base = Scenario::new("vac", SuiteSpec::Landshark).with_rounds(60);
        let grid = SweepGrid::new(base)
            .fusers([FuserSpec::Marzullo, FuserSpec::BrooksIyengar])
            .seeds([1, 2]);
        let report = dominance_report(&grid);
        assert!(report.edges.is_empty());
        assert!(!report.incomparable.is_empty());
        let findings = analyze_grid_dominance(&grid);
        assert!(findings.iter().any(|f| f.lint == "order-vacuous"));
        assert!(!findings.iter().any(|f| f.lint == "order-edge"));
    }

    #[test]
    fn analyze_grid_dominance_reports_edges_at_cell_pairs() {
        let grid = SweepGrid::new(attacked_base())
            .schedules([SchedulePolicy::Ascending, SchedulePolicy::Descending]);
        let findings = analyze_grid_dominance(&grid);
        let edge = findings
            .iter()
            .find(|f| f.lint == "order-edge")
            .expect("schedule pair yields an edge finding");
        assert_eq!(edge.severity, Severity::Info);
        assert_eq!(
            edge.location,
            Location::CellPair {
                lesser: 0,
                greater: 1
            }
        );
        assert!(edge.message.contains("schedule ordering"));
    }

    #[test]
    fn vet_accepts_a_fresh_run_and_catches_a_planted_inversion() {
        let grid = SweepGrid::new(attacked_base())
            .fusers([FuserSpec::Marzullo, FuserSpec::InverseVariance])
            .schedules([SchedulePolicy::Ascending, SchedulePolicy::Descending]);
        let mut baseline = Baseline::from_report(&grid, &grid.run_serial());
        let location = Location::Grid {
            name: "dom-test".to_string(),
        };
        assert_eq!(vet_baseline_dominance(&grid, &baseline, &location), vec![]);

        // Plant an inversion on a containment edge: the certified
        // Marzullo cell 0 suddenly stores truth losses. Stays inside any
        // per-cell tolerance; only the cross-cell ordering can see it.
        let row = &mut baseline.rows[0];
        let slot = row
            .metrics
            .iter_mut()
            .find(|(name, _)| name == "truth_lost")
            .expect("open-loop records carry truth_lost");
        slot.1 = Some(7.0);
        let findings = vet_baseline_dominance(&grid, &baseline, &location);
        assert!(!findings.is_empty(), "planted inversion must be caught");
        for finding in &findings {
            assert_eq!(finding.lint, "order-violation");
            assert_eq!(finding.severity, Severity::Error);
        }
        // The corrupted cell sits below both a containment neighbour
        // (cell 1, fuser axis) and a schedule neighbour (cell 2); both
        // orderings report, naming cells, column, direction and rule.
        let all = findings
            .iter()
            .map(|f| f.message.as_str())
            .collect::<Vec<_>>()
            .join("\n");
        for needle in [
            "cells 0 ⪯ 1",
            "cells 0 ⪯ 2",
            "`truth_lost`",
            "containment certificate",
            "schedule ordering",
        ] {
            assert!(all.contains(needle), "missing {needle:?} in:\n{all}");
        }
    }

    #[test]
    fn width_bound_is_monotone_in_f_on_the_landshark_suite() {
        // Direct check of the theorem the per-cell self-check relies on.
        let base = Scenario::new("mono", SuiteSpec::Landshark).with_rounds(10);
        let bound = |f: usize| guarantee_report(&base.clone().with_f(f)).width_bound;
        let mut previous = None;
        for f in 0..2 {
            if let (Some(prev), Some(cur)) = (previous, bound(f)) {
                assert!(prev <= cur + EPSILON, "bound shrank when f rose to {f}");
            }
            previous = bound(f);
        }
        let report = dominance_report(&SweepGrid::new(attacked_base()));
        assert!(report.f_regressions.is_empty());
    }
}
