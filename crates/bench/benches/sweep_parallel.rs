//! Criterion bench: parallel scenario-grid sweep throughput — the same
//! 48-cell grid (4 fusers × 3 detectors × 2 schedules × 2 seeds, 300
//! attacked LandShark rounds per cell) executed serially and sharded
//! across 2/4/8 scoped worker threads. Grid order makes the parallel
//! report byte-identical to the serial one, so the speedup is pure
//! wall-clock: ≥3× is expected from 4 workers upward on 4+ cores.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use arsf_core::scenario::{AttackerSpec, FuserSpec, Scenario, StrategySpec, SuiteSpec};
use arsf_core::sweep::{ParallelSweeper, SweepGrid};
use arsf_core::DetectionMode;
use arsf_schedule::SchedulePolicy;

const ROUNDS_PER_CELL: u64 = 300;

fn grid() -> SweepGrid {
    let base = Scenario::new("bench-sweep", SuiteSpec::Landshark)
        .with_attacker(AttackerSpec::Fixed {
            sensors: vec![0],
            strategy: StrategySpec::PhantomOptimal,
        })
        .with_rounds(ROUNDS_PER_CELL);
    SweepGrid::new(base)
        .fusers([
            FuserSpec::Marzullo,
            FuserSpec::BrooksIyengar,
            FuserSpec::InverseVariance,
            FuserSpec::Historical {
                max_rate: 3.5,
                dt: 0.1,
            },
        ])
        .detectors([
            DetectionMode::Off,
            DetectionMode::Immediate,
            DetectionMode::Windowed {
                window: 10,
                tolerance: 3,
            },
        ])
        .schedules([SchedulePolicy::Ascending, SchedulePolicy::Descending])
        .seeds([2014, 99])
}

fn bench_sweep_parallel(c: &mut Criterion) {
    let grid = grid();
    assert_eq!(grid.len(), 48);
    let mut group = c.benchmark_group("sweep_parallel");
    group.throughput(Throughput::Elements(grid.len() as u64));
    group.bench_function("serial", |b| {
        b.iter(|| std::hint::black_box(&grid).run_serial())
    });
    for threads in [2_usize, 4, 8] {
        let sweeper = ParallelSweeper::new(threads);
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &sweeper,
            |b, sweeper| b.iter(|| sweeper.run(std::hint::black_box(&grid))),
        );
    }
    group.finish();
}

/// Shared bench configuration: short measurement windows keep the whole
/// workspace bench run in the minutes range while remaining stable.
fn configured() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_sweep_parallel
}
criterion_main!(benches);
