//! Criterion bench: Marzullo sweep-line fusion vs the naive O(n²)
//! reference across sensor counts, plus Brooks–Iyengar for comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use arsf_fusion::{brooks_iyengar, marzullo, naive};
use arsf_interval::Interval;

fn random_intervals(n: usize, seed: u64) -> Vec<Interval<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let centre: f64 = rng.gen_range(-10.0..10.0);
            let radius: f64 = rng.gen_range(0.5..15.0);
            Interval::centered(centre, radius).expect("finite")
        })
        .collect()
}

fn bench_fusion_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fusion_scaling");
    for &n in &[4usize, 16, 64, 256, 1024, 4096] {
        let intervals = random_intervals(n, 42);
        let f = n / 3;
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("marzullo_sweep", n), &intervals, |b, s| {
            b.iter(|| marzullo::fuse(std::hint::black_box(s), f))
        });
        if n <= 256 {
            group.bench_with_input(
                BenchmarkId::new("naive_reference", n),
                &intervals,
                |b, s| b.iter(|| naive::fuse(std::hint::black_box(s), f)),
            );
        }
        group.bench_with_input(BenchmarkId::new("brooks_iyengar", n), &intervals, |b, s| {
            b.iter(|| brooks_iyengar::fuse(std::hint::black_box(s), f))
        });
    }
    group.finish();
}

/// Shared bench configuration: short measurement windows keep the whole
/// workspace bench run in the minutes range while remaining stable.
fn configured() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_fusion_scaling
}
criterion_main!(benches);
