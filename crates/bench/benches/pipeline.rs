//! Criterion bench: end-to-end fusion-pipeline round latency (sample →
//! schedule → attack → fuse → detect) on the LandShark suite.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use arsf_attack::strategies::PhantomOptimal;
use arsf_attack::AttackerConfig;
use arsf_core::{FusionPipeline, PipelineConfig};
use arsf_schedule::SchedulePolicy;

fn bench_pipeline_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_round");
    for policy in [SchedulePolicy::Ascending, SchedulePolicy::Descending] {
        group.bench_with_input(
            BenchmarkId::new("honest", policy.name()),
            &policy,
            |b, p| {
                let mut pipeline = FusionPipeline::builder(arsf_sensor::suite::landshark())
                    .config(PipelineConfig::new(1, p.clone()))
                    .build();
                let mut rng = StdRng::seed_from_u64(9);
                b.iter(|| pipeline.run_round(std::hint::black_box(10.0), &mut rng))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("attacked_encoder", policy.name()),
            &policy,
            |b, p| {
                let mut pipeline = FusionPipeline::builder(arsf_sensor::suite::landshark())
                    .config(PipelineConfig::new(1, p.clone()))
                    .attacker(AttackerConfig::new([0], 1), Box::new(PhantomOptimal::new()))
                    .build();
                let mut rng = StdRng::seed_from_u64(9);
                b.iter(|| pipeline.run_round(std::hint::black_box(10.0), &mut rng))
            },
        );
    }
    group.finish();
}

/// Shared bench configuration: short measurement windows keep the whole
/// workspace bench run in the minutes range while remaining stable.
fn configured() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_pipeline_round
}
criterion_main!(benches);
