//! Criterion bench: scenario batch throughput — the declarative runner
//! executing rounds into preallocated, reusable outcome buffers, across
//! fusion algorithms.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use arsf_core::scenario::{AttackerSpec, FuserSpec, Scenario, StrategySpec, SuiteSpec};
use arsf_core::{RoundOutcome, ScenarioRunner};

const BATCH: usize = 256;

fn bench_scenario_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("scenario_batch");
    group.throughput(Throughput::Elements(BATCH as u64));
    for fuser in [
        FuserSpec::Marzullo,
        FuserSpec::BrooksIyengar,
        FuserSpec::InverseVariance,
        FuserSpec::Historical {
            max_rate: 3.5,
            dt: 0.1,
        },
    ] {
        let scenario = Scenario::new(format!("bench-{}", fuser.name()), SuiteSpec::Landshark)
            .with_attacker(AttackerSpec::Fixed {
                sensors: vec![0],
                strategy: StrategySpec::PhantomOptimal,
            })
            .with_fuser(fuser.clone());
        group.bench_with_input(
            BenchmarkId::new("run_batch_256", fuser.name()),
            &scenario,
            |b, s| {
                let mut runner = ScenarioRunner::new(s);
                let mut outcomes: Vec<RoundOutcome> = Vec::with_capacity(BATCH);
                b.iter(|| runner.run_batch(std::hint::black_box(BATCH), &mut outcomes))
            },
        );
    }
    group.finish();
}

/// Shared bench configuration: short measurement windows keep the whole
/// workspace bench run in the minutes range while remaining stable.
fn configured() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_scenario_batch
}
criterion_main!(benches);
