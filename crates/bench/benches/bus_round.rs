//! Criterion bench: broadcast-bus round throughput vs node count, with
//! and without an eavesdropping attacker.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use arsf_attack::strategies::PhantomOptimal;
use arsf_attack::{AttackStrategy, AttackerConfig};
use arsf_core::transport::run_bus_round;
use arsf_interval::Interval;
use arsf_schedule::TransmissionOrder;

fn readings(n: usize) -> (Vec<Interval<f64>>, Vec<f64>) {
    let readings: Vec<Interval<f64>> = (0..n)
        .map(|i| {
            let radius = 0.1 + 0.1 * i as f64;
            Interval::centered(10.0 + 0.01 * i as f64, radius).expect("finite")
        })
        .collect();
    let widths: Vec<f64> = readings.iter().map(|r| r.width()).collect();
    (readings, widths)
}

fn bench_bus_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("bus_round");
    for &n in &[4usize, 8, 16, 32] {
        let (r, w) = readings(n);
        let order = TransmissionOrder::identity(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("honest", n), &n, |b, _| {
            b.iter(|| run_bus_round(std::hint::black_box(&r), &w, &order, n / 3, None))
        });
        group.bench_with_input(BenchmarkId::new("attacked", n), &n, |b, _| {
            b.iter(|| {
                let attacker = Some((
                    AttackerConfig::new([0], n / 3),
                    Box::new(PhantomOptimal::new()) as Box<dyn AttackStrategy>,
                ));
                run_bus_round(std::hint::black_box(&r), &w, &order, n / 3, attacker)
            })
        });
    }
    group.finish();
}

/// Shared bench configuration: short measurement windows keep the whole
/// workspace bench run in the minutes range while remaining stable.
fn configured() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_bus_round
}
criterion_main!(benches);
