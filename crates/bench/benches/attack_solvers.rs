//! Criterion bench: cost of the attack solvers — the exact
//! full-knowledge lattice solver vs the dense-grid oracle, and the
//! expectimax evaluator across grid resolutions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use arsf_attack::expectimax::{expected_fusion_width, GridScenario};
use arsf_attack::full_knowledge::{brute_force_attack, optimal_attack};
use arsf_interval::Interval;
use arsf_schedule::SchedulePolicy;

fn correct_set() -> Vec<Interval<f64>> {
    vec![
        Interval::new(-2.5, 2.5).expect("static"),
        Interval::new(-5.5, 5.5).expect("static"),
        Interval::new(-8.5, 8.5).expect("static"),
        Interval::new(-3.0, 7.0).expect("static"),
    ]
}

fn bench_full_knowledge(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_knowledge_solver");
    let correct = correct_set();
    for fa in [1usize, 2] {
        let widths = vec![5.0; fa];
        group.bench_with_input(BenchmarkId::new("lattice_exact", fa), &widths, |b, w| {
            b.iter(|| optimal_attack(std::hint::black_box(&correct), w, 2))
        });
        group.bench_with_input(BenchmarkId::new("grid_oracle", fa), &widths, |b, w| {
            b.iter(|| brute_force_attack(std::hint::black_box(&correct), w, 2, 1.0))
        });
    }
    group.finish();
}

fn bench_expectimax(c: &mut Criterion) {
    let mut group = c.benchmark_group("expectimax");
    group.sample_size(10);
    let widths = vec![5.0, 11.0, 17.0];
    let mut rng = StdRng::seed_from_u64(0);
    let order = SchedulePolicy::Descending.order(&widths, 0, &mut rng);
    for step in [4.0, 2.0, 1.0] {
        let scenario = GridScenario::new(widths.clone(), vec![0], 1, step);
        group.bench_with_input(
            BenchmarkId::new("table1_cell_desc", format!("step{step}")),
            &scenario,
            |b, sc| b.iter(|| expected_fusion_width(std::hint::black_box(sc), &order)),
        );
    }
    group.finish();
}

/// Shared bench configuration: short measurement windows keep the whole
/// workspace bench run in the minutes range while remaining stable.
fn configured() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_full_knowledge, bench_expectimax
}
criterion_main!(benches);
