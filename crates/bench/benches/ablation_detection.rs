//! Criterion bench (ablation): what detection costs and what the
//! attacker's planning machinery costs.
//!
//! Compares pipeline rounds with detection off / immediate / windowed,
//! and the attacked round under different attack strategies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use arsf_attack::strategies::{GreedyExtreme, PhantomOptimal, Side};
use arsf_attack::{AttackStrategy, AttackerConfig, Truthful};
use arsf_core::{DetectionMode, FusionPipeline, PipelineConfig};
use arsf_schedule::SchedulePolicy;

fn bench_detection_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_detection_mode");
    for (label, mode) in [
        ("off", DetectionMode::Off),
        ("immediate", DetectionMode::Immediate),
        (
            "windowed_20_6",
            DetectionMode::Windowed {
                window: 20,
                tolerance: 6,
            },
        ),
    ] {
        group.bench_with_input(BenchmarkId::new("pipeline_round", label), &mode, |b, m| {
            let mut pipeline = FusionPipeline::builder(arsf_sensor::suite::landshark())
                .config(PipelineConfig::new(1, SchedulePolicy::Ascending).with_detection(*m))
                .build();
            let mut rng = StdRng::seed_from_u64(5);
            b.iter(|| pipeline.run_round(std::hint::black_box(10.0), &mut rng))
        });
    }
    group.finish();
}

fn bench_strategy_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_attack_strategy");
    let make_strategy = |label: &str| -> Box<dyn AttackStrategy> {
        match label {
            "phantom_optimal" => Box::new(PhantomOptimal::new()),
            "greedy_high" => Box::new(GreedyExtreme::new(Side::High)),
            _ => Box::new(Truthful),
        }
    };
    for label in ["phantom_optimal", "greedy_high", "truthful"] {
        group.bench_with_input(
            BenchmarkId::new("descending_round", label),
            &label,
            |b, l| {
                let mut pipeline = FusionPipeline::builder(arsf_sensor::suite::landshark())
                    .config(PipelineConfig::new(1, SchedulePolicy::Descending))
                    .attacker(AttackerConfig::new([0], 1), make_strategy(l))
                    .build();
                let mut rng = StdRng::seed_from_u64(5);
                b.iter(|| pipeline.run_round(std::hint::black_box(10.0), &mut rng))
            },
        );
    }
    group.finish();
}

/// Shared bench configuration: short measurement windows keep the whole
/// workspace bench run in the minutes range while remaining stable.
fn configured() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_detection_modes, bench_strategy_cost
}
criterion_main!(benches);
