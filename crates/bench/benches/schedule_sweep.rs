//! Criterion bench: the Table I engine cost per setup and the schedule
//! policies themselves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use arsf_schedule::SchedulePolicy;
use arsf_sim::table1::{evaluate_setup, Table1Setup};

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedule_policies");
    let widths: Vec<f64> = (0..64).map(|i| 1.0 + (i % 7) as f64).collect();
    let mut rng = StdRng::seed_from_u64(1);
    for policy in [
        SchedulePolicy::Ascending,
        SchedulePolicy::Descending,
        SchedulePolicy::Random,
    ] {
        group.bench_with_input(
            BenchmarkId::new("order_64_sensors", policy.name()),
            &policy,
            |b, p| b.iter(|| p.order(std::hint::black_box(&widths), 3, &mut rng)),
        );
    }
    group.finish();
}

fn bench_table1_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_engine");
    group.sample_size(10);
    for (label, setup, step) in [
        ("n3_coarse", Table1Setup::new([5.0, 11.0, 17.0], 1), 4.0),
        ("n3_mid", Table1Setup::new([5.0, 11.0, 17.0], 1), 2.0),
        (
            "n4_coarse",
            Table1Setup::new([5.0, 8.0, 17.0, 20.0], 1),
            4.0,
        ),
    ] {
        group.bench_with_input(BenchmarkId::new("evaluate_setup", label), &setup, |b, s| {
            b.iter(|| evaluate_setup(std::hint::black_box(s), step))
        });
    }
    group.finish();
}

/// Shared bench configuration: short measurement windows keep the whole
/// workspace bench run in the minutes range while remaining stable.
fn configured() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_policies, bench_table1_engine
}
criterion_main!(benches);
