//! End-to-end coverage of the distributed sweep path: a `sweep_drive`
//! coordinator fanning a grid out across `scenario_sweep --stream`
//! workers must produce a merged report byte-identical to the
//! single-process `ParallelSweeper`, for the committed golden grids,
//! for randomly-shaped grids under adversarial shard plans (empty and
//! single-cell ranges included), and across the crash-retry path.

use std::path::PathBuf;
use std::process::Command;
use std::sync::atomic::{AtomicUsize, Ordering};

use arsf_bench::golden;
use arsf_core::scenario::{AttackerSpec, FuserSpec, Scenario, StrategySpec, SuiteSpec};
use arsf_core::sweep::{ParallelSweeper, StreamingSweeper, SweepGrid};
use arsf_core::DetectionMode;
use arsf_schedule::SchedulePolicy;
use proptest::prelude::*;

struct Run {
    code: i32,
    stdout: String,
    stderr: String,
}

fn drive(args: &[&str]) -> Run {
    let output = Command::new(env!("CARGO_BIN_EXE_sweep_drive"))
        .args(args)
        .args(["--worker-exe", env!("CARGO_BIN_EXE_scenario_sweep")])
        .output()
        .expect("sweep_drive runs");
    Run {
        code: output.status.code().unwrap_or(-1),
        stdout: String::from_utf8_lossy(&output.stdout).into_owned(),
        stderr: String::from_utf8_lossy(&output.stderr).into_owned(),
    }
}

/// A unique scratch path for one driven run's merged CSV.
fn scratch(name: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let unique = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "arsf-sweep-drive-{}-{unique}-{name}.csv",
        std::process::id()
    ))
}

/// The workspace-root baseline directory (integration tests run with
/// the crate directory, not the workspace root, as CWD).
fn baseline_dir() -> String {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../baselines")
        .to_string_lossy()
        .into_owned()
}

/// Builds the same open-loop grid `grid_from_args` builds for the
/// matching `--fusers/--detectors/--schedules/--seeds/--rounds` flags,
/// so in-process reference reports and subprocess runs agree.
fn grid_for(
    fusers: &[FuserSpec],
    detectors: &[DetectionMode],
    schedules: &[SchedulePolicy],
    seeds: &[u64],
    rounds: u64,
) -> SweepGrid {
    let base = Scenario::new("sweep", SuiteSpec::Landshark)
        .with_attacker(AttackerSpec::Fixed {
            sensors: vec![0],
            strategy: StrategySpec::PhantomOptimal,
        })
        .with_rounds(rounds);
    SweepGrid::new(base)
        .fusers(fusers.iter().cloned())
        .detectors(detectors.iter().copied())
        .schedules(schedules.iter().cloned())
        .seeds(seeds.iter().copied())
}

#[test]
fn driven_golden_grids_match_the_library_and_the_committed_baselines() {
    for (name, grid) in golden::all() {
        let expected = ParallelSweeper::new(2).run(&grid).to_csv();
        let csv = scratch(name);
        let run = drive(&[
            "--golden",
            name,
            "--workers",
            "3",
            "--json-progress",
            "--csv",
            csv.to_str().unwrap(),
            "--baseline",
            "check",
            "--baseline-dir",
            &baseline_dir(),
        ]);
        assert_eq!(
            run.code, 0,
            "golden `{name}` drives cleanly: {}",
            run.stderr
        );
        let merged = std::fs::read_to_string(&csv).expect("merged CSV written");
        std::fs::remove_file(&csv).ok();
        assert_eq!(
            merged, expected,
            "golden `{name}`: driven report is byte-identical to the library's"
        );
        assert!(
            run.stdout.contains("no drift"),
            "golden `{name}` verifies against its committed baseline: {}",
            run.stdout
        );
        let progress: Vec<&str> = run
            .stderr
            .lines()
            .filter(|l| l.starts_with("{\"schema\":1,"))
            .collect();
        assert_eq!(
            progress.len(),
            3,
            "one JSON progress line per shard: {}",
            run.stderr
        );
        for line in progress {
            for field in [
                "\"worker\":",
                "\"cells\":",
                "\"rows\":",
                "\"attempt\":",
                "\"elapsed_s\":",
                "\"rows_per_s\":",
            ] {
                assert!(line.contains(field), "{field} present in {line}");
            }
        }
    }
}

#[test]
fn empty_and_single_cell_shards_merge_cleanly() {
    let grid = grid_for(
        &[FuserSpec::Marzullo, FuserSpec::BrooksIyengar],
        &[DetectionMode::Off],
        &[SchedulePolicy::Ascending],
        &[1, 2],
        20,
    );
    let expected = ParallelSweeper::new(2).run(&grid).to_csv();
    let csv = scratch("adversarial-shards");
    let csv_str = csv.to_str().unwrap().to_string();
    let run = drive(&[
        "--fusers",
        "marzullo,brooks-iyengar",
        "--detectors",
        "off",
        "--schedules",
        "ascending",
        "--seeds",
        "1,2",
        "--rounds",
        "20",
        "--shards",
        "0..0,0..1,1..1,1..4,4..4",
        "--csv",
        &csv_str,
    ]);
    assert_eq!(run.code, 0, "{}", run.stderr);
    let merged = std::fs::read_to_string(&csv).expect("merged CSV written");
    std::fs::remove_file(&csv).ok();
    assert_eq!(merged, expected);
    // Empty shards report zero rows without spawning a worker.
    assert!(
        run.stderr.contains("cells 0..0: 0 rows"),
        "empty shard progress line: {}",
        run.stderr
    );
}

#[test]
fn a_crashed_worker_is_retried_once_and_the_report_is_unchanged() {
    let grid = grid_for(
        &[FuserSpec::Marzullo],
        &[DetectionMode::Off],
        &[SchedulePolicy::Ascending],
        &[1, 2, 3, 4],
        20,
    );
    let expected = ParallelSweeper::new(2).run(&grid).to_csv();
    let csv = scratch("retry");
    let csv_str = csv.to_str().unwrap().to_string();
    let run = drive(&[
        "--fusers",
        "marzullo",
        "--detectors",
        "off",
        "--schedules",
        "ascending",
        "--seeds",
        "1,2,3,4",
        "--rounds",
        "20",
        "--workers",
        "2",
        "--fault-worker",
        "1:1",
        "--csv",
        &csv_str,
    ]);
    assert_eq!(run.code, 0, "the retry recovers the shard: {}", run.stderr);
    let merged = std::fs::read_to_string(&csv).expect("merged CSV written");
    std::fs::remove_file(&csv).ok();
    assert_eq!(merged, expected, "retried shard merges byte-identically");
    assert!(
        run.stderr.contains("retrying once"),
        "the crash is reported: {}",
        run.stderr
    );
    assert!(
        run.stderr.contains("attempt 2"),
        "the shard completes on attempt 2: {}",
        run.stderr
    );
}

#[test]
fn a_worker_crashing_twice_fails_with_a_named_diagnostic() {
    let run = drive(&[
        "--fusers",
        "marzullo",
        "--seeds",
        "1,2,3,4",
        "--rounds",
        "10",
        "--workers",
        "2",
        "--fault-worker",
        "1:1:2",
    ]);
    assert_eq!(run.code, 2, "a twice-crashed shard fails the run");
    assert!(
        run.stderr.contains("failed twice"),
        "the diagnostic names the exhausted retry: {}",
        run.stderr
    );
    assert!(
        !run.stderr.contains("panicked"),
        "failures are diagnostics, never panics: {}",
        run.stderr
    );
}

#[test]
fn text_and_json_progress_agree_on_shard_outcomes() {
    let flags = [
        "--fusers",
        "marzullo,brooks-iyengar",
        "--seeds",
        "1,2",
        "--rounds",
        "10",
        "--workers",
        "3",
    ];
    let text = drive(&flags);
    let mut json_flags = flags.to_vec();
    json_flags.push("--json-progress");
    let json = drive(&json_flags);
    assert_eq!(text.code, 0, "{}", text.stderr);
    assert_eq!(json.code, 0, "{}", json.stderr);

    // Text mode: one `worker W cells a..b: N rows …` line per shard.
    let text_shards: Vec<(String, String, String)> = text
        .stderr
        .lines()
        .filter_map(|l| {
            let rest = l.strip_prefix("sweep_drive: worker ")?;
            let (worker, rest) = rest.split_once(" cells ")?;
            let (cells, rest) = rest.split_once(": ")?;
            let (rows, _) = rest.split_once(" rows")?;
            Some((worker.to_string(), cells.to_string(), rows.to_string()))
        })
        .collect();
    // JSON mode: the same shard outcomes as schema-1 objects.
    let json_shards: Vec<(String, String, String)> = json
        .stderr
        .lines()
        .filter(|l| l.starts_with("{\"schema\":1,"))
        .map(|l| {
            let field = |key: &str| {
                let start = l.find(key).unwrap_or_else(|| panic!("{key} in {l}")) + key.len();
                l[start..]
                    .chars()
                    .take_while(|c| !",}".contains(*c))
                    .collect::<String>()
                    .trim_matches('"')
                    .to_string()
            };
            (
                field("\"worker\":"),
                field("\"cells\":"),
                field("\"rows\":"),
            )
        })
        .collect();
    assert_eq!(text_shards.len(), 3, "{}", text.stderr);
    assert_eq!(
        text_shards, json_shards,
        "text and JSON progress describe identical shard outcomes"
    );
}

const FUSER_POOL: [(&str, FuserSpec); 3] = [
    ("marzullo", FuserSpec::Marzullo),
    ("brooks-iyengar", FuserSpec::BrooksIyengar),
    (
        "historical:2.5:0.1",
        FuserSpec::Historical {
            max_rate: 2.5,
            dt: 0.1,
        },
    ),
];

const DETECTOR_POOL: [(&str, DetectionMode); 3] = [
    ("off", DetectionMode::Off),
    ("immediate", DetectionMode::Immediate),
    (
        "windowed:10:3",
        DetectionMode::Windowed {
            window: 10,
            tolerance: 3,
        },
    ),
];

const SCHEDULE_POOL: [(&str, SchedulePolicy); 2] = [
    ("ascending", SchedulePolicy::Ascending),
    ("descending", SchedulePolicy::Descending),
];

/// Renders sorted cut points into an explicit `--shards` plan (repeated
/// cuts make empty shards; adjacent cuts make single-cell shards).
fn shard_spec(len: usize, cuts: &[usize]) -> String {
    let mut bounds = vec![0];
    bounds.extend(cuts.iter().map(|c| c % (len + 1)));
    bounds.push(len);
    bounds.sort_unstable();
    bounds
        .windows(2)
        .map(|w| format!("{}..{}", w[0], w[1]))
        .collect::<Vec<_>>()
        .join(",")
}

/// Keeps the first occurrence of each pool index so axis values stay
/// distinct, mirroring how a human would write the flag.
fn pick(indices: &[usize], pool_len: usize) -> Vec<usize> {
    let mut seen = Vec::new();
    for &i in indices {
        let i = i % pool_len;
        if !seen.contains(&i) {
            seen.push(i);
        }
    }
    seen
}

fn join_names<T>(indices: &[usize], pool: &[(&str, T)]) -> String {
    indices
        .iter()
        .map(|&i| pool[i].0)
        .collect::<Vec<_>>()
        .join(",")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// A random grid streamed in-process and driven across worker
    /// processes under an adversarial shard plan must both be
    /// byte-identical to `ParallelSweeper`'s report.
    #[test]
    fn random_grids_stream_and_drive_byte_identically(
        fusers in prop::collection::vec(0usize..FUSER_POOL.len(), 1..=2),
        detectors in prop::collection::vec(0usize..DETECTOR_POOL.len(), 1..=2),
        schedules in prop::collection::vec(0usize..SCHEDULE_POOL.len(), 1..=2),
        seeds in prop::collection::vec(1u64..1000, 1..=2),
        rounds in 3u64..8,
        threads in 1usize..4,
        window in 1usize..4,
        cuts in prop::collection::vec(0usize..64, 1..=3),
    ) {
        let fusers = pick(&fusers, FUSER_POOL.len());
        let detectors = pick(&detectors, DETECTOR_POOL.len());
        let schedules = pick(&schedules, SCHEDULE_POOL.len());

        let grid = grid_for(
            &fusers.iter().map(|&i| FUSER_POOL[i].1.clone()).collect::<Vec<_>>(),
            &detectors.iter().map(|&i| DETECTOR_POOL[i].1).collect::<Vec<_>>(),
            &schedules.iter().map(|&i| SCHEDULE_POOL[i].1.clone()).collect::<Vec<_>>(),
            &seeds,
            rounds,
        );
        let expected = ParallelSweeper::new(2).run(&grid).to_csv();

        // In-process: the streaming path reorders back to grid order.
        let streamed = StreamingSweeper::new(threads).with_window(window).run(&grid).to_csv();
        prop_assert_eq!(
            &streamed, &expected,
            "StreamingSweeper threads={} window={}", threads, window
        );

        // Subprocess: drive the same grid over an adversarial shard plan.
        let fusers_flag = join_names(&fusers, &FUSER_POOL[..]);
        let detectors_flag = join_names(&detectors, &DETECTOR_POOL[..]);
        let schedules_flag = join_names(&schedules, &SCHEDULE_POOL[..]);
        let seeds_flag = seeds.iter().map(u64::to_string).collect::<Vec<_>>().join(",");
        let rounds_flag = rounds.to_string();
        let shards = shard_spec(grid.len(), &cuts);
        let csv = scratch("prop");
        let csv_str = csv.to_str().unwrap().to_string();
        let run = drive(&[
            "--fusers", &fusers_flag,
            "--detectors", &detectors_flag,
            "--schedules", &schedules_flag,
            "--seeds", &seeds_flag,
            "--rounds", &rounds_flag,
            "--shards", &shards,
            "--csv", &csv_str,
        ]);
        prop_assert_eq!(run.code, 0, "shards `{}`: {}", &shards, &run.stderr);
        let merged = std::fs::read_to_string(&csv).expect("merged CSV written");
        std::fs::remove_file(&csv).ok();
        prop_assert_eq!(&merged, &expected, "driven report under shards `{}`", &shards);
    }
}
