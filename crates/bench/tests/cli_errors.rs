//! Error-path coverage for the shared CLI parsing layer
//! (`arsf_bench::cli`) and the binaries built on it: a malformed flag
//! must produce a diagnostic naming the bad token and exit code 2 —
//! never a panic, never a silent default.

use std::process::Command;

use arsf_bench::cli::{parse_cells, parse_fault, parse_strategy, parse_tolerances};

/// Runs a compiled binary and returns `(exit code, stderr)`.
fn run(exe: &str, args: &[&str]) -> (i32, String) {
    let output = Command::new(exe).args(args).output().expect("binary runs");
    (
        output.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

fn run_scenario_sweep(args: &[&str]) -> (i32, String) {
    run(env!("CARGO_BIN_EXE_scenario_sweep"), args)
}

fn run_sweep_lint(args: &[&str]) -> (i32, String) {
    run(env!("CARGO_BIN_EXE_sweep_lint"), args)
}

#[test]
fn parse_cells_rejects_reversed_and_empty_ranges() {
    assert_eq!(parse_cells("5..2").unwrap_err(), "cell range 5..2 is empty");
    assert_eq!(parse_cells("7..7").unwrap_err(), "cell range 7..7 is empty");
    assert!(parse_cells("3").unwrap_err().contains("a..b"));
    assert!(parse_cells("a..4")
        .unwrap_err()
        .contains("bad cell index `a`"));
}

#[test]
fn parse_fault_names_the_malformed_component() {
    // Missing the probability (and the param): too few components.
    assert!(parse_fault("0:bias")
        .unwrap_err()
        .contains("sensor:kind[:param]:probability"));
    // A bias fault without its offset parameter: the third token is the
    // probability, so the param slot is missing.
    assert!(parse_fault("0:bias:0.5")
        .unwrap_err()
        .contains("sensor:kind[:param]:probability"));
    assert!(parse_fault("x:bias:3:0.5")
        .unwrap_err()
        .contains("bad sensor index `x`"));
    assert!(parse_fault("0:bias:3:1.5")
        .unwrap_err()
        .contains("bad probability `1.5`"));
    assert!(parse_fault("0:gremlin:3:0.5")
        .unwrap_err()
        .contains("unknown fault kind `gremlin`"));
}

#[test]
fn parse_tolerances_names_the_malformed_entry() {
    assert!(parse_tolerances("mean_width=abc")
        .unwrap_err()
        .contains("bad tolerance `abc`"));
    assert!(parse_tolerances("mean_width")
        .unwrap_err()
        .contains("column=abs[:rel]"));
    assert!(parse_tolerances("=1e-9")
        .unwrap_err()
        .contains("empty column name"));
    assert!(parse_tolerances("mean_width=-1.0")
        .unwrap_err()
        .contains("bad tolerance `-1.0`"));
}

#[test]
fn parse_strategy_rejects_unknown_names() {
    assert_eq!(
        parse_strategy("nope").unwrap_err(),
        "unknown strategy `nope`"
    );
}

#[test]
fn scenario_sweep_rejects_a_reversed_cell_range() {
    let (code, stderr) = run_scenario_sweep(&["--fusers", "marzullo", "--cells", "5..2"]);
    assert_eq!(code, 2, "a reversed range is a usage error: {stderr}");
    assert!(
        stderr.contains("cell range 5..2 is empty"),
        "the diagnostic names the range: {stderr}"
    );
}

#[test]
fn scenario_sweep_rejects_an_empty_cell_range() {
    let (code, stderr) = run_scenario_sweep(&["--fusers", "marzullo", "--cells", "7..7"]);
    assert_eq!(code, 2, "an empty range is a usage error: {stderr}");
    assert!(stderr.contains("is empty"), "{stderr}");
}

#[test]
fn scenario_sweep_rejects_a_malformed_fault_spec() {
    let (code, stderr) = run_scenario_sweep(&["--fusers", "marzullo", "--fault", "0:bias"]);
    assert_eq!(code, 2, "a malformed fault is a usage error: {stderr}");
    assert!(
        stderr.contains("sensor:kind[:param]:probability"),
        "the diagnostic shows the expected shape: {stderr}"
    );
}

#[test]
fn scenario_sweep_rejects_an_unknown_strategy() {
    let (code, stderr) = run_scenario_sweep(&["--fusers", "marzullo", "--strategy", "nope"]);
    assert_eq!(code, 2, "an unknown strategy is a usage error: {stderr}");
    assert!(
        stderr.contains("unknown strategy `nope`"),
        "the diagnostic names the strategy: {stderr}"
    );
}

#[test]
fn sweep_lint_rejects_a_malformed_tolerance() {
    let (code, stderr) = run_sweep_lint(&["baselines", "--tol", "mean_width=abc"]);
    assert_eq!(code, 2, "a malformed tolerance is a usage error: {stderr}");
    assert!(
        stderr.contains("bad tolerance `abc`"),
        "the diagnostic names the token: {stderr}"
    );
}

#[test]
fn sweep_lint_grid_propagates_cli_errors() {
    let (code, stderr) = run_sweep_lint(&["grid", "--strategy", "nope"]);
    assert_eq!(code, 2, "grid mode shares the CLI parser: {stderr}");
    assert!(stderr.contains("unknown strategy `nope`"), "{stderr}");
}

#[test]
fn sweep_lint_without_a_subcommand_prints_usage() {
    let (code, stderr) = run_sweep_lint(&[]);
    assert_eq!(code, 2);
    assert!(
        stderr.contains("usage: sweep_lint"),
        "the usage text is shown: {stderr}"
    );
    assert!(
        stderr.contains("dominance") && stderr.contains("all"),
        "the usage lists the new subcommands: {stderr}"
    );
}
