//! Error-path coverage for the shared CLI parsing layer
//! (`arsf_bench::cli`) and the binaries built on it: a malformed flag
//! must produce a diagnostic naming the bad token and exit code 2 —
//! never a panic, never a silent default.

use std::process::Command;

use arsf_bench::cli::{parse_cells, parse_fault, parse_strategy, parse_tolerances};

/// Runs a compiled binary and returns `(exit code, stderr)`.
fn run(exe: &str, args: &[&str]) -> (i32, String) {
    let output = Command::new(exe).args(args).output().expect("binary runs");
    (
        output.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

fn run_scenario_sweep(args: &[&str]) -> (i32, String) {
    run(env!("CARGO_BIN_EXE_scenario_sweep"), args)
}

fn run_sweep_lint(args: &[&str]) -> (i32, String) {
    run(env!("CARGO_BIN_EXE_sweep_lint"), args)
}

fn run_sweep_drive(args: &[&str]) -> (i32, String) {
    run(env!("CARGO_BIN_EXE_sweep_drive"), args)
}

#[test]
fn parse_cells_rejects_reversed_and_empty_ranges() {
    assert_eq!(parse_cells("5..2").unwrap_err(), "cell range 5..2 is empty");
    assert_eq!(parse_cells("7..7").unwrap_err(), "cell range 7..7 is empty");
    assert!(parse_cells("3").unwrap_err().contains("a..b"));
    assert!(parse_cells("a..4")
        .unwrap_err()
        .contains("bad cell index `a`"));
}

#[test]
fn parse_fault_names_the_malformed_component() {
    // Missing the probability (and the param): too few components.
    assert!(parse_fault("0:bias")
        .unwrap_err()
        .contains("sensor:kind[:param]:probability"));
    // A bias fault without its offset parameter: the third token is the
    // probability, so the param slot is missing.
    assert!(parse_fault("0:bias:0.5")
        .unwrap_err()
        .contains("sensor:kind[:param]:probability"));
    assert!(parse_fault("x:bias:3:0.5")
        .unwrap_err()
        .contains("bad sensor index `x`"));
    assert!(parse_fault("0:bias:3:1.5")
        .unwrap_err()
        .contains("bad probability `1.5`"));
    assert!(parse_fault("0:gremlin:3:0.5")
        .unwrap_err()
        .contains("unknown fault kind `gremlin`"));
}

#[test]
fn parse_tolerances_names_the_malformed_entry() {
    assert!(parse_tolerances("mean_width=abc")
        .unwrap_err()
        .contains("bad tolerance `abc`"));
    assert!(parse_tolerances("mean_width")
        .unwrap_err()
        .contains("column=abs[:rel]"));
    assert!(parse_tolerances("=1e-9")
        .unwrap_err()
        .contains("empty column name"));
    assert!(parse_tolerances("mean_width=-1.0")
        .unwrap_err()
        .contains("bad tolerance `-1.0`"));
}

#[test]
fn parse_strategy_rejects_unknown_names() {
    assert_eq!(
        parse_strategy("nope").unwrap_err(),
        "unknown strategy `nope`"
    );
}

#[test]
fn scenario_sweep_rejects_a_reversed_cell_range() {
    let (code, stderr) = run_scenario_sweep(&["--fusers", "marzullo", "--cells", "5..2"]);
    assert_eq!(code, 2, "a reversed range is a usage error: {stderr}");
    assert!(
        stderr.contains("cell range 5..2 is empty"),
        "the diagnostic names the range: {stderr}"
    );
}

#[test]
fn scenario_sweep_rejects_an_empty_cell_range() {
    let (code, stderr) = run_scenario_sweep(&["--fusers", "marzullo", "--cells", "7..7"]);
    assert_eq!(code, 2, "an empty range is a usage error: {stderr}");
    assert!(stderr.contains("is empty"), "{stderr}");
}

#[test]
fn scenario_sweep_rejects_a_malformed_fault_spec() {
    let (code, stderr) = run_scenario_sweep(&["--fusers", "marzullo", "--fault", "0:bias"]);
    assert_eq!(code, 2, "a malformed fault is a usage error: {stderr}");
    assert!(
        stderr.contains("sensor:kind[:param]:probability"),
        "the diagnostic shows the expected shape: {stderr}"
    );
}

#[test]
fn scenario_sweep_rejects_an_unknown_strategy() {
    let (code, stderr) = run_scenario_sweep(&["--fusers", "marzullo", "--strategy", "nope"]);
    assert_eq!(code, 2, "an unknown strategy is a usage error: {stderr}");
    assert!(
        stderr.contains("unknown strategy `nope`"),
        "the diagnostic names the strategy: {stderr}"
    );
}

#[test]
fn scenario_sweep_rejects_stream_combined_with_report_flags() {
    let (code, stderr) = run_scenario_sweep(&["--fusers", "marzullo", "--stream", "--csv", "-"]);
    assert_eq!(code, 2, "--stream owns stdout: {stderr}");
    assert!(
        stderr.contains("--stream emits protocol frames; drop --csv"),
        "the diagnostic names the clashing flag: {stderr}"
    );
}

#[test]
fn scenario_sweep_rejects_stream_without_grid_mode() {
    let (code, stderr) = run_scenario_sweep(&["--stream"]);
    assert_eq!(code, 2, "--stream needs a grid: {stderr}");
    assert!(stderr.contains("--stream needs grid mode"), "{stderr}");
}

#[test]
fn golden_grids_reject_extra_shaping_flags() {
    let (code, stderr) = run_scenario_sweep(&["--golden", "open-loop-48", "--fusers", "marzullo"]);
    assert_eq!(code, 2, "--golden is a complete definition: {stderr}");
    assert!(
        stderr.contains("--golden names a committed grid; drop --fusers"),
        "the diagnostic names the extra flag: {stderr}"
    );
}

#[test]
fn unknown_golden_names_list_the_known_grids() {
    let (code, stderr) = run_scenario_sweep(&["--golden", "nope"]);
    assert_eq!(code, 2, "an unknown golden name is a usage error: {stderr}");
    assert!(
        stderr.contains("unknown golden grid `nope`")
            && stderr.contains("open-loop-48")
            && stderr.contains("table2-closed-loop"),
        "the diagnostic lists the candidates: {stderr}"
    );
}

#[test]
fn sweep_drive_requires_grid_mode() {
    let (code, stderr) = run_sweep_drive(&[]);
    assert_eq!(code, 2, "no grid flags is a usage error: {stderr}");
    assert!(stderr.contains("needs grid mode"), "{stderr}");
}

#[test]
fn sweep_drive_rejects_zero_workers() {
    let (code, stderr) = run_sweep_drive(&["--fusers", "marzullo", "--workers", "0"]);
    assert_eq!(code, 2, "zero workers is a usage error: {stderr}");
    assert!(
        stderr.contains("--workers wants a positive integer"),
        "{stderr}"
    );
}

#[test]
fn sweep_drive_rejects_shard_plans_that_do_not_partition_the_grid() {
    // marzullo × seeds 1,2 = 2 cells.
    let grid = ["--fusers", "marzullo", "--seeds", "1,2"];
    let cases = [
        ("0..1", "covers 0..1"),         // misses the tail
        ("1..2", "not contiguous"),      // misses the head
        ("0..1,0..2", "not contiguous"), // overlap
        ("0..3", "exceeds"),             // past the end
        ("1..0", "reversed"),            // backwards range
        ("0..x", "bad cell index"),      // malformed endpoint
    ];
    for (spec, diagnostic) in cases {
        let mut args = grid.to_vec();
        args.extend(["--shards", spec]);
        let (code, stderr) = run_sweep_drive(&args);
        assert_eq!(code, 2, "shards `{spec}` is a usage error: {stderr}");
        assert!(
            stderr.contains(diagnostic),
            "shards `{spec}` names the defect `{diagnostic}`: {stderr}"
        );
        assert!(!stderr.contains("panicked"), "{stderr}");
    }
}

#[test]
fn sweep_drive_rejects_a_malformed_fault_worker_spec() {
    for (spec, diagnostic) in [
        ("1", "expected worker:rows[:attempts]"),
        ("x:1", "bad worker index `x`"),
        ("1:y", "bad row count `y`"),
        ("1:1:9", "bad attempt count `9`"),
    ] {
        let (code, stderr) = run_sweep_drive(&["--fusers", "marzullo", "--fault-worker", spec]);
        assert_eq!(code, 2, "--fault-worker {spec} is a usage error: {stderr}");
        assert!(
            stderr.contains(diagnostic),
            "`{spec}` → `{diagnostic}`: {stderr}"
        );
    }
}

#[test]
fn sweep_drive_rejects_an_unknown_baseline_mode() {
    let (code, stderr) = run_sweep_drive(&["--fusers", "marzullo", "--baseline", "freeze"]);
    assert_eq!(
        code, 2,
        "an unknown baseline mode is a usage error: {stderr}"
    );
    assert!(
        stderr.contains("--baseline wants `record` or `check`"),
        "{stderr}"
    );
}

#[test]
fn sweep_lint_rejects_a_malformed_tolerance() {
    let (code, stderr) = run_sweep_lint(&["baselines", "--tol", "mean_width=abc"]);
    assert_eq!(code, 2, "a malformed tolerance is a usage error: {stderr}");
    assert!(
        stderr.contains("bad tolerance `abc`"),
        "the diagnostic names the token: {stderr}"
    );
}

#[test]
fn sweep_lint_grid_propagates_cli_errors() {
    let (code, stderr) = run_sweep_lint(&["grid", "--strategy", "nope"]);
    assert_eq!(code, 2, "grid mode shares the CLI parser: {stderr}");
    assert!(stderr.contains("unknown strategy `nope`"), "{stderr}");
}

#[test]
fn sweep_lint_without_a_subcommand_prints_usage() {
    let (code, stderr) = run_sweep_lint(&[]);
    assert_eq!(code, 2);
    assert!(
        stderr.contains("usage: sweep_lint"),
        "the usage text is shown: {stderr}"
    );
    assert!(
        stderr.contains("dominance") && stderr.contains("all"),
        "the usage lists the new subcommands: {stderr}"
    );
}
