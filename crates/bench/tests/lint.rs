//! Integration coverage for the static-analysis surface the `sweep_lint`
//! binary exposes: the golden grids and the committed baseline directory
//! must lint clean, a hand-corrupted baseline must be flagged with a
//! file-level location, and the acceptance grids (a 3-sensor suite under
//! `f = 2`, a duplicated fuser axis value) must produce the documented
//! severities and exit codes.

use std::path::{Path, PathBuf};

use arsf_analyze::{analyze_baseline_dir, analyze_baseline_file, exit_code, AnalyzeGrid, Severity};
use arsf_bench::golden;
use arsf_core::scenario::{FuserSpec, Scenario, SuiteSpec};
use arsf_core::sweep::store::grid_address;
use arsf_core::sweep::SweepGrid;

/// The committed baseline directory at the workspace root.
fn baselines_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../baselines")
}

fn known_grids() -> Vec<(String, String)> {
    golden::all()
        .iter()
        .map(|(name, grid)| (name.to_string(), grid_address(grid)))
        .collect()
}

#[test]
fn golden_grids_are_lint_clean() {
    for (name, grid) in golden::all() {
        let findings = grid.analyze();
        assert!(
            findings.is_empty(),
            "golden grid {name} has findings: {findings:?}"
        );
    }
}

#[test]
fn committed_baseline_directory_is_lint_clean() {
    let findings = analyze_baseline_dir(&baselines_dir(), &known_grids());
    assert!(findings.is_empty(), "baseline findings: {findings:?}");
    assert_eq!(exit_code(&findings), 0);
}

#[test]
fn corrupted_baseline_is_flagged_with_its_path() {
    // Copy a committed baseline, flip one definition line, and keep the
    // recorded address: the recomputed content address no longer matches.
    let source = baselines_dir().join("3923b1688ebe2b0c.json");
    let text = std::fs::read_to_string(&source).expect("committed baseline reads");
    let corrupted = text.replace("rounds=120", "rounds=121");
    assert_ne!(text, corrupted, "the definition line to corrupt exists");

    let dir = std::env::temp_dir().join(format!("arsf-lint-corrupt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("3923b1688ebe2b0c.json");
    std::fs::write(&path, corrupted).expect("corrupted baseline writes");

    let findings = analyze_baseline_file(&path);
    std::fs::remove_dir_all(&dir).ok();

    let address = findings
        .iter()
        .find(|f| f.lint == "baseline-address")
        .expect("the address mismatch is flagged");
    assert_eq!(address.severity, Severity::Error);
    assert!(
        address.render().contains("3923b1688ebe2b0c.json"),
        "the finding names the file: {}",
        address.render()
    );
    assert_eq!(exit_code(&findings), 2);
}

#[test]
fn undersized_suite_for_f_is_an_error() {
    // The acceptance grid: n = 3 sensors with f = 2 violates n > 2f.
    let base = Scenario::new("lint", SuiteSpec::Widths(vec![5.0, 11.0, 17.0])).with_f(2);
    let findings = SweepGrid::new(base).analyze();
    let soundness = findings
        .iter()
        .find(|f| f.lint == "fusion-soundness")
        .expect("the soundness violation is flagged");
    assert_eq!(soundness.severity, Severity::Error);
    assert!(
        soundness.render().contains("cell"),
        "the finding carries a cell location: {}",
        soundness.render()
    );
    assert_eq!(exit_code(&findings), 2);
}

#[test]
fn duplicated_fuser_axis_value_is_a_warning() {
    let grid = SweepGrid::new(Scenario::new("lint", SuiteSpec::Landshark)).fusers(vec![
        FuserSpec::Marzullo,
        FuserSpec::BrooksIyengar,
        FuserSpec::Marzullo,
    ]);
    let findings = grid.analyze();
    let duplicate = findings
        .iter()
        .find(|f| f.lint == "duplicate-axis-value")
        .expect("the duplicated value is flagged");
    assert_eq!(duplicate.severity, Severity::Warn);
    assert!(
        duplicate.render().contains("fusers axis [0, 2]"),
        "the finding names the duplicated positions: {}",
        duplicate.render()
    );
    assert_eq!(exit_code(&findings), 1);
}
