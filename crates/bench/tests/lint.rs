//! Integration coverage for the static-analysis surface the `sweep_lint`
//! binary exposes: the golden grids and the committed baseline directory
//! must lint clean, a hand-corrupted baseline must be flagged with a
//! file-level location, and the acceptance grids (a 3-sensor suite under
//! `f = 2`, a duplicated fuser axis value) must produce the documented
//! severities and exit codes.
//!
//! The guarantee layer is covered end to end as well: every golden-grid
//! cell derives a static width bound without simulating, the committed
//! baselines vet clean against those bounds, and a hand-corrupted cell
//! (width past its Theorem-2 bound, or truth loss where containment is
//! provable) is flagged with its cell index, column, bound and observed
//! value at the error tier.
//!
//! The detectability layer mirrors that coverage: every golden-grid cell
//! derives a static detection verdict without simulating, the committed
//! baselines' `flagged_rounds`/condemnation columns vet clean against
//! the verdicts, a hand-corrupted flagged count is flagged at the error
//! tier, and the `sweep_lint` binary's `--json` mode carries the same
//! findings as the text mode for every subcommand.
//!
//! The dominance layer closes the loop: the pass derives a nonempty set
//! of provable cross-cell orderings for both golden grids (Table II's
//! schedule chain among them) without simulating, the committed
//! baselines respect every edge, and a hand-perturbed pair of cells that
//! stays inside its per-cell tolerances — invisible to the guarantee and
//! detectability passes — is still caught as an `order-violation` when
//! it inverts a provable edge.

use std::path::{Path, PathBuf};
use std::process::Command;

use arsf_analyze::{
    analyze_baseline_dir, analyze_baseline_file, analyze_grid_detectability,
    analyze_grid_guarantees, exit_code, vet_baseline_detectability, vet_baseline_dominance,
    vet_baseline_guarantees, AnalyzeGrid, Location, Severity,
};
use arsf_bench::golden;
use arsf_core::scenario::{FuserSpec, Scenario, SuiteSpec};
use arsf_core::sweep::store::{baseline_path, grid_address, Baseline};
use arsf_core::sweep::SweepGrid;

/// The committed baseline directory at the workspace root.
fn baselines_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../baselines")
}

fn known_grids() -> Vec<(String, String)> {
    golden::all()
        .iter()
        .map(|(name, grid)| (name.to_string(), grid_address(grid)))
        .collect()
}

#[test]
fn golden_grids_are_lint_clean() {
    for (name, grid) in golden::all() {
        let findings = grid.analyze();
        assert!(
            findings.is_empty(),
            "golden grid {name} has findings: {findings:?}"
        );
    }
}

#[test]
fn committed_baseline_directory_is_lint_clean() {
    // The directory also holds `throughput.json` (a perf budget, not a
    // baseline), so exactly the info-tier skip notes are allowed.
    let findings = analyze_baseline_dir(&baselines_dir(), &known_grids());
    for finding in &findings {
        assert_eq!(
            (finding.lint, finding.severity),
            ("baseline-skipped", Severity::Info),
            "unexpected baseline finding: {finding:?}"
        );
    }
    assert_eq!(exit_code(&findings), 0);
}

#[test]
fn non_baseline_files_are_reported_as_skipped() {
    let findings = analyze_baseline_dir(&baselines_dir(), &known_grids());
    let skipped = findings
        .iter()
        .find(|f| f.lint == "baseline-skipped")
        .expect("throughput.json draws a skip note");
    assert_eq!(skipped.severity, Severity::Info);
    assert!(
        skipped.message.contains("throughput.json"),
        "the note names the file: {}",
        skipped.message
    );
}

#[test]
fn golden_grids_derive_static_guarantees_for_every_cell() {
    // The acceptance property: the full golden grids get a width bound
    // for every single cell purely statically — no simulation — and
    // nothing worse than an info note.
    for (name, grid) in golden::all() {
        let findings = analyze_grid_guarantees(&grid);
        assert_eq!(
            findings.len(),
            grid.len(),
            "golden grid {name}: expected one guarantee note per cell, got {findings:?}"
        );
        for finding in &findings {
            assert_eq!(
                (finding.lint, finding.severity),
                ("guarantee-width", Severity::Info),
                "golden grid {name}: {finding:?}"
            );
        }
    }
}

#[test]
fn committed_baselines_respect_their_static_bounds() {
    for (name, grid) in golden::all() {
        let path = baseline_path(baselines_dir(), &grid_address(&grid));
        let baseline = Baseline::load(&path).expect("committed baseline loads");
        let findings = vet_baseline_guarantees(&grid, &baseline, &Location::File { path });
        assert!(
            findings.is_empty(),
            "golden grid {name}: committed baseline violates its static bounds: {findings:?}"
        );
    }
}

#[test]
fn corrupted_cell_width_is_flagged_against_its_theorem_bound() {
    // Hand-corrupt one stored cell's max width past its static
    // Theorem-2 bound; the vetting pass must name the cell, the column,
    // the bound, and the observed value — and fail with exit code 2.
    let grid = golden::find("open-loop-48").expect("the open-loop golden grid exists");
    let path = baseline_path(baselines_dir(), &grid_address(&grid));
    let mut baseline = Baseline::load(&path).expect("committed baseline loads");
    let slot = baseline.rows[0]
        .metrics
        .iter_mut()
        .find(|(name, _)| name == "max_width")
        .expect("cell 0 records a max_width column");
    slot.1 = Some(99.0);

    let findings = vet_baseline_guarantees(&grid, &baseline, &Location::File { path });
    let violation = findings
        .iter()
        .find(|f| f.lint == "guarantee-violation")
        .expect("the corrupted width is flagged");
    assert_eq!(violation.severity, Severity::Error);
    for needle in ["cell 0", "max_width", "99", "2"] {
        assert!(
            violation.message.contains(needle),
            "the finding should mention `{needle}`: {}",
            violation.message
        );
    }
    assert_eq!(exit_code(&findings), 2);
}

#[test]
fn corrupted_truth_loss_is_flagged_when_containment_is_provable() {
    // Cell 0 of the open-loop grid fuses with Marzullo under an attack
    // within budget: containment is provable, so a nonzero stored
    // truth-loss count is a guarantee violation too.
    let grid = golden::find("open-loop-48").expect("the open-loop golden grid exists");
    let path = baseline_path(baselines_dir(), &grid_address(&grid));
    let mut baseline = Baseline::load(&path).expect("committed baseline loads");
    let slot = baseline.rows[0]
        .metrics
        .iter_mut()
        .find(|(name, _)| name == "truth_lost")
        .expect("cell 0 records a truth_lost column");
    slot.1 = Some(3.0);

    let findings = vet_baseline_guarantees(&grid, &baseline, &Location::File { path });
    let violation = findings
        .iter()
        .find(|f| f.lint == "guarantee-violation")
        .expect("the corrupted truth-loss count is flagged");
    assert_eq!(violation.severity, Severity::Error);
    assert!(
        violation.message.contains("truth_lost"),
        "the finding names the column: {}",
        violation.message
    );
    assert_eq!(exit_code(&findings), 2);
}

#[test]
fn golden_grids_derive_detect_verdicts_for_every_cell() {
    // The detection-side acceptance property: every golden-grid cell
    // gets a static detectability verdict — no simulation — and nothing
    // worse than an info note (the golden grids use Marzullo-family
    // fusers, so the geometry-vacuity warning never fires).
    for (name, grid) in golden::all() {
        let findings = analyze_grid_detectability(&grid);
        let verdicts: Vec<_> = findings
            .iter()
            .filter(|f| f.lint == "detect-verdict")
            .collect();
        assert_eq!(
            verdicts.len(),
            grid.len(),
            "golden grid {name}: expected one verdict per cell, got {findings:?}"
        );
        for finding in &findings {
            assert_eq!(
                finding.severity,
                Severity::Info,
                "golden grid {name}: {finding:?}"
            );
        }
        assert!(
            findings.iter().any(|f| f.lint == "detect-coverage"),
            "golden grid {name}: the attacker × detector coverage matrix is emitted"
        );
    }
}

#[test]
fn committed_baselines_respect_their_detect_verdicts() {
    for (name, grid) in golden::all() {
        let path = baseline_path(baselines_dir(), &grid_address(&grid));
        let baseline = Baseline::load(&path).expect("committed baseline loads");
        let findings = vet_baseline_detectability(&grid, &baseline, &Location::File { path });
        assert!(
            findings.is_empty(),
            "golden grid {name}: committed baseline contradicts its detect verdicts: \
             {findings:?}"
        );
    }
}

#[test]
fn corrupted_flagged_count_is_caught_against_its_verdict() {
    // Cell 0 of the open-loop grid is a stealth-clamped phantom attack
    // under Marzullo with detection off in cell 0 — every cell of the
    // grid has a verdict, and the committed flagged_rounds is 0 wherever
    // invisibility is provable. Hand-corrupt cell 0's flagged count: the
    // vetting pass must name the cell, the column, the static bound and
    // the observed value at the error tier.
    let grid = golden::find("open-loop-48").expect("the open-loop golden grid exists");
    let path = baseline_path(baselines_dir(), &grid_address(&grid));
    let mut baseline = Baseline::load(&path).expect("committed baseline loads");
    let slot = baseline.rows[0]
        .metrics
        .iter_mut()
        .find(|(name, _)| name == "flagged_rounds")
        .expect("cell 0 records a flagged_rounds column");
    slot.1 = Some(7.0);

    let findings = vet_baseline_detectability(&grid, &baseline, &Location::File { path });
    let violation = findings
        .iter()
        .find(|f| f.lint == "detect-violation")
        .expect("the corrupted flagged count is flagged");
    assert_eq!(violation.severity, Severity::Error);
    for needle in ["cell 0", "flagged_rounds", "7", "bound 0"] {
        assert!(
            violation.message.contains(needle),
            "the finding should mention `{needle}`: {}",
            violation.message
        );
    }
    assert_eq!(exit_code(&findings), 2);
}

/// Runs the compiled `sweep_lint` binary from the workspace root (the
/// committed baselines live there) and returns `(exit code, stdout)`.
fn run_sweep_lint(args: &[&str]) -> (i32, String) {
    let output = Command::new(env!("CARGO_BIN_EXE_sweep_lint"))
        .args(args)
        .args(["--dir", baselines_dir().to_str().expect("utf-8 path")])
        .output()
        .expect("sweep_lint runs");
    (
        output.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&output.stdout).into_owned(),
    )
}

#[test]
fn sweep_lint_emits_json_for_every_subcommand() {
    // `--json` parity: every subcommand emits a JSON array with the same
    // findings the text renderer shows, and the exit code is unaffected
    // by the output format.
    for subcommand in [
        vec!["presets"],
        vec!["grid", "--fusers", "marzullo,hull"],
        vec!["baselines"],
        vec!["guarantees"],
        vec!["detectability"],
        vec!["dominance"],
        vec!["all"],
    ] {
        let (text_code, text) = run_sweep_lint(&subcommand);
        let mut json_args = subcommand.clone();
        json_args.push("--json");
        let (json_code, json) = run_sweep_lint(&json_args);
        assert_eq!(
            text_code, json_code,
            "{subcommand:?}: --json must not change the exit code"
        );
        let trimmed = json.trim();
        assert!(
            trimmed.starts_with('[') && trimmed.ends_with(']'),
            "{subcommand:?}: --json emits a JSON array, got: {trimmed:.80}"
        );
        assert!(
            !json.contains("error(s),"),
            "{subcommand:?}: the text summary tail must not leak into JSON"
        );
        // The text mode renders one `severity[lint] …` line per finding
        // plus a bracket-free summary tail; the JSON mode renders one
        // object per finding. The counts must agree.
        let text_findings = text.lines().filter(|l| l.contains('[')).count();
        let json_findings = json.matches("\"lint\":").count();
        assert_eq!(
            json_findings, text_findings,
            "{subcommand:?}: JSON and text must carry the same findings\ntext:\n{text}\njson:\n{json}"
        );
        assert!(
            subcommand[0] != "detectability" || json.contains("detect-verdict"),
            "detectability --json carries the per-cell verdicts"
        );
        // Every JSON object carries the stable schema version and its
        // pass name — the machine-readable contract downstream tooling
        // keys off.
        assert_eq!(
            json.matches("\"schema\": 1").count(),
            json_findings,
            "{subcommand:?}: every JSON finding carries `\"schema\": 1`"
        );
        assert_eq!(
            json.matches("\"pass\":").count(),
            json_findings,
            "{subcommand:?}: every JSON finding carries its pass name"
        );
        if subcommand[0] == "all" {
            for pass in [
                "presets",
                "baselines",
                "guarantees",
                "detectability",
                "dominance",
            ] {
                assert!(
                    text.contains(&format!("== {pass} ==")),
                    "`all` text mode has a `{pass}` section header:\n{text}"
                );
            }
            assert!(
                json.contains("\"pass\": \"dominance\""),
                "`all` --json tags the dominance findings"
            );
        }
    }
}

#[test]
fn sweep_lint_dominance_is_clean_on_the_committed_tree() {
    // The acceptance property: the dominance pass derives a nonempty
    // edge set for both golden grids with zero simulation, and the
    // committed baselines respect every provable edge (exit 0).
    let (code, out) = run_sweep_lint(&["dominance"]);
    assert_eq!(code, 0, "committed baselines vet clean: {out}");
    for grid in ["open-loop-48", "table2-closed-loop"] {
        assert!(
            out.lines()
                .any(|l| l.contains("order-edge") && l.contains(grid)),
            "golden grid {grid} derives at least one provable edge:\n{out}"
        );
    }
    // Table II's schedule chain on the closed-loop grid: ascending below
    // random below descending, per seed.
    assert!(
        out.contains("cells 4 ⪯ 2") && out.contains("cells 0 ⪯ 4"),
        "the asc ⪯ random ⪯ desc chain is derived:\n{out}"
    );
}

#[test]
fn committed_baselines_respect_the_dominance_lattice() {
    for (name, grid) in golden::all() {
        let path = baseline_path(baselines_dir(), &grid_address(&grid));
        let baseline = Baseline::load(&path).expect("committed baseline loads");
        let findings = vet_baseline_dominance(&grid, &baseline, &Location::File { path });
        assert!(
            findings.is_empty(),
            "golden grid {name}: committed baseline inverts a provable ordering: {findings:?}"
        );
    }
}

#[test]
fn perturbed_preemption_count_inverts_the_schedule_chain() {
    // Hand-perturb the closed-loop baseline: give the ascending-schedule
    // cell 0 more preemptions (80) than the recorded descending cell 2
    // (71) and random cell 4 (26). Both perturbed values stay plausible
    // in isolation — the guarantee and detectability passes cannot see
    // them — but they invert two provable schedule-ordering edges, and
    // the dominance vet must name both cell pairs, the column, and the
    // proving rule at the error tier.
    let grid = golden::find("table2-closed-loop").expect("the closed-loop golden grid exists");
    let path = baseline_path(baselines_dir(), &grid_address(&grid));
    let mut baseline = Baseline::load(&path).expect("committed baseline loads");
    let slot = baseline.rows[0]
        .metrics
        .iter_mut()
        .find(|(name, _)| name == "preemptions")
        .expect("cell 0 records a preemptions column");
    slot.1 = Some(80.0);

    let guarantee_view =
        vet_baseline_guarantees(&grid, &baseline, &Location::File { path: path.clone() });
    let detect_view =
        vet_baseline_detectability(&grid, &baseline, &Location::File { path: path.clone() });
    assert!(
        guarantee_view.is_empty() && detect_view.is_empty(),
        "the perturbation is invisible to the per-cell passes"
    );

    let findings = vet_baseline_dominance(&grid, &baseline, &Location::File { path });
    assert!(
        findings
            .iter()
            .all(|f| f.lint == "order-violation" && f.severity == Severity::Error),
        "only order violations are raised: {findings:?}"
    );
    assert_eq!(exit_code(&findings), 2);
    let rendered: Vec<String> = findings.iter().map(|f| f.render()).collect();
    let joined = rendered.join("\n");
    for needle in [
        "cells 0 ⪯ 2",
        "cells 0 ⪯ 4",
        "`preemptions`",
        "80",
        "schedule ordering",
        "`schedules`-axis",
    ] {
        assert!(
            joined.contains(needle),
            "the violations should mention `{needle}`:\n{joined}"
        );
    }
}

#[test]
fn sweep_lint_detectability_is_clean_on_the_committed_tree() {
    let (code, out) = run_sweep_lint(&["detectability"]);
    assert_eq!(code, 0, "committed baselines vet clean: {out}");
    // 48 + 6 golden cells, one verdict each.
    assert_eq!(out.matches("detect-verdict").count(), 54);
}

#[test]
fn corrupted_baseline_is_flagged_with_its_path() {
    // Copy a committed baseline, flip one definition line, and keep the
    // recorded address: the recomputed content address no longer matches.
    let source = baselines_dir().join("3923b1688ebe2b0c.json");
    let text = std::fs::read_to_string(&source).expect("committed baseline reads");
    let corrupted = text.replace("rounds=120", "rounds=121");
    assert_ne!(text, corrupted, "the definition line to corrupt exists");

    let dir = std::env::temp_dir().join(format!("arsf-lint-corrupt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("3923b1688ebe2b0c.json");
    std::fs::write(&path, corrupted).expect("corrupted baseline writes");

    let findings = analyze_baseline_file(&path);
    std::fs::remove_dir_all(&dir).ok();

    let address = findings
        .iter()
        .find(|f| f.lint == "baseline-address")
        .expect("the address mismatch is flagged");
    assert_eq!(address.severity, Severity::Error);
    assert!(
        address.render().contains("3923b1688ebe2b0c.json"),
        "the finding names the file: {}",
        address.render()
    );
    assert_eq!(exit_code(&findings), 2);
}

#[test]
fn undersized_suite_for_f_is_an_error() {
    // The acceptance grid: n = 3 sensors with f = 2 violates n > 2f.
    let base = Scenario::new("lint", SuiteSpec::Widths(vec![5.0, 11.0, 17.0])).with_f(2);
    let findings = SweepGrid::new(base).analyze();
    let soundness = findings
        .iter()
        .find(|f| f.lint == "fusion-soundness")
        .expect("the soundness violation is flagged");
    assert_eq!(soundness.severity, Severity::Error);
    assert!(
        soundness.render().contains("cell"),
        "the finding carries a cell location: {}",
        soundness.render()
    );
    assert_eq!(exit_code(&findings), 2);
}

#[test]
fn duplicated_fuser_axis_value_is_a_warning() {
    let grid = SweepGrid::new(Scenario::new("lint", SuiteSpec::Landshark)).fusers(vec![
        FuserSpec::Marzullo,
        FuserSpec::BrooksIyengar,
        FuserSpec::Marzullo,
    ]);
    let findings = grid.analyze();
    let duplicate = findings
        .iter()
        .find(|f| f.lint == "duplicate-axis-value")
        .expect("the duplicated value is flagged");
    assert_eq!(duplicate.severity, Severity::Warn);
    assert!(
        duplicate.render().contains("fusers axis [0, 2]"),
        "the finding names the duplicated positions: {}",
        duplicate.render()
    );
    assert_eq!(exit_code(&findings), 1);
}
