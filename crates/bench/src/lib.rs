//! Shared harness utilities for the reproduction binaries and benches.
//!
//! Each `repro_*` binary regenerates one table or figure from the paper's
//! evaluation; this crate holds the small shared pieces (table rendering,
//! argument parsing) so the binaries stay readable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline_ops;
pub mod cli;
pub mod drive;
pub mod golden;

/// A minimal fixed-width text table writer for experiment output.
///
/// # Example
///
/// ```
/// use arsf_bench::TextTable;
///
/// let mut t = TextTable::new(vec!["setup".into(), "value".into()]);
/// t.row(vec!["n = 3".into(), "10.77".into()]);
/// let text = t.render();
/// assert!(text.contains("setup"));
/// assert!(text.contains("10.77"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: Vec<String>) -> Self {
        Self {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends a row (shorter rows are padded with empty cells).
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Renders the table with column alignment and a header rule.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(|r| r.len())
            .chain([self.header.len()])
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        let measure = |row: &[String], widths: &mut [usize]| {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        };
        measure(&self.header, &mut widths);
        for row in &self.rows {
            measure(row, &mut widths);
        }
        let fmt_row = |row: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, width) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:<width$}"));
            }
            line.trim_end().to_string()
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1))));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Returns `true` when `flag` (e.g. `--full`) is present in the process
/// arguments.
pub fn has_flag(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

/// Parses `--key value` style options from the process arguments.
pub fn arg_value(key: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1).cloned())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment_and_padding() {
        let mut t = TextTable::new(vec!["a".into(), "bbbb".into()]);
        t.row(vec!["xxxxx".into()]);
        t.row(vec!["y".into(), "z".into()]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].starts_with("xxxxx"));
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = TextTable::new(vec!["only".into()]);
        let text = t.render();
        assert!(text.contains("only"));
        assert_eq!(text.lines().count(), 2);
    }
}
