//! Ablation: **random faults in addition to attacks** (the paper's
//! Section V extension) and the windowed detector of footnote 1.
//!
//! Sweeps the transient-fault probability of the GPS against the
//! windowed detector's tolerance while a stealthy attacker holds an
//! encoder, reporting when the faulty sensor is condemned, how often the
//! overlap check fires, and whether the truth ever silently escapes the
//! fusion interval.
//!
//! Run with: `cargo run --release -p arsf-bench --bin ablation_faults`

use arsf_bench::TextTable;
use arsf_schedule::SchedulePolicy;
use arsf_sim::faults::{run, FaultAttackConfig};

fn main() {
    let rounds = 5_000;
    println!("Ablation: transient GPS faults + stealthy encoder attacker");
    println!("(LandShark suite, f = 1, window = 20 rounds, {rounds} rounds each)\n");

    let mut table = TextTable::new(vec![
        "fault prob".into(),
        "tolerance".into(),
        "flags".into(),
        "condemned at".into(),
        "false cond.".into(),
        "truth lost".into(),
        "fusion fail".into(),
    ]);

    for &fault_probability in &[0.05, 0.15, 0.3, 0.6] {
        for &tolerance in &[2usize, 6] {
            let report = run(&FaultAttackConfig {
                rounds,
                fault_probability,
                tolerance,
                schedule: SchedulePolicy::Descending,
                ..FaultAttackConfig::default()
            });
            table.row(vec![
                format!("{:.0}%", fault_probability * 100.0),
                format!("{tolerance} / 20"),
                format!("{}", report.transient_flags),
                report
                    .faulty_condemned_at
                    .map_or("never".into(), |r| format!("round {r}")),
                format!("{}", report.false_condemnations),
                format!("{}", report.truth_lost),
                format!("{}", report.fusion_failures),
            ]);
        }
    }
    println!("{}", table.render());
    println!("Reading the table:");
    println!("* a tolerant window (6/20) lets low-rate transients live while");
    println!("  still condemning persistent misbehaviour — footnote 1's goal;");
    println!("* a strict window (2/20) condemns earlier but would also evict");
    println!("  sensors whose transient rate is survivable;");
    println!("* the stealthy attacker is never condemned (false cond. = 0) —");
    println!("  detection pressure lands on the *faulty* sensor only;");
    println!("* silent truth loss stays rare even when fault + attack exceed");
    println!("  f = 1, because the attacker must anchor to plausible evidence.");
}
