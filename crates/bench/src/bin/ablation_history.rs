//! Ablation: dynamics-aware **historical fusion** as a defence.
//!
//! The DATE'14 paper fuses each round independently; its authors'
//! follow-up direction carries the previous round's interval forward
//! through a bounded-dynamics model. This ablation measures how much of
//! the Descending-schedule attack the history clips, for several rate
//! bounds (smaller bound = stronger clipping, but must stay above the
//! vehicle's true rate to remain sound).
//!
//! Run with: `cargo run --release -p arsf-bench --bin ablation_history`

use arsf_bench::TextTable;
use arsf_core::scenario::AttackerSpec;
use arsf_fusion::historical::DynamicsBound;
use arsf_schedule::SchedulePolicy;
use arsf_sim::landshark::{LandShark, LandSharkConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn violation_rates(bound: Option<DynamicsBound>, rounds: u64) -> (f64, f64, f64) {
    let mut rng = StdRng::seed_from_u64(0xAB1A);
    let mut config = LandSharkConfig::new(10.0, SchedulePolicy::Descending)
        .with_attacker(AttackerSpec::RandomEachRound);
    if let Some(b) = bound {
        config = config.with_history(b);
    }
    let mut shark = LandShark::new(config);
    let mut width_sum = 0.0;
    let mut width_count = 0u64;
    for _ in 0..rounds {
        if let Some(fused) = shark.step(&mut rng).fusion {
            width_sum += fused.width();
            width_count += 1;
        }
    }
    (
        shark.supervisor().upper_rate(),
        shark.supervisor().lower_rate(),
        width_sum / width_count as f64,
    )
}

fn main() {
    let rounds = 10_000;
    println!("Ablation: historical fusion vs the Descending-schedule attack");
    println!("(one random compromised sensor per round, {rounds} rounds each)\n");

    let mut table = TextTable::new(vec![
        "configuration".into(),
        "above 10.5".into(),
        "below 9.5".into(),
        "mean width".into(),
    ]);
    let (above0, below0, width0) = violation_rates(None, rounds);
    table.row(vec![
        "memoryless (paper)".into(),
        format!("{:.2}%", above0 * 100.0),
        format!("{:.2}%", below0 * 100.0),
        format!("{width0:.3}"),
    ]);
    let mut improved = true;
    for rate in [6.0, 3.5] {
        let (above, below, width) = violation_rates(Some(DynamicsBound::new(rate)), rounds);
        improved &= above + below < above0 + below0;
        table.row(vec![
            format!("history, rate <= {rate} mph/s"),
            format!("{:.2}%", above * 100.0),
            format!("{:.2}%", below * 100.0),
            format!("{width:.3}"),
        ]);
    }
    println!("{}", table.render());
    assert!(improved, "history must reduce total violations");
    println!("History clips forged extensions: the supervisor sees tighter");
    println!("intervals and the violation rates drop, most with the tightest");
    println!("sound rate bound. (The bound must exceed the vehicle's true");
    println!("acceleration, here <= 3.2 mph/s, or correct rounds would");
    println!("conflict with history.)");
}
