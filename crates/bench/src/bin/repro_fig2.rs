//! Reproduces **Figure 2**: if the attacker has not seen all correct
//! intervals, no forgery is optimal for every continuation — each
//! committed placement is punished by some placement of the unseen
//! interval.
//!
//! Run with: `cargo run -p arsf-bench --bin repro_fig2`

use arsf_attack::regret::{evaluate_commitment, fig2_demo};
use arsf_interval::render::{Diagram, RowStyle};

fn main() {
    let demo = fig2_demo();
    println!("Figure 2: no optimal attack policy under partial information\n");
    println!(
        "the attacker saw only s1 = {} and must commit a width-{} forgery (n = 3, f = 1)\n",
        demo.s1, demo.width
    );

    let (a_one, case_one) = (demo.one_sided.0, demo.one_sided.1);
    let (a_two, case_two) = (demo.two_sided.0, demo.two_sided.1);

    println!("policy a1(1) = {a_one} (one-sided):");
    println!(
        "  if s2 = {} appears: fusion width {:.1}, hindsight optimum {:.1}, regret {:.1}",
        case_one.s2,
        case_one.achieved,
        case_one.hindsight,
        case_one.regret()
    );
    let mut d1 = Diagram::new();
    d1.row("s1", demo.s1, RowStyle::Correct);
    d1.row("s2", case_one.s2, RowStyle::Correct);
    d1.row("a1(1)", a_one, RowStyle::Attacked);
    println!("{}", d1.render(56));

    println!("policy a1(2) = {a_two} (two-sided):");
    println!(
        "  if s2 = {} appears: fusion width {:.1}, hindsight optimum {:.1}, regret {:.1}",
        case_two.s2,
        case_two.achieved,
        case_two.hindsight,
        case_two.regret()
    );
    let mut d2 = Diagram::new();
    d2.row("s1", demo.s1, RowStyle::Correct);
    d2.row("s2", case_two.s2, RowStyle::Correct);
    d2.row("a1(2)", a_two, RowStyle::Attacked);
    println!("{}", d2.render(56));

    // Cross-evaluation: each policy beats the other on its opponent's
    // punishing realisation, so no total order exists.
    let two_on_left = evaluate_commitment(demo.s1, a_two, case_one.s2, 1).expect("fuses");
    let one_on_right = evaluate_commitment(demo.s1, a_one, case_two.s2, 1).expect("fuses");
    println!("cross-check:");
    println!(
        "  on s2 = {}: one-sided {:.1} < two-sided {:.1}",
        case_one.s2, case_one.achieved, two_on_left.achieved
    );
    println!(
        "  on s2 = {}: two-sided {:.1} < one-sided {:.1}",
        case_two.s2, case_two.achieved, one_on_right.achieved
    );
    assert!(case_one.regret() > 0.0 && case_two.regret() > 0.0);
    assert!(two_on_left.achieved > case_one.achieved);
    assert!(one_on_right.achieved > case_two.achieved);
    println!("\nAs in the paper: whatever the attacker commits, some");
    println!("continuation makes a different forgery strictly better.");
}
