//! Static lint runner over the three experiment-definition layers:
//! registry presets, command-line sweep grids, and the committed golden
//! baselines — the CLI face of `arsf-analyze`.
//!
//! Run with: `cargo run --release -p arsf-bench --bin sweep_lint -- <cmd>`
//!
//! Subcommands:
//! * `presets` — lint every scenario in the registry. Clean on the
//!   committed registry; a preset that violates `n > 2f`, exceeds the
//!   corruption budget, or fails `Scenario::validate` fails the run.
//! * `grid` — lint the sweep grid described by the same flags
//!   `scenario_sweep` takes (`--fusers`, `--detectors`, `--schedules`,
//!   `--seeds`, `--history`, `--suite`, `--fault`, `--strategy`,
//!   `--honest`, `--f`, `--rounds`, and the closed-loop family
//!   `--closed-loop`/`--target`/`--deltas`/`--platoon`). The grid is
//!   built by the exact construction `scenario_sweep` runs, so a clean
//!   lint here means the sweep is statically sound.
//! * `baselines` — lint the baseline directory against the golden
//!   grids: recomputed content addresses, filename/address agreement,
//!   orphaned files, missing recordings; with `--tol col=abs[:rel],…`
//!   also flags tolerance entries that match no column in any stored
//!   baseline.
//! * `guarantees` — statically derive every golden-grid cell's
//!   worst-case fusion guarantees (bound regime, Theorem-2 width bound,
//!   truth-containment provability) without running a single simulation
//!   round, then vet each stored baseline's width and truth-loss
//!   columns against them — a soundness oracle: a recorded cell that
//!   violates a theorem is a `guarantee-violation` error.
//! * `detectability` — statically classify every golden-grid cell's
//!   attacker × fault set × detector into a detection verdict (provably
//!   invisible, provably flagged, or contingent), again without running
//!   a round, then vet each stored baseline's `flagged_rounds` and
//!   condemnation columns against the verdicts: a recorded cell that
//!   contradicts one is a `detect-violation` error.
//!
//! Options:
//! * `--json` — emit findings as a JSON array instead of text
//! * `--dir path` — the baseline directory (`baselines`, `guarantees`
//!   and `detectability` subcommands; default `baselines`)
//! * `--tol col=abs[:rel],…` — check-harness tolerances to vet
//!   (`baselines` subcommand only)
//!
//! Exit codes: `0` clean (info findings allowed), `1` warnings, `2`
//! errors. `scenario_sweep --baseline record` and `sweep_diff record`
//! enforce the error tier automatically before freezing a baseline.

use std::path::Path;
use std::process::exit;

use arsf_analyze::{
    analyze_baseline_dir, analyze_grid_detectability, analyze_grid_guarantees, analyze_scenario,
    exit_code, render, render_json, tolerance_findings, vet_baseline_detectability,
    vet_baseline_guarantees, AnalyzeGrid, Finding, Location, Severity,
};
use arsf_bench::cli::{grid_from_args, parse_tolerances};
use arsf_bench::{arg_value, golden, has_flag};
use arsf_core::scenario::registry;
use arsf_core::sweep::diff::DiffConfig;
use arsf_core::sweep::store::{baseline_path, grid_address, Baseline};

const USAGE: &str = "\
usage: sweep_lint <presets|grid|baselines|guarantees|detectability> [--json]

  presets     lint every registry preset
  grid        lint the sweep grid described by scenario_sweep's flags
              (--fusers, --detectors, --schedules, --seeds, --history,
               --suite, --fault, --strategy, --honest, --f, --rounds,
               --closed-loop, --target, --deltas, --platoon)
  baselines   lint the baseline directory against the golden grids
              [--dir path] [--tol col=abs[:rel],...]
  guarantees  derive every golden-grid cell's static fusion guarantees
              (no simulation) and vet the stored baselines against them
              [--dir path]
  detectability
              derive every golden-grid cell's static detection verdict
              (provably invisible / provably flagged / contingent, no
              simulation) and vet the stored baselines' flagged_rounds
              and condemnation columns against them [--dir path]

exit codes:
  0  clean    - no findings above info severity
  1  warnings - degenerate but runnable definitions
  2  errors   - unsound or rejected definitions (record refuses these)
";

fn fail(message: &str) -> ! {
    eprintln!("sweep_lint: {message}");
    exit(2);
}

/// Prints the findings (text or `--json`) and exits with the lint
/// convention: 2 on errors, 1 on warnings, 0 otherwise.
fn emit(findings: &[Finding]) -> ! {
    if has_flag("--json") {
        print!("{}", render_json(findings));
    } else {
        print!("{}", render(findings));
    }
    exit(exit_code(findings));
}

fn presets() -> ! {
    let mut findings = Vec::new();
    for preset in registry() {
        findings.extend(analyze_scenario(&preset));
    }
    findings.sort_by_key(|f| std::cmp::Reverse(f.severity));
    emit(&findings)
}

fn grid() -> ! {
    let grid = grid_from_args().unwrap_or_else(|e| fail(&e));
    emit(&grid.analyze())
}

fn baselines() -> ! {
    let dir = arg_value("--dir").unwrap_or_else(|| "baselines".to_string());
    let known: Vec<(String, String)> = golden::all()
        .iter()
        .map(|(name, grid)| (name.to_string(), grid_address(grid)))
        .collect();
    let mut findings = analyze_baseline_dir(Path::new(&dir), &known);
    if let Some(spec) = arg_value("--tol") {
        let mut config = DiffConfig::near_exact();
        for (column, tolerance) in
            parse_tolerances(&spec).unwrap_or_else(|e| fail(&format!("--tol: {e}")))
        {
            config = config.with_column(column, tolerance);
        }
        // Vet the tolerances against every stored golden baseline at
        // once: one check-harness configuration applies to all grids, so
        // a family only present closed-loop is alive, not dead.
        let stored: Vec<Baseline> = known
            .iter()
            .filter_map(|(_, address)| Baseline::load(baseline_path(&dir, address)).ok())
            .collect();
        let refs: Vec<&Baseline> = stored.iter().collect();
        findings.extend(tolerance_findings(&config, &refs));
        findings.sort_by_key(|f| std::cmp::Reverse(f.severity));
    }
    emit(&findings)
}

fn guarantees() -> ! {
    let dir = arg_value("--dir").unwrap_or_else(|| "baselines".to_string());
    let mut findings = Vec::new();
    for (name, grid) in golden::all() {
        // Static pass: derive every cell's bound (or no-bound verdict)
        // without running a single simulation round. The cell location
        // is kept; the message is prefixed with the grid so two grids'
        // cell indices stay distinguishable.
        for mut finding in analyze_grid_guarantees(&grid) {
            finding.message = format!("golden grid `{name}`: {}", finding.message);
            findings.push(finding);
        }
        // Vetting pass: every stored cell record must respect its
        // statically derived bound.
        let address = grid_address(&grid);
        let path = baseline_path(&dir, &address);
        match Baseline::load(&path) {
            Ok(baseline) => findings.extend(vet_baseline_guarantees(
                &grid,
                &baseline,
                &Location::File { path },
            )),
            Err(_) => findings.push(Finding {
                lint: "baseline-missing",
                severity: Severity::Warn,
                location: Location::Grid {
                    name: name.to_string(),
                },
                message: format!(
                    "no stored baseline {address}.json in {dir} to vet against the static \
                     guarantees"
                ),
            }),
        }
    }
    findings.sort_by_key(|f| std::cmp::Reverse(f.severity));
    emit(&findings)
}

fn detectability() -> ! {
    let dir = arg_value("--dir").unwrap_or_else(|| "baselines".to_string());
    let mut findings = Vec::new();
    for (name, grid) in golden::all() {
        // Static pass: derive every cell's detection verdict without
        // running a single simulation round, plus the grid-level
        // attacker × detector coverage matrix.
        for mut finding in analyze_grid_detectability(&grid) {
            finding.message = format!("golden grid `{name}`: {}", finding.message);
            findings.push(finding);
        }
        // Vetting pass: every stored cell record's flagged_rounds and
        // condemnation columns must respect its cell's verdict.
        let address = grid_address(&grid);
        let path = baseline_path(&dir, &address);
        match Baseline::load(&path) {
            Ok(baseline) => findings.extend(vet_baseline_detectability(
                &grid,
                &baseline,
                &Location::File { path },
            )),
            Err(_) => findings.push(Finding {
                lint: "baseline-missing",
                severity: Severity::Warn,
                location: Location::Grid {
                    name: name.to_string(),
                },
                message: format!(
                    "no stored baseline {address}.json in {dir} to vet against the static \
                     detectability verdicts"
                ),
            }),
        }
    }
    findings.sort_by_key(|f| std::cmp::Reverse(f.severity));
    emit(&findings)
}

fn main() {
    if has_flag("--help") || has_flag("-h") {
        print!("{USAGE}");
        exit(0);
    }
    match std::env::args().nth(1).as_deref() {
        Some("presets") => presets(),
        Some("grid") => grid(),
        Some("baselines") => baselines(),
        Some("guarantees") => guarantees(),
        Some("detectability") => detectability(),
        _ => {
            eprint!("{USAGE}");
            exit(2);
        }
    }
}
