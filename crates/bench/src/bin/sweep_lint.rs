//! Static lint runner over the experiment-definition layers: registry
//! presets, command-line sweep grids, and the committed golden
//! baselines — the CLI face of `arsf-analyze`.
//!
//! Run with: `cargo run --release -p arsf-bench --bin sweep_lint -- <cmd>`
//!
//! Subcommands:
//! * `presets` — lint every scenario in the registry. Clean on the
//!   committed registry; a preset that violates `n > 2f`, exceeds the
//!   corruption budget, or fails `Scenario::validate` fails the run.
//! * `grid` — lint the sweep grid described by the same flags
//!   `scenario_sweep` takes (`--fusers`, `--detectors`, `--schedules`,
//!   `--seeds`, `--history`, `--suite`, `--fault`, `--strategy`,
//!   `--honest`, `--f`, `--rounds`, and the closed-loop family
//!   `--closed-loop`/`--target`/`--deltas`/`--platoon`). The grid is
//!   built by the exact construction `scenario_sweep` runs, so a clean
//!   lint here means the sweep is statically sound.
//! * `baselines` — lint the baseline directory against the golden
//!   grids: recomputed content addresses, filename/address agreement,
//!   orphaned files, missing recordings; with `--tol col=abs[:rel],…`
//!   also flags tolerance entries that match no column in any stored
//!   baseline.
//! * `guarantees` — statically derive every golden-grid cell's
//!   worst-case fusion guarantees (bound regime, Theorem-2 width bound,
//!   truth-containment provability) without running a single simulation
//!   round, then vet each stored baseline's width and truth-loss
//!   columns against them — a soundness oracle: a recorded cell that
//!   violates a theorem is a `guarantee-violation` error.
//! * `detectability` — statically classify every golden-grid cell's
//!   attacker × fault set × detector into a detection verdict (provably
//!   invisible, provably flagged, or contingent), again without running
//!   a round, then vet each stored baseline's `flagged_rounds` and
//!   condemnation columns against the verdicts: a recorded cell that
//!   contradicts one is a `detect-violation` error.
//! * `dominance` — statically derive the partial order over each golden
//!   grid's cells (Table II's schedule chain, containment/invisibility
//!   certificates, the width-bound lattice — no simulation), then vet
//!   each stored baseline's metrics against every provable edge: two
//!   cells recorded in the wrong order is an `order-violation` error
//!   even when both sit inside their per-cell tolerances.
//! * `all` — run every pass above (except `grid`, which needs flags) in
//!   one invocation: per-pass section headers in text mode, a `pass`
//!   field in `--json`, and the max exit code across passes.
//!
//! Options:
//! * `--json` — emit findings as a JSON array instead of text; every
//!   object carries `"schema": 1` and its `"pass"` name
//! * `--dir path` — the baseline directory (`baselines`, `guarantees`,
//!   `detectability`, `dominance` and `all` subcommands; default
//!   `baselines`)
//! * `--tol col=abs[:rel],…` — check-harness tolerances to vet
//!   (`baselines` subcommand only)
//!
//! Exit codes: `0` clean (info findings allowed), `1` warnings, `2`
//! errors. `scenario_sweep --baseline record` and `sweep_diff record`
//! enforce the error tier automatically before freezing a baseline.

use std::path::Path;
use std::process::exit;

use arsf_analyze::{
    analyze_baseline_dir, analyze_grid_detectability, analyze_grid_dominance,
    analyze_grid_guarantees, analyze_scenario, exit_code, render, render_json_passes,
    render_passes, tolerance_findings, vet_baseline_detectability, vet_baseline_dominance,
    vet_baseline_guarantees, AnalyzeGrid, Finding, Location, Severity,
};
use arsf_bench::cli::{grid_from_args, parse_tolerances};
use arsf_bench::{arg_value, golden, has_flag};
use arsf_core::scenario::registry;
use arsf_core::sweep::diff::DiffConfig;
use arsf_core::sweep::store::{baseline_path, grid_address, Baseline};

const USAGE: &str = "\
usage: sweep_lint <presets|grid|baselines|guarantees|detectability|dominance|all>
                  [--json]

  presets     lint every registry preset
  grid        lint the sweep grid described by scenario_sweep's flags
              (--fusers, --detectors, --schedules, --seeds, --history,
               --suite, --fault, --strategy, --honest, --f, --rounds,
               --closed-loop, --target, --deltas, --platoon)
  baselines   lint the baseline directory against the golden grids
              [--dir path] [--tol col=abs[:rel],...]
  guarantees  derive every golden-grid cell's static fusion guarantees
              (no simulation) and vet the stored baselines against them
              [--dir path]
  detectability
              derive every golden-grid cell's static detection verdict
              (provably invisible / provably flagged / contingent, no
              simulation) and vet the stored baselines' flagged_rounds
              and condemnation columns against them [--dir path]
  dominance   derive the provable cross-cell orderings of each golden
              grid (schedule chain, certificates, width-bound lattice,
              no simulation) and vet the stored baselines against every
              provable edge [--dir path]
  all         presets + baselines + guarantees + detectability +
              dominance in one pass, with per-pass headers (text) or a
              \"pass\" field (--json) and the max exit code [--dir path]

exit codes:
  0  clean    - no findings above info severity
  1  warnings - degenerate but runnable definitions
  2  errors   - unsound or rejected definitions (record refuses these)
";

fn fail(message: &str) -> ! {
    eprintln!("sweep_lint: {message}");
    exit(2);
}

/// Prints one pass's findings (text or `--json`; JSON objects carry
/// `"schema": 1` and the pass name) and exits with the lint convention:
/// 2 on errors, 1 on warnings, 0 otherwise.
fn emit(pass: &str, findings: Vec<Finding>) -> ! {
    let code = exit_code(&findings);
    if has_flag("--json") {
        print!("{}", render_json_passes(&[(pass, findings)]));
    } else {
        print!("{}", render(&findings));
    }
    exit(code);
}

fn presets() -> Vec<Finding> {
    let mut findings = Vec::new();
    for preset in registry() {
        findings.extend(analyze_scenario(&preset));
    }
    findings.sort_by_key(|f| std::cmp::Reverse(f.severity));
    findings
}

fn grid() -> Vec<Finding> {
    let grid = grid_from_args().unwrap_or_else(|e| fail(&e));
    grid.analyze()
}

fn baselines() -> Vec<Finding> {
    let dir = arg_value("--dir").unwrap_or_else(|| "baselines".to_string());
    let known: Vec<(String, String)> = golden::all()
        .iter()
        .map(|(name, grid)| (name.to_string(), grid_address(grid)))
        .collect();
    let mut findings = analyze_baseline_dir(Path::new(&dir), &known);
    if let Some(spec) = arg_value("--tol") {
        let mut config = DiffConfig::near_exact();
        for (column, tolerance) in
            parse_tolerances(&spec).unwrap_or_else(|e| fail(&format!("--tol: {e}")))
        {
            config = config.with_column(column, tolerance);
        }
        // Vet the tolerances against every stored golden baseline at
        // once: one check-harness configuration applies to all grids, so
        // a family only present closed-loop is alive, not dead.
        let stored: Vec<Baseline> = known
            .iter()
            .filter_map(|(_, address)| Baseline::load(baseline_path(&dir, address)).ok())
            .collect();
        let refs: Vec<&Baseline> = stored.iter().collect();
        findings.extend(tolerance_findings(&config, &refs));
        findings.sort_by_key(|f| std::cmp::Reverse(f.severity));
    }
    findings
}

/// Shared shape of the golden-grid static passes: run a static analysis
/// over each golden grid (prefixing messages with the grid name), then
/// vet its stored baseline, warning when there is nothing to vet.
fn golden_pass(
    what: &str,
    analyze: impl Fn(&arsf_core::sweep::SweepGrid) -> Vec<Finding>,
    vet: impl Fn(&arsf_core::sweep::SweepGrid, &Baseline, &Location) -> Vec<Finding>,
) -> Vec<Finding> {
    let dir = arg_value("--dir").unwrap_or_else(|| "baselines".to_string());
    let mut findings = Vec::new();
    for (name, grid) in golden::all() {
        // Static pass: no simulation rounds. The cell(-pair) location is
        // kept; the message is prefixed with the grid so two grids'
        // indices stay distinguishable.
        for mut finding in analyze(&grid) {
            finding.message = format!("golden grid `{name}`: {}", finding.message);
            findings.push(finding);
        }
        // Vetting pass: every stored record must respect the statics.
        let address = grid_address(&grid);
        let path = baseline_path(&dir, &address);
        match Baseline::load(&path) {
            Ok(baseline) => findings.extend(vet(&grid, &baseline, &Location::File { path })),
            Err(_) => findings.push(Finding {
                lint: "baseline-missing",
                severity: Severity::Warn,
                location: Location::Grid {
                    name: name.to_string(),
                },
                message: format!(
                    "no stored baseline {address}.json in {dir} to vet against the static \
                     {what}"
                ),
            }),
        }
    }
    findings.sort_by_key(|f| std::cmp::Reverse(f.severity));
    findings
}

fn guarantees() -> Vec<Finding> {
    golden_pass(
        "guarantees",
        analyze_grid_guarantees,
        vet_baseline_guarantees,
    )
}

fn detectability() -> Vec<Finding> {
    golden_pass(
        "detectability verdicts",
        analyze_grid_detectability,
        vet_baseline_detectability,
    )
}

fn dominance() -> Vec<Finding> {
    golden_pass(
        "dominance orderings",
        analyze_grid_dominance,
        vet_baseline_dominance,
    )
}

fn all() -> ! {
    let passes = vec![
        ("presets", presets()),
        ("baselines", baselines()),
        ("guarantees", guarantees()),
        ("detectability", detectability()),
        ("dominance", dominance()),
    ];
    // Max-of exit codes == the lint convention over the merged set.
    let code = passes
        .iter()
        .map(|(_, findings)| exit_code(findings))
        .max()
        .unwrap_or(0);
    if has_flag("--json") {
        print!("{}", render_json_passes(&passes));
    } else {
        print!("{}", render_passes(&passes));
    }
    exit(code);
}

fn main() {
    if has_flag("--help") || has_flag("-h") {
        print!("{USAGE}");
        exit(0);
    }
    match std::env::args().nth(1).as_deref() {
        Some("presets") => emit("presets", presets()),
        Some("grid") => emit("grid", grid()),
        Some("baselines") => emit("baselines", baselines()),
        Some("guarantees") => emit("guarantees", guarantees()),
        Some("detectability") => emit("detectability", detectability()),
        Some("dominance") => emit("dominance", dominance()),
        Some("all") => all(),
        _ => {
            eprint!("{USAGE}");
            exit(2);
        }
    }
}
