//! Reproduces **Figure 5**: neither schedule is better in all situations.
//!
//! Two concrete measurement realisations, each run under both schedules
//! with the streaming attacker on a real broadcast bus:
//!
//! * (a) the attacker holds the most precise sensor; Descending hands her
//!   full knowledge and she triples the fusion width — **Ascending is
//!   better for the system**,
//! * (b) the attacker holds the second-widest sensor; Descending forces
//!   her to transmit early (passive mode, forgery pinned to `Δ`), while
//!   Ascending lets her transmit after the precise sensors with active
//!   mode unlocked — **Descending is better for the system**.
//!
//! Run with: `cargo run -p arsf-bench --bin repro_fig5`

use arsf_attack::strategies::PhantomOptimal;
use arsf_attack::{AttackStrategy, AttackerConfig};
use arsf_core::transport::run_bus_round;
use arsf_interval::render::{Diagram, RowStyle};
use arsf_interval::Interval;
use arsf_schedule::TransmissionOrder;

fn iv(lo: f64, hi: f64) -> Interval<f64> {
    Interval::new(lo, hi).expect("static figure coordinates")
}

struct Case {
    title: &'static str,
    readings: Vec<Interval<f64>>,
    widths: Vec<f64>,
    attacked: usize,
    f: usize,
    ascending: TransmissionOrder,
    descending: TransmissionOrder,
}

fn run_case(case: &Case) -> (f64, f64) {
    let mut widths_out = Vec::new();
    for order in [&case.ascending, &case.descending] {
        let attacker = Some((
            AttackerConfig::new([case.attacked], case.f),
            Box::new(PhantomOptimal::new()) as Box<dyn AttackStrategy>,
        ));
        let round = run_bus_round(&case.readings, &case.widths, order, case.f, attacker);
        let fused = round.fusion.expect("round fuses");
        assert!(round.flagged.is_empty(), "attacker must stay stealthy");

        let mut d = Diagram::new();
        for (sensor, interval) in &round.transmitted {
            let style = if *sensor == case.attacked {
                RowStyle::Attacked
            } else {
                RowStyle::Correct
            };
            d.row(
                format!("s{sensor} (w={})", case.widths[*sensor]),
                *interval,
                style,
            );
        }
        d.separator();
        d.row("S", fused, RowStyle::Fusion);
        println!(
            "  order {order}: fusion {fused} (width {:.1})",
            fused.width()
        );
        println!("{}", d.render(58));
        widths_out.push(fused.width());
    }
    (widths_out[0], widths_out[1])
}

fn main() {
    println!("Figure 5: neither schedule dominates\n");

    // (a) The attacked sensor is the most precise; truth = 0.
    let case_a = Case {
        title: "(a) Ascending is better for the system",
        readings: vec![iv(-2.5, 2.5), iv(-7.0, 4.0), iv(-3.0, 14.0)],
        widths: vec![5.0, 11.0, 17.0],
        attacked: 0,
        f: 1,
        ascending: TransmissionOrder::new(vec![0, 1, 2]).unwrap(),
        descending: TransmissionOrder::new(vec![2, 1, 0]).unwrap(),
    };
    println!("{}", case_a.title);
    let (asc_a, desc_a) = run_case(&case_a);
    assert!(
        desc_a > asc_a,
        "case (a): descending {desc_a} must exceed ascending {asc_a}"
    );
    println!("  => ascending fusion {asc_a:.1} < descending fusion {desc_a:.1}\n");

    // (b) The attacked sensor has the second-largest width: under
    // Descending it transmits second — too early for active mode, so the
    // forgery must contain Δ and is effectively truthful ("little
    // power"). Under Ascending it transmits third, after the two precise
    // sensors, with active mode unlocked ("much information").
    let case_b = Case {
        title: "(b) Descending is better for the system",
        readings: vec![iv(-2.0, 2.0), iv(0.0, 4.0), iv(-1.5, 4.5), iv(-8.0, 8.0)],
        widths: vec![4.0, 4.0, 6.0, 16.0],
        attacked: 2,
        f: 1,
        ascending: TransmissionOrder::new(vec![0, 1, 2, 3]).unwrap(),
        descending: TransmissionOrder::new(vec![3, 2, 0, 1]).unwrap(),
    };
    println!("{}", case_b.title);
    let (asc_b, desc_b) = run_case(&case_b);
    assert!(
        asc_b > desc_b,
        "case (b): ascending {asc_b} must exceed descending {desc_b}"
    );
    println!("  => descending fusion {desc_b:.1} < ascending fusion {asc_b:.1}\n");

    println!("As in the paper: schedule quality depends on the realisation,");
    println!("which is why the paper argues from worst- and average-case");
    println!("analyses (Table I) rather than single examples.");
}
