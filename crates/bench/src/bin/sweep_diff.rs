//! Regression-baseline tool for sweep reports: record the golden grids'
//! reports content-addressed under a baseline directory, re-run and
//! check them cell by cell, or diff two stored baseline files.
//!
//! Run with: `cargo run --release -p arsf-bench --bin sweep_diff -- <cmd>`
//!
//! Subcommands:
//! * `record` — run the golden grid(s) and write
//!   `<dir>/<content-address>.json` for each (overwrites the grid's own
//!   file only; other addresses are untouched). Re-record after an
//!   *intentional* algorithm change. Refuses a grid that `arsf-analyze`
//!   flags with error-severity findings, one containing cells whose
//!   declared budget admits no static width bound (`--allow-unbounded`
//!   overrides), or one whose every corruptible cell is provably
//!   invisible to its detector — vacuous detection columns
//!   (`--allow-invisible` overrides; `table2-closed-loop` needs it,
//!   since its stealthy attacker provably never trips Marzullo's
//!   overlap check). Also refuses a freshly-run report whose recorded
//!   cells invert a cross-cell ordering the dominance pass proves
//!   (`--allow-disorder` overrides) — a disordered baseline would fail
//!   `sweep_lint dominance` forever after.
//! * `check` — run the golden grid(s) and diff each against its stored
//!   baseline, printing every drifted cell's grid index, column,
//!   baseline value and new value.
//! * `diff <a.json> <b.json>` — compare two baseline files directly.
//!
//! Exit codes (CI keys off them, so drift and breakage stay
//! distinguishable):
//! * `0` — clean: every compared cell within tolerance
//! * `1` — drift: at least one cell out of tolerance
//! * `2` — broken: usage error, unreadable/missing baseline, or I/O
//!   failure
//!
//! Options:
//! * `--grid name` — restrict record/check to one golden grid
//!   (`open-loop-48`, `table2-closed-loop`; default: all)
//! * `--dir path` — the baseline directory (default `baselines`)
//! * `--threads k` — worker threads (default: available parallelism;
//!   the report is byte-identical at any thread count)
//! * `--tol col=abs[:rel],…` — per-column tolerances (column families
//!   may be named without an index, e.g. `vehicle_mean_widths=1e-9`).
//!   Columns without an entry use the near-exact default
//!   (abs/rel `1e-12`, absorbing last-ulp libm variation across
//!   platforms while failing any real drift)

use std::process::exit;

use arsf_analyze::{
    analyze_grid_guarantees, detection_vacuous, vet_baseline_dominance, AnalyzeGrid, Severity,
};
use arsf_bench::cli::parse_tolerances;
use arsf_bench::{arg_value, golden, has_flag};
use arsf_core::sweep::diff::{diff, DiffConfig, SweepDiff};
use arsf_core::sweep::store::{baseline_path, grid_address, Baseline, StoreError};
use arsf_core::sweep::{ParallelSweeper, SweepGrid};

fn fail(message: &str) -> ! {
    eprintln!("sweep_diff: {message}");
    exit(2);
}

fn sweeper() -> ParallelSweeper {
    match arg_value("--threads").map(|s| s.parse::<usize>()) {
        None => ParallelSweeper::auto(),
        Some(Ok(threads)) if threads > 0 => ParallelSweeper::new(threads),
        Some(_) => fail("--threads wants a positive integer"),
    }
}

fn diff_config() -> DiffConfig {
    // Near-exact default: absorbs last-ulp libm differences between the
    // recording and checking platforms, far below any real drift.
    let mut config = DiffConfig::near_exact();
    if let Some(spec) = arg_value("--tol") {
        for (column, tolerance) in
            parse_tolerances(&spec).unwrap_or_else(|e| fail(&format!("--tol: {e}")))
        {
            config = config.with_column(column, tolerance);
        }
    }
    config
}

fn grids() -> Vec<(&'static str, SweepGrid)> {
    match arg_value("--grid") {
        None => golden::all(),
        Some(name) => {
            let grid = golden::find(&name).unwrap_or_else(|| {
                let known: Vec<&str> = golden::all().iter().map(|(n, _)| *n).collect();
                fail(&format!(
                    "unknown golden grid `{name}` (known: {})",
                    known.join(", ")
                ))
            });
            let leaked: &'static str = Box::leak(name.into_boxed_str());
            vec![(leaked, grid)]
        }
    }
}

fn run_baseline(grid: &SweepGrid, sweeper: &ParallelSweeper) -> Baseline {
    Baseline::from_report(grid, &sweeper.run(grid))
}

fn record(dir: &str) {
    let sweeper = sweeper();
    for (name, grid) in grids() {
        // The same guard `scenario_sweep --baseline record` applies: a
        // grid with error-severity lint findings must not be frozen.
        let errors: Vec<_> = grid
            .analyze()
            .into_iter()
            .filter(|f| f.severity == Severity::Error)
            .collect();
        if !errors.is_empty() {
            for finding in &errors {
                eprintln!("{}", finding.render());
            }
            fail(&format!(
                "refusing to record {name}: the grid has error-severity lint findings"
            ));
        }
        // A cell whose declared budget admits no static width bound
        // records unfalsifiable numbers; freezing those as a baseline
        // needs an explicit opt-in.
        let unbounded: Vec<_> = analyze_grid_guarantees(&grid)
            .into_iter()
            .filter(|f| f.lint == "guarantee-unbounded")
            .collect();
        if !unbounded.is_empty() && !has_flag("--allow-unbounded") {
            for finding in &unbounded {
                eprintln!("{}", finding.render());
            }
            fail(&format!(
                "refusing to record {name}: {} cell(s) have no static width bound \
                 (pass --allow-unbounded to record anyway)",
                unbounded.len()
            ));
        }
        // A grid whose every corruptible cell is provably invisible to
        // its detector freezes tautological detection columns; that
        // needs an explicit opt-in too. (`table2-closed-loop` is the
        // canonical case: its stealth-clamped attacker provably never
        // trips Marzullo's overlap check — exactly the paper's point —
        // so re-recording it takes --allow-invisible.)
        if detection_vacuous(&grid) && !has_flag("--allow-invisible") {
            fail(&format!(
                "refusing to record {name}: every corruptible cell is provably invisible \
                 to its detector, so the detection columns are vacuous (run `sweep_lint \
                 detectability` for the per-cell verdicts; pass --allow-invisible to \
                 record anyway)"
            ));
        }
        let baseline = run_baseline(&grid, &sweeper);
        // The freshly-run numbers must respect every cross-cell ordering
        // the theory proves (Table II's schedule chain, the containment
        // and invisibility certificates): a baseline that freezes an
        // inverted pair would make the dominance vet fail forever after.
        let inversions = vet_baseline_dominance(
            &grid,
            &baseline,
            &arsf_analyze::Location::Grid {
                name: name.to_string(),
            },
        );
        if !inversions.is_empty() && !has_flag("--allow-disorder") {
            for finding in &inversions {
                eprintln!("{}", finding.render());
            }
            fail(&format!(
                "refusing to record {name}: {} recorded cell pair(s) invert a provable \
                 ordering (run `sweep_lint dominance` for the derived edges; pass \
                 --allow-disorder to record anyway)",
                inversions.len()
            ));
        }
        match baseline.save(dir) {
            Ok(path) => println!(
                "recorded {name}: {} cells -> {}",
                baseline.rows.len(),
                path.display()
            ),
            Err(e) => fail(&format!("recording {name}: {e}")),
        }
    }
}

fn check(dir: &str) {
    let sweeper = sweeper();
    let config = diff_config();
    // A missing or unreadable baseline is breakage (exit 2), not drift
    // (exit 1): CI must not mistake "nothing to compare against" for
    // "the numbers moved".
    let mut broken = false;
    let mut drifted = false;
    for (name, grid) in grids() {
        let stored = match Baseline::load_for_grid(dir, &grid) {
            Ok(stored) => stored,
            Err(StoreError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {
                eprintln!(
                    "{name}: no baseline at {} — run `sweep_diff record` first",
                    baseline_path(dir, &grid_address(&grid)).display()
                );
                broken = true;
                continue;
            }
            Err(e) => fail(&format!("loading {name}: {e}")),
        };
        let current = run_baseline(&grid, &sweeper);
        let result = diff(&stored, &current, &config);
        print!("{name}: {}", result.render());
        drifted |= !result.is_empty();
    }
    if broken {
        exit(2);
    }
    exit(i32::from(drifted));
}

fn diff_files(a: &str, b: &str) {
    let load =
        |path: &str| Baseline::load(path).unwrap_or_else(|e| fail(&format!("loading {path}: {e}")));
    let result: SweepDiff = diff(&load(a), &load(b), &diff_config());
    print!("{}", result.render());
    exit(i32::from(!result.is_empty()));
}

const USAGE: &str = "\
usage: sweep_diff <record|check|diff a.json b.json>
                  [--grid name] [--dir path] [--threads k]
                  [--tol col=abs[:rel],...] [--allow-unbounded]
                  [--allow-invisible] [--allow-disorder]

  record   run the golden grid(s), write <dir>/<content-address>.json
           (refuses grids with error-severity arsf-analyze findings,
            grids containing cells with no static width bound unless
            --allow-unbounded is passed, grids whose every corruptible
            cell is provably invisible to its detector unless
            --allow-invisible is passed — table2-closed-loop needs it —
            and runs whose recorded cells invert a provable cross-cell
            ordering unless --allow-disorder is passed)
  check    re-run the golden grid(s), diff against stored baselines
  diff     compare two baseline files directly

exit codes:
  0  clean  - every compared cell within tolerance
  1  drift  - at least one cell out of tolerance
  2  broken - usage error, missing/unreadable baseline, or I/O failure
";

fn main() {
    if has_flag("--help") || has_flag("-h") {
        print!("{USAGE}");
        exit(0);
    }
    let dir = arg_value("--dir").unwrap_or_else(|| "baselines".to_string());
    let positional: Vec<String> = {
        // Everything after the program name that is neither a flag nor a
        // flag's value.
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut positional = Vec::new();
        let mut skip = false;
        for arg in &args {
            if skip {
                skip = false;
            } else if arg == "--allow-unbounded"
                || arg == "--allow-invisible"
                || arg == "--allow-disorder"
            {
                // the boolean flags: take no value
            } else if arg.starts_with("--") {
                skip = true; // every other flag takes a value
            } else {
                positional.push(arg.clone());
            }
        }
        positional
    };
    match positional.first().map(String::as_str) {
        Some("record") => record(&dir),
        Some("check") => check(&dir),
        Some("diff") => match (positional.get(1), positional.get(2)) {
            (Some(a), Some(b)) => diff_files(a, b),
            _ => fail("diff wants two baseline files: sweep_diff diff a.json b.json"),
        },
        _ => {
            eprint!("{USAGE}");
            exit(2);
        }
    }
}
