//! Reproduces **Figure 1**: Marzullo's fusion interval for three values
//! of `f` on one five-sensor configuration — the fusion interval grows
//! with the assumed fault count.
//!
//! Run with: `cargo run -p arsf-bench --bin repro_fig1`

use arsf_fusion::marzullo::fuse;
use arsf_interval::render::{Diagram, RowStyle};
use arsf_interval::Interval;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Five abstract sensors; every interval contains the (unknown) truth
    // near 5, mirroring the structure of the paper's illustration.
    let sensors = [
        Interval::new(0.0, 6.0)?,
        Interval::new(1.0, 7.0)?,
        Interval::new(4.0, 8.0)?,
        Interval::new(5.0, 10.0)?,
        Interval::new(3.0, 5.5)?,
    ];

    let mut diagram = Diagram::new();
    for (i, s) in sensors.iter().enumerate() {
        diagram.row(format!("s{}", i + 1), *s, RowStyle::Correct);
    }
    diagram.separator();
    let mut widths = Vec::new();
    for f in [0usize, 1, 2] {
        let fused = fuse(&sensors, f)?;
        widths.push((f, fused.width()));
        diagram.row(format!("S(f={f})"), fused, RowStyle::Fusion);
    }

    println!("Figure 1: Marzullo fusion interval for f = 0, 1, 2 (n = 5)\n");
    println!("{}", diagram.render(64));
    for (f, w) in &widths {
        println!("  |S(f={f})| = {w:.2}");
    }
    assert!(
        widths.windows(2).all(|w| w[0].1 <= w[1].1),
        "the fusion interval must grow with f"
    );
    println!("\nAs in the paper: uncertainty (fusion width) grows with f.");
    Ok(())
}
