//! Scenario sweeps through the grid engine: either every named registry
//! preset, or an ad-hoc cartesian grid described on the command line —
//! sharded across worker threads either way, with the row order (and the
//! emitted bytes) identical to a serial run.
//!
//! Run with: `cargo run --release -p arsf-bench --bin scenario_sweep`
//!
//! Preset mode (default): sweeps the whole named-scenario registry.
//!
//! Grid mode (enabled by any axis flag): builds a `SweepGrid` around a
//! LandShark base scenario with a stealthy attacker on sensor 0 and
//! sweeps the cartesian product of the given axes.
//!
//! Options:
//! * `--fusers a,b,…` — fuser axis (`marzullo`, `brooks-iyengar`,
//!   `intersection`, `hull`, `inverse-variance`, `midpoint-median`,
//!   `historical[:max_rate:dt]`)
//! * `--detectors a,b,…` — detector axis (`off`, `immediate`,
//!   `windowed:window:tolerance`)
//! * `--schedules a,b,…` — schedule axis (`ascending`, `descending`,
//!   `random`)
//! * `--history r1,r2,…` — sweep the Historical defence's `max_rate`
//!   bound: appends `historical:r:0.1` entries to the fuser axis
//! * `--seeds 1,2,…` — seed axis (replicates; per-cell seeds derived)
//! * `--suite landshark | widths:5,11,17` — sensor suite (grid mode)
//! * `--fault sensor:kind[:param]:prob` — inject one fault into every
//!   cell's base scenario (e.g. `2:bias:3:0.25`, `3:silent:0.5`); works
//!   open- and closed-loop
//! * `--strategy name` — run a fixed attacker on sensor 0 with this
//!   strategy (`phantom-optimal`, `greedy-high`, `greedy-low`,
//!   `truthful`) instead of the mode's default attacker
//! * `--honest` — drop the grid base scenario's attacker (switches to
//!   grid mode like the axis flags)
//! * `--f n` — the fusion fault assumption for every cell (grid mode;
//!   default 1); `sweep_lint grid` flags combinations whose suite
//!   violates the `n > 2f` soundness bound
//! * `--cells a..b` — run only the grid cells in the half-open range
//!   `a..b` (grid order); rows keep their grid indices and derived
//!   seeds, so shards from different processes concatenate into the
//!   full report
//! * `--closed-loop` — drive each cell through the LandShark vehicle
//!   control loop (Table II style: one uniformly-random compromised
//!   sensor per round unless `--honest`); adds the supervisor columns
//!   (`above_rate`, `below_rate`, `preemptions`, `min_gap`)
//! * `--target v` — closed-loop target speed in mph (default 10;
//!   implies `--closed-loop`)
//! * `--deltas d | up:down` — closed-loop envelope half-widths
//!   (default 0.5:0.5; implies `--closed-loop`)
//! * `--platoon size[:gap]` — closed-loop platoon instead of a single
//!   vehicle (gap in miles, default 0.01; implies `--closed-loop`)
//! * `--rounds n` — rounds per cell (or per preset)
//! * `--threads k` — worker threads (default: available parallelism)
//! * `--csv path|-` / `--json path|-` — emit the report (`-` = stdout)
//! * `--no-header` — omit the CSV header line, so `--cells` shard
//!   outputs concatenate into the full sweep's CSV verbatim
//! * `--baseline record|check` — grid mode only (and incompatible with
//!   `--cells`): persist the report content-addressed under the
//!   baseline directory, or diff it against the stored baseline and
//!   exit 1 on drift; `check` honours `--tol col=abs[:rel],…` on top of
//!   the near-exact default (see the `sweep_diff` binary for the
//!   golden-grid workflow and the full tolerance semantics). `record`
//!   refuses to freeze a grid that `arsf-analyze` flags with
//!   error-severity findings — run `sweep_lint grid` with the same
//!   flags to see them ahead of time — a grid containing cells with
//!   no static width bound, unless `--allow-unbounded` is passed (run
//!   `sweep_lint guarantees` for the per-cell verdicts), and a grid
//!   whose every corruptible cell is provably invisible to its
//!   detector, unless `--allow-invisible` is passed (run `sweep_lint
//!   detectability` for the per-cell verdicts), and a freshly-run
//!   report whose recorded cells invert a cross-cell ordering the
//!   dominance pass proves, unless `--allow-disorder` is passed (run
//!   `sweep_lint dominance` for the derived edges)
//! * `--baseline-dir path` — the baseline directory (default
//!   `baselines`)

use std::process::exit;

use arsf_analyze::{AnalyzeGrid, Severity};
use arsf_bench::cli::{grid_from_args, grid_mode_requested, parse_cells};
use arsf_bench::{arg_value, has_flag, TextTable};
use arsf_core::scenario::registry;
use arsf_core::sweep::diff::{diff, DiffConfig};
use arsf_core::sweep::store::Baseline;
use arsf_core::sweep::{ParallelSweeper, SweepGrid, SweepReport};

fn fail(message: &str) -> ! {
    eprintln!("scenario_sweep: {message}");
    exit(2);
}

fn parsed<T>(result: Result<T, String>) -> T {
    result.unwrap_or_else(|e| fail(&e))
}

fn main() {
    let rounds_override: Option<u64> = arg_value("--rounds").and_then(|s| s.parse().ok());
    let sweeper = match arg_value("--threads").map(|s| s.parse::<usize>()) {
        None => ParallelSweeper::auto(),
        Some(Ok(threads)) if threads > 0 => ParallelSweeper::new(threads),
        Some(_) => fail("--threads wants a positive integer"),
    };

    // Any grid-shaping flag (including --honest and the closed-loop
    // family, which only make sense for the grid's base scenario)
    // switches from preset to grid mode; the closed-loop parameter flags
    // imply --closed-loop so they are never silently ignored.
    let grid_mode = grid_mode_requested();

    let baseline_mode = arg_value("--baseline");
    if let Some(mode) = &baseline_mode {
        if !grid_mode {
            fail("--baseline needs grid mode (pass at least one axis flag)");
        }
        if arg_value("--cells").is_some() {
            fail("--baseline compares whole grids; drop --cells");
        }
        if !matches!(mode.as_str(), "record" | "check") {
            fail("--baseline wants `record` or `check`");
        }
    }

    let mut baseline_grid: Option<SweepGrid> = None;
    let report = if grid_mode {
        // One shared construction with `sweep_lint grid` (see
        // `arsf_bench::cli::grid_from_args`), so what the linter analyzes
        // is exactly what this binary runs.
        let grid = parsed(grid_from_args());
        // Reject impossible combinations (out-of-range fault sensor,
        // degenerate platoon, …) as a CLI error instead of letting
        // ScenarioRunner panic inside a sweep worker. Only the CLI's
        // base-scenario flags affect validity — the axis flags vary
        // fusers/detectors/schedules/seeds, which are always valid.
        if let Err(e) = grid.base().validate() {
            fail(&format!("invalid scenario: {e}"));
        }
        if baseline_mode.is_some() {
            baseline_grid = Some(grid.clone());
        }
        match arg_value("--cells") {
            Some(spec) => {
                let cells = parsed(parse_cells(&spec));
                if cells.end > grid.len() {
                    fail(&format!(
                        "--cells {}..{} exceeds the {}-cell grid",
                        cells.start,
                        cells.end,
                        grid.len()
                    ));
                }
                println!(
                    "Grid sweep: cells {}..{} of {} on {} worker thread(s)\n",
                    cells.start,
                    cells.end,
                    grid.len(),
                    sweeper.threads()
                );
                sweeper.run_range(&grid, cells)
            }
            None => {
                println!(
                    "Grid sweep: {} cells on {} worker thread(s)\n",
                    grid.len(),
                    sweeper.threads()
                );
                sweeper.run(&grid)
            }
        }
    } else {
        let mut presets = registry();
        if let Some(rounds) = rounds_override {
            for preset in &mut presets {
                preset.rounds = rounds;
            }
        }
        println!(
            "Scenario sweep: {} registry presets on {} worker thread(s)\n",
            presets.len(),
            sweeper.threads()
        );
        sweeper.run_scenarios(&presets)
    };

    print_table(&report);
    if has_flag("--no-header") {
        emit(&report, "--csv", SweepReport::to_csv_body);
    } else {
        emit(&report, "--csv", SweepReport::to_csv);
    }
    emit(&report, "--json", SweepReport::to_json);

    if let (Some(mode), Some(grid)) = (&baseline_mode, &baseline_grid) {
        let dir = arg_value("--baseline-dir").unwrap_or_else(|| "baselines".to_string());
        let current = Baseline::from_report(grid, &report);
        match mode.as_str() {
            "record" => {
                // Refuse to freeze a statically unsound grid: an
                // error-severity finding means the rows are meaningless
                // (soundness violated) or the engines got lucky.
                let errors: Vec<_> = grid
                    .analyze()
                    .into_iter()
                    .filter(|f| f.severity == Severity::Error)
                    .collect();
                if !errors.is_empty() {
                    for finding in &errors {
                        eprintln!("{}", finding.render());
                    }
                    fail("refusing to record a baseline for a grid with error-severity lint findings");
                }
                // Likewise refuse cells with no static width bound: the
                // recorded numbers would be unfalsifiable against the
                // paper's guarantees.
                let unbounded: Vec<_> = arsf_analyze::analyze_grid_guarantees(grid)
                    .into_iter()
                    .filter(|f| f.lint == "guarantee-unbounded")
                    .collect();
                if !unbounded.is_empty() && !has_flag("--allow-unbounded") {
                    for finding in &unbounded {
                        eprintln!("{}", finding.render());
                    }
                    fail(&format!(
                        "refusing to record a baseline: {} cell(s) have no static width \
                         bound (pass --allow-unbounded to record anyway)",
                        unbounded.len()
                    ));
                }
                // And refuse a grid whose every attacked cell is provably
                // invisible to its detector: the detection columns would
                // freeze a tautology (run `sweep_lint detectability` for
                // the per-cell verdicts).
                if arsf_analyze::detection_vacuous(grid) && !has_flag("--allow-invisible") {
                    fail(
                        "refusing to record a baseline: every corruptible cell is provably \
                         invisible to its detector, so the detection columns are vacuous \
                         (pass --allow-invisible to record anyway)",
                    );
                }
                // Finally, the freshly-run numbers must respect every
                // cross-cell ordering the dominance pass proves: freezing
                // an inverted pair would make `sweep_lint dominance` fail
                // forever after.
                let inversions = arsf_analyze::vet_baseline_dominance(
                    grid,
                    &current,
                    &arsf_analyze::Location::Grid {
                        name: grid.base().name.clone(),
                    },
                );
                if !inversions.is_empty() && !has_flag("--allow-disorder") {
                    for finding in &inversions {
                        eprintln!("{}", finding.render());
                    }
                    fail(&format!(
                        "refusing to record a baseline: {} recorded cell pair(s) invert a \
                         provable ordering (run `sweep_lint dominance` for the derived \
                         edges; pass --allow-disorder to record anyway)",
                        inversions.len()
                    ));
                }
                match current.save(&dir) {
                    Ok(path) => println!("recorded baseline {}", path.display()),
                    Err(e) => fail(&format!("recording baseline: {e}")),
                }
            }
            _ => {
                let stored = Baseline::load_for_grid(&dir, grid)
                    .unwrap_or_else(|e| fail(&format!("loading baseline: {e}")));
                let mut config = DiffConfig::near_exact();
                if let Some(spec) = arg_value("--tol") {
                    for (column, tolerance) in parsed(arsf_bench::cli::parse_tolerances(&spec)) {
                        config = config.with_column(column, tolerance);
                    }
                }
                let result = diff(&stored, &current, &config);
                print!("{}", result.render());
                if !result.is_empty() {
                    exit(1);
                }
            }
        }
    }

    if !grid_mode {
        println!("Marzullo/Brooks–Iyengar keep the truth under attack (fa <= f);");
        println!("the inverse-variance baseline does not; historical fusion");
        println!("tightens the descending-schedule attack; the windowed detector");
        println!("condemns the transiently-faulty GPS without false positives.");
    }
}

fn print_table(report: &SweepReport) {
    let closed_loop = report.rows().iter().any(|r| r.summary.supervisor.is_some());
    let mut header = vec![
        "cell".into(),
        "scenario".into(),
        "fuser".into(),
        "detector".into(),
        "schedule".into(),
        "rounds".into(),
        "mean width".into(),
        "truth lost".into(),
        "fusion fail".into(),
        "flag rounds".into(),
        "condemned".into(),
    ];
    let platoon = report.rows().iter().any(|r| !r.summary.vehicles.is_empty());
    if closed_loop {
        header.extend([
            "above".into(),
            "below".into(),
            "preempts".into(),
            "min gap".into(),
        ]);
    }
    if platoon {
        header.push("veh widths".into());
    }
    let mut table = TextTable::new(header);
    for row in report.rows() {
        let s = &row.summary;
        let mut cells = vec![
            format!("{}", row.cell),
            s.scenario.clone(),
            s.fuser.clone(),
            s.detector.clone(),
            row.schedule.clone(),
            format!("{}", s.rounds),
            format!("{:.3}", s.widths.mean()),
            format!("{}", s.truth_lost),
            format!("{}", s.fusion_failures),
            format!("{}", s.flagged_rounds),
            format!("{:?}", s.condemned),
        ];
        if closed_loop {
            match &s.supervisor {
                Some(sup) => cells.extend([
                    format!("{:.2}%", sup.above_rate * 100.0),
                    format!("{:.2}%", sup.below_rate * 100.0),
                    format!("{}", sup.preemptions),
                    sup.min_gap.map_or(String::new(), |g| format!("{g:.4}")),
                ]),
                None => cells.extend([String::new(), String::new(), String::new(), String::new()]),
            }
        }
        if platoon {
            let means: Vec<String> = s
                .vehicles
                .iter()
                .map(|v| format!("{:.3}", v.widths.mean()))
                .collect();
            cells.push(means.join("|"));
        }
        table.row(cells);
    }
    println!("{}", table.render());
}

/// Writes a rendering of the report to the path given by `flag` (`-`
/// streams to stdout).
fn emit(report: &SweepReport, flag: &str, render: fn(&SweepReport) -> String) {
    if let Some(target) = arg_value(flag) {
        let payload = render(report);
        if target == "-" {
            print!("{payload}");
        } else if let Err(err) = std::fs::write(&target, &payload) {
            fail(&format!("cannot write {target}: {err}"));
        } else {
            println!("wrote {target}");
        }
    }
}
