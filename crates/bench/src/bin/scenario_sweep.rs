//! Scenario sweeps through the grid engine: either every named registry
//! preset, or an ad-hoc cartesian grid described on the command line —
//! sharded across worker threads either way, with the row order (and the
//! emitted bytes) identical to a serial run.
//!
//! Run with: `cargo run --release -p arsf-bench --bin scenario_sweep`
//!
//! Preset mode (default): sweeps the whole named-scenario registry.
//!
//! Grid mode (enabled by any axis flag): builds a `SweepGrid` around a
//! LandShark base scenario with a stealthy attacker on sensor 0 and
//! sweeps the cartesian product of the given axes.
//!
//! Options:
//! * `--fusers a,b,…` — fuser axis (`marzullo`, `brooks-iyengar`,
//!   `intersection`, `hull`, `inverse-variance`, `midpoint-median`,
//!   `historical[:max_rate:dt]`)
//! * `--detectors a,b,…` — detector axis (`off`, `immediate`,
//!   `windowed:window:tolerance`)
//! * `--schedules a,b,…` — schedule axis (`ascending`, `descending`,
//!   `random`)
//! * `--seeds 1,2,…` — seed axis (replicates; per-cell seeds derived)
//! * `--suite landshark | widths:5,11,17` — sensor suite (grid mode)
//! * `--honest` — drop the grid base scenario's attacker (switches to
//!   grid mode like the axis flags)
//! * `--closed-loop` — drive each cell through the LandShark vehicle
//!   control loop (Table II style: one uniformly-random compromised
//!   sensor per round unless `--honest`); adds the supervisor columns
//!   (`above_rate`, `below_rate`, `preemptions`, `min_gap`)
//! * `--target v` — closed-loop target speed in mph (default 10;
//!   implies `--closed-loop`)
//! * `--deltas d | up:down` — closed-loop envelope half-widths
//!   (default 0.5:0.5; implies `--closed-loop`)
//! * `--platoon size[:gap]` — closed-loop platoon instead of a single
//!   vehicle (gap in miles, default 0.01; implies `--closed-loop`)
//! * `--rounds n` — rounds per cell (or per preset)
//! * `--threads k` — worker threads (default: available parallelism)
//! * `--csv path|-` / `--json path|-` — emit the report (`-` = stdout)

use std::process::exit;

use arsf_bench::cli::{
    parse_deltas, parse_detectors, parse_fusers, parse_platoon, parse_schedules, parse_suite,
    parse_u64_list,
};
use arsf_bench::{arg_value, has_flag, TextTable};
use arsf_core::scenario::{
    registry, AttackerSpec, ClosedLoopSpec, Scenario, StrategySpec, SuiteSpec,
};
use arsf_core::sweep::{ParallelSweeper, SweepGrid, SweepReport};

fn fail(message: &str) -> ! {
    eprintln!("scenario_sweep: {message}");
    exit(2);
}

fn parsed<T>(result: Result<T, String>) -> T {
    result.unwrap_or_else(|e| fail(&e))
}

fn main() {
    let rounds_override: Option<u64> = arg_value("--rounds").and_then(|s| s.parse().ok());
    let sweeper = match arg_value("--threads").map(|s| s.parse::<usize>()) {
        None => ParallelSweeper::auto(),
        Some(Ok(threads)) if threads > 0 => ParallelSweeper::new(threads),
        Some(_) => fail("--threads wants a positive integer"),
    };

    // Any grid-shaping flag (including --honest and the closed-loop
    // family, which only make sense for the grid's base scenario)
    // switches from preset to grid mode; the closed-loop parameter flags
    // imply --closed-loop so they are never silently ignored.
    let closed_loop = has_flag("--closed-loop")
        || ["--target", "--deltas", "--platoon"]
            .iter()
            .any(|flag| arg_value(flag).is_some());
    let grid_mode = [
        "--fusers",
        "--detectors",
        "--schedules",
        "--seeds",
        "--suite",
    ]
    .iter()
    .any(|flag| arg_value(flag).is_some())
        || has_flag("--honest")
        || closed_loop;

    let report = if grid_mode {
        let suite = arg_value("--suite").map_or(SuiteSpec::Landshark, |s| parsed(parse_suite(&s)));
        // Open-loop grids default to the stealthy fixed attacker on the
        // most precise sensor; closed-loop grids default to Table II's
        // "any sensor can be attacked" model.
        let mut base = if closed_loop {
            Scenario::new("sweep", suite).with_attacker(AttackerSpec::RandomEachRound)
        } else {
            Scenario::new("sweep", suite).with_attacker(AttackerSpec::Fixed {
                sensors: vec![0],
                strategy: StrategySpec::PhantomOptimal,
            })
        };
        if has_flag("--honest") {
            base = base.with_attacker(AttackerSpec::None);
        }
        if closed_loop {
            let target = arg_value("--target").map_or(10.0, |s| {
                s.parse()
                    .ok()
                    .filter(|t: &f64| t.is_finite() && *t > 0.0)
                    .unwrap_or_else(|| fail("--target wants a positive speed in mph"))
            });
            let mut spec = ClosedLoopSpec::new(target);
            if let Some(deltas) = arg_value("--deltas") {
                let (up, down) = parsed(parse_deltas(&deltas));
                spec = spec.with_deltas(up, down);
            }
            if let Some(platoon) = arg_value("--platoon") {
                let (size, gap) = parsed(parse_platoon(&platoon));
                spec = spec.with_platoon(size, gap);
            }
            base = base.with_closed_loop(spec);
        }
        if let Some(rounds) = rounds_override {
            base = base.with_rounds(rounds);
        }
        let mut grid = SweepGrid::new(base);
        if let Some(spec) = arg_value("--fusers") {
            grid = grid.fusers(parsed(parse_fusers(&spec)));
        }
        if let Some(spec) = arg_value("--detectors") {
            grid = grid.detectors(parsed(parse_detectors(&spec)));
        }
        if let Some(spec) = arg_value("--schedules") {
            grid = grid.schedules(parsed(parse_schedules(&spec)));
        }
        if let Some(spec) = arg_value("--seeds") {
            grid = grid.seeds(parsed(parse_u64_list(&spec)));
        }
        println!(
            "Grid sweep: {} cells on {} worker thread(s)\n",
            grid.len(),
            sweeper.threads()
        );
        sweeper.run(&grid)
    } else {
        let mut presets = registry();
        if let Some(rounds) = rounds_override {
            for preset in &mut presets {
                preset.rounds = rounds;
            }
        }
        println!(
            "Scenario sweep: {} registry presets on {} worker thread(s)\n",
            presets.len(),
            sweeper.threads()
        );
        sweeper.run_scenarios(&presets)
    };

    print_table(&report);
    emit(&report, "--csv", SweepReport::to_csv);
    emit(&report, "--json", SweepReport::to_json);

    if !grid_mode {
        println!("Marzullo/Brooks–Iyengar keep the truth under attack (fa <= f);");
        println!("the inverse-variance baseline does not; historical fusion");
        println!("tightens the descending-schedule attack; the windowed detector");
        println!("condemns the transiently-faulty GPS without false positives.");
    }
}

fn print_table(report: &SweepReport) {
    let closed_loop = report.rows().iter().any(|r| r.summary.supervisor.is_some());
    let mut header = vec![
        "cell".into(),
        "scenario".into(),
        "fuser".into(),
        "detector".into(),
        "schedule".into(),
        "rounds".into(),
        "mean width".into(),
        "truth lost".into(),
        "fusion fail".into(),
        "flag rounds".into(),
        "condemned".into(),
    ];
    if closed_loop {
        header.extend([
            "above".into(),
            "below".into(),
            "preempts".into(),
            "min gap".into(),
        ]);
    }
    let mut table = TextTable::new(header);
    for row in report.rows() {
        let s = &row.summary;
        let mut cells = vec![
            format!("{}", row.cell),
            s.scenario.clone(),
            s.fuser.clone(),
            s.detector.clone(),
            row.schedule.clone(),
            format!("{}", s.rounds),
            format!("{:.3}", s.widths.mean()),
            format!("{}", s.truth_lost),
            format!("{}", s.fusion_failures),
            format!("{}", s.flagged_rounds),
            format!("{:?}", s.condemned),
        ];
        if closed_loop {
            match &s.supervisor {
                Some(sup) => cells.extend([
                    format!("{:.2}%", sup.above_rate * 100.0),
                    format!("{:.2}%", sup.below_rate * 100.0),
                    format!("{}", sup.preemptions),
                    sup.min_gap.map_or(String::new(), |g| format!("{g:.4}")),
                ]),
                None => cells.extend([String::new(), String::new(), String::new(), String::new()]),
            }
        }
        table.row(cells);
    }
    println!("{}", table.render());
}

/// Writes a rendering of the report to the path given by `flag` (`-`
/// streams to stdout).
fn emit(report: &SweepReport, flag: &str, render: fn(&SweepReport) -> String) {
    if let Some(target) = arg_value(flag) {
        let payload = render(report);
        if target == "-" {
            print!("{payload}");
        } else if let Err(err) = std::fs::write(&target, &payload) {
            fail(&format!("cannot write {target}: {err}"));
        } else {
            println!("wrote {target}");
        }
    }
}
