//! Sweeps every named scenario preset through the declarative runner and
//! tabulates the summaries — the one-command overview of how each
//! fusion-algorithm/detector/schedule combination behaves.
//!
//! Run with: `cargo run --release -p arsf-bench --bin scenario_sweep`
//!
//! Options: `--rounds <n>` (default: each preset's own count).

use arsf_bench::{arg_value, TextTable};
use arsf_core::scenario::registry;
use arsf_core::ScenarioRunner;

fn main() {
    let rounds_override: Option<u64> = arg_value("--rounds").and_then(|s| s.parse().ok());

    let mut presets = registry();
    if let Some(rounds) = rounds_override {
        for preset in &mut presets {
            preset.rounds = rounds;
        }
    }

    println!("Scenario sweep: every registry preset through one engine\n");
    let mut table = TextTable::new(vec![
        "scenario".into(),
        "fuser".into(),
        "detector".into(),
        "schedule".into(),
        "rounds".into(),
        "mean width".into(),
        "truth lost".into(),
        "fusion fail".into(),
        "flag rounds".into(),
        "condemned".into(),
    ]);
    for preset in &presets {
        let summary = ScenarioRunner::new(preset).run();
        table.row(vec![
            summary.scenario.clone(),
            summary.fuser.clone(),
            summary.detector.clone(),
            preset.schedule.name().into(),
            format!("{}", summary.rounds),
            format!("{:.3}", summary.widths.mean()),
            format!("{}", summary.truth_lost),
            format!("{}", summary.fusion_failures),
            format!("{}", summary.flagged_rounds),
            format!("{:?}", summary.condemned),
        ]);
    }
    println!("{}", table.render());
    println!("Marzullo/Brooks–Iyengar keep the truth under attack (fa <= f);");
    println!("the inverse-variance baseline does not; historical fusion");
    println!("tightens the descending-schedule attack; the windowed detector");
    println!("condemns the transiently-faulty GPS without false positives.");
}
