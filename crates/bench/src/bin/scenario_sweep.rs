//! Scenario sweeps through the grid engine: either every named registry
//! preset, or an ad-hoc cartesian grid described on the command line —
//! sharded across worker threads either way, with the row order (and the
//! emitted bytes) identical to a serial run.
//!
//! Run with: `cargo run --release -p arsf-bench --bin scenario_sweep`
//!
//! Preset mode (default): sweeps the whole named-scenario registry.
//!
//! Grid mode (enabled by any axis flag): builds a `SweepGrid` around a
//! LandShark base scenario with a stealthy attacker on sensor 0 and
//! sweeps the cartesian product of the given axes.
//!
//! Options:
//! * `--fusers a,b,…` — fuser axis (`marzullo`, `brooks-iyengar`,
//!   `intersection`, `hull`, `inverse-variance`, `midpoint-median`,
//!   `historical[:max_rate:dt]`)
//! * `--detectors a,b,…` — detector axis (`off`, `immediate`,
//!   `windowed:window:tolerance`)
//! * `--schedules a,b,…` — schedule axis (`ascending`, `descending`,
//!   `random`)
//! * `--history r1,r2,…` — sweep the Historical defence's `max_rate`
//!   bound: appends `historical:r:0.1` entries to the fuser axis
//! * `--seeds 1,2,…` — seed axis (replicates; per-cell seeds derived)
//! * `--suite landshark | widths:5,11,17` — sensor suite (grid mode)
//! * `--fault sensor:kind[:param]:prob` — inject one fault into every
//!   cell's base scenario (e.g. `2:bias:3:0.25`, `3:silent:0.5`); works
//!   open- and closed-loop
//! * `--strategy name` — run a fixed attacker on sensor 0 with this
//!   strategy (`phantom-optimal`, `greedy-high`, `greedy-low`,
//!   `truthful`) instead of the mode's default attacker
//! * `--honest` — drop the grid base scenario's attacker (switches to
//!   grid mode like the axis flags)
//! * `--f n` — the fusion fault assumption for every cell (grid mode;
//!   default 1); `sweep_lint grid` flags combinations whose suite
//!   violates the `n > 2f` soundness bound
//! * `--golden name` — run a committed golden grid (`open-loop-48`,
//!   `table2-closed-loop`) instead of describing axes by hand; rejects
//!   every other grid-shaping flag so the grid's content address is
//!   exactly the committed one (`--cells`, `--stream`, `--baseline` and
//!   the output flags still apply)
//! * `--cells a..b` — run only the grid cells in the half-open range
//!   `a..b` (grid order); rows keep their grid indices and derived
//!   seeds, so shards from different processes concatenate into the
//!   full report
//! * `--stream` — grid mode only: instead of a table/CSV/JSON report,
//!   write the framed worker protocol `sweep_drive` consumes to stdout
//!   (a versioned `shard` header carrying the grid's content address
//!   and cell range, one `row index seed csv` frame per finished cell
//!   in grid order, and a terminal `end rows= checksum=` frame). Rows
//!   stream as cells finish through the bounded-memory
//!   `StreamingSweeper`, so arbitrarily large shards run in constant
//!   space; incompatible with `--csv`, `--json` and `--baseline`
//! * `--stream-fail-after k` — test instrumentation for the
//!   coordinator's retry path: exit with code 7 (simulating a worker
//!   crash) after emitting `k` row frames
//! * `--closed-loop` — drive each cell through the LandShark vehicle
//!   control loop (Table II style: one uniformly-random compromised
//!   sensor per round unless `--honest`); adds the supervisor columns
//!   (`above_rate`, `below_rate`, `preemptions`, `min_gap`)
//! * `--target v` — closed-loop target speed in mph (default 10;
//!   implies `--closed-loop`)
//! * `--deltas d | up:down` — closed-loop envelope half-widths
//!   (default 0.5:0.5; implies `--closed-loop`)
//! * `--platoon size[:gap]` — closed-loop platoon instead of a single
//!   vehicle (gap in miles, default 0.01; implies `--closed-loop`)
//! * `--rounds n` — rounds per cell (or per preset)
//! * `--threads k` — worker threads (default: available parallelism)
//! * `--csv path|-` / `--json path|-` — emit the report (`-` = stdout)
//! * `--no-header` — omit the CSV header line, so `--cells` shard
//!   outputs concatenate into the full sweep's CSV verbatim
//! * `--baseline record|check` — grid mode only (and incompatible with
//!   `--cells`): persist the report content-addressed under the
//!   baseline directory, or diff it against the stored baseline and
//!   exit 1 on drift; `check` honours `--tol col=abs[:rel],…` on top of
//!   the near-exact default (see the `sweep_diff` binary for the
//!   golden-grid workflow and the full tolerance semantics). `record`
//!   refuses to freeze a grid that `arsf-analyze` flags with
//!   error-severity findings — run `sweep_lint grid` with the same
//!   flags to see them ahead of time — a grid containing cells with
//!   no static width bound, unless `--allow-unbounded` is passed (run
//!   `sweep_lint guarantees` for the per-cell verdicts), and a grid
//!   whose every corruptible cell is provably invisible to its
//!   detector, unless `--allow-invisible` is passed (run `sweep_lint
//!   detectability` for the per-cell verdicts), and a freshly-run
//!   report whose recorded cells invert a cross-cell ordering the
//!   dominance pass proves, unless `--allow-disorder` is passed (run
//!   `sweep_lint dominance` for the derived edges)
//! * `--baseline-dir path` — the baseline directory (default
//!   `baselines`)

use std::io::Write;
use std::process::exit;

use arsf_bench::cli::{grid_from_args, grid_mode_requested, parse_cells};
use arsf_bench::drive::{Fnv64, Frame};
use arsf_bench::{arg_value, baseline_ops, has_flag, TextTable};
use arsf_core::scenario::registry;
use arsf_core::sweep::store::{grid_address, Baseline};
use arsf_core::sweep::{ParallelSweeper, StreamingSweeper, SweepGrid, SweepReport};

fn fail(message: &str) -> ! {
    eprintln!("scenario_sweep: {message}");
    exit(2);
}

fn parsed<T>(result: Result<T, String>) -> T {
    result.unwrap_or_else(|e| fail(&e))
}

/// `--stream`: emit the framed worker protocol instead of a report.
/// Row frames stream as cells finish (stdout is line-buffered), so a
/// `sweep_drive` coordinator sees live progress and the shard runs in
/// constant memory whatever its size.
fn stream_mode(threads: usize) -> ! {
    if !grid_mode_requested() {
        fail("--stream needs grid mode (pass at least one axis flag or --golden)");
    }
    for flag in ["--csv", "--json", "--baseline"] {
        if arg_value(flag).is_some() {
            fail(&format!("--stream emits protocol frames; drop {flag}"));
        }
    }
    let grid = parsed(grid_from_args());
    if let Err(e) = grid.base().validate() {
        fail(&format!("invalid scenario: {e}"));
    }
    let cells = match arg_value("--cells") {
        Some(spec) => {
            let cells = parsed(parse_cells(&spec));
            if cells.end > grid.len() {
                fail(&format!(
                    "--cells {}..{} exceeds the {}-cell grid",
                    cells.start,
                    cells.end,
                    grid.len()
                ));
            }
            cells
        }
        None => 0..grid.len(),
    };
    let fail_after: Option<usize> = arg_value("--stream-fail-after").map(|spec| {
        parsed(
            spec.parse()
                .map_err(|_| format!("--stream-fail-after wants a row count, got `{spec}`")),
        )
    });

    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let header = Frame::Header {
        grid: grid_address(&grid),
        cells: cells.clone(),
    };
    if writeln!(out, "{}", header.render()).is_err() {
        exit(1); // Coordinator hung up; nothing useful left to do.
    }
    let mut hash = Fnv64::default();
    let mut emitted = 0usize;
    let result = StreamingSweeper::new(threads).try_stream_range(&grid, cells, |row| {
        let csv = row.to_csv_line();
        hash.update(csv.as_bytes());
        hash.update(b"\n");
        let frame = Frame::Row {
            index: row.cell,
            seed: row.seed,
            csv,
        };
        writeln!(out, "{}", frame.render())?;
        emitted += 1;
        if fail_after == Some(emitted) {
            let _ = out.flush();
            exit(7);
        }
        Ok::<(), std::io::Error>(())
    });
    if result.is_err() {
        exit(1); // Broken pipe mid-stream: the coordinator already knows.
    }
    let end = Frame::End {
        rows: emitted,
        checksum: hash.finish(),
    };
    if writeln!(out, "{}", end.render()).is_err() {
        exit(1);
    }
    exit(0);
}

fn main() {
    let rounds_override: Option<u64> = arg_value("--rounds").and_then(|s| s.parse().ok());
    let sweeper = match arg_value("--threads").map(|s| s.parse::<usize>()) {
        None => ParallelSweeper::auto(),
        Some(Ok(threads)) if threads > 0 => ParallelSweeper::new(threads),
        Some(_) => fail("--threads wants a positive integer"),
    };

    if has_flag("--stream") {
        stream_mode(sweeper.threads());
    }

    // Any grid-shaping flag (including --honest and the closed-loop
    // family, which only make sense for the grid's base scenario)
    // switches from preset to grid mode; the closed-loop parameter flags
    // imply --closed-loop so they are never silently ignored.
    let grid_mode = grid_mode_requested();

    let baseline_mode = arg_value("--baseline");
    if let Some(mode) = &baseline_mode {
        if !grid_mode {
            fail("--baseline needs grid mode (pass at least one axis flag)");
        }
        if arg_value("--cells").is_some() {
            fail("--baseline compares whole grids; drop --cells");
        }
        if !matches!(mode.as_str(), "record" | "check") {
            fail("--baseline wants `record` or `check`");
        }
    }

    let mut baseline_grid: Option<SweepGrid> = None;
    let report = if grid_mode {
        // One shared construction with `sweep_lint grid` (see
        // `arsf_bench::cli::grid_from_args`), so what the linter analyzes
        // is exactly what this binary runs.
        let grid = parsed(grid_from_args());
        // Reject impossible combinations (out-of-range fault sensor,
        // degenerate platoon, …) as a CLI error instead of letting
        // ScenarioRunner panic inside a sweep worker. Only the CLI's
        // base-scenario flags affect validity — the axis flags vary
        // fusers/detectors/schedules/seeds, which are always valid.
        if let Err(e) = grid.base().validate() {
            fail(&format!("invalid scenario: {e}"));
        }
        if baseline_mode.is_some() {
            baseline_grid = Some(grid.clone());
        }
        match arg_value("--cells") {
            Some(spec) => {
                let cells = parsed(parse_cells(&spec));
                if cells.end > grid.len() {
                    fail(&format!(
                        "--cells {}..{} exceeds the {}-cell grid",
                        cells.start,
                        cells.end,
                        grid.len()
                    ));
                }
                println!(
                    "Grid sweep: cells {}..{} of {} on {} worker thread(s)\n",
                    cells.start,
                    cells.end,
                    grid.len(),
                    sweeper.threads()
                );
                sweeper.run_range(&grid, cells)
            }
            None => {
                println!(
                    "Grid sweep: {} cells on {} worker thread(s)\n",
                    grid.len(),
                    sweeper.threads()
                );
                sweeper.run(&grid)
            }
        }
    } else {
        let mut presets = registry();
        if let Some(rounds) = rounds_override {
            for preset in &mut presets {
                preset.rounds = rounds;
            }
        }
        println!(
            "Scenario sweep: {} registry presets on {} worker thread(s)\n",
            presets.len(),
            sweeper.threads()
        );
        sweeper.run_scenarios(&presets)
    };

    print_table(&report);
    if has_flag("--no-header") {
        emit(&report, "--csv", SweepReport::to_csv_body);
    } else {
        emit(&report, "--csv", SweepReport::to_csv);
    }
    emit(&report, "--json", SweepReport::to_json);

    if let (Some(mode), Some(grid)) = (&baseline_mode, &baseline_grid) {
        // The recording vetoes and check tolerances live in
        // `arsf_bench::baseline_ops`, shared verbatim with `sweep_drive`
        // so a driven run and an in-process run freeze or vet a grid
        // under identical rules.
        let dir = arg_value("--baseline-dir").unwrap_or_else(|| "baselines".to_string());
        let current = Baseline::from_report(grid, &report);
        match mode.as_str() {
            "record" => match baseline_ops::record(grid, &current, &dir) {
                Ok(path) => println!("recorded baseline {}", path.display()),
                Err(e) => fail(&e),
            },
            _ => {
                let (rendered, drifted) = parsed(baseline_ops::check(grid, &current, &dir));
                print!("{rendered}");
                if drifted {
                    exit(1);
                }
            }
        }
    }

    if !grid_mode {
        println!("Marzullo/Brooks–Iyengar keep the truth under attack (fa <= f);");
        println!("the inverse-variance baseline does not; historical fusion");
        println!("tightens the descending-schedule attack; the windowed detector");
        println!("condemns the transiently-faulty GPS without false positives.");
    }
}

fn print_table(report: &SweepReport) {
    let closed_loop = report.rows().iter().any(|r| r.summary.supervisor.is_some());
    let mut header = vec![
        "cell".into(),
        "scenario".into(),
        "fuser".into(),
        "detector".into(),
        "schedule".into(),
        "rounds".into(),
        "mean width".into(),
        "truth lost".into(),
        "fusion fail".into(),
        "flag rounds".into(),
        "condemned".into(),
    ];
    let platoon = report.rows().iter().any(|r| !r.summary.vehicles.is_empty());
    if closed_loop {
        header.extend([
            "above".into(),
            "below".into(),
            "preempts".into(),
            "min gap".into(),
        ]);
    }
    if platoon {
        header.push("veh widths".into());
    }
    let mut table = TextTable::new(header);
    for row in report.rows() {
        let s = &row.summary;
        let mut cells = vec![
            format!("{}", row.cell),
            s.scenario.clone(),
            s.fuser.clone(),
            s.detector.clone(),
            row.schedule.clone(),
            format!("{}", s.rounds),
            format!("{:.3}", s.widths.mean()),
            format!("{}", s.truth_lost),
            format!("{}", s.fusion_failures),
            format!("{}", s.flagged_rounds),
            format!("{:?}", s.condemned),
        ];
        if closed_loop {
            match &s.supervisor {
                Some(sup) => cells.extend([
                    format!("{:.2}%", sup.above_rate * 100.0),
                    format!("{:.2}%", sup.below_rate * 100.0),
                    format!("{}", sup.preemptions),
                    sup.min_gap.map_or(String::new(), |g| format!("{g:.4}")),
                ]),
                None => cells.extend([String::new(), String::new(), String::new(), String::new()]),
            }
        }
        if platoon {
            let means: Vec<String> = s
                .vehicles
                .iter()
                .map(|v| format!("{:.3}", v.widths.mean()))
                .collect();
            cells.push(means.join("|"));
        }
        table.row(cells);
    }
    println!("{}", table.render());
}

/// Writes a rendering of the report to the path given by `flag` (`-`
/// streams to stdout).
fn emit(report: &SweepReport, flag: &str, render: fn(&SweepReport) -> String) {
    if let Some(target) = arg_value(flag) {
        let payload = render(report);
        if target == "-" {
            print!("{payload}");
        } else if let Err(err) = std::fs::write(&target, &payload) {
            fail(&format!("cannot write {target}: {err}"));
        } else {
            println!("wrote {target}");
        }
    }
}
