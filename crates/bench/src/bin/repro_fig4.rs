//! Reproduces **Figure 4**: Theorems 3 and 4 — attacking the biggest
//! intervals does not change the worst case in the system, while
//! attacking the smallest achieves the absolute worst case.
//!
//! The experiment searches all configurations (correct intervals placed
//! adversarially on a grid, attacked intervals forged optimally) and
//! reports the worst-case fusion width per choice of attacked sensors.
//!
//! Run with: `cargo run --release -p arsf-bench --bin repro_fig4`
//! (`--step <s>` to change the placement grid, default 1.0)

use arsf_attack::worst_case::{attacked_worst_case, no_attack_worst_case, subsets};
use arsf_bench::{arg_value, TextTable};
use arsf_interval::render::{Diagram, RowStyle};

fn main() {
    let step: f64 = arg_value("--step")
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    // A five-sensor system with two clearly-smallest and two
    // clearly-largest intervals; f = 2 tolerates fa = 2.
    let widths = [2.0, 3.0, 4.0, 6.0, 8.0];
    let f = 2;
    let fa = 2;

    println!("Figure 4 / Theorems 3 & 4: worst-case fusion width by attacked set");
    println!("widths L = {widths:?}, f = {f}, fa = {fa}, grid step {step}\n");

    let na = no_attack_worst_case(&widths, f, step).expect("valid configuration");
    println!("no attack:            |S_na|    = {:.2}", na.width);

    let mut table = TextTable::new(vec![
        "attacked sensors".into(),
        "widths".into(),
        "|S_F|".into(),
        "note".into(),
    ]);
    let mut global_best = f64::NEG_INFINITY;
    let mut global_set = Vec::new();
    let mut results = Vec::new();
    for subset in subsets(widths.len(), fa) {
        let wc = attacked_worst_case(&widths, &subset, f, step).expect("bounded attack");
        if wc.width > global_best {
            global_best = wc.width;
            global_set = subset.clone();
        }
        results.push((subset, wc));
    }
    let smallest_set = vec![0usize, 1];
    let largest_set = vec![3usize, 4];
    for (subset, wc) in &results {
        let note = if *subset == smallest_set {
            "the two smallest (Theorem 4: achieves the global worst case)"
        } else if *subset == largest_set {
            "the two largest (Theorem 3: no worse than no attack)"
        } else {
            ""
        };
        let ws: Vec<String> = subset.iter().map(|&i| format!("{}", widths[i])).collect();
        table.row(vec![
            format!("{subset:?}"),
            format!("{{{}}}", ws.join(", ")),
            format!("{:.2}", wc.width),
            note.into(),
        ]);
    }
    println!("\n{}", table.render());

    // Theorem 3: attacking the largest intervals leaves the worst case
    // unchanged.
    let largest = results
        .iter()
        .find(|(s, _)| *s == largest_set)
        .expect("subset enumerated");
    assert!(
        (largest.1.width - na.width).abs() < 1e-9,
        "Theorem 3 violated: {} vs {}",
        largest.1.width,
        na.width
    );

    // Theorem 4: attacking the smallest achieves the global worst case.
    let smallest = results
        .iter()
        .find(|(s, _)| *s == smallest_set)
        .expect("subset enumerated");
    assert!(
        (smallest.1.width - global_best).abs() < 1e-9,
        "Theorem 4 violated: {} vs global {}",
        smallest.1.width,
        global_best
    );

    println!("global worst case {global_best:.2} achieved by {global_set:?};");
    println!(
        "Theorem 3 check: attacking {{6, 8}} gives exactly |S_na| = {:.2} ✓",
        na.width
    );
    println!("Theorem 4 check: attacking {{2, 3}} achieves the global worst case ✓\n");

    // Render the worst configuration for the smallest-attacked case,
    // mirroring Fig. 4(b).
    let mut d = Diagram::new();
    for (i, c) in smallest.1.correct.iter().enumerate() {
        d.row(format!("c{}", i + 1), *c, RowStyle::Correct);
    }
    for (i, a) in smallest.1.attacked.iter().enumerate() {
        d.row(format!("a{}", i + 1), *a, RowStyle::Attacked);
    }
    d.separator();
    let all: Vec<_> = smallest
        .1
        .correct
        .iter()
        .chain(smallest.1.attacked.iter())
        .copied()
        .collect();
    let fused = arsf_fusion::marzullo::fuse(&all, f).expect("worst case fuses");
    d.row("S", fused, RowStyle::Fusion);
    d.point("truth", 0.0);
    println!("worst configuration when the two smallest are attacked:");
    println!("{}", d.render(60));
}
