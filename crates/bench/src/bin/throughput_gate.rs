//! Criterion-history throughput gate: run the 48-cell `sweep_parallel`
//! grid in release mode (repeated passes over a >=1s window, best pass
//! reported), record rounds/s into a JSON artifact, and fail when
//! throughput drops more than `--max-drop` below a committed reference
//! — the ROADMAP's "fail CI on >20% throughput regressions" item,
//! without the noise of a full criterion session.
//!
//! Run with: `cargo run --release -p arsf-bench --bin throughput_gate`
//!
//! Options:
//! * `--threads k` — worker threads (default: available parallelism)
//! * `--out path` — write `{"grid","cells","rounds","seconds",
//!   "rounds_per_sec"}` to this file (the CI artifact)
//! * `--reference path` — compare against a previously recorded
//!   artifact; **skips gracefully** (exit 0, with a note) when the file
//!   does not exist, so the gate is inert until a reference is committed
//! * `--max-drop f` — tolerated fractional drop vs the reference
//!   (default 0.2 = 20%)
//!
//! Record a reference on the machine class CI runs on:
//! `throughput_gate --out baselines/throughput.json`, commit the file,
//! and re-record it whenever the hardware or the engine intentionally
//! changes.

use std::process::exit;
use std::time::Instant;

use arsf_bench::{arg_value, golden};
use arsf_core::sweep::ParallelSweeper;

fn fail(message: &str) -> ! {
    eprintln!("throughput_gate: {message}");
    exit(2);
}

/// Extracts `"field": <number>` from a flat JSON artifact without a
/// parser dependency.
fn json_number_field(src: &str, field: &str) -> Option<f64> {
    let tail = src.split(&format!("\"{field}\":")).nth(1)?;
    let token: String = tail
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E'))
        .collect();
    token.parse().ok()
}

fn main() {
    let sweeper = match arg_value("--threads").map(|s| s.parse::<usize>()) {
        None => ParallelSweeper::auto(),
        Some(Ok(threads)) if threads > 0 => ParallelSweeper::new(threads),
        Some(_) => fail("--threads wants a positive integer"),
    };
    let max_drop = arg_value("--max-drop").map_or(0.2, |s| {
        s.parse()
            .ok()
            .filter(|d: &f64| (0.0..1.0).contains(d))
            .unwrap_or_else(|| fail("--max-drop wants a fraction in [0, 1)"))
    });

    let grid = golden::open_loop_48();
    // One untimed warm-up pass touches every engine once; then repeated
    // timed passes fill a >=1s measurement window and the **best** pass
    // is reported — a single ~15ms pass would put scheduler jitter and
    // noisy CI neighbours inside the 20% allowance, while the best of a
    // 1s window measures what the hardware can actually do.
    let _ = sweeper.run(&grid);
    let mut cells = 0;
    let mut rounds: u64 = 0;
    let mut best_seconds = f64::INFINITY;
    let mut passes: u32 = 0;
    let window = Instant::now();
    while passes < 3 || window.elapsed().as_secs_f64() < 1.0 {
        let start = Instant::now();
        let report = sweeper.run(&grid);
        let seconds = start.elapsed().as_secs_f64().max(1e-9);
        cells = report.len();
        rounds = report.rows().iter().map(|r| r.summary.rounds).sum();
        best_seconds = best_seconds.min(seconds);
        passes += 1;
    }
    let rounds_per_sec = rounds as f64 / best_seconds;
    println!(
        "open-loop-48: {cells} cells, {rounds} rounds; best of {passes} passes \
         {best_seconds:.4}s on {} thread(s) -> {rounds_per_sec:.0} rounds/s",
        sweeper.threads()
    );

    let artifact = format!(
        "{{\"grid\":\"open-loop-48\",\"cells\":{cells},\"rounds\":{rounds},\
         \"passes\":{passes},\"seconds\":{best_seconds},\
         \"rounds_per_sec\":{rounds_per_sec}}}\n"
    );
    if let Some(path) = arg_value("--out") {
        if let Err(e) = std::fs::write(&path, &artifact) {
            fail(&format!("cannot write {path}: {e}"));
        }
        println!("wrote {path}");
    }

    if let Some(path) = arg_value("--reference") {
        let src = match std::fs::read_to_string(&path) {
            Ok(src) => src,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                println!(
                    "no reference at {path} — skipping the gate \
                     (record one with --out and commit it to arm the check)"
                );
                return;
            }
            Err(e) => fail(&format!("cannot read {path}: {e}")),
        };
        let reference = json_number_field(&src, "rounds_per_sec")
            .filter(|r| r.is_finite() && *r > 0.0)
            .unwrap_or_else(|| fail(&format!("{path} has no usable rounds_per_sec field")));
        let floor = reference * (1.0 - max_drop);
        if rounds_per_sec < floor {
            eprintln!(
                "THROUGHPUT REGRESSION: {rounds_per_sec:.0} rounds/s is below \
                 {floor:.0} (reference {reference:.0} minus {:.0}% allowance)",
                max_drop * 100.0
            );
            exit(1);
        }
        println!(
            "throughput ok: {rounds_per_sec:.0} rounds/s >= floor {floor:.0} \
             (reference {reference:.0}, {:.0}% allowance)",
            max_drop * 100.0
        );
    }
}
