//! Multi-process sweep coordinator: splits a grid into contiguous
//! `--cells` shards, fans them out across child `scenario_sweep
//! --stream` workers, validates and merges the framed row streams back
//! into one grid-ordered report, and retries a crashed worker's shard
//! once.
//!
//! Run with: `cargo run --release -p arsf-bench --bin sweep_drive`
//!
//! The grid is described by exactly the flags `scenario_sweep` takes
//! (`--fusers`, `--detectors`, `--schedules`, `--seeds`, `--history`,
//! `--suite`, `--fault`, `--strategy`, `--honest`, `--f`, `--rounds`,
//! the closed-loop family, or `--golden name` for a committed golden
//! grid) — the coordinator parses them once, forwards them verbatim to
//! every worker, and the workers' `shard` header frames must echo the
//! grid's content address back, so a coordinator/worker disagreement
//! about the grid is caught before the first row.
//!
//! Options:
//! * `--workers n` — number of shards (default 2); the grid is split
//!   into `n` balanced contiguous ranges run by one child process each
//! * `--shards a..b,b..c,…` — explicit shard plan instead of
//!   `--workers`: a contiguous ascending partition of the grid; empty
//!   ranges (`a..a`) model a worker with nothing to do
//! * `--worker-exe path` — the worker binary (default: the
//!   `scenario_sweep` sibling of this executable)
//! * `--worker-threads k` — threads per worker (default 1)
//! * `--csv path|-` — write the merged report as CSV (`-` = stdout);
//!   byte-identical to a single-process `scenario_sweep --csv` of the
//!   same grid
//! * `--no-header` — omit the CSV header line
//! * `--json-progress` — emit one `{"schema":1,…}` JSON line to stderr
//!   per completed shard (worker id, cells, rows, attempt, elapsed
//!   seconds, rows/s) instead of the text progress line
//! * `--baseline record|check` — rebuild a baseline from the merged
//!   rows and persist it content-addressed, or diff it against the
//!   stored baseline and exit 1 on drift: the same vetoes, tolerances
//!   (`--tol`), `--baseline-dir` and `--allow-*` overrides as
//!   `scenario_sweep --baseline`, via the shared
//!   `arsf_bench::baseline_ops`
//! * `--fault-worker w:k[:attempts]` — test instrumentation: make
//!   worker `w` crash after `k` rows on its first `attempts` attempts
//!   (default 1, so the retry succeeds; 2 exhausts the retry)
//!
//! Failure semantics: a crashed worker (nonzero exit or a stream that
//! ends without its `end` frame) is retried once with a fresh child;
//! a second crash fails the run. Deterministic protocol violations —
//! malformed frame, grid-address or range mismatch, out-of-range index,
//! duplicate or out-of-order row, seed mismatch, row-count or checksum
//! mismatch, frames after `end` — are not retried: the coordinator
//! exits 2 immediately with a diagnostic naming the violation. A
//! shard's rows are only merged after its `end` checksum verifies, so
//! no partial shard ever reaches the output.

use std::io::{BufRead, BufReader, Write};
use std::ops::Range;
use std::process::{exit, Child, Command, Stdio};
use std::time::Instant;

use arsf_bench::cli::{grid_args_for_forwarding, grid_from_args, grid_mode_requested};
use arsf_bench::drive::{baseline_from_rows, parse_shards, plan_shards, DriveError, ShardStream};
use arsf_bench::{arg_value, baseline_ops, has_flag};
use arsf_core::sweep::store::grid_address;
use arsf_core::sweep::{SweepGrid, SweepReport};

fn fail(message: &str) -> ! {
    eprintln!("sweep_drive: {message}");
    exit(2);
}

fn parsed<T>(result: Result<T, String>) -> T {
    result.unwrap_or_else(|e| fail(&e))
}

/// Test-only crash injection: worker index, rows before the crash, and
/// how many attempts crash (1 = first only, so the retry recovers).
struct FaultInjection {
    worker: usize,
    after_rows: usize,
    attempts: usize,
}

fn parse_fault_worker(spec: &str) -> Result<FaultInjection, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    if !(2..=3).contains(&parts.len()) {
        return Err(format!("expected worker:rows[:attempts], got `{spec}`"));
    }
    let worker = parts[0]
        .parse()
        .map_err(|_| format!("bad worker index `{}`", parts[0]))?;
    let after_rows = parts[1]
        .parse()
        .map_err(|_| format!("bad row count `{}`", parts[1]))?;
    let attempts = match parts.get(2) {
        None => 1,
        Some(token) => token
            .parse()
            .ok()
            .filter(|a| (1..=2).contains(a))
            .ok_or_else(|| format!("bad attempt count `{token}` (1 or 2)"))?,
    };
    Ok(FaultInjection {
        worker,
        after_rows,
        attempts,
    })
}

/// How one shard attempt failed: crashes retry once, protocol
/// violations are deterministic and fail the run immediately.
enum AttemptError {
    Crash(String),
    Protocol(String),
}

/// Spawns one worker process for a shard attempt.
fn spawn_worker(
    exe: &str,
    grid_args: &[String],
    worker_threads: usize,
    cells: &Range<usize>,
    fail_after: Option<usize>,
) -> Child {
    let mut command = Command::new(exe);
    command
        .args(grid_args)
        .arg("--stream")
        .arg("--threads")
        .arg(worker_threads.to_string())
        .arg("--cells")
        .arg(format!("{}..{}", cells.start, cells.end))
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit());
    if let Some(rows) = fail_after {
        command.arg("--stream-fail-after").arg(rows.to_string());
    }
    command
        .spawn()
        .unwrap_or_else(|e| fail(&format!("cannot spawn worker `{exe}`: {e}")))
}

/// Consumes one worker's framed stdout to completion: every frame
/// validated by [`ShardStream`], every row's derived seed cross-checked
/// against the coordinator's grid. Returns the shard's CSV lines in
/// cell order only after the `end` checksum verifies and the child
/// exits cleanly.
fn consume(
    mut child: Child,
    address: &str,
    cells: &Range<usize>,
    grid: &SweepGrid,
) -> Result<Vec<String>, AttemptError> {
    let stdout = child.stdout.take().expect("worker stdout is piped");
    let mut stream = ShardStream::new(address, cells.clone());
    let mut rows = Vec::with_capacity(cells.len());
    let mut protocol_error: Option<DriveError> = None;
    for line in BufReader::new(stdout).lines() {
        let line = match line {
            Ok(line) => line,
            Err(_) => break, // Pipe died; the exit status decides below.
        };
        match stream.accept(&line) {
            Ok(Some(row)) => {
                let expected = grid.scenario(row.index).seed;
                if row.seed != expected {
                    protocol_error = Some(DriveError::SeedMismatch {
                        index: row.index,
                        expected,
                        got: row.seed,
                    });
                    break;
                }
                rows.push(row.csv);
            }
            Ok(None) => {}
            Err(error) => {
                protocol_error = Some(error);
                break;
            }
        }
    }
    if let Some(error) = protocol_error {
        // A deterministic defect: kill the worker (it may still be
        // streaming) and fail without retrying.
        let _ = child.kill();
        let _ = child.wait();
        return match error {
            DriveError::Truncated { .. } => Err(AttemptError::Crash(error.to_string())),
            other => Err(AttemptError::Protocol(other.to_string())),
        };
    }
    let status = child
        .wait()
        .unwrap_or_else(|e| fail(&format!("waiting for worker: {e}")));
    if let Err(error) = stream.finish() {
        // EOF without the end frame: crash-shaped, whatever the exit
        // status claims.
        let detail = match status.code() {
            Some(code) => format!("{error} (worker exited with code {code})"),
            None => format!("{error} (worker killed by a signal)"),
        };
        return Err(AttemptError::Crash(detail));
    }
    if !status.success() {
        return Err(AttemptError::Crash(format!(
            "worker exited with {status} after a complete stream"
        )));
    }
    Ok(rows)
}

/// One completed-shard progress line on stderr (text or
/// `--json-progress`).
fn progress(
    json: bool,
    worker: usize,
    cells: &Range<usize>,
    rows: usize,
    attempt: usize,
    elapsed_s: f64,
) {
    let rows_per_s = if elapsed_s > 0.0 {
        rows as f64 / elapsed_s
    } else {
        0.0
    };
    if json {
        eprintln!(
            "{{\"schema\":1,\"worker\":{worker},\"cells\":\"{}..{}\",\"rows\":{rows},\
             \"attempt\":{attempt},\"elapsed_s\":{elapsed_s:.3},\"rows_per_s\":{rows_per_s:.1}}}",
            cells.start, cells.end
        );
    } else {
        eprintln!(
            "sweep_drive: worker {worker} cells {}..{}: {rows} rows in {elapsed_s:.2}s \
             ({rows_per_s:.1} rows/s, attempt {attempt})",
            cells.start, cells.end
        );
    }
}

fn main() {
    if !grid_mode_requested() {
        fail("needs grid mode: pass at least one axis flag or --golden name");
    }
    let grid = parsed(grid_from_args());
    if let Err(e) = grid.base().validate() {
        fail(&format!("invalid scenario: {e}"));
    }
    let address = grid_address(&grid);

    let shards = match arg_value("--shards") {
        Some(spec) => parsed(parse_shards(&spec, grid.len())),
        None => {
            let workers = match arg_value("--workers").map(|s| s.parse::<usize>()) {
                None => 2,
                Some(Ok(workers)) if workers > 0 => workers,
                Some(_) => fail("--workers wants a positive integer"),
            };
            plan_shards(grid.len(), workers)
        }
    };
    let worker_threads = match arg_value("--worker-threads").map(|s| s.parse::<usize>()) {
        None => 1,
        Some(Ok(threads)) if threads > 0 => threads,
        Some(_) => fail("--worker-threads wants a positive integer"),
    };
    let worker_exe = arg_value("--worker-exe").unwrap_or_else(|| {
        let mut path = std::env::current_exe()
            .unwrap_or_else(|e| fail(&format!("cannot locate this executable: {e}")));
        path.set_file_name(format!("scenario_sweep{}", std::env::consts::EXE_SUFFIX));
        path.to_string_lossy().into_owned()
    });
    let fault = arg_value("--fault-worker")
        .map(|spec| parsed(parse_fault_worker(&spec).map_err(|e| format!("--fault-worker: {e}"))));
    let baseline_mode = arg_value("--baseline");
    if let Some(mode) = &baseline_mode {
        if !matches!(mode.as_str(), "record" | "check") {
            fail("--baseline wants `record` or `check`");
        }
    }
    let json_progress = has_flag("--json-progress");
    let grid_args = grid_args_for_forwarding();

    // Injected crash rows for one worker's attempt, per the test flag.
    let inject = |worker: usize, attempt: usize| -> Option<usize> {
        fault
            .as_ref()
            .filter(|f| f.worker == worker && attempt <= f.attempts)
            .map(|f| f.after_rows)
    };

    // Spawn every non-empty shard's worker up front so they run
    // concurrently; streams are consumed (and verified) in shard order,
    // with pipe backpressure pacing the not-yet-consumed workers.
    let mut children: Vec<Option<(Child, Instant)>> = shards
        .iter()
        .enumerate()
        .map(|(worker, cells)| {
            if cells.is_empty() {
                return None;
            }
            let child = spawn_worker(
                &worker_exe,
                &grid_args,
                worker_threads,
                cells,
                inject(worker, 1),
            );
            Some((child, Instant::now()))
        })
        .collect();

    let mut merged: Vec<String> = Vec::with_capacity(grid.len());
    for (worker, cells) in shards.iter().enumerate() {
        if cells.is_empty() {
            progress(json_progress, worker, cells, 0, 1, 0.0);
            continue;
        }
        debug_assert_eq!(merged.len(), cells.start, "shards merge in grid order");
        let (child, started) = children[worker].take().expect("non-empty shard spawned");
        let mut attempt = 1;
        let rows = match consume(child, &address, cells, &grid) {
            Ok(rows) => rows,
            Err(AttemptError::Protocol(message)) => fail(&format!(
                "worker {worker} (cells {}..{}): {message}",
                cells.start, cells.end
            )),
            Err(AttemptError::Crash(message)) => {
                eprintln!(
                    "sweep_drive: worker {worker} (cells {}..{}) attempt 1 failed: \
                     {message}; retrying once",
                    cells.start, cells.end
                );
                attempt = 2;
                let retry = spawn_worker(
                    &worker_exe,
                    &grid_args,
                    worker_threads,
                    cells,
                    inject(worker, 2),
                );
                match consume(retry, &address, cells, &grid) {
                    Ok(rows) => rows,
                    Err(AttemptError::Protocol(message)) => fail(&format!(
                        "worker {worker} (cells {}..{}): {message}",
                        cells.start, cells.end
                    )),
                    Err(AttemptError::Crash(message)) => fail(&format!(
                        "worker {worker} (cells {}..{}) failed twice: {message}",
                        cells.start, cells.end
                    )),
                }
            }
        };
        let elapsed_s = started.elapsed().as_secs_f64();
        progress(json_progress, worker, cells, rows.len(), attempt, elapsed_s);
        merged.extend(rows);
    }
    assert_eq!(merged.len(), grid.len(), "the shard plan covers the grid");
    eprintln!(
        "sweep_drive: merged {} rows from {} shard(s) of grid {address}",
        merged.len(),
        shards.len()
    );

    if let Some(target) = arg_value("--csv") {
        let mut payload = String::new();
        if !has_flag("--no-header") {
            payload.push_str(SweepReport::csv_header());
        }
        for line in &merged {
            payload.push_str(line);
            payload.push('\n');
        }
        if target == "-" {
            let stdout = std::io::stdout();
            let mut out = stdout.lock();
            out.write_all(payload.as_bytes())
                .unwrap_or_else(|e| fail(&format!("writing stdout: {e}")));
        } else if let Err(e) = std::fs::write(&target, &payload) {
            fail(&format!("cannot write {target}: {e}"));
        } else {
            eprintln!("sweep_drive: wrote {target}");
        }
    }

    if let Some(mode) = &baseline_mode {
        let dir = arg_value("--baseline-dir").unwrap_or_else(|| "baselines".to_string());
        let current = parsed(baseline_from_rows(&grid, &merged));
        match mode.as_str() {
            "record" => match baseline_ops::record(&grid, &current, &dir) {
                Ok(path) => eprintln!("sweep_drive: recorded baseline {}", path.display()),
                Err(e) => fail(&e),
            },
            _ => {
                let (rendered, drifted) = parsed(baseline_ops::check(&grid, &current, &dir));
                print!("{rendered}");
                if drifted {
                    exit(1);
                }
                eprintln!("sweep_drive: baseline check clean for grid {address}");
            }
        }
    }
}
