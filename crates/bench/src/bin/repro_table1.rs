//! Reproduces **Table I**: expected fusion-interval width under the
//! Ascending vs Descending schedules for the paper's eight setups.
//!
//! The expectation is computed exactly by enumerating every grid
//! placement of every measurement (the paper's own methodology,
//! footnote 5) with an expectimax attacker who adversarially also picks
//! *which* sensors to compromise per schedule. A Monte Carlo
//! cross-check (`sim asc` / `sim desc`) additionally runs every setup
//! as a streaming scenario — the paper's eight setups × two schedules
//! as one 16-cell sweep sharded across worker threads through the
//! `arsf_core::sweep` grid engine.
//!
//! Run with: `cargo run --release -p arsf-bench --bin repro_table1`
//!
//! Options: `--step <s>` grid step (default 1.0; the paper's integer
//! lengths suggest an integer grid), `--quick` (step 2.0 and fewer
//! simulated rounds, for smoke runs), `--one-sided` (model the weaker
//! fixed-side attacker whose magnitudes track the paper's reported
//! values), `--mc-rounds <n>` simulated rounds per cell,
//! `--threads <k>` sweep worker threads.

use arsf_attack::expectimax::AttackerStyle;
use arsf_bench::{arg_value, has_flag, TextTable};
use arsf_core::scenario::{AttackerSpec, Scenario, StrategySpec, SuiteSpec, TruthSpec};
use arsf_core::sweep::ParallelSweeper;
use arsf_core::DetectionMode;
use arsf_schedule::SchedulePolicy;
use arsf_sim::table1::{
    evaluate_schedule_styled, evaluate_setup, most_precise_set, paper_setups, Table1Setup,
};

/// Builds the Monte Carlo twin of one exact Table I evaluation: the
/// setup's widths as a uniform suite, the `fa` most precise sensors
/// compromised running the streaming analogue of the exact attacker
/// style, no detection, truth pinned at 0.
fn simulation_scenario(
    setup: &Table1Setup,
    schedule: SchedulePolicy,
    strategy: StrategySpec,
    rounds: u64,
) -> Scenario {
    Scenario::new(
        format!("table1-sim-{}-{}", setup.label(), schedule.name()),
        SuiteSpec::Widths(setup.widths.clone()),
    )
    .with_f(setup.f())
    .with_schedule(schedule)
    .with_attacker(AttackerSpec::Fixed {
        sensors: most_precise_set(setup),
        strategy,
    })
    .with_detector(DetectionMode::Off)
    .with_truth(TruthSpec::Constant(0.0))
    .with_rounds(rounds)
}

fn main() {
    let quick = has_flag("--quick");
    let step: f64 = if quick {
        2.0
    } else {
        arg_value("--step")
            .and_then(|s| s.parse().ok())
            .unwrap_or(1.0)
    };
    let mc_rounds: u64 = arg_value("--mc-rounds")
        .and_then(|s| s.parse().ok())
        .unwrap_or(if quick { 500 } else { 4000 });
    let sweeper = match arg_value("--threads").map(|s| s.parse::<usize>()) {
        None => ParallelSweeper::auto(),
        Some(Ok(threads)) if threads > 0 => ParallelSweeper::new(threads),
        Some(_) => {
            eprintln!("repro_table1: --threads wants a positive integer");
            std::process::exit(2);
        }
    };

    println!("Table I: comparison of two sensor communication schedules");
    println!("(E|S_N,f| by exhaustive grid enumeration, step {step}; f = ⌈n/2⌉-1;");
    println!("the attacker picks her compromised sensors per schedule;");
    println!(
        "sim columns: {mc_rounds}-round streaming scenarios, {} sweep thread(s))\n",
        sweeper.threads()
    );

    // Paper's reported values, for side-by-side comparison.
    let paper = [
        (10.77, 13.58),
        (9.43, 10.16),
        (7.66, 8.75),
        (6.32, 6.53),
        (5.4, 5.57),
        (6.33, 7.03),
        (5.22, 5.31),
        (6.87, 7.74),
    ];

    let setups = paper_setups();

    // The streaming analogue of the attacker style the exact columns use:
    // stealthy width-maximiser for Optimal, fixed-high-side greedy for
    // OneSidedHigh — so the sim columns cross-check the same adversary.
    let sim_strategy = if has_flag("--one-sided") {
        StrategySpec::GreedyHigh
    } else {
        StrategySpec::PhantomOptimal
    };

    // The Monte Carlo cross-check first: one flat scenario list (setup ×
    // schedule, schedule fastest) through the parallel sweep engine.
    let scenarios: Vec<Scenario> = setups
        .iter()
        .flat_map(|setup| {
            [SchedulePolicy::Ascending, SchedulePolicy::Descending]
                .into_iter()
                .map(|schedule| simulation_scenario(setup, schedule, sim_strategy, mc_rounds))
        })
        .collect();
    let simulated = sweeper.run_scenarios(&scenarios);

    let mut table = TextTable::new(vec![
        "setup".into(),
        "honest".into(),
        "asc*".into(),
        "desc*".into(),
        "asc (adv)".into(),
        "desc (adv)".into(),
        "sim asc".into(),
        "sim desc".into(),
        "paper asc".into(),
        "paper desc".into(),
    ]);

    let style = if has_flag("--one-sided") {
        AttackerStyle::OneSidedHigh
    } else {
        AttackerStyle::Optimal
    };
    if style == AttackerStyle::OneSidedHigh {
        println!("attacker model: one-sided (fixed high side), cf. EXPERIMENTS.md\n");
    }

    let mut all_gaps_nonnegative = true;
    for (i, (setup, (paper_asc, paper_desc))) in setups.iter().zip(paper).enumerate() {
        let row = evaluate_setup(setup, step);
        all_gaps_nonnegative &= row.gap() >= -1e-9;
        // The paper-faithful variant: the fa most precise sensors are the
        // compromised ones (Theorem 4's profitable target).
        let precise = most_precise_set(setup);
        let asc_precise =
            evaluate_schedule_styled(setup, &SchedulePolicy::Ascending, &precise, step, style);
        let desc_precise =
            evaluate_schedule_styled(setup, &SchedulePolicy::Descending, &precise, step, style);
        all_gaps_nonnegative &= desc_precise >= asc_precise - 1e-9;
        let sim_asc = simulated.rows()[2 * i].summary.widths.mean();
        let sim_desc = simulated.rows()[2 * i + 1].summary.widths.mean();
        table.row(vec![
            setup.label(),
            format!("{:.2}", row.honest),
            format!("{asc_precise:.2}"),
            format!("{desc_precise:.2}"),
            format!("{:.2}", row.ascending),
            format!("{:.2}", row.descending),
            format!("{sim_asc:.2}"),
            format!("{sim_desc:.2}"),
            format!("{paper_asc:.2}"),
            format!("{paper_desc:.2}"),
        ]);
        eprintln!("finished {}", setup.label());
    }

    println!("{}", table.render());
    println!("asc*/desc*: the fa most precise sensors are compromised (the");
    println!("paper's implicit choice, cf. Theorem 4); (adv): the attacker also");
    println!("chooses which sensors to compromise per schedule; sim: streaming");
    println!("Monte Carlo of the same setups through the parallel sweep grid.\n");
    assert!(
        all_gaps_nonnegative,
        "the paper's invariant failed: descending must never beat ascending"
    );
    println!("Shape check (paper): the Descending expectation is never smaller");
    println!("than Ascending, and the gap widens when interval sizes differ a lot.");
}
