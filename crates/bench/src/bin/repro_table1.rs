//! Reproduces **Table I**: expected fusion-interval width under the
//! Ascending vs Descending schedules for the paper's eight setups.
//!
//! The expectation is computed exactly by enumerating every grid
//! placement of every measurement (the paper's own methodology,
//! footnote 5) with an expectimax attacker who adversarially also picks
//! *which* sensors to compromise per schedule.
//!
//! Run with: `cargo run --release -p arsf-bench --bin repro_table1`
//!
//! Options: `--step <s>` grid step (default 1.0; the paper's integer
//! lengths suggest an integer grid), `--quick` (step 2.0, for smoke
//! runs), `--one-sided` (model the weaker fixed-side attacker whose
//! magnitudes track the paper's reported values).

use arsf_attack::expectimax::AttackerStyle;
use arsf_bench::{arg_value, has_flag, TextTable};
use arsf_schedule::SchedulePolicy;
use arsf_sim::table1::{evaluate_schedule_styled, evaluate_setup, most_precise_set, paper_setups};

fn main() {
    let step: f64 = if has_flag("--quick") {
        2.0
    } else {
        arg_value("--step")
            .and_then(|s| s.parse().ok())
            .unwrap_or(1.0)
    };

    println!("Table I: comparison of two sensor communication schedules");
    println!("(E|S_N,f| by exhaustive grid enumeration, step {step}; f = ⌈n/2⌉-1;");
    println!("the attacker picks her compromised sensors per schedule)\n");

    // Paper's reported values, for side-by-side comparison.
    let paper = [
        (10.77, 13.58),
        (9.43, 10.16),
        (7.66, 8.75),
        (6.32, 6.53),
        (5.4, 5.57),
        (6.33, 7.03),
        (5.22, 5.31),
        (6.87, 7.74),
    ];

    let mut table = TextTable::new(vec![
        "setup".into(),
        "honest".into(),
        "asc*".into(),
        "desc*".into(),
        "asc (adv)".into(),
        "desc (adv)".into(),
        "paper asc".into(),
        "paper desc".into(),
    ]);

    let style = if has_flag("--one-sided") {
        AttackerStyle::OneSidedHigh
    } else {
        AttackerStyle::Optimal
    };
    if style == AttackerStyle::OneSidedHigh {
        println!("attacker model: one-sided (fixed high side), cf. EXPERIMENTS.md\n");
    }

    let mut all_gaps_nonnegative = true;
    for (setup, (paper_asc, paper_desc)) in paper_setups().iter().zip(paper) {
        let row = evaluate_setup(setup, step);
        all_gaps_nonnegative &= row.gap() >= -1e-9;
        // The paper-faithful variant: the fa most precise sensors are the
        // compromised ones (Theorem 4's profitable target).
        let precise = most_precise_set(setup);
        let asc_precise =
            evaluate_schedule_styled(setup, &SchedulePolicy::Ascending, &precise, step, style);
        let desc_precise =
            evaluate_schedule_styled(setup, &SchedulePolicy::Descending, &precise, step, style);
        all_gaps_nonnegative &= desc_precise >= asc_precise - 1e-9;
        table.row(vec![
            setup.label(),
            format!("{:.2}", row.honest),
            format!("{asc_precise:.2}"),
            format!("{desc_precise:.2}"),
            format!("{:.2}", row.ascending),
            format!("{:.2}", row.descending),
            format!("{paper_asc:.2}"),
            format!("{paper_desc:.2}"),
        ]);
        eprintln!("finished {}", setup.label());
    }

    println!("{}", table.render());
    println!("asc*/desc*: the fa most precise sensors are compromised (the");
    println!("paper's implicit choice, cf. Theorem 4); (adv): the attacker also");
    println!("chooses which sensors to compromise per schedule.\n");
    assert!(
        all_gaps_nonnegative,
        "the paper's invariant failed: descending must never beat ascending"
    );
    println!("Shape check (paper): the Descending expectation is never smaller");
    println!("than Ascending, and the gap widens when interval sizes differ a lot.");
}
