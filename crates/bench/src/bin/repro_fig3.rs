//! Reproduces **Figure 3**: the two sufficient conditions of Theorem 1
//! under which an attacker who has seen only *some* correct intervals
//! still has an optimal policy — her committed forgeries achieve the
//! full-knowledge optimum for **every** placement of the unseen interval.
//!
//! Run with: `cargo run -p arsf-bench --bin repro_fig3`

use arsf_attack::full_knowledge::optimal_attack;
use arsf_fusion::marzullo::fuse;
use arsf_interval::render::{Diagram, RowStyle};
use arsf_interval::Interval;

fn iv(lo: f64, hi: f64) -> Interval<f64> {
    Interval::new(lo, hi).expect("static figure coordinates")
}

/// Checks one Theorem 1 scenario: commit `forged` after seeing `seen`;
/// for every placement of the unseen interval (width `unseen_w`, must
/// contain the truth 0), the committed fusion equals the hindsight
/// optimum. Returns the (min, max) committed fusion width across
/// placements.
fn verify_committed_is_optimal(
    seen: &[Interval<f64>],
    forged: &[Interval<f64>],
    unseen_w: f64,
    f: usize,
) -> (f64, f64) {
    let mut min_w = f64::INFINITY;
    let mut max_w = f64::NEG_INFINITY;
    let steps = 20;
    for i in 0..=steps {
        // The unseen correct interval contains the truth 0.
        let lo = -unseen_w + unseen_w * i as f64 / steps as f64;
        let unseen = iv(lo, lo + unseen_w);
        let mut all: Vec<Interval<f64>> = seen.to_vec();
        all.push(unseen);
        all.extend(forged.iter().copied());
        let achieved = fuse(&all, f).expect("configuration fuses").width();

        let mut correct: Vec<Interval<f64>> = seen.to_vec();
        correct.push(unseen);
        let widths: Vec<f64> = forged.iter().map(|a| a.width()).collect();
        let hindsight = optimal_attack(&correct, &widths, f)
            .expect("bounded attack")
            .width();
        assert!(
            (achieved - hindsight).abs() < 1e-9,
            "committed {achieved} vs hindsight {hindsight} for unseen {unseen}"
        );
        min_w = min_w.min(achieved);
        max_w = max_w.max(achieved);
    }
    (min_w, max_w)
}

fn main() {
    println!("Figure 3: Theorem 1's sufficient conditions for an optimal");
    println!("attack policy under partial information (n = 5, f = 2, fa = 2)\n");

    // Case 1 (Fig. 3a): both seen correct intervals coincide and the
    // unseen one is small enough. Theorem 1's policy: every forged
    // interval extends (|m_min| - |S|)/2 = (8-2)/2 = 3 on *both* sides of
    // the seen block, so it contains every possible unseen interval
    // (width <= 3, overlapping S). The fusion then equals the hull of all
    // correct intervals — the maximum any attack can reach.
    let seen_a = [iv(-1.0, 1.0), iv(-1.0, 1.0)];
    let forged_a = [iv(-4.0, 4.0), iv(-4.0, 4.0)];
    let (min_a, max_a) = verify_committed_is_optimal(&seen_a, &forged_a, 3.0, 2);
    let mut d1 = Diagram::new();
    d1.row("s1", seen_a[0], RowStyle::Correct);
    d1.row("s2", seen_a[1], RowStyle::Correct);
    d1.row("s3 (unseen)", iv(-3.0, 0.0), RowStyle::Correct);
    d1.row("a1", forged_a[0], RowStyle::Attacked);
    d1.row("a2", forged_a[1], RowStyle::Attacked);
    d1.separator();
    d1.row("S", iv(-3.0, 1.0), RowStyle::Fusion);
    println!("case 1 (coinciding seen intervals, both-sides attack):");
    println!("{}", d1.render(56));
    println!("  fusion width {min_a:.1}..{max_a:.1} depending on s3 — always equal to");
    println!("  the hindsight optimum (the hull of all correct intervals)\n");

    // Case 2 (Fig. 3b): the forged intervals are wide enough to contain
    // both the extreme seen bounds l_(n-f-fa) and u_(n-f-fa); the unseen
    // interval is too small to move those extremes.
    // Seen: [-4, 1] and [-1, 4]; l_1 = -4, u_1 = 4; |m_min| = 8 >= 8;
    // unseen width <= min(-1-(-4), 4-1) = 3.
    let seen_b = [iv(-4.0, 1.0), iv(-1.0, 4.0)];
    let forged_b = [iv(-4.0, 4.0), iv(-4.0, 4.0)];
    let (min_b, max_b) = verify_committed_is_optimal(&seen_b, &forged_b, 3.0, 2);
    let mut d2 = Diagram::new();
    d2.row("s1", seen_b[0], RowStyle::Correct);
    d2.row("s2", seen_b[1], RowStyle::Correct);
    d2.row("a1", forged_b[0], RowStyle::Attacked);
    d2.row("a2", forged_b[1], RowStyle::Attacked);
    d2.separator();
    d2.row("S", iv(-4.0, 4.0), RowStyle::Fusion);
    println!("case 2 (forgeries spanning the seen extremes):");
    println!("{}", d2.render(56));
    assert_eq!(min_b, max_b, "case 2 pins the fusion exactly");
    println!("  fusion width {max_b:.1} — identical for every unseen placement\n");

    println!("Both committed attacks achieve the hindsight optimum without");
    println!("waiting for the unseen interval — exactly Theorem 1's claim.");
}
