//! Reproduces **Table II**: case-study results for each of the three
//! schedules — the percentage of rounds in which the fusion interval's
//! upper bound exceeded 10.5 mph or its lower bound dropped below
//! 9.5 mph, for a LandShark holding 10 mph with one uniformly-random
//! sensor compromised per round.
//!
//! Since the closed-loop sweep redesign the run goes through the
//! deterministic scenario grid (3 schedules × `--replicates` Monte Carlo
//! seeds), sharded across `--threads` workers with the report
//! byte-identical to a serial run.
//!
//! Run with: `cargo run --release -p arsf-bench --bin repro_table2`
//!
//! Options: `--rounds <n>` (default 20000), `--seed <s>`,
//! `--replicates <k>` (default 1), `--threads <t>` (default: available
//! parallelism), `--history <max_rate>` (run the dynamics-aware
//! historical-fusion defence at this rate bound instead of the paper's
//! memoryless Marzullo).

use arsf_bench::{arg_value, TextTable};
use arsf_sim::table2::{run_all, Table2Config};

fn main() {
    let mut config = Table2Config {
        threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
        ..Table2Config::default()
    };
    if let Some(rounds) = arg_value("--rounds").and_then(|s| s.parse().ok()) {
        config.rounds = rounds;
    }
    if let Some(seed) = arg_value("--seed").and_then(|s| s.parse().ok()) {
        config.seed = seed;
    }
    if let Some(replicates) = arg_value("--replicates").and_then(|s| s.parse().ok()) {
        config.replicates = replicates;
    }
    if let Some(threads) = arg_value("--threads").and_then(|s| s.parse().ok()) {
        config.threads = threads;
    }
    if let Some(spec) = arg_value("--history") {
        // Unlike the other numeric flags, a swallowed parse error here
        // would silently run the *undefended* table (and scenario_sweep's
        // --history takes a comma list, an easy syntax to carry over) —
        // so an invalid value fails loudly.
        match spec
            .parse::<f64>()
            .ok()
            .filter(|r| r.is_finite() && *r > 0.0)
        {
            Some(rate) => config.history = Some(rate),
            None => {
                eprintln!(
                    "repro_table2: --history wants one positive rate bound in mph/s, got `{spec}`"
                );
                std::process::exit(2);
            }
        }
    }

    println!("Table II: case study results for each of the three schedules");
    if let Some(rate) = config.history {
        println!("(historical-fusion defence, |dv/dt| <= {rate} mph/s)");
    }
    println!(
        "(v = {} mph, envelope [{}, {}] mph, {} rounds per schedule,",
        config.target,
        config.target - config.delta_down,
        config.target + config.delta_up,
        config.rounds
    );
    println!(
        "one uniformly-random compromised sensor per round; {} replicate(s)",
        config.replicates.max(1)
    );
    println!(
        "swept through the scenario grid on {} worker thread(s))\n",
        config.threads.max(1)
    );

    let rows = run_all(&config);

    // Paper's reported values.
    let paper = [(0.0, 0.0), (17.42, 17.65), (5.72, 5.97)];

    let mut table = TextTable::new(vec![
        "".into(),
        "ascending".into(),
        "descending".into(),
        "random".into(),
        "paper (A/D/R)".into(),
    ]);
    table.row(vec![
        "more than 10.5 mph".into(),
        format!("{:.2}%", rows[0].above * 100.0),
        format!("{:.2}%", rows[1].above * 100.0),
        format!("{:.2}%", rows[2].above * 100.0),
        format!("{}% / {}% / {}%", paper[0].0, paper[1].0, paper[2].0),
    ]);
    table.row(vec![
        "less than 9.5 mph".into(),
        format!("{:.2}%", rows[0].below * 100.0),
        format!("{:.2}%", rows[1].below * 100.0),
        format!("{:.2}%", rows[2].below * 100.0),
        format!("{}% / {}% / {}%", paper[0].1, paper[1].1, paper[2].1),
    ]);
    println!("{}", table.render());

    // Shape checks from the paper.
    assert_eq!(rows[0].above, 0.0, "ascending must show 0% above");
    assert_eq!(rows[0].below, 0.0, "ascending must show 0% below");
    let total = |i: usize| rows[i].above + rows[i].below;
    assert!(total(2) > 0.0, "random must violate sometimes");
    assert!(
        total(1) > total(2),
        "descending must violate more than random"
    );
    println!("Shape check (paper): Ascending 0%, Random in between, Descending worst.");
}
