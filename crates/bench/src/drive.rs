//! The coordinator/worker protocol behind distributed sweeps: framed
//! line-delimited row streams, shard planning, stream validation, and
//! CSV-to-baseline reconstruction.
//!
//! A `sweep_drive` coordinator splits a grid into contiguous `--cells`
//! ranges and fans them out across child `scenario_sweep --stream`
//! processes. Each worker writes a framed stream to stdout:
//!
//! ```text
//! shard arsf-sweep-stream-v1 grid=<16-hex address> cells=<a>..<b>
//! row <grid index> <derived seed> <csv line>
//! …
//! end rows=<count> checksum=<16-hex FNV-1a over the csv lines>
//! ```
//!
//! The header pins the protocol version, the grid's content address
//! (from [`arsf_core::sweep::store`]) and the claimed range, so a
//! worker built from different axes — or a different binary version —
//! is rejected before its first row. Row indices must arrive strictly
//! in range order; the terminal checksum covers every emitted CSV line
//! (`line + '\n'`), so truncation, reordering, duplication and silent
//! corruption are all distinguishable, named failures rather than a
//! quietly wrong merged report.

use std::fmt;
use std::ops::Range;

use arsf_core::sweep::store::{canonical_definition, content_address, Baseline, CellRecord};
use arsf_core::sweep::SweepGrid;

/// The protocol version tag every shard header carries. Bump it when a
/// frame's shape changes; a coordinator refuses a worker with any other
/// tag.
pub const PROTOCOL_VERSION: &str = "arsf-sweep-stream-v1";

/// Incremental FNV-1a 64 — the same function
/// [`content_address`] applies to whole strings, usable over a stream
/// of chunks. `Fnv64::default().update(x).finish()` equals
/// `content_address(x)`'s underlying hash for any byte split.
#[derive(Debug, Clone)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }
}

impl Fnv64 {
    /// Feeds bytes into the hash.
    pub fn update(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// The current digest as 16 lowercase hex digits.
    pub fn finish(&self) -> String {
        format!("{:016x}", self.0)
    }
}

/// One protocol frame (one stdout line).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// The stream opener: protocol version, grid content address, and
    /// the half-open cell range this worker claims.
    Header {
        /// The grid's content address (16 hex digits).
        grid: String,
        /// The claimed cell range.
        cells: Range<usize>,
    },
    /// One finished cell.
    Row {
        /// The cell's grid-order index.
        index: usize,
        /// The derived per-cell seed actually used (a cheap cross-check
        /// that worker and coordinator agree on the grid).
        seed: u64,
        /// The cell's CSV line (no trailing newline).
        csv: String,
    },
    /// The stream terminator: declared row count and the FNV-1a 64
    /// digest over every emitted `csv + '\n'`.
    End {
        /// How many rows the worker emitted.
        rows: usize,
        /// 16-hex FNV-1a digest of the shard's CSV body.
        checksum: String,
    },
}

impl Frame {
    /// Renders the frame as its wire line (no trailing newline).
    pub fn render(&self) -> String {
        match self {
            Frame::Header { grid, cells } => format!(
                "shard {PROTOCOL_VERSION} grid={grid} cells={}..{}",
                cells.start, cells.end
            ),
            Frame::Row { index, seed, csv } => format!("row {index} {seed} {csv}"),
            Frame::End { rows, checksum } => format!("end rows={rows} checksum={checksum}"),
        }
    }

    /// Parses one wire line.
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed token.
    pub fn parse(line: &str) -> Result<Frame, String> {
        let (kind, rest) = line.split_once(' ').unwrap_or((line, ""));
        match kind {
            "shard" => {
                let mut version = None;
                let mut grid = None;
                let mut cells = None;
                for (i, token) in rest.split(' ').enumerate() {
                    if i == 0 {
                        version = Some(token.to_string());
                    } else if let Some(value) = token.strip_prefix("grid=") {
                        grid = Some(value.to_string());
                    } else if let Some(value) = token.strip_prefix("cells=") {
                        let (a, b) = value
                            .split_once("..")
                            .ok_or_else(|| format!("bad cells range `{value}`"))?;
                        let start: usize = a
                            .parse()
                            .map_err(|_| format!("bad cells range `{value}`"))?;
                        let end: usize = b
                            .parse()
                            .map_err(|_| format!("bad cells range `{value}`"))?;
                        cells = Some(start..end);
                    } else {
                        return Err(format!("unknown header token `{token}`"));
                    }
                }
                let version = version.ok_or("header missing protocol version")?;
                if version != PROTOCOL_VERSION {
                    return Err(format!(
                        "protocol version mismatch: worker speaks `{version}`, \
                         coordinator speaks `{PROTOCOL_VERSION}`"
                    ));
                }
                Ok(Frame::Header {
                    grid: grid.ok_or("header missing grid=")?,
                    cells: cells.ok_or("header missing cells=")?,
                })
            }
            "row" => {
                let mut parts = rest.splitn(3, ' ');
                let index = parts
                    .next()
                    .filter(|t| !t.is_empty())
                    .ok_or("row frame missing index")?;
                let index: usize = index
                    .parse()
                    .map_err(|_| format!("bad row index `{index}`"))?;
                let seed = parts.next().ok_or("row frame missing seed")?;
                let seed: u64 = seed.parse().map_err(|_| format!("bad row seed `{seed}`"))?;
                let csv = parts.next().ok_or("row frame missing csv payload")?;
                Ok(Frame::Row {
                    index,
                    seed,
                    csv: csv.to_string(),
                })
            }
            "end" => {
                let mut rows = None;
                let mut checksum = None;
                for token in rest.split(' ') {
                    if let Some(value) = token.strip_prefix("rows=") {
                        rows = Some(
                            value
                                .parse()
                                .map_err(|_| format!("bad end row count `{value}`"))?,
                        );
                    } else if let Some(value) = token.strip_prefix("checksum=") {
                        checksum = Some(value.to_string());
                    } else {
                        return Err(format!("unknown end token `{token}`"));
                    }
                }
                Ok(Frame::End {
                    rows: rows.ok_or("end frame missing rows=")?,
                    checksum: checksum.ok_or("end frame missing checksum=")?,
                })
            }
            other => Err(format!("unknown frame kind `{other}`")),
        }
    }
}

/// A named protocol violation in one worker's stream. Every variant is
/// a deterministic defect — retrying the shard would reproduce it — so
/// the coordinator fails fast with the diagnostic instead of retrying.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DriveError {
    /// A line that does not parse as any frame.
    Malformed(String),
    /// The first line was not a header frame.
    MissingHeader,
    /// The header's grid address does not match the coordinator's.
    GridMismatch {
        /// The coordinator's grid address.
        expected: String,
        /// The worker's claimed address.
        got: String,
    },
    /// The header claims a different cell range than assigned.
    RangeMismatch {
        /// The assigned range.
        expected: Range<usize>,
        /// The claimed range.
        got: Range<usize>,
    },
    /// A row index outside the shard's assigned range.
    OutOfRange {
        /// The offending index.
        index: usize,
        /// The assigned range.
        cells: Range<usize>,
    },
    /// A row index emitted twice.
    Duplicate(usize),
    /// A row index ahead of the expected in-order position.
    OutOfOrder {
        /// The expected next index.
        expected: usize,
        /// The index that arrived.
        got: usize,
    },
    /// A row's derived seed disagrees with the coordinator's grid.
    SeedMismatch {
        /// The row's grid index.
        index: usize,
        /// The coordinator's derived seed.
        expected: u64,
        /// The worker's claimed seed.
        got: u64,
    },
    /// The end frame's declared row count disagrees with what arrived.
    RowCountMismatch {
        /// The declared count.
        declared: usize,
        /// The received count.
        received: usize,
    },
    /// The end frame's checksum disagrees with the received rows.
    ChecksumMismatch {
        /// The declared digest.
        declared: String,
        /// The digest of the received rows.
        computed: String,
    },
    /// A frame arrived after the end frame.
    TrailingFrame(String),
    /// The stream ended (or the next shard's work began) before the end
    /// frame — rows may be missing.
    Truncated {
        /// Rows received before the stream stopped.
        received: usize,
        /// Rows the shard was assigned.
        expected: usize,
    },
}

impl fmt::Display for DriveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DriveError::Malformed(detail) => write!(f, "malformed frame: {detail}"),
            DriveError::MissingHeader => {
                write!(f, "stream did not start with a `shard` header frame")
            }
            DriveError::GridMismatch { expected, got } => write!(
                f,
                "grid address mismatch: worker ran grid {got}, coordinator drives {expected}"
            ),
            DriveError::RangeMismatch { expected, got } => write!(
                f,
                "cell range mismatch: worker claims {}..{}, assigned {}..{}",
                got.start, got.end, expected.start, expected.end
            ),
            DriveError::OutOfRange { index, cells } => write!(
                f,
                "row index {index} is outside the shard's cells {}..{}",
                cells.start, cells.end
            ),
            DriveError::Duplicate(index) => write!(f, "duplicate row for cell {index}"),
            DriveError::OutOfOrder { expected, got } => write!(
                f,
                "out-of-order row: expected cell {expected}, got cell {got}"
            ),
            DriveError::SeedMismatch {
                index,
                expected,
                got,
            } => write!(
                f,
                "seed mismatch on cell {index}: worker derived {got}, coordinator \
                 derived {expected} — the two sides disagree about the grid"
            ),
            DriveError::RowCountMismatch { declared, received } => write!(
                f,
                "row count mismatch: end frame declares {declared} rows, received {received}"
            ),
            DriveError::ChecksumMismatch { declared, computed } => write!(
                f,
                "shard checksum mismatch: end frame declares {declared}, received rows \
                 hash to {computed}"
            ),
            DriveError::TrailingFrame(line) => {
                write!(f, "frame after the end frame: `{line}`")
            }
            DriveError::Truncated { received, expected } => write!(
                f,
                "truncated shard stream: received {received} of {expected} rows with no \
                 end frame"
            ),
        }
    }
}

/// A validated row from a worker stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRow {
    /// The cell's grid-order index.
    pub index: usize,
    /// The worker's derived seed (already format-checked, not yet
    /// compared against the coordinator's grid — the coordinator does
    /// that, since only it holds the grid).
    pub seed: u64,
    /// The cell's CSV line.
    pub csv: String,
}

/// Incremental validator for one worker's framed stdout: feed it lines,
/// get validated rows out, and call [`ShardStream::finish`] at EOF.
/// Enforces the header (version, grid address, range), strict in-order
/// contiguity of row indices, and the terminal count + checksum.
#[derive(Debug)]
pub struct ShardStream {
    expected_grid: String,
    cells: Range<usize>,
    next: usize,
    ended: bool,
    saw_header: bool,
    hash: Fnv64,
}

impl ShardStream {
    /// A validator for one shard: the coordinator's grid address and
    /// the range assigned to this worker.
    pub fn new(expected_grid: &str, cells: Range<usize>) -> Self {
        ShardStream {
            expected_grid: expected_grid.to_string(),
            next: cells.start,
            cells,
            ended: false,
            saw_header: false,
            hash: Fnv64::default(),
        }
    }

    /// Feeds one stdout line. Returns `Ok(Some(row))` for a validated
    /// row frame, `Ok(None)` for the header and end frames.
    ///
    /// # Errors
    ///
    /// Returns the named [`DriveError`] for any protocol violation.
    pub fn accept(&mut self, line: &str) -> Result<Option<ShardRow>, DriveError> {
        if self.ended {
            return Err(DriveError::TrailingFrame(line.to_string()));
        }
        let frame = Frame::parse(line).map_err(DriveError::Malformed)?;
        if !self.saw_header {
            let Frame::Header { grid, cells } = frame else {
                return Err(DriveError::MissingHeader);
            };
            if grid != self.expected_grid {
                return Err(DriveError::GridMismatch {
                    expected: self.expected_grid.clone(),
                    got: grid,
                });
            }
            if cells != self.cells {
                return Err(DriveError::RangeMismatch {
                    expected: self.cells.clone(),
                    got: cells,
                });
            }
            self.saw_header = true;
            return Ok(None);
        }
        match frame {
            Frame::Header { .. } => Err(DriveError::Malformed(format!(
                "second header frame: `{line}`"
            ))),
            Frame::Row { index, seed, csv } => {
                if !self.cells.contains(&index) {
                    return Err(DriveError::OutOfRange {
                        index,
                        cells: self.cells.clone(),
                    });
                }
                if index < self.next {
                    return Err(DriveError::Duplicate(index));
                }
                if index > self.next {
                    return Err(DriveError::OutOfOrder {
                        expected: self.next,
                        got: index,
                    });
                }
                self.next += 1;
                self.hash.update(csv.as_bytes());
                self.hash.update(b"\n");
                Ok(Some(ShardRow { index, seed, csv }))
            }
            Frame::End { rows, checksum } => {
                let received = self.next - self.cells.start;
                if received < self.cells.len() {
                    // The worker closed early; report it as truncation
                    // (the crash-shaped failure), not a count quibble.
                    return Err(DriveError::Truncated {
                        received,
                        expected: self.cells.len(),
                    });
                }
                if rows != received {
                    return Err(DriveError::RowCountMismatch {
                        declared: rows,
                        received,
                    });
                }
                let computed = self.hash.finish();
                if checksum != computed {
                    return Err(DriveError::ChecksumMismatch {
                        declared: checksum,
                        computed,
                    });
                }
                self.ended = true;
                Ok(None)
            }
        }
    }

    /// Closes the stream at worker EOF.
    ///
    /// # Errors
    ///
    /// Returns [`DriveError::Truncated`] when the end frame never
    /// arrived.
    pub fn finish(&self) -> Result<(), DriveError> {
        if self.ended {
            Ok(())
        } else {
            Err(DriveError::Truncated {
                received: self.next - self.cells.start,
                expected: self.cells.len(),
            })
        }
    }

    /// Whether the end frame has been accepted.
    pub fn ended(&self) -> bool {
        self.ended
    }
}

/// Splits `0..len` into `workers` balanced contiguous shards (the first
/// `len % workers` shards take one extra cell). Trailing shards may be
/// empty when `workers > len`; empty shards simply run no worker.
///
/// # Panics
///
/// Panics if `workers` is zero.
pub fn plan_shards(len: usize, workers: usize) -> Vec<Range<usize>> {
    assert!(workers > 0, "sharding needs at least one worker");
    let base = len / workers;
    let extra = len % workers;
    let mut shards = Vec::with_capacity(workers);
    let mut start = 0;
    for i in 0..workers {
        let size = base + usize::from(i < extra);
        shards.push(start..start + size);
        start += size;
    }
    shards
}

/// Parses an explicit shard plan `a..b,b..c,…`: a contiguous ascending
/// partition of `0..len`. Empty ranges (`a..a`) are allowed — they model
/// a worker with nothing to do — but gaps, overlaps, and ranges outside
/// the grid are errors.
///
/// # Errors
///
/// Returns a message naming the offending range.
pub fn parse_shards(spec: &str, len: usize) -> Result<Vec<Range<usize>>, String> {
    let mut shards = Vec::new();
    let mut cursor = 0usize;
    for token in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
        let (a, b) = token
            .split_once("..")
            .ok_or_else(|| format!("expected a half-open range `a..b`, got `{token}`"))?;
        let start: usize = a
            .trim()
            .parse()
            .map_err(|_| format!("bad cell index `{}`", a.trim()))?;
        let end: usize = b
            .trim()
            .parse()
            .map_err(|_| format!("bad cell index `{}`", b.trim()))?;
        if start > end {
            return Err(format!("cell range {start}..{end} is reversed"));
        }
        if start != cursor {
            return Err(format!(
                "shard plan is not contiguous: expected a range starting at {cursor}, \
                 got {start}..{end}"
            ));
        }
        if end > len {
            return Err(format!(
                "cell range {start}..{end} exceeds the {len}-cell grid"
            ));
        }
        shards.push(start..end);
        cursor = end;
    }
    if shards.is_empty() {
        return Err("shard plan is empty".to_string());
    }
    if cursor != len {
        return Err(format!(
            "shard plan covers 0..{cursor} of the {len}-cell grid"
        ));
    }
    Ok(shards)
}

/// Splits one CSV line into fields, honouring the report writer's
/// quoting (fields containing `,`, `"` or newlines are wrapped in `"`
/// with inner quotes doubled).
pub fn split_csv(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = line.chars().peekable();
    let mut quoted = false;
    while let Some(c) = chars.next() {
        if quoted {
            if c == '"' {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    field.push('"');
                } else {
                    quoted = false;
                }
            } else {
                field.push(c);
            }
        } else {
            match c {
                '"' => quoted = true,
                ',' => fields.push(std::mem::take(&mut field)),
                _ => field.push(c),
            }
        }
    }
    fields.push(field);
    fields
}

/// The column count of [`arsf_core::sweep::SweepReport::csv_header`].
const CSV_COLUMNS: usize = 25;

fn opt_f64(field: &str, column: &str) -> Result<Option<f64>, String> {
    if field.is_empty() {
        return Ok(None);
    }
    field
        .parse()
        .map(Some)
        .map_err(|_| format!("bad {column} `{field}`"))
}

fn req_f64(field: &str, column: &str) -> Result<Option<f64>, String> {
    opt_f64(field, column)?
        .map(Some)
        .ok_or_else(|| format!("missing {column}"))
}

/// Reconstructs the flattened comparison record from one report CSV
/// line — the inverse of [`arsf_core::sweep::SweepRow::to_csv_line`]
/// as far as [`CellRecord`] is concerned. Floats round-trip exactly
/// because the writer uses Rust's shortest round-trip formatting, so a
/// baseline rebuilt from CSV equals one built from the in-memory
/// report.
///
/// # Errors
///
/// Returns a message naming the malformed column.
pub fn cell_record_from_csv(line: &str) -> Result<CellRecord, String> {
    let fields = split_csv(line);
    if fields.len() != CSV_COLUMNS {
        return Err(format!(
            "expected {CSV_COLUMNS} CSV columns, got {}",
            fields.len()
        ));
    }
    let cell: u64 = fields[0]
        .parse()
        .map_err(|_| format!("bad cell index `{}`", fields[0]))?;
    // Column order mirrors SweepReport::csv_header: cell, scenario,
    // suite, faults, attacker, schedule, fuser, detector, rounds, seed,
    // then the metric columns, then the pipe-joined vehicle vectors.
    let labels = vec![
        ("suite".to_string(), fields[2].clone()),
        ("faults".to_string(), fields[3].clone()),
        ("attacker".to_string(), fields[4].clone()),
        ("schedule".to_string(), fields[5].clone()),
        ("fuser".to_string(), fields[6].clone()),
        ("detector".to_string(), fields[7].clone()),
        ("rounds".to_string(), fields[8].clone()),
        ("seed".to_string(), fields[9].clone()),
        ("condemned".to_string(), fields[17].clone()),
    ];
    let mut metrics = vec![
        (
            "mean_width".to_string(),
            req_f64(&fields[10], "mean_width")?,
        ),
        ("min_width".to_string(), opt_f64(&fields[11], "min_width")?),
        ("max_width".to_string(), opt_f64(&fields[12], "max_width")?),
        (
            "truth_lost".to_string(),
            req_f64(&fields[13], "truth_lost")?,
        ),
        (
            "truth_loss_rate".to_string(),
            req_f64(&fields[14], "truth_loss_rate")?,
        ),
        (
            "fusion_failures".to_string(),
            req_f64(&fields[15], "fusion_failures")?,
        ),
        (
            "flagged_rounds".to_string(),
            req_f64(&fields[16], "flagged_rounds")?,
        ),
        (
            "above_rate".to_string(),
            opt_f64(&fields[18], "above_rate")?,
        ),
        (
            "below_rate".to_string(),
            opt_f64(&fields[19], "below_rate")?,
        ),
        (
            "preemptions".to_string(),
            opt_f64(&fields[20], "preemptions")?,
        ),
        ("min_gap".to_string(), opt_f64(&fields[21], "min_gap")?),
    ];
    // The vehicle vectors are pipe-joined, leader first, and empty for
    // non-platoon rows. `vehicle_truth_lost` entries are always
    // rendered (integers), so its split length is the vehicle count;
    // `vehicle_max_widths` entries may individually be empty (→ None).
    if !fields[24].is_empty() {
        let means: Vec<&str> = fields[22].split('|').collect();
        let maxes: Vec<&str> = fields[23].split('|').collect();
        let lost: Vec<&str> = fields[24].split('|').collect();
        if means.len() != lost.len() || maxes.len() != lost.len() {
            return Err(format!(
                "vehicle column lengths disagree: {} means, {} maxes, {} truth_lost",
                means.len(),
                maxes.len(),
                lost.len()
            ));
        }
        for (i, ((mean, max), lost)) in means.iter().zip(&maxes).zip(&lost).enumerate() {
            metrics.push((
                format!("vehicle_mean_widths[{i}]"),
                req_f64(mean, "vehicle_mean_widths")?,
            ));
            metrics.push((
                format!("vehicle_max_widths[{i}]"),
                opt_f64(max, "vehicle_max_widths")?,
            ));
            metrics.push((
                format!("vehicle_truth_lost[{i}]"),
                req_f64(lost, "vehicle_truth_lost")?,
            ));
        }
    }
    Ok(CellRecord {
        cell,
        labels,
        metrics,
    })
}

/// Rebuilds a [`Baseline`] from a driven run's merged CSV lines — the
/// bridge that lets `sweep_drive --baseline record|check` work without
/// ever materialising a [`arsf_core::sweep::SweepReport`].
///
/// # Errors
///
/// Returns a message naming the malformed line.
pub fn baseline_from_rows(grid: &SweepGrid, lines: &[String]) -> Result<Baseline, String> {
    let definition = canonical_definition(grid);
    let mut rows = Vec::with_capacity(lines.len());
    for (i, line) in lines.iter().enumerate() {
        rows.push(cell_record_from_csv(line).map_err(|e| format!("merged CSV row {i}: {e}"))?);
    }
    Ok(Baseline {
        address: content_address(&definition),
        definition,
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::golden;
    use arsf_core::sweep::ParallelSweeper;

    #[test]
    fn incremental_fnv_matches_content_address() {
        let text = "arsf-sweep-grid v1\nsome,csv,line\n";
        let mut hash = Fnv64::default();
        // Feed in awkward splits: the digest must not depend on chunking.
        hash.update(&text.as_bytes()[..7]);
        hash.update(&text.as_bytes()[7..]);
        assert_eq!(hash.finish(), content_address(text));
        assert_eq!(Fnv64::default().finish(), content_address(""));
    }

    #[test]
    fn frames_round_trip() {
        let frames = [
            Frame::Header {
                grid: "0123456789abcdef".to_string(),
                cells: 5..12,
            },
            Frame::Row {
                index: 7,
                seed: 1234567890123,
                csv: "7,\"grid#7\",landshark,none,a b,asc,marzullo,off,50,1,2.5,,,0,0,0,0,,,,,,,,"
                    .to_string(),
            },
            Frame::End {
                rows: 7,
                checksum: "deadbeefdeadbeef".to_string(),
            },
        ];
        for frame in frames {
            assert_eq!(Frame::parse(&frame.render()).unwrap(), frame);
        }
    }

    #[test]
    fn frame_parse_names_malformed_tokens() {
        assert!(Frame::parse("wibble 1 2").unwrap_err().contains("wibble"));
        assert!(Frame::parse("row x 2 csv").unwrap_err().contains("`x`"));
        assert!(Frame::parse("row 1 y csv").unwrap_err().contains("`y`"));
        assert!(Frame::parse("end rows=z checksum=aa")
            .unwrap_err()
            .contains("`z`"));
        assert!(
            Frame::parse("shard arsf-sweep-stream-v0 grid=aa cells=0..1")
                .unwrap_err()
                .contains("version mismatch")
        );
    }

    fn stream_lines(
        grid_addr: &str,
        cells: Range<usize>,
        rows: &[(usize, u64, &str)],
    ) -> Vec<String> {
        let mut lines = vec![Frame::Header {
            grid: grid_addr.to_string(),
            cells: cells.clone(),
        }
        .render()];
        let mut hash = Fnv64::default();
        for (index, seed, csv) in rows {
            hash.update(csv.as_bytes());
            hash.update(b"\n");
            lines.push(
                Frame::Row {
                    index: *index,
                    seed: *seed,
                    csv: csv.to_string(),
                }
                .render(),
            );
        }
        lines.push(
            Frame::End {
                rows: rows.len(),
                checksum: hash.finish(),
            }
            .render(),
        );
        lines
    }

    #[test]
    fn shard_stream_accepts_a_clean_stream() {
        let lines = stream_lines("aa", 3..5, &[(3, 1, "x"), (4, 2, "y")]);
        let mut stream = ShardStream::new("aa", 3..5);
        let mut rows = Vec::new();
        for line in &lines {
            if let Some(row) = stream.accept(line).unwrap() {
                rows.push(row.index);
            }
        }
        stream.finish().unwrap();
        assert_eq!(rows, [3, 4]);
    }

    #[test]
    fn shard_stream_names_each_violation() {
        let violations: Vec<(Vec<String>, Range<usize>, &str)> = vec![
            // Grid address mismatch.
            (
                stream_lines("bb", 0..1, &[(0, 1, "x")]),
                0..1,
                "grid address",
            ),
            // Range mismatch.
            (
                stream_lines("aa", 0..2, &[(0, 1, "x")]),
                0..1,
                "range mismatch",
            ),
            // Out-of-range index.
            (
                stream_lines("aa", 0..1, &[(5, 1, "x")]),
                0..1,
                "outside the shard",
            ),
            // Duplicate row.
            (
                stream_lines("aa", 0..2, &[(0, 1, "x"), (0, 1, "x")]),
                0..2,
                "duplicate row",
            ),
            // Out-of-order row.
            (
                stream_lines("aa", 0..2, &[(1, 1, "x"), (0, 1, "y")]),
                0..2,
                "out-of-order",
            ),
            // Missing header.
            (vec!["row 0 1 x".to_string()], 0..1, "header"),
        ];
        for (lines, cells, needle) in violations {
            let mut stream = ShardStream::new("aa", cells);
            let err = lines
                .iter()
                .find_map(|line| stream.accept(line).err())
                .expect("stream must be rejected");
            assert!(
                err.to_string().contains(needle),
                "`{err}` should mention `{needle}`"
            );
        }
    }

    #[test]
    fn shard_stream_checks_count_and_checksum() {
        // Tampered checksum.
        let mut lines = stream_lines("aa", 0..1, &[(0, 1, "x")]);
        let last = lines.last_mut().unwrap();
        *last = "end rows=1 checksum=0000000000000000".to_string();
        let mut stream = ShardStream::new("aa", 0..1);
        let err = lines
            .iter()
            .find_map(|line| stream.accept(line).err())
            .unwrap();
        assert!(err.to_string().contains("checksum mismatch"), "{err}");

        // End frame before all assigned rows: truncation.
        let lines = stream_lines("aa", 0..3, &[(0, 1, "x")]);
        let mut stream = ShardStream::new("aa", 0..3);
        let err = lines
            .iter()
            .find_map(|line| stream.accept(line).err())
            .unwrap();
        assert!(err.to_string().contains("truncated"), "{err}");

        // EOF with no end frame at all: truncation via finish().
        let mut stream = ShardStream::new("aa", 0..2);
        let lines = stream_lines("aa", 0..2, &[(0, 1, "x"), (1, 2, "y")]);
        for line in &lines[..2] {
            stream.accept(line).unwrap();
        }
        let err = stream.finish().unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");

        // A frame after the end frame.
        let mut lines = stream_lines("aa", 0..1, &[(0, 1, "x")]);
        lines.push("row 0 1 x".to_string());
        let mut stream = ShardStream::new("aa", 0..1);
        let err = lines
            .iter()
            .find_map(|line| stream.accept(line).err())
            .unwrap();
        assert!(err.to_string().contains("after the end frame"), "{err}");
    }

    #[test]
    fn planned_shards_partition_the_grid() {
        assert_eq!(plan_shards(8, 3), vec![0..3, 3..6, 6..8]);
        assert_eq!(plan_shards(2, 4), vec![0..1, 1..2, 2..2, 2..2]);
        assert_eq!(plan_shards(0, 2), vec![0..0, 0..0]);
        assert_eq!(plan_shards(6, 1), vec![0..6]);
    }

    #[test]
    fn explicit_shard_plans_must_partition_the_grid() {
        assert_eq!(parse_shards("0..3,3..8", 8).unwrap(), vec![0..3, 3..8]);
        assert_eq!(
            parse_shards("0..0,0..8,8..8", 8).unwrap(),
            vec![0..0, 0..8, 8..8]
        );
        assert!(parse_shards("0..3,4..8", 8)
            .unwrap_err()
            .contains("not contiguous"));
        assert!(parse_shards("0..3,3..7", 8)
            .unwrap_err()
            .contains("covers 0..7"));
        assert!(parse_shards("0..9", 8).unwrap_err().contains("exceeds"));
        assert!(parse_shards("3..1", 8).unwrap_err().contains("reversed"));
        assert!(parse_shards("x..1", 8)
            .unwrap_err()
            .contains("bad cell index `x`"));
        assert!(parse_shards("", 8).unwrap_err().contains("empty"));
    }

    #[test]
    fn split_csv_honours_quoting() {
        assert_eq!(split_csv("a,b,c"), ["a", "b", "c"]);
        assert_eq!(split_csv("a,\"b,c\",d"), ["a", "b,c", "d"]);
        assert_eq!(
            split_csv("a,\"say \"\"hi\"\"\",c"),
            ["a", "say \"hi\"", "c"]
        );
        assert_eq!(split_csv("a,,c"), ["a", "", "c"]);
        assert_eq!(split_csv(""), [""]);
    }

    #[test]
    fn baseline_from_csv_rows_equals_baseline_from_report() {
        for (name, grid) in golden::all() {
            // Shrink the grids so the test stays fast; the shape (open-
            // vs closed-loop, platoon columns) is what matters.
            let report = ParallelSweeper::new(2).run_range(&grid, 0..grid.len().min(6));
            let lines: Vec<String> = report.rows().iter().map(|r| r.to_csv_line()).collect();
            let mut rebuilt_rows = Vec::new();
            for line in &lines {
                rebuilt_rows.push(cell_record_from_csv(line).unwrap());
            }
            let from_report = Baseline::from_report(&grid, &report);
            for (rebuilt, direct) in rebuilt_rows.iter().zip(&from_report.rows) {
                assert_eq!(rebuilt, direct, "grid `{name}`");
            }
            let rebuilt = baseline_from_rows(&grid, &lines).unwrap();
            assert_eq!(rebuilt.address, from_report.address);
            assert_eq!(rebuilt.definition, from_report.definition);
        }
    }

    #[test]
    fn csv_reconstruction_names_malformed_columns() {
        assert!(cell_record_from_csv("1,2,3").unwrap_err().contains("25"));
        let row = format!("x{}", ",f".repeat(24));
        assert!(cell_record_from_csv(&row)
            .unwrap_err()
            .contains("bad cell index `x`"));
    }
}
