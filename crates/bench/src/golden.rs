//! The golden sweep grids behind the committed regression baselines.
//!
//! Two grids cover both execution modes of the engine:
//!
//! * [`open_loop_48`] — the 48-cell grid the `sweep_parallel` criterion
//!   bench uses (4 fusers × 3 detectors × 2 schedules × 2 seeds around a
//!   stealthily-attacked LandShark), at a round count sized for CI.
//! * [`table2_closed_loop`] — Table II's closed-loop grid (3 schedules ×
//!   2 seed replicates of a LandShark driven through its control loop
//!   under the "any sensor can be attacked" model), exercising the
//!   supervisor columns.
//!
//! Their base scenarios are the `baseline-open-loop` and
//! `baseline-table2` registry presets, so the grid definitions are
//! discoverable from the scenario registry. `sweep_diff record` stores
//! their reports under `baselines/<address>.json`; `sweep_diff check`
//! (and CI's `baseline-check` job) re-runs them and fails on any
//! out-of-tolerance cell.

use arsf_core::scenario::{self, FuserSpec, Scenario};
use arsf_core::sweep::SweepGrid;
use arsf_core::DetectionMode;
use arsf_schedule::SchedulePolicy;

fn preset(name: &str) -> Scenario {
    scenario::find(name).unwrap_or_else(|| panic!("registry preset `{name}` missing"))
}

/// The open-loop golden grid: 4 fusers × 3 detectors × 2 schedules ×
/// 2 seeds = 48 cells around the `baseline-open-loop` preset.
pub fn open_loop_48() -> SweepGrid {
    SweepGrid::new(preset("baseline-open-loop"))
        .fusers([
            FuserSpec::Marzullo,
            FuserSpec::BrooksIyengar,
            FuserSpec::InverseVariance,
            FuserSpec::Historical {
                max_rate: 3.5,
                dt: 0.1,
            },
        ])
        .detectors([
            DetectionMode::Off,
            DetectionMode::Immediate,
            DetectionMode::Windowed {
                window: 10,
                tolerance: 3,
            },
        ])
        .schedules([SchedulePolicy::Ascending, SchedulePolicy::Descending])
        .seeds([2014, 99])
}

/// The closed-loop golden grid: Table II's 3 schedules × 2 seed
/// replicates around the `baseline-table2` preset (6 cells with
/// supervisor columns).
pub fn table2_closed_loop() -> SweepGrid {
    SweepGrid::new(preset("baseline-table2"))
        .schedules([
            SchedulePolicy::Ascending,
            SchedulePolicy::Descending,
            SchedulePolicy::Random,
        ])
        .seeds([1, 2])
}

/// Every golden grid, `(name, grid)` pairs in reporting order.
pub fn all() -> Vec<(&'static str, SweepGrid)> {
    vec![
        ("open-loop-48", open_loop_48()),
        ("table2-closed-loop", table2_closed_loop()),
    ]
}

/// Looks a golden grid up by name.
pub fn find(name: &str) -> Option<SweepGrid> {
    all()
        .into_iter()
        .find(|(n, _)| *n == name)
        .map(|(_, grid)| grid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use arsf_core::sweep::store::grid_address;

    #[test]
    fn golden_grids_have_the_documented_shapes() {
        assert_eq!(open_loop_48().len(), 48);
        assert_eq!(table2_closed_loop().len(), 6);
        for cell in table2_closed_loop().cells() {
            assert!(cell.scenario.closed_loop.is_some());
        }
        for cell in open_loop_48().cells() {
            assert!(cell.scenario.closed_loop.is_none());
        }
    }

    #[test]
    fn golden_grids_resolve_by_name_with_distinct_addresses() {
        let names: Vec<&str> = all().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, ["open-loop-48", "table2-closed-loop"]);
        assert!(find("open-loop-48").is_some());
        assert!(find("nope").is_none());
        assert_ne!(
            grid_address(&open_loop_48()),
            grid_address(&table2_closed_loop())
        );
    }
}
