//! Shared `--baseline record|check` semantics for the sweep binaries.
//!
//! `scenario_sweep` runs a grid in-process and `sweep_drive` merges a
//! driven run's CSV rows back into a [`Baseline`]; both must apply the
//! identical recording vetoes and check tolerances, so the logic lives
//! here rather than in either binary.

use std::path::PathBuf;

use arsf_analyze::{AnalyzeGrid, Location, Severity};
use arsf_core::sweep::diff::{diff, DiffConfig};
use arsf_core::sweep::store::Baseline;
use arsf_core::sweep::SweepGrid;

/// Records `current` under `dir`, applying the four recording vetoes:
///
/// 1. error-severity grid lint findings (never overridable);
/// 2. cells with no static width bound (`--allow-unbounded` overrides);
/// 3. a grid whose every corruptible cell is provably invisible to its
///    detector (`--allow-invisible` overrides);
/// 4. recorded cell pairs inverting a provable dominance ordering
///    (`--allow-disorder` overrides).
///
/// The override flags are read from the process arguments, so both
/// binaries expose them with identical spellings. Vetoed findings are
/// printed to stderr before the error is returned.
///
/// # Errors
///
/// Returns the refusal (or I/O failure) message for the caller's
/// `fail`-style diagnostic.
pub fn record(grid: &SweepGrid, current: &Baseline, dir: &str) -> Result<PathBuf, String> {
    // Refuse to freeze a statically unsound grid: an error-severity
    // finding means the rows are meaningless (soundness violated) or
    // the engines got lucky.
    let errors: Vec<_> = grid
        .analyze()
        .into_iter()
        .filter(|f| f.severity == Severity::Error)
        .collect();
    if !errors.is_empty() {
        for finding in &errors {
            eprintln!("{}", finding.render());
        }
        return Err(
            "refusing to record a baseline for a grid with error-severity lint findings"
                .to_string(),
        );
    }
    // Likewise refuse cells with no static width bound: the recorded
    // numbers would be unfalsifiable against the paper's guarantees.
    let unbounded: Vec<_> = arsf_analyze::analyze_grid_guarantees(grid)
        .into_iter()
        .filter(|f| f.lint == "guarantee-unbounded")
        .collect();
    if !unbounded.is_empty() && !crate::has_flag("--allow-unbounded") {
        for finding in &unbounded {
            eprintln!("{}", finding.render());
        }
        return Err(format!(
            "refusing to record a baseline: {} cell(s) have no static width bound \
             (pass --allow-unbounded to record anyway)",
            unbounded.len()
        ));
    }
    // And refuse a grid whose every attacked cell is provably invisible
    // to its detector: the detection columns would freeze a tautology
    // (run `sweep_lint detectability` for the per-cell verdicts).
    if arsf_analyze::detection_vacuous(grid) && !crate::has_flag("--allow-invisible") {
        return Err(
            "refusing to record a baseline: every corruptible cell is provably \
             invisible to its detector, so the detection columns are vacuous \
             (pass --allow-invisible to record anyway)"
                .to_string(),
        );
    }
    // Finally, the freshly-run numbers must respect every cross-cell
    // ordering the dominance pass proves: freezing an inverted pair
    // would make `sweep_lint dominance` fail forever after.
    let inversions = arsf_analyze::vet_baseline_dominance(
        grid,
        current,
        &Location::Grid {
            name: grid.base().name.clone(),
        },
    );
    if !inversions.is_empty() && !crate::has_flag("--allow-disorder") {
        for finding in &inversions {
            eprintln!("{}", finding.render());
        }
        return Err(format!(
            "refusing to record a baseline: {} recorded cell pair(s) invert a \
             provable ordering (run `sweep_lint dominance` for the derived edges; \
             pass --allow-disorder to record anyway)",
            inversions.len()
        ));
    }
    current
        .save(dir)
        .map_err(|e| format!("recording baseline: {e}"))
}

/// Diffs `current` against the baseline stored for `grid` under `dir`,
/// honouring `--tol col=abs[:rel],…` on top of the near-exact default.
/// Returns the rendered drift report (empty on a clean check) and
/// whether any cell drifted.
///
/// # Errors
///
/// Returns a message when the stored baseline cannot be loaded or the
/// tolerance spec is malformed.
pub fn check(grid: &SweepGrid, current: &Baseline, dir: &str) -> Result<(String, bool), String> {
    let stored =
        Baseline::load_for_grid(dir, grid).map_err(|e| format!("loading baseline: {e}"))?;
    // The content-addressing invariant must hold before the numbers
    // mean anything: a file whose stored address disagrees with its
    // embedded definition was hand-edited or corrupted.
    stored
        .verify_address()
        .map_err(|e| format!("stored baseline failed address verification: {e}"))?;
    let mut config = DiffConfig::near_exact();
    if let Some(spec) = crate::arg_value("--tol") {
        for (column, tolerance) in crate::cli::parse_tolerances(&spec)? {
            config = config.with_column(column, tolerance);
        }
    }
    let result = diff(&stored, current, &config);
    Ok((result.render(), !result.is_empty()))
}
