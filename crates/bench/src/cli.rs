//! Parsers turning `--axis a,b,c` command-line values into sweep axes.
//!
//! Shared by the `scenario_sweep` binary (and usable from any harness):
//! each parser accepts a comma-separated list and returns either the
//! decoded non-empty axis or a human-readable error naming the
//! offending token — never `Ok(vec![])`, which would trip the grid's
//! non-empty-axis assertion downstream.

use arsf_core::scenario::{
    AttackerSpec, ClosedLoopSpec, FuserSpec, Scenario, StrategySpec, SuiteSpec,
};
use arsf_core::sweep::diff::Tolerance;
use arsf_core::sweep::SweepGrid;
use arsf_core::DetectionMode;
use arsf_schedule::SchedulePolicy;
use arsf_sensor::{FaultKind, FaultModel};
use std::ops::Range;

fn non_empty<T>(axis: &str, values: Vec<T>) -> Result<Vec<T>, String> {
    if values.is_empty() {
        Err(format!("{axis} axis is empty"))
    } else {
        Ok(values)
    }
}

/// Parses a fuser axis, e.g. `marzullo,hull,historical:3.5:0.1`.
///
/// Recognised names: `marzullo`, `brooks-iyengar`, `intersection`,
/// `hull`, `inverse-variance`, `midpoint-median`, and
/// `historical[:max_rate:dt]` (default `historical:3.5:0.1`).
///
/// # Errors
///
/// Returns a message naming the first unrecognised token.
pub fn parse_fusers(spec: &str) -> Result<Vec<FuserSpec>, String> {
    spec.split(',')
        .map(str::trim)
        .filter(|t| !t.is_empty())
        .map(|token| match token {
            "marzullo" => Ok(FuserSpec::Marzullo),
            "brooks-iyengar" => Ok(FuserSpec::BrooksIyengar),
            "intersection" => Ok(FuserSpec::Intersection),
            "hull" => Ok(FuserSpec::Hull),
            "inverse-variance" => Ok(FuserSpec::InverseVariance),
            "midpoint-median" => Ok(FuserSpec::MidpointMedian),
            "historical" => Ok(FuserSpec::Historical {
                max_rate: 3.5,
                dt: 0.1,
            }),
            other => match other.strip_prefix("historical:") {
                Some(params) => {
                    let (rate, dt) = params
                        .split_once(':')
                        .ok_or_else(|| format!("expected historical:max_rate:dt, got `{other}`"))?;
                    let max_rate: f64 = rate
                        .parse()
                        .map_err(|_| format!("bad max_rate in `{other}`"))?;
                    let dt: f64 = dt.parse().map_err(|_| format!("bad dt in `{other}`"))?;
                    Ok(FuserSpec::Historical { max_rate, dt })
                }
                None => Err(format!("unknown fuser `{other}`")),
            },
        })
        .collect::<Result<Vec<_>, String>>()
        .and_then(|v| non_empty("fusers", v))
}

/// Parses a detector axis, e.g. `off,immediate,windowed:20:6`.
///
/// # Errors
///
/// Returns a message naming the first unrecognised token.
pub fn parse_detectors(spec: &str) -> Result<Vec<DetectionMode>, String> {
    spec.split(',')
        .map(str::trim)
        .filter(|t| !t.is_empty())
        .map(|token| match token {
            "off" => Ok(DetectionMode::Off),
            "immediate" => Ok(DetectionMode::Immediate),
            other => match other.strip_prefix("windowed:") {
                Some(params) => {
                    let (window, tolerance) = params.split_once(':').ok_or_else(|| {
                        format!("expected windowed:window:tolerance, got `{other}`")
                    })?;
                    let window: usize = window
                        .parse()
                        .map_err(|_| format!("bad window in `{other}`"))?;
                    let tolerance: usize = tolerance
                        .parse()
                        .map_err(|_| format!("bad tolerance in `{other}`"))?;
                    if window == 0 {
                        return Err(format!("window must be positive in `{other}`"));
                    }
                    Ok(DetectionMode::Windowed { window, tolerance })
                }
                None => Err(format!("unknown detector `{other}`")),
            },
        })
        .collect::<Result<Vec<_>, String>>()
        .and_then(|v| non_empty("detectors", v))
}

/// Parses a schedule axis, e.g. `ascending,descending,random`.
///
/// # Errors
///
/// Returns a message naming the first unrecognised token.
pub fn parse_schedules(spec: &str) -> Result<Vec<SchedulePolicy>, String> {
    spec.split(',')
        .map(str::trim)
        .filter(|t| !t.is_empty())
        .map(|token| match token {
            "ascending" => Ok(SchedulePolicy::Ascending),
            "descending" => Ok(SchedulePolicy::Descending),
            "random" => Ok(SchedulePolicy::Random),
            other => Err(format!("unknown schedule `{other}`")),
        })
        .collect::<Result<Vec<_>, String>>()
        .and_then(|v| non_empty("schedules", v))
}

/// Parses an integer list, e.g. a seed axis `1,2,3`.
///
/// # Errors
///
/// Returns a message naming the first non-integer token.
pub fn parse_u64_list(spec: &str) -> Result<Vec<u64>, String> {
    spec.split(',')
        .map(str::trim)
        .filter(|t| !t.is_empty())
        .map(|token| token.parse().map_err(|_| format!("bad integer `{token}`")))
        .collect::<Result<Vec<_>, String>>()
        .and_then(|v| non_empty("integer", v))
}

/// Parses a positive-float list, e.g. a `--history` rate axis
/// `2.5,3.5,5`.
///
/// # Errors
///
/// Returns a message naming the first token that is not a positive
/// finite number.
pub fn parse_f64_list(spec: &str) -> Result<Vec<f64>, String> {
    spec.split(',')
        .map(str::trim)
        .filter(|t| !t.is_empty())
        .map(|token| {
            token
                .parse::<f64>()
                .ok()
                .filter(|v| v.is_finite() && *v > 0.0)
                .ok_or_else(|| format!("bad positive number `{token}`"))
        })
        .collect::<Result<Vec<_>, String>>()
        .and_then(|v| non_empty("number", v))
}

/// Parses a half-open cell range `a..b` (grid-order indices, `a < b`),
/// the `--cells` shard one process takes of a larger sweep.
///
/// # Errors
///
/// Returns a message when the separator is missing, an endpoint is not
/// an integer, or the range is empty.
pub fn parse_cells(spec: &str) -> Result<Range<usize>, String> {
    let (start, end) = spec
        .split_once("..")
        .ok_or_else(|| format!("expected a half-open range `a..b`, got `{spec}`"))?;
    let parse_one = |token: &str| {
        token
            .trim()
            .parse::<usize>()
            .map_err(|_| format!("bad cell index `{}`", token.trim()))
    };
    let (start, end) = (parse_one(start)?, parse_one(end)?);
    if start >= end {
        return Err(format!("cell range {start}..{end} is empty"));
    }
    Ok(start..end)
}

/// Parses one fault injection `sensor:kind[:param]:probability`, e.g.
/// `2:bias:3:0.25`, `0:stuck:12:1`, `1:scale:1.5:0.4` or `3:silent:0.5`.
///
/// # Errors
///
/// Returns a message naming the malformed component.
pub fn parse_fault(spec: &str) -> Result<(usize, FaultModel), String> {
    let parts: Vec<&str> = spec.split(':').map(str::trim).collect();
    let bad = || format!("expected sensor:kind[:param]:probability, got `{spec}`");
    if parts.len() < 3 {
        return Err(bad());
    }
    let sensor: usize = parts[0]
        .parse()
        .map_err(|_| format!("bad sensor index `{}`", parts[0]))?;
    let probability: f64 = parts[parts.len() - 1]
        .parse()
        .ok()
        .filter(|p| (0.0..=1.0).contains(p))
        .ok_or_else(|| format!("bad probability `{}`", parts[parts.len() - 1]))?;
    let param = |what: &str| -> Result<f64, String> {
        if parts.len() != 4 {
            return Err(bad());
        }
        parts[2]
            .parse()
            .ok()
            .filter(|v: &f64| v.is_finite())
            .ok_or_else(|| format!("bad {what} `{}`", parts[2]))
    };
    let kind = match parts[1] {
        "silent" if parts.len() == 3 => FaultKind::Silent,
        "silent" => return Err(bad()),
        "bias" => FaultKind::Bias {
            offset: param("offset")?,
        },
        "stuck" => FaultKind::StuckAt {
            value: param("value")?,
        },
        "scale" => FaultKind::Scale {
            factor: param("factor")?,
        },
        other => return Err(format!("unknown fault kind `{other}`")),
    };
    Ok((sensor, FaultModel::new(kind, probability)))
}

/// Parses a per-column tolerance list for baseline diffing, e.g.
/// `mean_width=1e-9:1e-6,above_rate=0.005` — each entry is
/// `column=abs[:rel]` (`rel` defaults to 0). A column family can be
/// named without its index (`vehicle_mean_widths` covers
/// `vehicle_mean_widths[0]`, `[1]`, …).
///
/// # Errors
///
/// Returns a message naming the malformed entry.
pub fn parse_tolerances(spec: &str) -> Result<Vec<(String, Tolerance)>, String> {
    let parse_component = |token: &str, entry: &str| {
        token
            .trim()
            .parse::<f64>()
            .ok()
            .filter(|v| v.is_finite() && *v >= 0.0)
            .ok_or_else(|| format!("bad tolerance `{}` in `{entry}`", token.trim()))
    };
    spec.split(',')
        .map(str::trim)
        .filter(|t| !t.is_empty())
        .map(|entry| {
            let (column, tols) = entry
                .split_once('=')
                .ok_or_else(|| format!("expected column=abs[:rel], got `{entry}`"))?;
            let column = column.trim();
            if column.is_empty() {
                return Err(format!("empty column name in `{entry}`"));
            }
            let (abs, rel) = match tols.split_once(':') {
                Some((abs, rel)) => (parse_component(abs, entry)?, parse_component(rel, entry)?),
                None => (parse_component(tols, entry)?, 0.0),
            };
            Ok((column.to_string(), Tolerance::new(abs, rel)))
        })
        .collect::<Result<Vec<_>, String>>()
        .and_then(|v| non_empty("tolerance", v))
}

/// Parses an attack strategy name (`phantom-optimal`, `greedy-high`,
/// `greedy-low`, `truthful`).
///
/// # Errors
///
/// Returns a message naming the unrecognised strategy.
pub fn parse_strategy(spec: &str) -> Result<StrategySpec, String> {
    match spec.trim() {
        "phantom-optimal" => Ok(StrategySpec::PhantomOptimal),
        "greedy-high" => Ok(StrategySpec::GreedyHigh),
        "greedy-low" => Ok(StrategySpec::GreedyLow),
        "truthful" => Ok(StrategySpec::Truthful),
        other => Err(format!("unknown strategy `{other}`")),
    }
}

/// Parses a suite, either `landshark` or `widths:5,11,17`.
///
/// # Errors
///
/// Returns a message when the name is unknown or a width is not a
/// positive number.
pub fn parse_suite(spec: &str) -> Result<SuiteSpec, String> {
    match spec.trim() {
        "landshark" => Ok(SuiteSpec::Landshark),
        other => match other.strip_prefix("widths:") {
            Some(list) => {
                let widths: Vec<f64> = list
                    .split(',')
                    .map(str::trim)
                    .filter(|t| !t.is_empty())
                    .map(|t| {
                        t.parse::<f64>()
                            .ok()
                            .filter(|w| w.is_finite() && *w > 0.0)
                            .ok_or_else(|| format!("bad width `{t}`"))
                    })
                    .collect::<Result<_, _>>()?;
                if widths.is_empty() {
                    return Err("widths suite needs at least one width".to_string());
                }
                Ok(SuiteSpec::Widths(widths))
            }
            None => Err(format!("unknown suite `{other}` (landshark | widths:…)")),
        },
    }
}

/// Parses a closed-loop envelope, either one half-width applied to both
/// sides (`0.5`) or `up:down` (`0.5:0.25`).
///
/// # Errors
///
/// Returns a message when a half-width is not a finite non-negative
/// number.
pub fn parse_deltas(spec: &str) -> Result<(f64, f64), String> {
    let parse_one = |token: &str| {
        token
            .trim()
            .parse::<f64>()
            .ok()
            .filter(|d| d.is_finite() && *d >= 0.0)
            .ok_or_else(|| format!("bad envelope half-width `{token}`"))
    };
    match spec.split_once(':') {
        Some((up, down)) => Ok((parse_one(up)?, parse_one(down)?)),
        None => {
            let both = parse_one(spec)?;
            Ok((both, both))
        }
    }
}

/// Parses a platoon spec `size[:gap_miles]` (default gap 0.01 miles),
/// e.g. `3` or `3:0.005`.
///
/// # Errors
///
/// Returns a message when the size is zero or the gap is not a positive
/// number.
pub fn parse_platoon(spec: &str) -> Result<(usize, f64), String> {
    let (size, gap) = match spec.split_once(':') {
        Some((size, gap)) => (size, Some(gap)),
        None => (spec, None),
    };
    let size: usize = size
        .trim()
        .parse()
        .ok()
        .filter(|s| *s > 0)
        .ok_or_else(|| format!("bad platoon size `{}`", size.trim()))?;
    let gap = match gap {
        None => 0.01,
        Some(token) => token
            .trim()
            .parse::<f64>()
            .ok()
            .filter(|g| g.is_finite() && *g > 0.0)
            .ok_or_else(|| format!("bad platoon gap `{}`", token.trim()))?,
    };
    Ok((size, gap))
}

/// The grid-shaping flags that switch `scenario_sweep` (and feed
/// `sweep_lint grid`) into grid mode, plus the boolean `--honest` and
/// the closed-loop family handled separately.
const AXIS_FLAGS: [&str; 10] = [
    "--fusers",
    "--detectors",
    "--schedules",
    "--history",
    "--seeds",
    "--suite",
    "--fault",
    "--strategy",
    "--cells",
    "--f",
];

/// The value flags that imply closed-loop execution.
const CLOSED_LOOP_FLAGS: [&str; 3] = ["--target", "--deltas", "--platoon"];

/// Whether the process arguments imply closed-loop execution
/// (`--closed-loop` itself, or any flag that only makes sense there).
pub fn closed_loop_requested() -> bool {
    crate::has_flag("--closed-loop")
        || CLOSED_LOOP_FLAGS
            .iter()
            .any(|flag| crate::arg_value(flag).is_some())
}

/// Whether the process arguments select grid mode (any axis flag,
/// `--honest`, `--golden`, or the closed-loop family).
pub fn grid_mode_requested() -> bool {
    AXIS_FLAGS
        .iter()
        .any(|flag| crate::arg_value(flag).is_some())
        || crate::has_flag("--honest")
        || crate::arg_value("--golden").is_some()
        || closed_loop_requested()
}

/// The value flags that shape the grid (base scenario or axes) and must
/// therefore be forwarded verbatim from a `sweep_drive` coordinator to
/// its `scenario_sweep --stream` workers. `--cells` is deliberately
/// absent: the coordinator assigns each worker its own range.
const FORWARDED_VALUE_FLAGS: [&str; 14] = [
    "--golden",
    "--fusers",
    "--detectors",
    "--schedules",
    "--history",
    "--seeds",
    "--suite",
    "--fault",
    "--strategy",
    "--f",
    "--rounds",
    "--target",
    "--deltas",
    "--platoon",
];

/// The boolean flags that shape the grid.
const FORWARDED_BOOL_FLAGS: [&str; 2] = ["--honest", "--closed-loop"];

/// Re-serialises the process's grid-defining flags, so a coordinator
/// can hand its workers exactly the grid it parsed: a worker running
/// `scenario_sweep` with these arguments calls [`grid_from_args`] on
/// the same flag set and reconstructs the identical [`SweepGrid`] (the
/// shared construction makes disagreement impossible; the protocol's
/// grid-address header makes it detectable anyway).
pub fn grid_args_for_forwarding() -> Vec<String> {
    let mut args = Vec::new();
    for flag in FORWARDED_VALUE_FLAGS {
        if let Some(value) = crate::arg_value(flag) {
            args.push(flag.to_string());
            args.push(value);
        }
    }
    for flag in FORWARDED_BOOL_FLAGS {
        if crate::has_flag(flag) {
            args.push(flag.to_string());
        }
    }
    args
}

/// Builds the grid-mode [`SweepGrid`] described by the process's
/// command-line flags — the one construction `scenario_sweep` executes,
/// `sweep_lint grid` statically analyzes and `sweep_drive` distributes,
/// so the binaries can never disagree about what a flag set means.
///
/// `--golden <name>` short-circuits to the named committed golden grid
/// (see [`crate::golden`]) and rejects every other grid-shaping flag:
/// the point of naming a golden grid is hitting its exact content
/// address.
///
/// The base scenario defaults to a LandShark with the stealthy fixed
/// attacker on sensor 0 (open-loop) or Table II's random-each-round
/// attacker (closed-loop), then applies `--suite`, `--strategy`,
/// `--honest`, `--fault`, `--f`, the closed-loop family and `--rounds`;
/// the axis flags (`--fusers`, `--history`, `--detectors`,
/// `--schedules`, `--seeds`) widen the grid.
///
/// The grid is deliberately **not** validated: `scenario_sweep` rejects
/// an invalid base scenario as a CLI error, while `sweep_lint` reports
/// lint findings about it instead — so the decision stays with the
/// caller.
///
/// # Errors
///
/// Returns the first flag-parsing error, naming the offending token.
pub fn grid_from_args() -> Result<SweepGrid, String> {
    if let Some(name) = crate::arg_value("--golden") {
        // A golden grid is a complete, committed definition: mixing it
        // with grid-shaping flags would silently produce a grid with a
        // different content address than the name promises.
        let shaping: Vec<&str> = FORWARDED_VALUE_FLAGS
            .iter()
            .filter(|&&flag| flag != "--golden" && crate::arg_value(flag).is_some())
            .chain(
                FORWARDED_BOOL_FLAGS
                    .iter()
                    .filter(|&&flag| crate::has_flag(flag)),
            )
            .copied()
            .collect();
        if !shaping.is_empty() {
            return Err(format!(
                "--golden names a committed grid; drop {}",
                shaping.join(", ")
            ));
        }
        let names: Vec<&str> = crate::golden::all().iter().map(|(n, _)| *n).collect();
        return crate::golden::find(&name).ok_or_else(|| {
            format!(
                "unknown golden grid `{name}` (one of: {})",
                names.join(", ")
            )
        });
    }
    let closed_loop = closed_loop_requested();
    let suite = match crate::arg_value("--suite") {
        Some(spec) => parse_suite(&spec)?,
        None => SuiteSpec::Landshark,
    };
    // Open-loop grids default to the stealthy fixed attacker on the
    // most precise sensor; closed-loop grids default to Table II's
    // "any sensor can be attacked" model.
    let mut base = if closed_loop {
        Scenario::new("sweep", suite).with_attacker(AttackerSpec::RandomEachRound)
    } else {
        Scenario::new("sweep", suite).with_attacker(AttackerSpec::Fixed {
            sensors: vec![0],
            strategy: StrategySpec::PhantomOptimal,
        })
    };
    if let Some(spec) = crate::arg_value("--strategy") {
        base = base.with_attacker(AttackerSpec::Fixed {
            sensors: vec![0],
            strategy: parse_strategy(&spec)?,
        });
    }
    if crate::has_flag("--honest") {
        base = base.with_attacker(AttackerSpec::None);
    }
    if let Some(spec) = crate::arg_value("--fault") {
        let (sensor, fault) = parse_fault(&spec)?;
        base = base.with_fault(sensor, fault);
    }
    if let Some(spec) = crate::arg_value("--f") {
        let f: usize = spec
            .parse()
            .map_err(|_| format!("--f wants a non-negative integer, got `{spec}`"))?;
        base = base.with_f(f);
    }
    if closed_loop {
        let target = match crate::arg_value("--target") {
            None => 10.0,
            Some(spec) => spec
                .parse()
                .ok()
                .filter(|t: &f64| t.is_finite() && *t > 0.0)
                .ok_or("--target wants a positive speed in mph")?,
        };
        let mut spec = ClosedLoopSpec::new(target);
        if let Some(deltas) = crate::arg_value("--deltas") {
            let (up, down) = parse_deltas(&deltas)?;
            spec = spec.with_deltas(up, down);
        }
        if let Some(platoon) = crate::arg_value("--platoon") {
            let (size, gap) = parse_platoon(&platoon)?;
            spec = spec.with_platoon(size, gap);
        }
        base = base.with_closed_loop(spec);
    }
    if let Some(rounds) = crate::arg_value("--rounds") {
        let rounds: u64 = rounds
            .parse()
            .map_err(|_| format!("--rounds wants a non-negative integer, got `{rounds}`"))?;
        base = base.with_rounds(rounds);
    }

    let mut grid = SweepGrid::new(base);
    // --fusers and --history feed one axis: explicit fusers first, then
    // one historical entry per swept rate bound.
    let mut fusers = match crate::arg_value("--fusers") {
        Some(spec) => Some(parse_fusers(&spec)?),
        None => None,
    };
    if let Some(spec) = crate::arg_value("--history") {
        let historical = parse_f64_list(&spec)?
            .into_iter()
            .map(|max_rate| FuserSpec::Historical { max_rate, dt: 0.1 });
        fusers.get_or_insert_with(Vec::new).extend(historical);
    }
    if let Some(fusers) = fusers {
        grid = grid.fusers(fusers);
    }
    if let Some(spec) = crate::arg_value("--detectors") {
        grid = grid.detectors(parse_detectors(&spec)?);
    }
    if let Some(spec) = crate::arg_value("--schedules") {
        grid = grid.schedules(parse_schedules(&spec)?);
    }
    if let Some(spec) = crate::arg_value("--seeds") {
        grid = grid.seeds(parse_u64_list(&spec)?);
    }
    Ok(grid)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fuser_axis_round_trips_all_names() {
        let specs = parse_fusers(
            "marzullo,brooks-iyengar,intersection,hull,inverse-variance,midpoint-median,historical",
        )
        .unwrap();
        assert_eq!(specs.len(), 7);
        assert_eq!(specs[0], FuserSpec::Marzullo);
        assert_eq!(
            specs[6],
            FuserSpec::Historical {
                max_rate: 3.5,
                dt: 0.1
            }
        );
        assert_eq!(
            parse_fusers("historical:2.5:0.05").unwrap(),
            vec![FuserSpec::Historical {
                max_rate: 2.5,
                dt: 0.05
            }]
        );
        assert!(parse_fusers("kalman").unwrap_err().contains("kalman"));
        assert!(parse_fusers("historical:x:0.1").is_err());
    }

    #[test]
    fn detector_axis_parses_windowed_params() {
        let specs = parse_detectors("off, immediate, windowed:20:6").unwrap();
        assert_eq!(
            specs,
            vec![
                DetectionMode::Off,
                DetectionMode::Immediate,
                DetectionMode::Windowed {
                    window: 20,
                    tolerance: 6
                }
            ]
        );
        assert!(parse_detectors("windowed:0:1").is_err());
        assert!(parse_detectors("windowed:9").is_err());
        assert!(parse_detectors("sliding").is_err());
    }

    #[test]
    fn schedule_and_integer_axes_parse() {
        assert_eq!(
            parse_schedules("ascending,descending,random").unwrap(),
            vec![
                SchedulePolicy::Ascending,
                SchedulePolicy::Descending,
                SchedulePolicy::Random
            ]
        );
        assert!(parse_schedules("rotating").is_err());
        assert_eq!(parse_u64_list("1, 2,3").unwrap(), vec![1, 2, 3]);
        assert!(parse_u64_list("1,x").is_err());
    }

    #[test]
    fn empty_axes_are_errors_not_empty_vectors() {
        // An all-separator spec must surface as a CLI error, not as
        // Ok(vec![]) that would panic the grid's non-empty assertion.
        for spec in ["", ",", " , "] {
            assert!(parse_fusers(spec).unwrap_err().contains("empty"));
            assert!(parse_detectors(spec).unwrap_err().contains("empty"));
            assert!(parse_schedules(spec).unwrap_err().contains("empty"));
            assert!(parse_u64_list(spec).unwrap_err().contains("empty"));
        }
    }

    #[test]
    fn deltas_parse_single_and_paired_forms() {
        assert_eq!(parse_deltas("0.5").unwrap(), (0.5, 0.5));
        assert_eq!(parse_deltas("1.0:0.25").unwrap(), (1.0, 0.25));
        assert!(parse_deltas("-0.5").is_err());
        assert!(parse_deltas("0.5:x").is_err());
        assert!(parse_deltas("inf").is_err());
    }

    #[test]
    fn platoon_parses_size_and_optional_gap() {
        assert_eq!(parse_platoon("3").unwrap(), (3, 0.01));
        assert_eq!(parse_platoon("5:0.005").unwrap(), (5, 0.005));
        assert!(parse_platoon("0").is_err());
        assert!(parse_platoon("3:0").is_err());
        assert!(parse_platoon("x").is_err());
    }

    #[test]
    fn f64_list_rejects_non_positive_entries() {
        assert_eq!(parse_f64_list("2.5, 3.5,5").unwrap(), vec![2.5, 3.5, 5.0]);
        assert!(parse_f64_list("-1").is_err());
        assert!(parse_f64_list("0").is_err());
        assert!(parse_f64_list("x").is_err());
        assert!(parse_f64_list(",").unwrap_err().contains("empty"));
    }

    #[test]
    fn cell_ranges_parse_half_open() {
        assert_eq!(parse_cells("0..12").unwrap(), 0..12);
        assert_eq!(parse_cells(" 4 .. 9 ").unwrap(), 4..9);
        assert!(parse_cells("5..5").unwrap_err().contains("empty"));
        assert!(parse_cells("9..4").is_err());
        assert!(parse_cells("7").is_err());
        assert!(parse_cells("a..b").is_err());
    }

    #[test]
    fn faults_parse_every_kind() {
        let (sensor, fault) = parse_fault("2:bias:3:0.25").unwrap();
        assert_eq!(sensor, 2);
        assert_eq!(fault.kind(), FaultKind::Bias { offset: 3.0 });
        assert_eq!(fault.probability(), 0.25);
        let (_, stuck) = parse_fault("0:stuck:12:1").unwrap();
        assert_eq!(stuck.kind(), FaultKind::StuckAt { value: 12.0 });
        let (_, scale) = parse_fault("1:scale:1.5:0.4").unwrap();
        assert_eq!(scale.kind(), FaultKind::Scale { factor: 1.5 });
        let (sensor, silent) = parse_fault("3:silent:0.5").unwrap();
        assert_eq!(sensor, 3);
        assert_eq!(silent.kind(), FaultKind::Silent);
        assert_eq!(silent.probability(), 0.5);
        assert!(parse_fault("3:silent:0.5:1").is_err());
        assert!(parse_fault("2:bias:0.25").is_err(), "bias needs its offset");
        assert!(parse_fault("2:flicker:1").is_err());
        assert!(parse_fault("2:bias:3:1.5").is_err(), "probability > 1");
        assert!(parse_fault("x:bias:3:0.5").is_err());
    }

    #[test]
    fn tolerances_parse_abs_and_optional_rel() {
        let tols = parse_tolerances("mean_width=1e-9:1e-6, above_rate=0.005").unwrap();
        assert_eq!(tols.len(), 2);
        assert_eq!(tols[0].0, "mean_width");
        assert_eq!(tols[0].1, Tolerance::new(1e-9, 1e-6));
        assert_eq!(tols[1].1, Tolerance::new(0.005, 0.0));
        assert!(parse_tolerances("mean_width").is_err(), "missing `=`");
        assert!(parse_tolerances("=0.1").is_err(), "empty column");
        assert!(parse_tolerances("w=-1").is_err(), "negative tolerance");
        assert!(parse_tolerances("w=x").is_err());
        assert!(parse_tolerances(",").unwrap_err().contains("empty"));
    }

    #[test]
    fn strategies_parse_all_names() {
        assert_eq!(
            parse_strategy("phantom-optimal").unwrap(),
            StrategySpec::PhantomOptimal
        );
        assert_eq!(
            parse_strategy("greedy-high").unwrap(),
            StrategySpec::GreedyHigh
        );
        assert_eq!(
            parse_strategy("greedy-low").unwrap(),
            StrategySpec::GreedyLow
        );
        assert_eq!(parse_strategy("truthful").unwrap(), StrategySpec::Truthful);
        assert!(parse_strategy("sneaky").unwrap_err().contains("sneaky"));
    }

    #[test]
    fn suite_parses_landshark_and_widths() {
        assert_eq!(parse_suite("landshark").unwrap(), SuiteSpec::Landshark);
        assert_eq!(
            parse_suite("widths:5,11,17").unwrap(),
            SuiteSpec::Widths(vec![5.0, 11.0, 17.0])
        );
        assert!(parse_suite("widths:").is_err());
        assert!(parse_suite("widths:-1").is_err());
        assert!(parse_suite("tank").is_err());
    }
}
