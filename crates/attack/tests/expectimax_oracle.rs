//! Cross-validation of the expectimax engine against an independent
//! oracle: when the attacker transmits *last*, her expectimax policy
//! degenerates to full knowledge, so the expected width must equal the
//! average of the exact per-realisation optima computed by the lattice
//! solver. Any disagreement indicts one of the two engines.

use arsf_attack::expectimax::{expected_fusion_width, expected_honest_width, GridScenario};
use arsf_attack::full_knowledge::optimal_attack;
use arsf_interval::Interval;
use arsf_schedule::TransmissionOrder;

/// Enumerates every grid placement of the correct sensors (mirroring the
/// scenario's measurement grid) and averages the exact full-knowledge
/// optimum for the attacked width.
fn oracle_last_slot(widths: &[f64], attacked: usize, f: usize, step: f64) -> f64 {
    let correct: Vec<(usize, f64)> = widths
        .iter()
        .copied()
        .enumerate()
        .filter(|(i, _)| *i != attacked)
        .collect();
    let grids: Vec<Vec<f64>> = correct
        .iter()
        .map(|(_, w)| {
            let count = (w / step).round() as usize;
            (0..=count)
                .map(|j| {
                    if count == 0 {
                        0.0
                    } else {
                        -w * 0.5 + w * j as f64 / count as f64
                    }
                })
                .collect()
        })
        .collect();

    let mut total = 0.0;
    let mut configs = 0u64;
    let mut choice = vec![0usize; grids.len()];
    loop {
        let placed: Vec<Interval<f64>> = grids
            .iter()
            .zip(&choice)
            .zip(&correct)
            .map(|((g, &j), (_, w))| Interval::centered(g[j], w * 0.5).expect("finite"))
            .collect();
        let best = optimal_attack(&placed, &[widths[attacked]], f)
            .expect("bounded configurations")
            .width();
        total += best;
        configs += 1;

        let mut i = 0;
        loop {
            if i == choice.len() {
                break;
            }
            choice[i] += 1;
            if choice[i] < grids[i].len() {
                break;
            }
            choice[i] = 0;
            i += 1;
        }
        if i == choice.len() {
            break;
        }
    }
    total / configs as f64
}

#[test]
fn expectimax_matches_full_knowledge_oracle_when_attacker_is_last() {
    let cases: Vec<(Vec<f64>, usize, usize, f64)> = vec![
        (vec![4.0, 6.0, 10.0], 0, 1, 2.0),
        (vec![4.0, 6.0, 10.0], 0, 1, 1.0),
        (vec![2.0, 8.0, 6.0], 2, 1, 2.0),
        (vec![4.0, 4.0, 8.0, 12.0], 0, 1, 4.0),
    ];
    for (widths, attacked, f, step) in cases {
        // Order: everyone else first, the attacked sensor last.
        let mut order: Vec<usize> = (0..widths.len()).filter(|&i| i != attacked).collect();
        order.push(attacked);
        let order = TransmissionOrder::new(order).unwrap();

        let scenario = GridScenario::new(widths.clone(), vec![attacked], f, step);
        let outcome = expected_fusion_width(&scenario, &order);
        let oracle = oracle_last_slot(&widths, attacked, f, step);
        assert!(
            (outcome.expected_width - oracle).abs() < 1e-9,
            "widths {widths:?}, attacked {attacked}, step {step}: expectimax {} vs oracle {oracle}",
            outcome.expected_width
        );
        assert!(outcome.stealthy);
    }
}

#[test]
fn expectimax_with_earlier_slot_never_beats_last_slot() {
    // Less information cannot help an optimal attacker.
    let widths = vec![4.0, 6.0, 10.0];
    let scenario = GridScenario::new(widths.clone(), vec![0], 1, 2.0);
    let last = TransmissionOrder::new(vec![1, 2, 0]).unwrap();
    let middle = TransmissionOrder::new(vec![1, 0, 2]).unwrap();
    let first = TransmissionOrder::new(vec![0, 1, 2]).unwrap();
    let e_last = expected_fusion_width(&scenario, &last).expected_width;
    let e_middle = expected_fusion_width(&scenario, &middle).expected_width;
    let e_first = expected_fusion_width(&scenario, &first).expected_width;
    assert!(
        e_first <= e_middle + 1e-9,
        "first {e_first} vs middle {e_middle}"
    );
    assert!(
        e_middle <= e_last + 1e-9,
        "middle {e_middle} vs last {e_last}"
    );
}

#[test]
fn expectimax_attack_dominates_honest_for_every_order() {
    let widths = vec![4.0, 6.0, 8.0];
    let scenario = GridScenario::new(widths.clone(), vec![1], 1, 2.0);
    let honest = expected_honest_width(&scenario);
    for order in [
        TransmissionOrder::new(vec![0, 1, 2]).unwrap(),
        TransmissionOrder::new(vec![2, 1, 0]).unwrap(),
        TransmissionOrder::new(vec![1, 0, 2]).unwrap(),
        TransmissionOrder::new(vec![0, 2, 1]).unwrap(),
    ] {
        let outcome = expected_fusion_width(&scenario, &order);
        assert!(
            outcome.expected_width >= honest - 1e-9,
            "order {order}: {} below honest {honest}",
            outcome.expected_width
        );
    }
}

#[test]
fn two_attacked_consecutive_slots_coordinate() {
    // n = 5, f = 2, two attacked sensors transmitting last: their joint
    // expectimax must at least match the single-attacker variant on the
    // same schedule (more compromised sensors, more power).
    let widths = vec![2.0, 2.0, 4.0, 6.0, 8.0];
    let order = TransmissionOrder::new(vec![2, 3, 4, 0, 1]).unwrap();
    let single = GridScenario::new(widths.clone(), vec![0], 2, 4.0);
    let double = GridScenario::new(widths.clone(), vec![0, 1], 2, 4.0);
    let e_single = expected_fusion_width(&single, &order).expected_width;
    let e_double = expected_fusion_width(&double, &order).expected_width;
    assert!(
        e_double >= e_single - 1e-9,
        "double {e_double} must dominate single {e_single}"
    );
}
