//! Property-based tests for the attack crate: solver exactness and the
//! paper's theorems on random configurations.

use arsf_attack::full_knowledge::{brute_force_attack, optimal_attack};
use arsf_attack::stealth::verify_stealth;
use arsf_attack::worst_case::{attacked_worst_case, global_worst_case, no_attack_worst_case};
use arsf_attack::AttackError;
use arsf_interval::Interval;
use proptest::prelude::*;

/// Correct intervals on a small integer grid, all containing 0 (the
/// truth), as in the paper's system model.
fn truthful_intervals(max: usize) -> impl Strategy<Value = Vec<Interval<f64>>> {
    prop::collection::vec((0_i64..8, 0_i64..8), 2..=max).prop_map(|shapes| {
        shapes
            .into_iter()
            .map(|(left, right)| Interval::new(-(left as f64), right as f64).expect("ordered"))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lattice_solver_matches_grid_oracle_single(
        correct in truthful_intervals(4),
        w in 0_i64..10,
    ) {
        // n = correct + 1, f chosen to keep fa=1 bounded: k = n-1 > 1.
        let f = 1;
        let n = correct.len() + 1;
        prop_assume!(1 < n - f);
        let exact = optimal_attack(&correct, &[w as f64], f).unwrap();
        let oracle = brute_force_attack(&correct, &[w as f64], f, 1.0).unwrap();
        prop_assert!(
            (exact.width() - oracle.width()).abs() < 1e-9,
            "exact {} vs oracle {} for correct={:?}, w={}",
            exact.width(), oracle.width(), correct, w
        );
    }

    #[test]
    fn lattice_solver_matches_grid_oracle_double(
        correct in truthful_intervals(3),
        w1 in 0_i64..6,
        w2 in 0_i64..6,
    ) {
        let f = 2;
        let n = correct.len() + 2;
        prop_assume!(2 < n - f);
        let widths = [w1 as f64, w2 as f64];
        let exact = optimal_attack(&correct, &widths, f).unwrap();
        let oracle = brute_force_attack(&correct, &widths, f, 1.0).unwrap();
        prop_assert!(
            (exact.width() - oracle.width()).abs() < 1e-9,
            "exact {} vs oracle {} for correct={:?}, widths={:?}",
            exact.width(), oracle.width(), correct, widths
        );
    }

    #[test]
    fn optimal_attack_is_stealthy_and_width_preserving(
        correct in truthful_intervals(4),
        w in 0_i64..10,
    ) {
        let f = 1;
        prop_assume!(1 < correct.len() + 1 - f);
        let attack = optimal_attack(&correct, &[w as f64], f).unwrap();
        prop_assert!(verify_stealth(&attack.placements, &attack.fusion).is_empty());
        prop_assert!((attack.placements[0].width() - w as f64).abs() < 1e-12);
        // Never worse than honesty.
        if let Some(honest) = attack.honest_width {
            prop_assert!(attack.width() >= honest - 1e-12);
        }
    }

    #[test]
    fn theorem2_bound_on_attacked_configurations(
        correct in truthful_intervals(4),
        w in 0_i64..10,
    ) {
        // |S_{N,f}| <= sum of two widest correct widths.
        let f = 1;
        prop_assume!(1 < correct.len() + 1 - f);
        let attack = optimal_attack(&correct, &[w as f64], f).unwrap();
        let mut widths: Vec<f64> = correct.iter().map(|s| s.width()).collect();
        widths.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let bound = widths[0] + widths[1];
        prop_assert!(
            attack.width() <= bound + 1e-9,
            "width {} exceeds Theorem 2 bound {bound}",
            attack.width()
        );
    }

    #[test]
    fn theorem3_largest_attacked_equals_no_attack(
        mut widths in prop::collection::vec(1_i64..8, 3..=4),
        extra in 8_i64..12,
    ) {
        // Make the last sensor strictly the largest, attack it.
        widths.sort_unstable();
        let mut ws: Vec<f64> = widths.iter().map(|&w| w as f64).collect();
        ws.push(extra as f64);
        let f = 1;
        let n = ws.len();
        prop_assume!(1 < n - f);
        let na = no_attack_worst_case(&ws, f, 1.0).unwrap();
        let attacked = attacked_worst_case(&ws, &[n - 1], f, 1.0).unwrap();
        prop_assert!(
            (attacked.width - na.width).abs() < 1e-9,
            "attacking the largest changed the worst case: {} vs {}",
            attacked.width, na.width
        );
    }

    #[test]
    fn theorem4_smallest_attacked_achieves_global_worst_case(
        mut widths in prop::collection::vec(1_i64..9, 3..=4),
    ) {
        widths.sort_unstable();
        let ws: Vec<f64> = widths.iter().map(|&w| w as f64).collect();
        let f = 1;
        let n = ws.len();
        prop_assume!(1 < n - f);
        let (_, global) = global_worst_case(&ws, 1, f, 1.0).unwrap();
        let smallest = attacked_worst_case(&ws, &[0], f, 1.0).unwrap();
        prop_assert!(
            (smallest.width - global.width).abs() < 1e-9,
            "smallest-attack {} vs global {}",
            smallest.width, global.width
        );
    }

    #[test]
    fn worst_case_attack_dominates_no_attack(
        widths in prop::collection::vec(1_i64..8, 3..=4),
        victim_seed in 0_usize..4,
    ) {
        let ws: Vec<f64> = widths.iter().map(|&w| w as f64).collect();
        let f = 1;
        prop_assume!(1 < ws.len() - f);
        let victim = victim_seed % ws.len();
        let na = no_attack_worst_case(&ws, f, 1.0).unwrap();
        let wc = attacked_worst_case(&ws, &[victim], f, 1.0).unwrap();
        prop_assert!(wc.width >= na.width - 1e-9);
    }

    #[test]
    fn unbounded_attacks_are_rejected(
        correct in truthful_intervals(2),
        w in 1_i64..5,
    ) {
        // fa = correct.len() with f = correct.len() makes k = fa: error.
        let fa = correct.len();
        let widths = vec![w as f64; fa];
        let f = fa;
        let result = optimal_attack(&correct, &widths, f);
        let unbounded = matches!(result, Err(AttackError::UnboundedAttack { .. }));
        prop_assert!(unbounded);
    }
}
