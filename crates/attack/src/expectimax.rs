//! Exact expected-fusion-width evaluation under limited information
//! (the paper's optimisation problem (2) and the engine behind Table I).
//!
//! The paper's evaluation methodology (footnote 5) discretises the real
//! line and "generates all possible combinations of measurements for all
//! sensors", averaging the fusion-interval length. This module reproduces
//! that computation exactly as an **expectimax** over the transmission
//! schedule:
//!
//! * a *correct* sensor's slot averages over every grid placement of its
//!   measurement (uniform, always containing the true value),
//! * an *attacked* sensor's slot maximises the expected fusion width over
//!   the stealthy forgeries available in its current mode — containing
//!   `Δ` while passive, free-but-overlap-guaranteed while active,
//! * the leaf fuses all `n` intervals with the system's `f` and scores
//!   the width.
//!
//! Stealth is enforced *in guarantee form*: a forgery is only eligible if
//! it intersects the final fusion interval in **every** continuation of
//! the round (the paper's attacker never risks detection). A truthful
//! placement always qualifies, so the maximisation is never empty.
//!
//! Measurement grids: a sensor of width `w` measures at
//! `truth − w/2 + j·w/⌈w/step⌉`, which for the paper's integer widths and
//! integer `step` puts every interval endpoint on the integer lattice
//! anchored at the true value; forgery candidates are enumerated on the
//! same lattice, where (by the snapping argument of
//! [`crate::full_knowledge`]) an optimal placement always exists.

use arsf_interval::ops::intersection_all;
use arsf_interval::Interval;
use arsf_schedule::TransmissionOrder;

use crate::stealth::{active_feasible, passive_feasible, verify_stealth};
use crate::AttackMode;

/// How capable the modelled attacker is.
///
/// [`AttackerStyle::Optimal`] considers every stealthy forgery —
/// problem (2) solved exactly. [`AttackerStyle::OneSidedHigh`] restricts
/// forgeries to never extend *below* the attacker's own evidence
/// (`lo ≥ Δ.lo`), modelling a simpler adversary that always pushes the
/// fusion interval upward. The paper's reported Table I expectations are
/// consistent with such a fixed-side attacker (see EXPERIMENTS.md), so
/// this style is offered for faithful side-by-side comparison;
/// `Optimal` strictly dominates it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AttackerStyle {
    /// Exact expectimax over all stealthy forgeries (default).
    #[default]
    Optimal,
    /// Forgeries never extend below `Δ`'s lower endpoint.
    OneSidedHigh,
}

/// A discretised attack scenario: the static description from which
/// expected fusion widths are computed.
#[derive(Debug, Clone, PartialEq)]
pub struct GridScenario {
    widths: Vec<f64>,
    attacked: Vec<usize>,
    f: usize,
    step: f64,
    truth: f64,
    style: AttackerStyle,
}

impl GridScenario {
    /// Creates a scenario with the given sensor interval widths, attacked
    /// sensor indices, fusion fault assumption `f` and grid step. The true
    /// value defaults to `0.0` (the analysis is translation invariant).
    ///
    /// # Panics
    ///
    /// Panics when a width is negative/non-finite, an attacked index is
    /// out of range, `step` is not positive, or the attacked count
    /// reaches `n − f` (the unbounded regime) — all static configuration
    /// errors.
    pub fn new(widths: Vec<f64>, attacked: Vec<usize>, f: usize, step: f64) -> Self {
        assert!(
            widths.iter().all(|w| w.is_finite() && *w >= 0.0),
            "widths must be finite and non-negative"
        );
        assert!(step > 0.0 && step.is_finite(), "step must be positive");
        let n = widths.len();
        let mut attacked = attacked;
        attacked.sort_unstable();
        attacked.dedup();
        assert!(
            attacked.iter().all(|&a| a < n),
            "attacked indices must be < n"
        );
        assert!(
            attacked.len() < n.saturating_sub(f),
            "attacked count must stay below the coverage requirement n - f"
        );
        Self {
            widths,
            attacked,
            f,
            step,
            truth: 0.0,
            style: AttackerStyle::Optimal,
        }
    }

    /// Moves the true value (builder style).
    #[must_use]
    pub fn with_truth(mut self, truth: f64) -> Self {
        assert!(truth.is_finite(), "truth must be finite");
        self.truth = truth;
        self
    }

    /// Selects the attacker capability model (builder style).
    #[must_use]
    pub fn with_style(mut self, style: AttackerStyle) -> Self {
        self.style = style;
        self
    }

    /// The attacker capability model.
    pub fn style(&self) -> AttackerStyle {
        self.style
    }

    /// The sensor interval widths in id order.
    pub fn widths(&self) -> &[f64] {
        &self.widths
    }

    /// The attacked sensor indices (sorted).
    pub fn attacked(&self) -> &[usize] {
        &self.attacked
    }

    /// The fusion fault assumption.
    pub fn f(&self) -> usize {
        self.f
    }

    /// The grid step.
    pub fn step(&self) -> f64 {
        self.step
    }

    /// The true value.
    pub fn truth(&self) -> f64 {
        self.truth
    }

    /// The number of sensors.
    pub fn n(&self) -> usize {
        self.widths.len()
    }

    /// Measurement-offset grid for a sensor of width `w`: every centre
    /// position whose interval contains the truth, at (self-correcting)
    /// grid resolution.
    fn measurement_grid(&self, w: f64) -> Vec<f64> {
        grid_points(self.truth - w * 0.5, self.truth + w * 0.5, self.step)
    }
}

/// The result of one expected-width evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpectedOutcome {
    /// The expected fusion-interval width (the paper's `E|S_{N,f}|`).
    pub expected_width: f64,
    /// Number of leaf fusions evaluated (enumeration size).
    pub leaves: u64,
    /// Whether the attacker stayed stealthy in every enumerated branch
    /// (always `true` for a correctly-configured scenario; exposed for
    /// test assertions).
    pub stealthy: bool,
}

/// Computes the expected fusion width when the attacker plays the
/// expectimax-optimal stealthy policy under the given transmission order.
///
/// # Panics
///
/// Panics if `order.len() != scenario.n()`.
///
/// # Example
///
/// ```
/// use arsf_attack::expectimax::{expected_fusion_width, GridScenario};
/// use arsf_schedule::{SchedulePolicy, TransmissionOrder};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// // Paper Table I, first setup: n = 3, fa = 1, L = {5, 11, 17}, f = 1.
/// let widths = vec![5.0, 11.0, 17.0];
/// let scenario = GridScenario::new(widths.clone(), vec![0], 1, 1.0);
/// let mut rng = StdRng::seed_from_u64(0);
/// let asc = SchedulePolicy::Ascending.order(&widths, 0, &mut rng);
/// let desc = SchedulePolicy::Descending.order(&widths, 0, &mut rng);
/// let e_asc = expected_fusion_width(&scenario, &asc);
/// let e_desc = expected_fusion_width(&scenario, &desc);
/// // The paper's headline: Descending hands the precise attacked sensor
/// // full information, Ascending forces it to commit blind.
/// assert!(e_desc.expected_width >= e_asc.expected_width);
/// ```
pub fn expected_fusion_width(
    scenario: &GridScenario,
    order: &TransmissionOrder,
) -> ExpectedOutcome {
    assert_eq!(
        order.len(),
        scenario.n(),
        "order length must match sensor count"
    );
    let n = scenario.n();
    let f = scenario.f;

    // Deterministic mode per attacked slot.
    let mut modes: Vec<Option<AttackMode>> = vec![None; n];
    let attacked_slots: Vec<usize> = order
        .iter()
        .enumerate()
        .filter(|(_, s)| scenario.attacked.contains(s))
        .map(|(slot, _)| slot)
        .collect();
    for (idx, &slot) in attacked_slots.iter().enumerate() {
        let far = attacked_slots.len() - idx;
        modes[slot] = Some(AttackMode::for_slot(slot, n, f, far));
    }
    let needs_delta = modes.iter().flatten().any(|m| *m == AttackMode::Passive);

    // Enumerate the attacker's own correct readings when passive mode
    // needs Δ; otherwise a single pass with a placeholder.
    let own_grids: Vec<Vec<f64>> = scenario
        .attacked
        .iter()
        .map(|&a| {
            if needs_delta {
                scenario.measurement_grid(scenario.widths[a])
            } else {
                vec![scenario.truth]
            }
        })
        .collect();

    let mut total = 0.0;
    let mut configs = 0u64;
    let mut leaves = 0u64;
    let mut stealthy = true;

    let mut own_choice = vec![0usize; scenario.attacked.len()];
    loop {
        // Build the attacker's correct readings and Δ for this config.
        let own_correct: Vec<(usize, Interval<f64>)> = scenario
            .attacked
            .iter()
            .zip(&own_choice)
            .map(|(&a, &j)| {
                let w = scenario.widths[a];
                let centre = own_grids[scenario.attacked.iter().position(|&x| x == a).unwrap()][j];
                (
                    a,
                    Interval::centered(centre, w * 0.5).expect("grid centres are finite"),
                )
            })
            .collect();
        let delta = intersection_all(&own_correct.iter().map(|(_, iv)| *iv).collect::<Vec<_>>())
            .unwrap_or_else(|| Interval::degenerate(scenario.truth).expect("truth is finite"));

        let mut eval = Eval {
            scenario,
            order,
            modes: &modes,
            delta,
            own_correct: &own_correct,
            leaves: 0,
        };
        let mut placed: Vec<(usize, Interval<f64>)> = Vec::with_capacity(n);
        let (width, ok) = eval.node(0, &mut placed);
        total += width;
        leaves += eval.leaves;
        stealthy &= ok;
        configs += 1;

        // Advance the mixed-radix counter over own-reading choices.
        let mut i = 0;
        loop {
            if i == own_choice.len() {
                break;
            }
            own_choice[i] += 1;
            if own_choice[i] < own_grids[i].len() {
                break;
            }
            own_choice[i] = 0;
            i += 1;
        }
        if i == own_choice.len() {
            break;
        }
    }

    ExpectedOutcome {
        expected_width: total / configs as f64,
        leaves,
        stealthy,
    }
}

/// The no-attack control: expected fusion width when every sensor
/// (including the nominally attacked ones) transmits truthfully. Order
/// independent.
///
/// # Example
///
/// ```
/// use arsf_attack::expectimax::{expected_honest_width, GridScenario};
///
/// let scenario = GridScenario::new(vec![5.0, 11.0, 17.0], vec![0], 1, 1.0);
/// let honest = expected_honest_width(&scenario);
/// assert!(honest > 0.0);
/// ```
pub fn expected_honest_width(scenario: &GridScenario) -> f64 {
    let grids: Vec<Vec<f64>> = scenario
        .widths
        .iter()
        .map(|&w| scenario.measurement_grid(w))
        .collect();
    let mut total = 0.0;
    let mut count = 0u64;
    let mut choice = vec![0usize; grids.len()];
    loop {
        let intervals: Vec<Interval<f64>> = grids
            .iter()
            .zip(&choice)
            .zip(&scenario.widths)
            .map(|((g, &j), &w)| {
                Interval::centered(g[j], w * 0.5).expect("grid centres are finite")
            })
            .collect();
        let fused = arsf_fusion::marzullo::fuse(&intervals, scenario.f)
            .expect("truth-containing intervals always reach coverage n - f");
        total += fused.width();
        count += 1;

        let mut i = 0;
        loop {
            if i == choice.len() {
                break;
            }
            choice[i] += 1;
            if choice[i] < grids[i].len() {
                break;
            }
            choice[i] = 0;
            i += 1;
        }
        if i == choice.len() {
            break;
        }
    }
    total / count as f64
}

struct Eval<'a> {
    scenario: &'a GridScenario,
    order: &'a TransmissionOrder,
    modes: &'a [Option<AttackMode>],
    delta: Interval<f64>,
    own_correct: &'a [(usize, Interval<f64>)],
    leaves: u64,
}

impl Eval<'_> {
    /// Expectimax over slots; returns (expected width, stealth guaranteed).
    fn node(&mut self, slot: usize, placed: &mut Vec<(usize, Interval<f64>)>) -> (f64, bool) {
        let n = self.scenario.n();
        if slot == n {
            return self.leaf(placed);
        }
        let sensor = self.order[slot];
        match self.modes[slot] {
            None => {
                // Correct sensor: average over its measurement grid.
                let w = self.scenario.widths[sensor];
                let grid = self.scenario.measurement_grid(w);
                let mut sum = 0.0;
                let mut ok = true;
                for &centre in &grid {
                    let interval =
                        Interval::centered(centre, w * 0.5).expect("grid centres are finite");
                    placed.push((sensor, interval));
                    let (width, child_ok) = self.node(slot + 1, placed);
                    placed.pop();
                    sum += width;
                    ok &= child_ok;
                }
                (sum / grid.len() as f64, ok)
            }
            Some(mode) => {
                // Attacked sensor: maximise over stealthy candidates.
                let w = self.scenario.widths[sensor];
                let candidates = self.candidates(sensor, w, mode, placed);
                let mut best_ok: Option<f64> = None;
                let mut best_any = f64::NEG_INFINITY;
                for candidate in candidates {
                    placed.push((sensor, candidate));
                    let (width, child_ok) = self.node(slot + 1, placed);
                    placed.pop();
                    best_any = best_any.max(width);
                    if child_ok && best_ok.is_none_or(|b| width > b) {
                        best_ok = Some(width);
                    }
                }
                match best_ok {
                    Some(width) => (width, true),
                    // No guaranteed-stealthy candidate (cannot happen when
                    // the truthful fallback is enumerable): propagate the
                    // failure so an ancestor choice is discarded.
                    None => (best_any, false),
                }
            }
        }
    }

    fn leaf(&mut self, placed: &[(usize, Interval<f64>)]) -> (f64, bool) {
        self.leaves += 1;
        let intervals: Vec<Interval<f64>> = placed.iter().map(|(_, iv)| *iv).collect();
        let fused = arsf_fusion::marzullo::fuse(&intervals, self.scenario.f)
            .expect("correct intervals contain the truth, so coverage n - f is reachable");
        let forged: Vec<Interval<f64>> = placed
            .iter()
            .filter(|(s, _)| self.scenario.attacked.contains(s))
            .map(|(_, iv)| *iv)
            .collect();
        let ok = verify_stealth(&forged, &fused).is_empty();
        (fused.width(), ok)
    }

    /// Stealth-feasible forgery candidates for an attacked slot.
    fn candidates(
        &self,
        sensor: usize,
        w: f64,
        mode: AttackMode,
        placed: &[(usize, Interval<f64>)],
    ) -> Vec<Interval<f64>> {
        let mut out = self.unstyled_candidates(sensor, w, mode, placed);
        if self.scenario.style == AttackerStyle::OneSidedHigh {
            let floor = self.delta.lo();
            out.retain(|c| c.lo() >= floor - 1e-12);
            if out.is_empty() {
                // The truthful reading always qualifies (it starts at or
                // above Δ's lower endpoint by construction of Δ).
                if let Some((_, own)) = self.own_correct.iter().find(|(s, _)| *s == sensor) {
                    out.push(*own);
                }
            }
        }
        out
    }

    fn unstyled_candidates(
        &self,
        sensor: usize,
        w: f64,
        mode: AttackMode,
        placed: &[(usize, Interval<f64>)],
    ) -> Vec<Interval<f64>> {
        let step = self.scenario.step;
        let truth = self.scenario.truth;
        match mode {
            AttackMode::Passive => {
                // Lower endpoints keeping Δ ⊆ [lo, lo + w].
                let mut los = grid_points(self.delta.hi() - w, self.delta.lo(), step);
                los.push(self.delta.hi() - w);
                los.push(self.delta.lo());
                dedup_sorted(&mut los);
                los.iter()
                    .map(|&lo| Interval::new(lo, lo + w).expect("finite grid"))
                    .filter(|c| passive_feasible(c, &self.delta))
                    .collect()
            }
            AttackMode::Active => {
                // Anchor on what is on the bus (falling back to the truth
                // when transmitting first); pad so every useful placement
                // is reachable. Restricting to this window loses nothing:
                // a forgery overlapping neither the bus contents nor any
                // possible future correct interval cannot influence the
                // fusion interval and would be flagged.
                let max_w = self.scenario.widths.iter().copied().fold(0.0_f64, f64::max);
                let (mut anchor_lo, mut anchor_hi) = (truth, truth);
                for (_, iv) in placed {
                    anchor_lo = anchor_lo.min(iv.lo());
                    anchor_hi = anchor_hi.max(iv.hi());
                }
                let lo_start = anchor_lo - w - max_w;
                let lo_end = anchor_hi + max_w;
                // Snap to the lattice anchored at the truth so candidates
                // align with measurement endpoints.
                let j_lo = ((lo_start - truth) / step).floor() as i64;
                let j_hi = ((lo_end - truth) / step).ceil() as i64;
                let seen: Vec<Interval<f64>> = placed.iter().map(|(_, iv)| *iv).collect();
                let future_own = self
                    .modes
                    .iter()
                    .enumerate()
                    .filter(|(slot, m)| m.is_some() && *slot > self.slot_of(sensor, placed))
                    .count();
                let n = self.scenario.n();
                let f = self.scenario.f;
                let mut out: Vec<Interval<f64>> = (j_lo..=j_hi)
                    .map(|j| {
                        let lo = truth + j as f64 * step;
                        Interval::new(lo, lo + w).expect("finite lattice")
                    })
                    .filter(|c| active_feasible(c, &seen, future_own, n, f))
                    .collect();
                // Guaranteed-stealthy fallback: the sensor's own correct
                // reading (when enumerated) always intersects the fusion
                // interval.
                if let Some((_, own)) = self.own_correct.iter().find(|(s, _)| *s == sensor) {
                    out.push(*own);
                }
                out
            }
        }
    }

    fn slot_of(&self, sensor: usize, _placed: &[(usize, Interval<f64>)]) -> usize {
        self.order
            .slot_of(sensor)
            .expect("attacked sensor is in the order")
    }
}

/// Inclusive grid from `a` to `b` with approximately the given step; the
/// count self-corrects so both endpoints are always included exactly.
fn grid_points(a: f64, b: f64, step: f64) -> Vec<f64> {
    debug_assert!(b >= a - 1e-12, "grid bounds must be ordered");
    let span = (b - a).max(0.0);
    let count = (span / step).round() as usize;
    if count == 0 {
        return vec![a + span * 0.5];
    }
    (0..=count)
        .map(|j| a + span * j as f64 / count as f64)
        .collect()
}

fn dedup_sorted(xs: &mut Vec<f64>) {
    xs.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite coordinates"));
    xs.dedup();
}

#[cfg(test)]
mod tests {
    use super::*;
    use arsf_schedule::SchedulePolicy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn order_for(policy: &SchedulePolicy, widths: &[f64]) -> TransmissionOrder {
        let mut rng = StdRng::seed_from_u64(0);
        policy.order(widths, 0, &mut rng)
    }

    #[test]
    fn grid_points_include_endpoints() {
        let g = grid_points(-2.5, 2.5, 1.0);
        assert_eq!(g.len(), 6);
        assert_eq!(g[0], -2.5);
        assert_eq!(g[5], 2.5);
        assert_eq!(grid_points(3.0, 3.0, 1.0), vec![3.0]);
    }

    #[test]
    fn single_attacker_ascending_is_forced_truthful() {
        // n = 3, f = 1, fa = 1 on the most precise sensor, Ascending:
        // she transmits first in passive mode with |Δ| = her own width,
        // so the expected width equals the honest expectation.
        let widths = vec![5.0, 11.0, 17.0];
        let sc = GridScenario::new(widths.clone(), vec![0], 1, 1.0);
        let asc = order_for(&SchedulePolicy::Ascending, &widths);
        let outcome = expected_fusion_width(&sc, &asc);
        let honest = expected_honest_width(&sc);
        assert!(outcome.stealthy);
        assert!(
            (outcome.expected_width - honest).abs() < 1e-9,
            "forced-truthful attacker must match honest: {} vs {honest}",
            outcome.expected_width
        );
    }

    #[test]
    fn descending_beats_ascending_for_precise_attacker() {
        // The paper's Table I shape: attacking the most precise sensor,
        // Descending gives the attacker full knowledge.
        let widths = vec![5.0, 11.0, 17.0];
        let sc = GridScenario::new(widths.clone(), vec![0], 1, 1.0);
        let asc = order_for(&SchedulePolicy::Ascending, &widths);
        let desc = order_for(&SchedulePolicy::Descending, &widths);
        let e_asc = expected_fusion_width(&sc, &asc);
        let e_desc = expected_fusion_width(&sc, &desc);
        assert!(e_asc.stealthy && e_desc.stealthy);
        assert!(
            e_desc.expected_width > e_asc.expected_width,
            "descending {} must exceed ascending {}",
            e_desc.expected_width,
            e_asc.expected_width
        );
    }

    #[test]
    fn attack_never_below_honest_baseline() {
        let widths = vec![4.0, 6.0, 8.0];
        let sc = GridScenario::new(widths.clone(), vec![1], 1, 2.0);
        let honest = expected_honest_width(&sc);
        for policy in [SchedulePolicy::Ascending, SchedulePolicy::Descending] {
            let order = order_for(&policy, &widths);
            let outcome = expected_fusion_width(&sc, &order);
            assert!(
                outcome.expected_width >= honest - 1e-9,
                "{policy:?}: {} < honest {honest}",
                outcome.expected_width
            );
        }
    }

    #[test]
    fn no_attack_scenario_equals_honest() {
        let widths = vec![4.0, 6.0];
        let sc = GridScenario::new(widths.clone(), vec![], 0, 2.0);
        let order = order_for(&SchedulePolicy::Ascending, &widths);
        let outcome = expected_fusion_width(&sc, &order);
        let honest = expected_honest_width(&sc);
        assert!((outcome.expected_width - honest).abs() < 1e-12);
        assert!(outcome.stealthy);
    }

    #[test]
    fn coarser_grids_are_cheaper() {
        let widths = vec![4.0, 6.0, 8.0];
        let fine = GridScenario::new(widths.clone(), vec![0], 1, 1.0);
        let coarse = GridScenario::new(widths.clone(), vec![0], 1, 4.0);
        let order = order_for(&SchedulePolicy::Descending, &widths);
        let fine_out = expected_fusion_width(&fine, &order);
        let coarse_out = expected_fusion_width(&coarse, &order);
        assert!(coarse_out.leaves < fine_out.leaves);
    }

    #[test]
    fn truth_translation_invariance() {
        let widths = vec![4.0, 6.0, 8.0];
        let base = GridScenario::new(widths.clone(), vec![0], 1, 2.0);
        let moved = GridScenario::new(widths.clone(), vec![0], 1, 2.0).with_truth(100.0);
        let order = order_for(&SchedulePolicy::Descending, &widths);
        let a = expected_fusion_width(&base, &order);
        let b = expected_fusion_width(&moved, &order);
        assert!((a.expected_width - b.expected_width).abs() < 1e-9);
    }

    #[test]
    fn one_sided_style_is_dominated_by_optimal() {
        let widths = vec![5.0, 11.0, 17.0];
        let desc = order_for(&SchedulePolicy::Descending, &widths);
        let optimal = GridScenario::new(widths.clone(), vec![0], 1, 1.0);
        let one_sided = GridScenario::new(widths.clone(), vec![0], 1, 1.0)
            .with_style(AttackerStyle::OneSidedHigh);
        assert_eq!(one_sided.style(), AttackerStyle::OneSidedHigh);
        let e_opt = expected_fusion_width(&optimal, &desc);
        let e_one = expected_fusion_width(&one_sided, &desc);
        assert!(e_one.stealthy);
        assert!(
            e_one.expected_width <= e_opt.expected_width + 1e-9,
            "one-sided {} must not beat optimal {}",
            e_one.expected_width,
            e_opt.expected_width
        );
        // And it still beats honesty (it is an attack).
        let honest = expected_honest_width(&optimal);
        assert!(e_one.expected_width > honest);
    }

    #[test]
    #[should_panic(expected = "attacked count must stay below")]
    fn unbounded_configuration_panics() {
        // n = 3, f = 1: n - f = 2; fa = 2 not allowed.
        let _ = GridScenario::new(vec![1.0, 2.0, 3.0], vec![0, 1], 1, 1.0);
    }

    #[test]
    #[should_panic(expected = "order length")]
    fn order_length_mismatch_panics() {
        let sc = GridScenario::new(vec![1.0, 2.0, 3.0], vec![0], 1, 1.0);
        let order = TransmissionOrder::identity(2);
        let _ = expected_fusion_width(&sc, &order);
    }
}
