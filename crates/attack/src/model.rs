//! Attacker configuration, modes and the strategy interface.

use arsf_interval::ops::intersection_all;
use arsf_interval::Interval;
use arsf_schedule::TransmissionOrder;

/// The attacker's operating mode at one of her transmission slots
/// (paper, Section III-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackMode {
    /// Not enough measurements on the bus: the forged interval must
    /// contain `Δ` to guarantee overlap with the fusion interval.
    Passive,
    /// `sent ≥ n − f − far`: free placement, provided overlap with the
    /// fusion interval remains guaranteed.
    Active,
}

impl AttackMode {
    /// Determines the mode from the bus state: `sent` measurements already
    /// transmitted, `n` sensors total, fusion fault assumption `f`, and
    /// `far` = the attacker's still-unsent intervals (including the one
    /// about to be forged).
    ///
    /// # Example
    ///
    /// ```
    /// use arsf_attack::AttackMode;
    ///
    /// // n = 3, f = 1, one attacked interval left to send:
    /// assert_eq!(AttackMode::for_slot(0, 3, 1, 1), AttackMode::Passive);
    /// assert_eq!(AttackMode::for_slot(1, 3, 1, 1), AttackMode::Active);
    /// ```
    pub fn for_slot(sent: usize, n: usize, f: usize, far: usize) -> Self {
        if sent >= n.saturating_sub(f + far) {
            AttackMode::Active
        } else {
            AttackMode::Passive
        }
    }
}

/// The intersection `Δ` of the correct readings of all compromised
/// sensors — every point the attacker cannot rule out as the true value.
///
/// Returns `None` for an empty slice. For readings taken by correct
/// sensors the intersection is never empty (all contain the truth).
///
/// # Example
///
/// ```
/// use arsf_attack::delta;
/// use arsf_interval::Interval;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let readings = [Interval::new(9.0, 11.0)?, Interval::new(10.0, 12.0)?];
/// assert_eq!(delta(&readings), Some(Interval::new(10.0, 11.0)?));
/// # Ok(())
/// # }
/// ```
pub fn delta(correct_readings: &[Interval<f64>]) -> Option<Interval<f64>> {
    intersection_all(correct_readings)
}

/// Static attacker configuration: which sensors she controls and the
/// fusion fault assumption `f` she knows the system uses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttackerConfig {
    compromised: Vec<usize>,
    f: usize,
}

impl AttackerConfig {
    /// Creates a configuration; duplicate sensor indices are removed.
    pub fn new(compromised: impl IntoIterator<Item = usize>, f: usize) -> Self {
        let mut compromised: Vec<usize> = compromised.into_iter().collect();
        compromised.sort_unstable();
        compromised.dedup();
        Self { compromised, f }
    }

    /// The compromised sensor indices (sorted).
    pub fn compromised(&self) -> &[usize] {
        &self.compromised
    }

    /// The number of compromised sensors (`fa`).
    pub fn fa(&self) -> usize {
        self.compromised.len()
    }

    /// The fusion fault assumption `f` known to the attacker.
    pub fn f(&self) -> usize {
        self.f
    }

    /// Whether the attacker controls `sensor`.
    pub fn controls(&self, sensor: usize) -> bool {
        self.compromised.binary_search(&sensor).is_ok()
    }

    /// Whether the paper's standing assumption `fa ≤ f` holds.
    pub fn within_fault_budget(&self) -> bool {
        self.fa() <= self.f
    }
}

/// Everything an [`AttackStrategy`] may consult when forging the interval
/// for one of its slots.
///
/// Lifetimes tie the borrows to the pipeline driving the round; the
/// strategy must copy anything it wants to keep.
#[derive(Debug)]
pub struct SlotContext<'a> {
    /// The round's transmission order.
    pub order: &'a TransmissionOrder,
    /// The current slot (0-based).
    pub slot: usize,
    /// The compromised sensor transmitting now.
    pub sensor: usize,
    /// That sensor's fixed interval width.
    pub width: f64,
    /// Intervals already broadcast this round, as `(sensor, interval)` in
    /// transmission order — everything the attacker has seen.
    pub seen: &'a [(usize, Interval<f64>)],
    /// `Δ`: intersection of the attacker's sensors' correct readings.
    pub delta: Interval<f64>,
    /// The correct reading of the transmitting sensor itself.
    pub own_correct: Interval<f64>,
    /// The current mode (derived from the bus state).
    pub mode: AttackMode,
    /// Total sensor count `n`.
    pub n: usize,
    /// Fusion fault assumption `f`.
    pub f: usize,
    /// Widths of the attacker's still-unsent intervals *after* this one.
    pub future_own_widths: &'a [f64],
    /// All sensor indices the attacker controls (including this one) —
    /// she knows which bus traffic is her own.
    pub compromised: &'a [usize],
    /// The public interval widths of **all** sensors in id order (widths
    /// are fixed by published precisions, so everyone knows them).
    pub all_widths: &'a [f64],
}

/// A streaming attack policy: forges one interval per compromised slot as
/// the round unfolds.
///
/// Implementations must return an interval of exactly
/// [`SlotContext::width`] — interval widths are public knowledge, so a
/// width change would be detected immediately. The pipeline enforces this
/// with a debug assertion.
pub trait AttackStrategy {
    /// Forges the interval to broadcast at this slot.
    fn forge(&mut self, ctx: &SlotContext<'_>) -> Interval<f64>;

    /// A short name for reports.
    fn name(&self) -> &str;
}

/// The do-nothing baseline: always transmit the correct reading.
///
/// Useful as the no-attack control in every experiment and as the fallback
/// guaranteeing stealth (a truthful interval always intersects the fusion
/// interval when `fa ≤ f`).
///
/// # Example
///
/// ```
/// use arsf_attack::{AttackStrategy, Truthful};
///
/// let mut strategy = Truthful;
/// assert_eq!(strategy.name(), "truthful");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Truthful;

impl AttackStrategy for Truthful {
    fn forge(&mut self, ctx: &SlotContext<'_>) -> Interval<f64> {
        ctx.own_correct
    }

    fn name(&self) -> &str {
        "truthful"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(lo: f64, hi: f64) -> Interval<f64> {
        Interval::new(lo, hi).unwrap()
    }

    #[test]
    fn mode_threshold_matches_paper() {
        // n = 5, f = 2, far = 2: threshold = 1.
        assert_eq!(AttackMode::for_slot(0, 5, 2, 2), AttackMode::Passive);
        assert_eq!(AttackMode::for_slot(1, 5, 2, 2), AttackMode::Active);
        // far = 1 after one of her intervals went out: threshold = 2.
        assert_eq!(AttackMode::for_slot(1, 5, 2, 1), AttackMode::Passive);
        assert_eq!(AttackMode::for_slot(2, 5, 2, 1), AttackMode::Active);
    }

    #[test]
    fn mode_saturates_for_large_budgets() {
        // f + far >= n: always active (threshold saturates at 0).
        assert_eq!(AttackMode::for_slot(0, 3, 2, 2), AttackMode::Active);
    }

    #[test]
    fn delta_is_intersection() {
        let readings = [iv(0.0, 4.0), iv(2.0, 6.0), iv(3.0, 5.0)];
        assert_eq!(delta(&readings), Some(iv(3.0, 4.0)));
        assert_eq!(delta(&[]), None);
    }

    #[test]
    fn config_dedupes_and_sorts() {
        let cfg = AttackerConfig::new([3, 1, 3, 0], 2);
        assert_eq!(cfg.compromised(), &[0, 1, 3]);
        assert_eq!(cfg.fa(), 3);
        assert!(cfg.controls(1));
        assert!(!cfg.controls(2));
        assert!(!cfg.within_fault_budget()); // fa = 3 > f = 2
        assert!(AttackerConfig::new([0], 1).within_fault_budget());
    }

    #[test]
    fn truthful_returns_own_reading() {
        let order = TransmissionOrder::identity(3);
        let seen: Vec<(usize, Interval<f64>)> = Vec::new();
        let ctx = SlotContext {
            order: &order,
            slot: 0,
            sensor: 0,
            width: 2.0,
            seen: &seen,
            delta: iv(1.0, 2.0),
            own_correct: iv(0.5, 2.5),
            mode: AttackMode::Passive,
            n: 3,
            f: 1,
            future_own_widths: &[],
            compromised: &[0],
            all_widths: &[2.0, 1.0, 3.0],
        };
        assert_eq!(Truthful.forge(&ctx), iv(0.5, 2.5));
    }
}
