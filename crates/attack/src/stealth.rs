//! Stealth-constraint checks.
//!
//! The system discards any interval disjoint from the fusion interval, so
//! a rational attacker only ever broadcasts intervals whose overlap with
//! the fusion interval is *guaranteed*. This module provides the two
//! feasibility predicates her placement search uses (one per mode) plus
//! the exact post-hoc verification that experiments use as ground truth.

use arsf_interval::Interval;

/// Passive-mode feasibility: the forged interval must contain `Δ`
/// entirely — "the entire Δ has to be included to ensure overlap with the
/// fusion interval (otherwise, any excluded point may be the true value)".
///
/// # Example
///
/// ```
/// use arsf_attack::stealth::passive_feasible;
/// use arsf_interval::Interval;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let delta = Interval::new(9.8, 10.2)?;
/// assert!(passive_feasible(&Interval::new(9.0, 10.2)?, &delta));
/// assert!(!passive_feasible(&Interval::new(9.9, 11.0)?, &delta));
/// # Ok(())
/// # }
/// ```
pub fn passive_feasible(candidate: &Interval<f64>, delta: &Interval<f64>) -> bool {
    candidate.contains_interval(delta)
}

/// Active-mode feasibility (the paper's sufficient condition): overlap
/// with at least `n − f − 1` other intervals must be guaranteed. The
/// attacker can count intervals already on the bus that the candidate
/// overlaps, plus her own still-unsent intervals (which she will place to
/// protect this one).
///
/// This is a *conservative pre-filter*; experiments additionally verify
/// stealth exactly against the final fusion interval with
/// [`verify_stealth`].
///
/// # Example
///
/// ```
/// use arsf_attack::stealth::active_feasible;
/// use arsf_interval::Interval;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let seen = [Interval::new(0.0, 2.0)?, Interval::new(1.0, 3.0)?];
/// let candidate = Interval::new(1.5, 4.0)?; // overlaps both seen
/// // n = 4, f = 1: needs overlap with 2 others; has 2 seen + 0 future.
/// assert!(active_feasible(&candidate, &seen, 0, 4, 1));
/// let lonely = Interval::new(10.0, 12.0)?;
/// assert!(!active_feasible(&lonely, &seen, 1, 4, 1)); // 0 seen + 1 future < 2
/// # Ok(())
/// # }
/// ```
pub fn active_feasible(
    candidate: &Interval<f64>,
    seen: &[Interval<f64>],
    future_own: usize,
    n: usize,
    f: usize,
) -> bool {
    let required = n.saturating_sub(f + 1);
    let overlapping = seen.iter().filter(|s| s.intersects(candidate)).count();
    overlapping + future_own >= required
}

/// Exact stealth verification: every attacked interval must intersect the
/// final fusion interval. Returns the indices (into `attacked`) of
/// intervals that would be flagged; an empty result means the attack went
/// undetected.
///
/// # Example
///
/// ```
/// use arsf_attack::stealth::verify_stealth;
/// use arsf_interval::Interval;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let fusion = Interval::new(0.0, 5.0)?;
/// let attacked = [Interval::new(4.0, 8.0)?, Interval::new(9.0, 11.0)?];
/// assert_eq!(verify_stealth(&attacked, &fusion), vec![1]);
/// # Ok(())
/// # }
/// ```
pub fn verify_stealth(attacked: &[Interval<f64>], fusion: &Interval<f64>) -> Vec<usize> {
    attacked
        .iter()
        .enumerate()
        .filter(|(_, a)| !a.intersects(fusion))
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(lo: f64, hi: f64) -> Interval<f64> {
        Interval::new(lo, hi).unwrap()
    }

    #[test]
    fn passive_requires_full_delta_containment() {
        let delta = iv(1.0, 2.0);
        assert!(passive_feasible(&iv(1.0, 2.0), &delta)); // exact fit
        assert!(passive_feasible(&iv(0.0, 3.0), &delta));
        assert!(!passive_feasible(&iv(1.1, 3.0), &delta)); // clips delta
        assert!(!passive_feasible(&iv(-1.0, 1.9), &delta));
    }

    #[test]
    fn active_counts_seen_overlaps_and_future_protection() {
        let seen = [iv(0.0, 1.0), iv(0.5, 2.0), iv(1.5, 3.0)];
        // n = 5, f = 1: required = 3.
        let c = iv(0.75, 1.6); // overlaps all three seen
        assert!(active_feasible(&c, &seen, 0, 5, 1));
        let c2 = iv(2.5, 4.0); // overlaps only the last
        assert!(!active_feasible(&c2, &seen, 1, 5, 1)); // 1 + 1 < 3
        assert!(active_feasible(&c2, &seen, 2, 5, 1)); // 1 + 2 = 3
    }

    #[test]
    fn active_touching_counts_as_overlap() {
        let seen = [iv(0.0, 1.0)];
        let c = iv(1.0, 2.0);
        // n = 3, f = 1: required = 1; the touching endpoint suffices.
        assert!(active_feasible(&c, &seen, 0, 3, 1));
    }

    #[test]
    fn required_overlap_saturates() {
        // n <= f + 1 means no overlap requirement at all.
        assert!(active_feasible(&iv(0.0, 1.0), &[], 0, 2, 1));
    }

    #[test]
    fn verify_stealth_flags_only_disjoint() {
        let fusion = iv(0.0, 1.0);
        let attacked = [iv(1.0, 2.0), iv(1.0001, 2.0), iv(-5.0, 0.0)];
        assert_eq!(verify_stealth(&attacked, &fusion), vec![1]);
        assert!(verify_stealth(&[], &fusion).is_empty());
    }
}
