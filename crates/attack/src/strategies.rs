//! Streaming attack policies for Monte-Carlo simulation.
//!
//! The expectimax evaluator ([`crate::expectimax`]) is exact but
//! enumerates entire measurement grids, which is the right tool for the
//! Table I expectation experiments. The case-study simulations (Table II)
//! instead run rounds with *sampled* noise, so the attacker needs a
//! streaming policy invoked once per compromised slot. This module
//! provides:
//!
//! * [`PhantomOptimal`] — the principled policy: substitute a *phantom*
//!   interval (centred on her best truth estimate, the midpoint of `Δ`)
//!   for every unseen correct sensor, solve the full-knowledge problem (1)
//!   exactly against seen ∪ phantoms, then clamp the proposal so stealth
//!   is **guaranteed** whatever the unseen sensors turn out to be. When
//!   the attacker transmits last the phantoms vanish and the policy is
//!   the exact optimum.
//! * [`GreedyExtreme`] — a simple baseline that pushes the forged interval
//!   as far as stealth allows towards one side.
//!
//! Stealth guarantees: in passive mode both policies contain `Δ` (the
//! paper's rule). In active mode they keep the forged interval in contact
//! with the *intersection of the seen correct intervals* unless every
//! correct sensor has already transmitted: seen correct intervals all
//! contain the true value, so (by Helly's theorem in one dimension) a
//! forged interval touching their common intersection shares a point with
//! `n − f − 1` mutually-intersecting intervals, which places that point
//! inside the fusion interval — the paper's Section III-A argument.

use arsf_interval::ops::intersection_all;
use arsf_interval::Interval;

use crate::full_knowledge::optimal_attack;
use crate::model::{AttackMode, AttackStrategy, SlotContext};

/// Which direction a one-sided policy extends towards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// Extend below the observed intervals.
    Low,
    /// Extend above the observed intervals.
    High,
}

/// Certainty-equivalent optimal forgery with guaranteed stealth: unseen
/// correct sensors are replaced by phantoms centred on the attacker's
/// best truth estimate, the full-knowledge solver proposes a placement
/// and the stealth clamp makes it safe against every realisation.
///
/// Left/right ties in the solver are broken by alternating the solve
/// axis between calls, so a long-running attacker splits her pressure
/// evenly between the two envelope bounds instead of always favouring
/// one side.
///
/// # Example
///
/// ```
/// use arsf_attack::strategies::PhantomOptimal;
/// use arsf_attack::AttackStrategy;
///
/// let mut strategy = PhantomOptimal::new();
/// assert_eq!(strategy.name(), "phantom-optimal");
/// ```
#[derive(Debug, Clone, Default)]
pub struct PhantomOptimal {
    mirror: bool,
}

impl PhantomOptimal {
    /// Creates the strategy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl AttackStrategy for PhantomOptimal {
    fn forge(&mut self, ctx: &SlotContext<'_>) -> Interval<f64> {
        let estimate = ctx.delta.midpoint();
        let seen_sensors: Vec<usize> = ctx.seen.iter().map(|(s, _)| *s).collect();
        let mut unseen_correct = 0usize;
        let mut world: Vec<Interval<f64>> = ctx.seen.iter().map(|(_, iv)| *iv).collect();
        for sensor in 0..ctx.n {
            if sensor == ctx.sensor
                || seen_sensors.contains(&sensor)
                || ctx.compromised.contains(&sensor)
            {
                continue;
            }
            // Unseen correct sensor: phantom of its public width centred
            // on the truth estimate.
            unseen_correct += 1;
            let width = ctx.all_widths.get(sensor).copied().unwrap_or(ctx.width);
            if let Ok(phantom) = Interval::centered(estimate, width * 0.5) {
                world.push(phantom);
            }
        }
        let mut widths = vec![ctx.width];
        widths.extend_from_slice(ctx.future_own_widths);

        // Alternate the solve axis so equal-width optima on the two
        // frontiers are chosen evenly across rounds.
        self.mirror = !self.mirror;
        let proposal = if self.mirror {
            let mirrored: Vec<Interval<f64>> = world.iter().map(|s| mirror_interval(*s)).collect();
            match optimal_attack(&mirrored, &widths, ctx.f) {
                Ok(attack) => mirror_interval(attack.placements[0]),
                Err(_) => ctx.own_correct,
            }
        } else {
            match optimal_attack(&world, &widths, ctx.f) {
                Ok(attack) => attack.placements[0],
                Err(_) => ctx.own_correct,
            }
        };
        constrain(proposal, ctx, unseen_correct == 0)
    }

    fn name(&self) -> &str {
        "phantom-optimal"
    }
}

/// Reflects an interval through the origin.
fn mirror_interval(s: Interval<f64>) -> Interval<f64> {
    Interval::new(-s.hi(), -s.lo()).expect("mirrored endpoints stay ordered")
}

/// Greedy one-sided extension: anchor the forged interval at the extreme
/// endpoint of everything observed so far (or of `Δ` when blind) and
/// extend outward, then clamp for stealth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GreedyExtreme {
    side: Side,
}

impl GreedyExtreme {
    /// Creates the policy extending towards `side`.
    pub fn new(side: Side) -> Self {
        Self { side }
    }

    /// The configured side.
    pub fn side(&self) -> Side {
        self.side
    }
}

impl AttackStrategy for GreedyExtreme {
    fn forge(&mut self, ctx: &SlotContext<'_>) -> Interval<f64> {
        let (lo, hi) = ctx
            .seen
            .iter()
            .map(|(_, iv)| (iv.lo(), iv.hi()))
            .fold((ctx.delta.lo(), ctx.delta.hi()), |(l, h), (il, ih)| {
                (l.min(il), h.max(ih))
            });
        // Place half the interval beyond the extreme so the other half
        // keeps overlapping the observed mass.
        let proposal = match self.side {
            Side::High => Interval::new(hi - ctx.width * 0.5, hi + ctx.width * 0.5),
            Side::Low => Interval::new(lo - ctx.width * 0.5, lo + ctx.width * 0.5),
        }
        .unwrap_or(ctx.own_correct);
        constrain(proposal, ctx, false)
    }

    fn name(&self) -> &str {
        match self.side {
            Side::High => "greedy-high",
            Side::Low => "greedy-low",
        }
    }
}

/// Applies the stealth guarantee to a proposed forgery.
///
/// * Passive mode: shift (width preserved) until the interval contains
///   `Δ`; if the width cannot hold `Δ`, report truthfully.
/// * Active mode with `exact` knowledge (no unseen correct sensors): the
///   solver's proposal is already anchored on the real fusion frontier —
///   keep it.
/// * Active mode under uncertainty: keep the proposal in contact with the
///   intersection of the seen **correct** intervals (which all contain
///   the truth), shifting minimally; if no correct interval has been seen
///   yet, fall back to containing `Δ`.
fn constrain(proposal: Interval<f64>, ctx: &SlotContext<'_>, exact: bool) -> Interval<f64> {
    match ctx.mode {
        AttackMode::Active if exact => proposal,
        AttackMode::Active => {
            let seen_correct: Vec<Interval<f64>> = ctx
                .seen
                .iter()
                .filter(|(s, _)| !ctx.compromised.contains(s))
                .map(|(_, iv)| *iv)
                .collect();
            let anchor = intersection_all(&seen_correct).unwrap_or(ctx.delta);
            shift_to_touch(proposal, &anchor, ctx)
        }
        AttackMode::Passive => shift_to_contain(proposal, &ctx.delta, ctx),
    }
}

/// Shifts `proposal` minimally (width preserved) until it intersects
/// `anchor`.
fn shift_to_touch(
    proposal: Interval<f64>,
    anchor: &Interval<f64>,
    ctx: &SlotContext<'_>,
) -> Interval<f64> {
    if proposal.intersects(anchor) {
        return proposal;
    }
    let w = ctx.width;
    let lo = if proposal.lo() > anchor.hi() {
        anchor.hi() // graze the anchor from the right
    } else {
        anchor.lo() - w // graze from the left
    };
    Interval::new(lo, lo + w).unwrap_or(ctx.own_correct)
}

/// Shifts `proposal` minimally (width preserved) until it contains
/// `delta`; returns the truthful reading when the width cannot hold it.
fn shift_to_contain(
    proposal: Interval<f64>,
    delta: &Interval<f64>,
    ctx: &SlotContext<'_>,
) -> Interval<f64> {
    if ctx.width < delta.width() {
        return ctx.own_correct;
    }
    let mut lo = proposal.lo();
    if lo > delta.lo() {
        lo = delta.lo();
    }
    if lo + ctx.width < delta.hi() {
        lo = delta.hi() - ctx.width;
    }
    Interval::new(lo, lo + ctx.width).unwrap_or(ctx.own_correct)
}

#[cfg(test)]
mod tests {
    use super::*;
    use arsf_schedule::TransmissionOrder;

    fn iv(lo: f64, hi: f64) -> Interval<f64> {
        Interval::new(lo, hi).unwrap()
    }

    #[allow(clippy::too_many_arguments)]
    fn ctx<'a>(
        order: &'a TransmissionOrder,
        seen: &'a [(usize, Interval<f64>)],
        slot: usize,
        sensor: usize,
        width: f64,
        mode: AttackMode,
        delta: Interval<f64>,
        future: &'a [f64],
        compromised: &'a [usize],
    ) -> SlotContext<'a> {
        SlotContext {
            order,
            slot,
            sensor,
            width,
            seen,
            delta,
            own_correct: delta,
            mode,
            n: order.len(),
            f: 1,
            future_own_widths: future,
            compromised,
            all_widths: &[2.0, 2.0, 2.0, 2.0],
        }
    }

    #[test]
    fn phantom_optimal_last_slot_is_exact() {
        // n = 3, f = 1: attacker last with width 3; seen [0,10] and [4,6].
        let order = TransmissionOrder::new(vec![1, 2, 0]).unwrap();
        let seen = [(1usize, iv(0.0, 10.0)), (2usize, iv(4.0, 6.0))];
        let c = ctx(
            &order,
            &seen,
            2,
            0,
            3.0,
            AttackMode::Active,
            iv(4.5, 5.5),
            &[],
            &[0],
        );
        let mut strategy = PhantomOptimal::new();
        let forged = strategy.forge(&c);
        let all = vec![seen[0].1, seen[1].1, forged];
        let fused = arsf_fusion::marzullo::fuse(&all, 1).unwrap();
        assert_eq!(fused.width(), 6.0, "exact optimum when transmitting last");
        assert!((forged.width() - 3.0).abs() < 1e-12);
        assert!(forged.intersects(&fused));
    }

    #[test]
    fn phantom_optimal_passive_contains_delta() {
        let order = TransmissionOrder::identity(3);
        let seen: [(usize, Interval<f64>); 0] = [];
        let delta = iv(4.0, 5.0);
        let c = ctx(
            &order,
            &seen,
            0,
            0,
            4.0,
            AttackMode::Passive,
            delta,
            &[],
            &[0],
        );
        let mut strategy = PhantomOptimal::new();
        let forged = strategy.forge(&c);
        assert!(forged.contains_interval(&delta));
        assert!((forged.width() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn phantom_optimal_uncertain_active_touches_seen_intersection() {
        // n = 4, f = 1; attacker at slot 2 has seen two correct sensors
        // but one is still unseen: the forged interval must stay in
        // contact with the seen intersection whatever comes next.
        let order = TransmissionOrder::new(vec![2, 3, 0, 1]).unwrap();
        let seen = [(2usize, iv(0.0, 2.0)), (3usize, iv(1.0, 3.0))];
        let c = ctx(
            &order,
            &seen,
            2,
            0,
            1.0,
            AttackMode::Active,
            iv(1.2, 1.8),
            &[],
            &[0],
        );
        let mut strategy = PhantomOptimal::new();
        let forged = strategy.forge(&c);
        let seen_intersection = iv(1.0, 2.0);
        assert!(
            forged.intersects(&seen_intersection),
            "forged {forged} must touch the seen intersection"
        );
    }

    #[test]
    fn greedy_extends_to_the_configured_side() {
        let order = TransmissionOrder::new(vec![1, 0, 2]).unwrap();
        let seen = [(1usize, iv(0.0, 4.0))];
        let delta = iv(1.0, 2.0);
        let c = ctx(
            &order,
            &seen,
            1,
            0,
            2.0,
            AttackMode::Active,
            delta,
            &[],
            &[0],
        );
        let mut high = GreedyExtreme::new(Side::High);
        let forged_high = high.forge(&c);
        assert!(forged_high.hi() > 4.0);
        assert!(forged_high.intersects(&iv(0.0, 4.0)));
        let mut low = GreedyExtreme::new(Side::Low);
        let forged_low = low.forge(&c);
        assert!(forged_low.lo() < 0.0);
        assert_eq!(low.side(), Side::Low);
    }

    #[test]
    fn greedy_passive_still_contains_delta() {
        let order = TransmissionOrder::identity(3);
        let seen: [(usize, Interval<f64>); 0] = [];
        let delta = iv(0.0, 1.0);
        let c = ctx(
            &order,
            &seen,
            0,
            0,
            3.0,
            AttackMode::Passive,
            delta,
            &[],
            &[0],
        );
        let mut strategy = GreedyExtreme::new(Side::High);
        let forged = strategy.forge(&c);
        assert!(forged.contains_interval(&delta));
    }

    #[test]
    fn shift_to_contain_is_minimal() {
        let order = TransmissionOrder::identity(2);
        let seen: [(usize, Interval<f64>); 0] = [];
        let delta = iv(10.0, 12.0);
        let c = ctx(
            &order,
            &seen,
            0,
            0,
            3.0,
            AttackMode::Passive,
            delta,
            &[],
            &[0],
        );
        let out = shift_to_contain(iv(0.0, 3.0), &delta, &c);
        assert!(out.contains_interval(&delta));
        assert_eq!(out.width(), 3.0);
        let ok = iv(9.5, 12.5);
        assert_eq!(shift_to_contain(ok, &delta, &c), ok);
    }

    #[test]
    fn shift_to_touch_grazes_the_anchor() {
        let order = TransmissionOrder::identity(2);
        let seen: [(usize, Interval<f64>); 0] = [];
        let anchor = iv(0.0, 1.0);
        let c = ctx(
            &order,
            &seen,
            0,
            0,
            2.0,
            AttackMode::Active,
            anchor,
            &[],
            &[0],
        );
        // From the right: lands exactly on the anchor's upper endpoint.
        let right = shift_to_touch(iv(5.0, 7.0), &anchor, &c);
        assert_eq!(right, iv(1.0, 3.0));
        // From the left.
        let left = shift_to_touch(iv(-9.0, -7.0), &anchor, &c);
        assert_eq!(left, iv(-2.0, 0.0));
        // Already touching: unchanged.
        let touching = iv(0.5, 2.5);
        assert_eq!(shift_to_touch(touching, &anchor, &c), touching);
    }

    #[test]
    fn names_are_distinct() {
        assert_eq!(PhantomOptimal::new().name(), "phantom-optimal");
        assert_eq!(GreedyExtreme::new(Side::High).name(), "greedy-high");
        assert_eq!(GreedyExtreme::new(Side::Low).name(), "greedy-low");
    }
}
