//! Stealthy attacker models against Marzullo interval fusion.
//!
//! This crate implements Section III of the [DATE 2014 paper
//! *Attack-Resilient Sensor Fusion*][paper]: an attacker controls `fa ≤ f`
//! sensors, still reads their correct measurements, and forges the
//! intervals they broadcast. Her **goal** is to maximise the width of the
//! fusion interval (inject uncertainty); her **constraint** is to stay
//! undetected by the system's overlap check, which she satisfies by
//! operating in two modes:
//!
//! * **passive** — until enough measurements are on the bus
//!   (`sent < n − f − far`), every forged interval must contain `Δ`, the
//!   intersection of her sensors' correct readings, because any excluded
//!   point might be the true value,
//! * **active** — afterwards she may place intervals freely provided
//!   overlap with the eventual fusion interval is guaranteed.
//!
//! Modules:
//!
//! * [`model`] — attacker configuration, modes, the Δ computation, the
//!   [`AttackStrategy`] trait and the truthful baseline,
//! * [`stealth`] — candidate feasibility checks and final stealth
//!   verification,
//! * [`full_knowledge`] — the exact solver for the paper's optimisation
//!   problem (1): optimal forgery when all correct intervals are known,
//! * [`expectimax`] — the exact expected-width evaluator for problem (2)
//!   on a discretised measurement grid — the same methodology as the
//!   paper's own evaluation (footnote 5) and the engine behind Table I,
//! * [`strategies`] — practical streaming attack policies for Monte-Carlo
//!   simulation (greedy, optimal-against-seen),
//! * [`worst_case`] — exhaustive worst-case configuration search used to
//!   validate Theorems 3 and 4 (Fig. 4),
//! * [`regret`] — the Fig. 2 construction showing no optimal policy
//!   exists under partial information.
//!
//! # Example
//!
//! ```
//! use arsf_attack::full_knowledge::optimal_attack;
//! use arsf_interval::Interval;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Two correct sensors seen on the bus; the attacker owns one sensor of
//! // width 4 and knows the fusion runs with f = 1 (n = 3, so k = 2).
//! let correct = [Interval::new(-2.0, 2.0)?, Interval::new(-1.0, 3.0)?];
//! let attack = optimal_attack(&correct, &[4.0], 1)?;
//! // Honest fusion would give [-1, 2]; the forged interval stretches it.
//! assert!(attack.fusion.width() > 3.0);
//! # Ok(())
//! # }
//! ```
//!
//! [paper]: https://doi.org/10.7873/DATE.2014.067

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod expectimax;
pub mod full_knowledge;
pub mod model;
pub mod regret;
pub mod stealth;
pub mod strategies;
pub mod worst_case;

pub use error::AttackError;
pub use model::{delta, AttackMode, AttackStrategy, AttackerConfig, SlotContext, Truthful};
