//! Error type for attack solvers.

use core::fmt;

/// Error returned by the attack solvers in this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum AttackError {
    /// The attacked-interval count reaches the coverage requirement
    /// `n − f`, so the attacker could move the fusion interval arbitrarily
    /// far — the paper's unbounded regime, excluded by `fa ≤ f < ⌈n/2⌉`.
    UnboundedAttack {
        /// Number of attacked intervals.
        fa: usize,
        /// The coverage requirement `n − f` that must stay larger than `fa`.
        required: usize,
    },
    /// No correct intervals were supplied.
    NoCorrectIntervals,
    /// The correct intervals never reach the residual coverage the attack
    /// needs (`n − f − fa`), so no stealthy placement exists. With
    /// truth-containing correct intervals this cannot happen; it indicates
    /// an inconsistent configuration.
    NoFeasiblePlacement,
}

impl fmt::Display for AttackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackError::UnboundedAttack { fa, required } => write!(
                f,
                "{fa} attacked intervals meet the coverage requirement {required}; the fusion interval would be unbounded"
            ),
            AttackError::NoCorrectIntervals => write!(f, "no correct intervals supplied"),
            AttackError::NoFeasiblePlacement => {
                write!(f, "correct intervals never reach the residual coverage; no stealthy placement exists")
            }
        }
    }
}

impl std::error::Error for AttackError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = AttackError::UnboundedAttack { fa: 2, required: 2 };
        assert!(e.to_string().contains("unbounded"));
        assert!(!AttackError::NoCorrectIntervals.to_string().is_empty());
        assert!(!AttackError::NoFeasiblePlacement.to_string().is_empty());
    }

    #[test]
    fn error_is_well_behaved() {
        fn assert_good<E: std::error::Error + Send + Sync + 'static>() {}
        assert_good::<AttackError>();
    }
}
