//! The exact solver for the paper's optimisation problem (1): optimal
//! interval forgery when all correct intervals are known.
//!
//! With full knowledge the attacker transmits last, so active mode is
//! always available and the placement question is purely geometric:
//!
//! > maximise `|S_{N,f}|` subject to `S_{N,f} ∩ aᵢ ≠ ∅` for every forged
//! > interval `aᵢ` (stealth).
//!
//! The solver exploits a snapping argument. The fusion width, as a
//! function of one forged interval's position with all others fixed, is
//! piecewise linear and changes slope only when one of the forged
//! endpoints crosses a *breakpoint*: a correct-interval endpoint or
//! another forged endpoint. Sliding an interval towards the optimum
//! therefore stops at a position where some endpoint coincides with a
//! breakpoint, and by induction an optimal solution exists on the lattice
//!
//! `E = {correct endpoints} ± (signed sums of at most fa − 1 forged widths)`
//!
//! with each forged interval's lower endpoint in `E ∪ (E − wᵢ)`.
//! Exhaustively evaluating that lattice (with exact fusion and exact
//! stealth verification per combination) yields the optimum in
//! `O((c · 3^{fa})^{fa})` fusions — trivial for the paper's `fa ≤ 2` and
//! fine up to `fa = 4`, which is asserted.
//!
//! [`brute_force_attack`] provides an independent dense-grid oracle used
//! by the property-test suite to validate the lattice solver.

use arsf_interval::coverage::CoverageMap;
use arsf_interval::Interval;

use crate::stealth::verify_stealth;
use crate::AttackError;

/// The result of an optimal full-knowledge attack.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimalAttack {
    /// One forged interval per attacked width, in input order.
    pub placements: Vec<Interval<f64>>,
    /// The resulting fusion interval (exact).
    pub fusion: Interval<f64>,
    /// The fusion width of the correct intervals alone at coverage
    /// `k = n − f` — what the attacker's sensors would contribute nothing
    /// to. `None` when the correct intervals never reach coverage `k`.
    pub honest_width: Option<f64>,
}

impl OptimalAttack {
    /// The width of the optimal fusion interval.
    pub fn width(&self) -> f64 {
        self.fusion.width()
    }
}

/// Computes the optimal stealthy attack given every correct interval
/// (problem (1) of the paper).
///
/// `correct` are the `n − fa` correct intervals, `attacked_widths` the
/// fixed widths of the attacker's intervals, and `f` the fusion fault
/// assumption, so `n = correct.len() + attacked_widths.len()` and the
/// required coverage is `k = n − f`.
///
/// # Errors
///
/// * [`AttackError::NoCorrectIntervals`] — `correct` is empty,
/// * [`AttackError::UnboundedAttack`] — `fa ≥ k` (the paper's unbounded
///   regime, excluded by `fa ≤ f < ⌈n/2⌉`),
/// * [`AttackError::NoFeasiblePlacement`] — no stealthy placement reaches
///   coverage `k` anywhere (impossible when the correct intervals share
///   the true value).
///
/// # Panics
///
/// Panics if `attacked_widths.len() > 4` (the exhaustive lattice search
/// is not meant for larger `fa`; the paper's regime is `fa ≤ f < ⌈n/2⌉`
/// with `n ≤ 5`) or if any width is negative or non-finite.
///
/// # Example
///
/// ```
/// use arsf_attack::full_knowledge::optimal_attack;
/// use arsf_interval::Interval;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let correct = [Interval::new(0.0, 10.0)?, Interval::new(4.0, 6.0)?];
/// // n = 3, f = 1, k = 2: honest fusion is [4, 6] (width 2).
/// let attack = optimal_attack(&correct, &[3.0], 1)?;
/// // One forged width-3 interval stretches the fusion to [4, 10] (or
/// // symmetrically [0, 6]): width 6.
/// assert_eq!(attack.width(), 6.0);
/// assert_eq!(attack.honest_width, Some(2.0));
/// # Ok(())
/// # }
/// ```
pub fn optimal_attack(
    correct: &[Interval<f64>],
    attacked_widths: &[f64],
    f: usize,
) -> Result<OptimalAttack, AttackError> {
    let fa = attacked_widths.len();
    assert!(
        fa <= 4,
        "lattice solver supports at most 4 attacked intervals"
    );
    assert!(
        attacked_widths.iter().all(|w| w.is_finite() && *w >= 0.0),
        "attacked widths must be finite and non-negative"
    );
    if correct.is_empty() {
        return Err(AttackError::NoCorrectIntervals);
    }
    let n = correct.len() + fa;
    let k = n.saturating_sub(f);
    if fa >= k {
        return Err(AttackError::UnboundedAttack { fa, required: k });
    }

    let map = CoverageMap::build(correct);
    let honest_width = map.span_at_least(k).map(|s| s.width());

    // Breakpoint lattice: correct endpoints shifted by signed sums of at
    // most fa - 1 forged widths.
    let mut base: Vec<f64> = Vec::with_capacity(correct.len() * 2);
    for s in correct {
        base.push(s.lo());
        base.push(s.hi());
    }
    let shifts = signed_subset_sums(attacked_widths, fa.saturating_sub(1));
    let mut lattice: Vec<f64> = Vec::with_capacity(base.len() * shifts.len());
    for &b in &base {
        for &d in &shifts {
            lattice.push(b + d);
        }
    }
    dedup_sorted(&mut lattice);

    // Per-interval candidate lower endpoints: lattice points as either the
    // interval's lo or its hi.
    let candidates: Vec<Vec<f64>> = attacked_widths
        .iter()
        .map(|&w| {
            let mut c: Vec<f64> = Vec::with_capacity(lattice.len() * 2);
            c.extend(lattice.iter().copied());
            c.extend(lattice.iter().map(|&x| x - w));
            dedup_sorted(&mut c);
            c
        })
        .collect();

    let mut best: BestAttack = None;
    let mut placements: Vec<Interval<f64>> = Vec::with_capacity(fa);
    explore(
        correct,
        attacked_widths,
        f,
        &candidates,
        &mut placements,
        &mut best,
    );

    match best {
        Some((_, placements, fusion)) => Ok(OptimalAttack {
            placements,
            fusion,
            honest_width,
        }),
        None => Err(AttackError::NoFeasiblePlacement),
    }
}

/// Best attack found so far: `(width, placements, fusion interval)`.
type BestAttack = Option<(f64, Vec<Interval<f64>>, Interval<f64>)>;

fn explore(
    correct: &[Interval<f64>],
    widths: &[f64],
    f: usize,
    candidates: &[Vec<f64>],
    placements: &mut Vec<Interval<f64>>,
    best: &mut BestAttack,
) {
    let idx = placements.len();
    if idx == widths.len() {
        evaluate(correct, placements, f, best);
        return;
    }
    for &lo in &candidates[idx] {
        placements
            .push(Interval::new(lo, lo + widths[idx]).expect("lattice coordinates are finite"));
        explore(correct, widths, f, candidates, placements, best);
        placements.pop();
    }
}

fn evaluate(
    correct: &[Interval<f64>],
    placements: &[Interval<f64>],
    f: usize,
    best: &mut BestAttack,
) {
    let mut all: Vec<Interval<f64>> = correct.to_vec();
    all.extend(placements.iter().copied());
    let Ok(fusion) = arsf_fusion::marzullo::fuse(&all, f) else {
        return;
    };
    if !verify_stealth(placements, &fusion).is_empty() {
        return;
    }
    let width = fusion.width();
    if best.as_ref().is_none_or(|(w, ..)| width > *w) {
        *best = Some((width, placements.to_vec(), fusion));
    }
}

/// All sums of signed subsets of `widths` with at most `max_terms` terms
/// (always includes 0).
fn signed_subset_sums(widths: &[f64], max_terms: usize) -> Vec<f64> {
    let mut sums = vec![0.0];
    let mut frontier = vec![(0.0, 0usize, 0usize)]; // (sum, next index, terms used)
    while let Some((sum, start, used)) = frontier.pop() {
        if used == max_terms {
            continue;
        }
        for (i, &w) in widths.iter().enumerate().skip(start) {
            for signed in [sum + w, sum - w] {
                sums.push(signed);
                frontier.push((signed, i + 1, used + 1));
            }
        }
    }
    dedup_sorted(&mut sums);
    sums
}

fn dedup_sorted(xs: &mut Vec<f64>) {
    xs.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite lattice coordinates"));
    xs.dedup();
}

/// Dense-grid oracle for [`optimal_attack`]: enumerates forged-interval
/// lower endpoints on the grid `{lo + i·step}` spanning all correct
/// endpoints padded by the largest forged width, fuses, verifies stealth
/// exactly, and returns the widest stealthy outcome.
///
/// Exponential in `fa` — intended for small cross-validation cases only.
/// With integer-coordinate inputs and `step` dividing all coordinates the
/// oracle is exact.
///
/// # Errors
///
/// Same contract as [`optimal_attack`].
pub fn brute_force_attack(
    correct: &[Interval<f64>],
    attacked_widths: &[f64],
    f: usize,
    step: f64,
) -> Result<OptimalAttack, AttackError> {
    if correct.is_empty() {
        return Err(AttackError::NoCorrectIntervals);
    }
    let fa = attacked_widths.len();
    let n = correct.len() + fa;
    let k = n.saturating_sub(f);
    if fa >= k {
        return Err(AttackError::UnboundedAttack { fa, required: k });
    }
    let max_w = attacked_widths.iter().copied().fold(0.0_f64, f64::max);
    let lo = correct.iter().map(|s| s.lo()).fold(f64::INFINITY, f64::min) - max_w;
    let hi = correct
        .iter()
        .map(|s| s.hi())
        .fold(f64::NEG_INFINITY, f64::max)
        + max_w;
    let steps = ((hi - lo) / step).round() as usize;

    let map = CoverageMap::build(correct);
    let honest_width = map.span_at_least(k).map(|s| s.width());

    let grids: Vec<Vec<f64>> = attacked_widths
        .iter()
        .map(|_| (0..=steps).map(|i| lo + i as f64 * step).collect())
        .collect();

    let mut best: BestAttack = None;
    let mut placements: Vec<Interval<f64>> = Vec::with_capacity(fa);
    explore(
        correct,
        attacked_widths,
        f,
        &grids,
        &mut placements,
        &mut best,
    );

    match best {
        Some((_, placements, fusion)) => Ok(OptimalAttack {
            placements,
            fusion,
            honest_width,
        }),
        None => Err(AttackError::NoFeasiblePlacement),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(lo: f64, hi: f64) -> Interval<f64> {
        Interval::new(lo, hi).unwrap()
    }

    #[test]
    fn errors_on_empty_or_unbounded_input() {
        assert_eq!(
            optimal_attack(&[], &[1.0], 1).unwrap_err(),
            AttackError::NoCorrectIntervals
        );
        // n = 2, f = 1, k = 1, fa = 1 >= k: unbounded.
        assert_eq!(
            optimal_attack(&[iv(0.0, 1.0)], &[1.0], 1).unwrap_err(),
            AttackError::UnboundedAttack { fa: 1, required: 1 }
        );
    }

    #[test]
    fn no_attack_matches_honest_fusion() {
        let correct = [iv(0.0, 4.0), iv(1.0, 5.0), iv(2.0, 6.0)];
        let attack = optimal_attack(&correct, &[], 1).unwrap();
        // k = 2 over the three correct: span of >= 2 coverage = [1, 5].
        assert_eq!(attack.fusion, iv(1.0, 5.0));
        assert_eq!(attack.honest_width, Some(4.0));
    }

    #[test]
    fn doc_example_single_forged_interval() {
        let correct = [iv(0.0, 10.0), iv(4.0, 6.0)];
        let attack = optimal_attack(&correct, &[3.0], 1).unwrap();
        assert_eq!(attack.width(), 6.0);
    }

    #[test]
    fn straddling_beats_one_sided_extension() {
        // Honest k = 2 region is the tiny [4.9, 5.1]; one-sided extension
        // reaches width 5.1 (to an end of the wide interval), but a width-6
        // forged interval straddling the centre achieves its full width.
        let correct = [iv(0.0, 10.0), iv(4.9, 5.1)];
        let attack = optimal_attack(&correct, &[6.0], 1).unwrap();
        assert_eq!(attack.width(), 6.0);
    }

    #[test]
    fn wide_forged_interval_covers_everything() {
        let correct = [iv(0.0, 10.0), iv(4.0, 6.0)];
        let attack = optimal_attack(&correct, &[12.0], 1).unwrap();
        assert_eq!(attack.fusion, iv(0.0, 10.0));
    }

    #[test]
    fn two_attacked_intervals_split_sides() {
        // n = 5, f = 2, k = 3, fa = 2 of width 2 each.
        let correct = [iv(0.0, 8.0), iv(2.0, 6.0), iv(3.0, 5.0)];
        let attack = optimal_attack(&correct, &[2.0, 2.0], 2).unwrap();
        // Stacking both forged at one frontier reaches the width-1
        // coverage points: [3,5] -> 8 on the right (or 0 on the left),
        // width 5; splitting sides reaches [2,6] frontiers, width 4.
        assert_eq!(attack.width(), 5.0);
    }

    #[test]
    fn placements_are_never_detected_and_keep_widths() {
        let correct = [iv(-3.0, 3.0), iv(-1.0, 4.0), iv(0.0, 5.0)];
        for widths in [vec![2.0], vec![6.0], vec![1.0, 9.0]] {
            let attack = optimal_attack(&correct, &widths, 2).unwrap();
            assert!(verify_stealth(&attack.placements, &attack.fusion).is_empty());
            for (p, w) in attack.placements.iter().zip(&widths) {
                assert!((p.width() - w).abs() < 1e-12, "width must be preserved");
            }
        }
    }

    #[test]
    fn attack_never_loses_to_honesty() {
        let correct = [iv(0.0, 4.0), iv(1.0, 5.0), iv(2.0, 6.0)];
        let attack = optimal_attack(&correct, &[3.0], 2).unwrap();
        assert!(attack.width() >= attack.honest_width.unwrap());
    }

    #[test]
    fn brute_force_agrees_on_small_cases() {
        let cases: Vec<(Vec<Interval<f64>>, Vec<f64>, usize)> = vec![
            (vec![iv(0.0, 4.0), iv(1.0, 5.0)], vec![2.0], 1),
            (vec![iv(0.0, 10.0), iv(4.0, 6.0)], vec![3.0], 1),
            (vec![iv(0.0, 10.0), iv(4.0, 6.0)], vec![6.0], 1),
            (
                vec![iv(0.0, 8.0), iv(2.0, 6.0), iv(3.0, 5.0)],
                vec![2.0, 2.0],
                2,
            ),
            (vec![iv(-2.0, 2.0), iv(-1.0, 3.0)], vec![4.0], 1),
        ];
        for (correct, widths, f) in cases {
            let exact = optimal_attack(&correct, &widths, f).unwrap();
            let brute = brute_force_attack(&correct, &widths, f, 1.0).unwrap();
            assert_eq!(
                exact.width(),
                brute.width(),
                "case correct={correct:?} widths={widths:?} f={f}"
            );
        }
    }

    #[test]
    fn signed_subset_sums_enumerate_correctly() {
        let sums = signed_subset_sums(&[1.0, 10.0], 1);
        assert_eq!(sums, vec![-10.0, -1.0, 0.0, 1.0, 10.0]);
        let sums2 = signed_subset_sums(&[1.0, 10.0], 2);
        assert!(sums2.contains(&11.0));
        assert!(sums2.contains(&-9.0));
        assert!(sums2.contains(&9.0));
        assert_eq!(signed_subset_sums(&[], 3), vec![0.0]);
        assert_eq!(signed_subset_sums(&[5.0], 0), vec![0.0]);
    }

    #[test]
    #[should_panic(expected = "at most 4 attacked")]
    fn too_many_attacked_intervals_panic() {
        let correct = [iv(0.0, 1.0); 12];
        let _ = optimal_attack(&correct, &[1.0; 5], 5);
    }
}
