//! The Fig. 2 construction: no attack policy is optimal under partial
//! information.
//!
//! The paper's Fig. 2 shows an attacker who has seen only `s1` and must
//! commit her forged interval before `s2` arrives. Whatever she sends —
//! the one-sided `a1(1)` or the two-sided `a1(2)` — there is a placement
//! of `s2` for which a different forgery would have produced a strictly
//! wider fusion interval. This module packages that argument as an
//! executable demonstration with exact hindsight optima.

use arsf_interval::Interval;

use crate::full_knowledge::optimal_attack;

/// The outcome of evaluating one committed forgery against one
/// realisation of the unseen interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegretCase {
    /// The unseen correct interval that materialised.
    pub s2: Interval<f64>,
    /// The fusion width obtained with the committed forgery.
    pub achieved: f64,
    /// The fusion width the optimal forgery-in-hindsight achieves.
    pub hindsight: f64,
}

impl RegretCase {
    /// The attacker's regret: hindsight minus achieved (non-negative for
    /// an exact hindsight solver).
    pub fn regret(&self) -> f64 {
        self.hindsight - self.achieved
    }
}

/// Evaluates a committed forgery `a` against a realisation `s2`, with
/// `s1` already on the bus and fusion parameter `f` (n = 3).
///
/// Returns `None` when the fusion of the three intervals fails (cannot
/// happen for overlapping configurations) or the hindsight solver errors.
pub fn evaluate_commitment(
    s1: Interval<f64>,
    a: Interval<f64>,
    s2: Interval<f64>,
    f: usize,
) -> Option<RegretCase> {
    let achieved = arsf_fusion::marzullo::fuse(&[s1, s2, a], f).ok()?.width();
    let hindsight = optimal_attack(&[s1, s2], &[a.width()], f).ok()?.width();
    Some(RegretCase {
        s2,
        achieved,
        hindsight,
    })
}

/// The packaged Fig. 2 demonstration.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig2Demo {
    /// The interval the attacker has seen.
    pub s1: Interval<f64>,
    /// The forged interval width.
    pub width: f64,
    /// The one-sided policy `a1(1)` and the realisation punishing it.
    pub one_sided: (Interval<f64>, RegretCase),
    /// The two-sided policy `a1(2)` and the realisation punishing it.
    pub two_sided: (Interval<f64>, RegretCase),
}

/// Builds the Fig. 2 instance: `s1 = [0, 4]`, forged width 6, `f = 1`
/// (n = 3, so fusion needs coverage 2).
///
/// * the **one-sided** policy `a1(1) = [3, 9]` leans right; if
///   `s2 = [-3, 1]` appears on the left, hindsight (covering the left
///   frontier) is strictly wider,
/// * the **two-sided** policy `a1(2) = [-1, 5]` straddles `s1`; if the
///   wide `s2 = [4, 12]` appears on the right, hindsight is again
///   strictly wider (and the one-sided policy strictly beats the
///   two-sided one, so neither policy dominates).
///
/// Both regrets are strictly positive, which is the paper's point: no
/// committed forgery is optimal for every continuation.
///
/// # Example
///
/// ```
/// let demo = arsf_attack::regret::fig2_demo();
/// assert!(demo.one_sided.1.regret() > 0.0);
/// assert!(demo.two_sided.1.regret() > 0.0);
/// ```
pub fn fig2_demo() -> Fig2Demo {
    let s1 = Interval::new(0.0, 4.0).expect("static");
    let width = 6.0;
    let f = 1;

    let a_one = Interval::new(3.0, 9.0).expect("static");
    let s2_left = Interval::new(-3.0, 1.0).expect("static");
    let one_case =
        evaluate_commitment(s1, a_one, s2_left, f).expect("overlapping configuration fuses");

    let a_two = Interval::new(-1.0, 5.0).expect("static");
    let s2_right = Interval::new(4.0, 12.0).expect("static");
    let two_case =
        evaluate_commitment(s1, a_two, s2_right, f).expect("overlapping configuration fuses");

    Fig2Demo {
        s1,
        width,
        one_sided: (a_one, one_case),
        two_sided: (a_two, two_case),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_both_policies_have_positive_regret() {
        let demo = fig2_demo();
        assert!(
            demo.one_sided.1.regret() > 0.0,
            "one-sided: achieved {} vs hindsight {}",
            demo.one_sided.1.achieved,
            demo.one_sided.1.hindsight
        );
        assert!(
            demo.two_sided.1.regret() > 0.0,
            "two-sided: achieved {} vs hindsight {}",
            demo.two_sided.1.achieved,
            demo.two_sided.1.hindsight
        );
    }

    #[test]
    fn fig2_policies_beat_each_other_on_their_punishing_cases() {
        // On the left realisation, the two-sided policy does better than
        // the one-sided one; on the right realisation, vice versa — no
        // total order exists.
        let demo = fig2_demo();
        let one_on_left = demo.one_sided.1.achieved;
        let two_on_left = evaluate_commitment(demo.s1, demo.two_sided.0, demo.one_sided.1.s2, 1)
            .unwrap()
            .achieved;
        assert!(
            two_on_left > one_on_left,
            "two-sided {} must beat one-sided {} on the left realisation",
            two_on_left,
            one_on_left
        );
    }

    #[test]
    fn hindsight_never_below_achieved() {
        // The hindsight solver is exact, so regret is non-negative for
        // any committed stealthy forgery.
        let s1 = Interval::new(0.0, 4.0).unwrap();
        for a_lo in [-4.0, -2.0, 0.0, 2.0, 4.0] {
            let a = Interval::new(a_lo, a_lo + 6.0).unwrap();
            for s2_lo in [-5.0, -2.0, 0.0, 2.0, 4.0] {
                let s2 = Interval::new(s2_lo, s2_lo + 4.0).unwrap();
                if let Some(case) = evaluate_commitment(s1, a, s2, 1) {
                    assert!(
                        case.regret() >= -1e-9,
                        "a={a}, s2={s2}: achieved {} > hindsight {}",
                        case.achieved,
                        case.hindsight
                    );
                }
            }
        }
    }
}
