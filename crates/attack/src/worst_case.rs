//! Exhaustive worst-case configuration search (Theorems 3 and 4, Fig. 4).
//!
//! The paper's worst-case quantities are defined over *configurations*
//! (concrete placements of all intervals):
//!
//! * `S_na` — the worst-case (widest) fusion interval when **no** sensor
//!   is attacked: every interval is correct (contains the truth) and
//!   placed adversarially by nature,
//! * `S_F` — the worst case when the fixed set `F` is attacked: correct
//!   intervals placed adversarially by nature, attacked intervals placed
//!   by the optimal stealthy attacker,
//! * `S^{wc}_{fa}` — the worst case over all choices of `fa` attacked
//!   sensors.
//!
//! **Theorem 3**: attacking the `fa` *largest* intervals gives
//! `|S_F| = |S_na|`. **Theorem 4**: `|S^{wc}_{fa}|` is achieved by
//! attacking the `fa` *smallest* intervals. Both are validated
//! experimentally here by enumerating correct placements on a measurement
//! grid and invoking the exact full-knowledge solver for the attacker.

use arsf_interval::Interval;

use crate::full_knowledge::optimal_attack;
use crate::AttackError;

/// A worst-case search result: the widest fusion interval found and the
/// configuration achieving it.
#[derive(Debug, Clone, PartialEq)]
pub struct WorstCase {
    /// The widest fusion width found.
    pub width: f64,
    /// The correct intervals of the worst configuration (id order of the
    /// correct subset).
    pub correct: Vec<Interval<f64>>,
    /// The attacked intervals of the worst configuration (optimal forgery
    /// for that correct placement); empty in the no-attack search.
    pub attacked: Vec<Interval<f64>>,
}

/// Worst-case fusion width with **no attacked sensors**: all `widths`
/// belong to correct intervals that must contain the truth (0), placed
/// adversarially on a grid of the given step.
///
/// # Errors
///
/// Returns [`AttackError::NoCorrectIntervals`] for an empty width list.
///
/// # Panics
///
/// Panics if `step` is not positive or a width is negative/non-finite.
///
/// # Example
///
/// ```
/// use arsf_attack::worst_case::no_attack_worst_case;
///
/// // Two sensors of width 2 that must both contain the truth: the worst
/// // case (f = 0) is touching at the truth point ... their intersection
/// // is a single point, so the worst *fusion* width for f = 0 is 2 when
/// // they coincide. For f = 1 the span of >= 1 coverage reaches 4.
/// let wc0 = no_attack_worst_case(&[2.0, 2.0], 0, 1.0).unwrap();
/// assert_eq!(wc0.width, 2.0);
/// let wc1 = no_attack_worst_case(&[2.0, 2.0], 1, 1.0).unwrap();
/// assert_eq!(wc1.width, 4.0);
/// ```
pub fn no_attack_worst_case(widths: &[f64], f: usize, step: f64) -> Result<WorstCase, AttackError> {
    validate(widths, step)?;
    let mut best: Option<WorstCase> = None;
    let mut placement: Vec<Interval<f64>> = Vec::with_capacity(widths.len());
    enumerate_correct(widths, step, &mut placement, &mut |config| {
        if let Ok(fused) = arsf_fusion::marzullo::fuse(config, f) {
            let width = fused.width();
            if best.as_ref().is_none_or(|b| width > b.width) {
                best = Some(WorstCase {
                    width,
                    correct: config.to_vec(),
                    attacked: Vec::new(),
                });
            }
        }
    });
    best.ok_or(AttackError::NoFeasiblePlacement)
}

/// Worst-case fusion width when the sensors at `attacked` indices are
/// compromised: nature places the correct intervals adversarially, the
/// attacker best-responds with the exact full-knowledge solver.
///
/// # Errors
///
/// * [`AttackError::NoCorrectIntervals`] — all sensors attacked or empty
///   input,
/// * [`AttackError::UnboundedAttack`] — `fa ≥ n − f`.
///
/// # Panics
///
/// Panics if `step` is not positive, a width is negative/non-finite, or
/// an attacked index is out of range.
pub fn attacked_worst_case(
    widths: &[f64],
    attacked: &[usize],
    f: usize,
    step: f64,
) -> Result<WorstCase, AttackError> {
    validate(widths, step)?;
    assert!(
        attacked.iter().all(|&a| a < widths.len()),
        "attacked indices must be in range"
    );
    let attacked_widths: Vec<f64> = attacked.iter().map(|&a| widths[a]).collect();
    let correct_widths: Vec<f64> = widths
        .iter()
        .enumerate()
        .filter(|(i, _)| !attacked.contains(i))
        .map(|(_, &w)| w)
        .collect();
    if correct_widths.is_empty() {
        return Err(AttackError::NoCorrectIntervals);
    }
    let n = widths.len();
    let k = n.saturating_sub(f);
    if attacked_widths.len() >= k {
        return Err(AttackError::UnboundedAttack {
            fa: attacked_widths.len(),
            required: k,
        });
    }

    let mut best: Option<WorstCase> = None;
    let mut placement: Vec<Interval<f64>> = Vec::with_capacity(correct_widths.len());
    enumerate_correct(&correct_widths, step, &mut placement, &mut |config| {
        if let Ok(attack) = optimal_attack(config, &attacked_widths, f) {
            let width = attack.width();
            if best.as_ref().is_none_or(|b| width > b.width) {
                best = Some(WorstCase {
                    width,
                    correct: config.to_vec(),
                    attacked: attack.placements,
                });
            }
        }
    });
    best.ok_or(AttackError::NoFeasiblePlacement)
}

/// The worst case over **all** choices of `fa` attacked sensors
/// (`S^{wc}_{fa}`), returning the achieving subset alongside the result.
///
/// # Errors
///
/// Propagates the first error if every subset fails (e.g. unbounded
/// configurations).
pub fn global_worst_case(
    widths: &[f64],
    fa: usize,
    f: usize,
    step: f64,
) -> Result<(Vec<usize>, WorstCase), AttackError> {
    let n = widths.len();
    let mut best: Option<(Vec<usize>, WorstCase)> = None;
    let mut first_err = None;
    for subset in subsets(n, fa) {
        match attacked_worst_case(widths, &subset, f, step) {
            Ok(wc) => {
                if best.as_ref().is_none_or(|(_, b)| wc.width > b.width) {
                    best = Some((subset, wc));
                }
            }
            Err(e) => first_err = Some(e),
        }
    }
    best.ok_or(first_err.unwrap_or(AttackError::NoFeasiblePlacement))
}

/// All size-`k` subsets of `0..n` in lexicographic order.
pub fn subsets(n: usize, k: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut current = Vec::with_capacity(k);
    fn rec(start: usize, n: usize, k: usize, current: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if current.len() == k {
            out.push(current.clone());
            return;
        }
        for i in start..n {
            current.push(i);
            rec(i + 1, n, k, current, out);
            current.pop();
        }
    }
    rec(0, n, k, &mut current, &mut out);
    out
}

fn validate(widths: &[f64], step: f64) -> Result<(), AttackError> {
    assert!(step > 0.0 && step.is_finite(), "step must be positive");
    assert!(
        widths.iter().all(|w| w.is_finite() && *w >= 0.0),
        "widths must be finite and non-negative"
    );
    if widths.is_empty() {
        return Err(AttackError::NoCorrectIntervals);
    }
    Ok(())
}

/// Enumerates placements of correct intervals: each of width `w` centred
/// at a grid offset in `[-w/2, +w/2]` (so the truth 0 is always
/// contained), invoking `visit` for every complete configuration.
fn enumerate_correct(
    widths: &[f64],
    step: f64,
    placement: &mut Vec<Interval<f64>>,
    visit: &mut impl FnMut(&[Interval<f64>]),
) {
    let idx = placement.len();
    if idx == widths.len() {
        visit(placement);
        return;
    }
    let w = widths[idx];
    let half = w * 0.5;
    let count = (w / step).round() as usize;
    for j in 0..=count {
        let centre = if count == 0 {
            0.0
        } else {
            -half + w * j as f64 / count as f64
        };
        placement.push(Interval::centered(centre, half).expect("grid centres are finite"));
        enumerate_correct(widths, step, placement, visit);
        placement.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subsets_enumeration() {
        assert_eq!(subsets(3, 1), vec![vec![0], vec![1], vec![2]]);
        assert_eq!(subsets(3, 2), vec![vec![0, 1], vec![0, 2], vec![1, 2]]);
        assert_eq!(subsets(2, 0), vec![Vec::<usize>::new()]);
        assert_eq!(subsets(3, 3), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn no_attack_worst_case_is_positive_and_bounded() {
        // n = 3, f = 1 < ceil(3/2): bounded by the largest width.
        let wc = no_attack_worst_case(&[2.0, 4.0, 6.0], 1, 1.0).unwrap();
        assert!(wc.width > 0.0);
        assert!(wc.width <= 6.0, "f < ceil(n/2) keeps fusion bounded");
        assert_eq!(wc.attacked.len(), 0);
        assert_eq!(wc.correct.len(), 3);
    }

    #[test]
    fn theorem3_attacking_largest_equals_no_attack() {
        // Theorem 3: if the fa largest intervals are attacked, the
        // worst-case fusion width does not change.
        let widths = [2.0, 4.0, 6.0];
        let na = no_attack_worst_case(&widths, 1, 1.0).unwrap();
        let largest = attacked_worst_case(&widths, &[2], 1, 1.0).unwrap();
        assert_eq!(
            largest.width, na.width,
            "attacking the largest interval must not change the worst case"
        );
    }

    #[test]
    fn theorem4_smallest_attack_achieves_global_worst_case() {
        let widths = [2.0, 4.0, 6.0];
        let (best_set, global) = global_worst_case(&widths, 1, 1, 1.0).unwrap();
        let smallest = attacked_worst_case(&widths, &[0], 1, 1.0).unwrap();
        assert_eq!(
            smallest.width, global.width,
            "attacking the smallest interval must achieve the global worst case (best set: {best_set:?})"
        );
    }

    #[test]
    fn attack_worst_case_at_least_no_attack() {
        let widths = [2.0, 4.0, 6.0];
        let na = no_attack_worst_case(&widths, 1, 2.0).unwrap();
        for a in 0..3 {
            let wc = attacked_worst_case(&widths, &[a], 1, 2.0).unwrap();
            assert!(
                wc.width >= na.width,
                "attacking sensor {a}: {} < {}",
                wc.width,
                na.width
            );
        }
    }

    #[test]
    fn unbounded_subset_is_rejected() {
        // n = 3, f = 1, k = 2: fa = 2 >= k.
        let err = attacked_worst_case(&[1.0, 2.0, 3.0], &[0, 1], 1, 1.0).unwrap_err();
        assert!(matches!(err, AttackError::UnboundedAttack { .. }));
    }

    #[test]
    fn empty_inputs_error() {
        assert!(no_attack_worst_case(&[], 0, 1.0).is_err());
        assert!(attacked_worst_case(&[1.0], &[0], 0, 1.0).is_err());
    }

    #[test]
    fn degenerate_widths_work() {
        // Zero-width sensors pin the truth exactly.
        let wc = no_attack_worst_case(&[0.0, 0.0, 4.0], 1, 1.0).unwrap();
        // Coverage >= 2 needs both point sensors (at 0) or one point plus
        // the wide interval: the span can reach at most half the wide
        // interval's width on one side.
        assert!(wc.width <= 2.0);
    }
}
