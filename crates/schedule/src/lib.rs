//! Sensor communication schedules.
//!
//! On a shared broadcast bus every component sees every transmitted
//! message, so an attacker who controls some sensors learns the correct
//! sensors' intervals *transmitted before her slots*. The paper therefore
//! studies how the **transmission order** changes the attacker's power and
//! recommends the *Ascending* schedule (most precise sensor first).
//!
//! The only information available a priori for scheduling is the fixed
//! interval width of each sensor, so every policy here is a function of
//! the width vector (plus a round counter and randomness):
//!
//! * [`SchedulePolicy::Ascending`] — widths increasing (paper's choice),
//! * [`SchedulePolicy::Descending`] — widths decreasing,
//! * [`SchedulePolicy::Random`] — fresh uniform order each round
//!   (case-study comparison, Table II),
//! * [`SchedulePolicy::Fixed`] — an explicit order,
//! * [`SchedulePolicy::Rotating`] — round-robin rotation of a fixed order.
//!
//! [`analysis`] quantifies the *information exposure* a schedule grants an
//! attacker (how many correct intervals she has seen when forced to
//! commit), the quantity the paper's Theorem 1 and schedule comparison
//! revolve around.
//!
//! # Example
//!
//! ```
//! use arsf_schedule::SchedulePolicy;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let widths = [5.0, 17.0, 11.0];
//! let mut rng = StdRng::seed_from_u64(0);
//! let asc = SchedulePolicy::Ascending.order(&widths, 0, &mut rng);
//! assert_eq!(asc.as_slice(), &[0, 2, 1]); // 5 <= 11 <= 17
//! let desc = SchedulePolicy::Descending.order(&widths, 0, &mut rng);
//! assert_eq!(desc.as_slice(), &[1, 2, 0]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod analysis;
mod order;
mod policy;
pub mod slots;

pub use order::TransmissionOrder;
pub use policy::SchedulePolicy;
