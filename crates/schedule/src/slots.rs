//! TDMA slot tables: mapping transmission orders onto bus time.

use crate::TransmissionOrder;

/// A time-division slot table: each sensor owns one fixed-duration slot
/// per communication round, in the order given by a [`TransmissionOrder`].
///
/// Durations are in abstract *ticks* (the bus crate interprets them); the
/// table only does arithmetic, keeping it independent of any clock.
///
/// # Example
///
/// ```
/// use arsf_schedule::{slots::SlotTable, TransmissionOrder};
///
/// let order = TransmissionOrder::new(vec![2, 0, 1]).unwrap();
/// let table = SlotTable::new(order, 10);
/// assert_eq!(table.slot_start(0), 0);   // sensor 2's slot
/// assert_eq!(table.slot_start(2), 20);  // sensor 1's slot
/// assert_eq!(table.round_duration(), 30);
/// assert_eq!(table.sensor_slot_start(1), Some(20));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SlotTable {
    order: TransmissionOrder,
    slot_ticks: u64,
}

impl SlotTable {
    /// Creates a slot table with the given per-slot duration in ticks.
    ///
    /// # Panics
    ///
    /// Panics if `slot_ticks == 0`; zero-length slots would collapse the
    /// round into a single instant and break bus arbitration.
    pub fn new(order: TransmissionOrder, slot_ticks: u64) -> Self {
        assert!(slot_ticks > 0, "slot duration must be positive");
        Self { order, slot_ticks }
    }

    /// The transmission order underlying this table.
    pub fn order(&self) -> &TransmissionOrder {
        &self.order
    }

    /// The per-slot duration in ticks.
    pub fn slot_ticks(&self) -> u64 {
        self.slot_ticks
    }

    /// The tick at which slot `slot` begins (relative to round start).
    pub fn slot_start(&self, slot: usize) -> u64 {
        slot as u64 * self.slot_ticks
    }

    /// The tick at which the given sensor's slot begins, or `None` when
    /// the sensor is not scheduled.
    pub fn sensor_slot_start(&self, sensor: usize) -> Option<u64> {
        self.order.slot_of(sensor).map(|s| self.slot_start(s))
    }

    /// The total duration of one round in ticks.
    pub fn round_duration(&self) -> u64 {
        self.order.len() as u64 * self.slot_ticks
    }

    /// The slot index active at tick `t` (relative to round start), or
    /// `None` when `t` is past the end of the round.
    pub fn slot_at(&self, t: u64) -> Option<usize> {
        if self.order.is_empty() || t >= self.round_duration() {
            return None;
        }
        Some((t / self.slot_ticks) as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> SlotTable {
        SlotTable::new(TransmissionOrder::new(vec![1, 0, 2]).unwrap(), 5)
    }

    #[test]
    fn starts_and_duration() {
        let t = table();
        assert_eq!(t.slot_start(0), 0);
        assert_eq!(t.slot_start(1), 5);
        assert_eq!(t.slot_start(2), 10);
        assert_eq!(t.round_duration(), 15);
        assert_eq!(t.slot_ticks(), 5);
    }

    #[test]
    fn sensor_lookup() {
        let t = table();
        assert_eq!(t.sensor_slot_start(1), Some(0));
        assert_eq!(t.sensor_slot_start(0), Some(5));
        assert_eq!(t.sensor_slot_start(7), None);
    }

    #[test]
    fn slot_at_tick() {
        let t = table();
        assert_eq!(t.slot_at(0), Some(0));
        assert_eq!(t.slot_at(4), Some(0));
        assert_eq!(t.slot_at(5), Some(1));
        assert_eq!(t.slot_at(14), Some(2));
        assert_eq!(t.slot_at(15), None);
    }

    #[test]
    #[should_panic(expected = "slot duration must be positive")]
    fn zero_slot_duration_panics() {
        let _ = SlotTable::new(TransmissionOrder::identity(2), 0);
    }

    #[test]
    fn empty_order_has_zero_duration() {
        let t = SlotTable::new(TransmissionOrder::new(vec![]).unwrap(), 3);
        assert_eq!(t.round_duration(), 0);
        assert_eq!(t.slot_at(0), None);
    }
}
