//! Validated transmission orders.

use core::fmt;
use core::ops::Index;

/// A validated transmission order: a permutation of sensor indices
/// `0..n`, listed in the order their slots occur on the bus.
///
/// # Example
///
/// ```
/// use arsf_schedule::TransmissionOrder;
///
/// let order = TransmissionOrder::new(vec![2, 0, 1]).expect("a permutation");
/// assert_eq!(order.len(), 3);
/// assert_eq!(order[0], 2);            // sensor 2 transmits first
/// assert_eq!(order.slot_of(2), Some(0));
/// assert_eq!(order.slot_of(1), Some(2));
/// assert!(TransmissionOrder::new(vec![0, 0, 1]).is_none()); // not a permutation
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TransmissionOrder {
    order: Vec<usize>,
}

impl TransmissionOrder {
    /// Validates that `order` is a permutation of `0..order.len()` and
    /// wraps it; returns `None` otherwise.
    pub fn new(order: Vec<usize>) -> Option<Self> {
        let n = order.len();
        let mut seen = vec![false; n];
        for &i in &order {
            if i >= n || seen[i] {
                return None;
            }
            seen[i] = true;
        }
        Some(Self { order })
    }

    /// The identity order `0, 1, …, n − 1`.
    pub fn identity(n: usize) -> Self {
        Self {
            order: (0..n).collect(),
        }
    }

    /// The number of slots (= sensors).
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the order is empty.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The sensor indices in slot order.
    pub fn as_slice(&self) -> &[usize] {
        &self.order
    }

    /// The slot at which `sensor` transmits, or `None` if the sensor is
    /// not in the order.
    pub fn slot_of(&self, sensor: usize) -> Option<usize> {
        self.order.iter().position(|&s| s == sensor)
    }

    /// The sensors transmitting strictly before `slot`, in order.
    pub fn before(&self, slot: usize) -> &[usize] {
        &self.order[..slot.min(self.order.len())]
    }

    /// A new order rotated left by `shift` slots (round-robin rotation).
    #[must_use]
    pub fn rotated(&self, shift: usize) -> Self {
        let n = self.order.len();
        if n == 0 {
            return self.clone();
        }
        let shift = shift % n;
        let mut order = Vec::with_capacity(n);
        order.extend_from_slice(&self.order[shift..]);
        order.extend_from_slice(&self.order[..shift]);
        Self { order }
    }

    /// Iterates over the sensor indices in slot order.
    pub fn iter(&self) -> core::slice::Iter<'_, usize> {
        self.order.iter()
    }
}

impl Index<usize> for TransmissionOrder {
    type Output = usize;

    fn index(&self, slot: usize) -> &usize {
        &self.order[slot]
    }
}

impl<'a> IntoIterator for &'a TransmissionOrder {
    type Item = &'a usize;
    type IntoIter = core::slice::Iter<'a, usize>;

    fn into_iter(self) -> Self::IntoIter {
        self.order.iter()
    }
}

impl fmt::Display for TransmissionOrder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, s) in self.order.iter().enumerate() {
            if i > 0 {
                write!(f, " → ")?;
            }
            write!(f, "s{s}")?;
        }
        write!(f, "⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_rejects_non_permutations() {
        assert!(TransmissionOrder::new(vec![0, 1, 2]).is_some());
        assert!(TransmissionOrder::new(vec![2, 1, 0]).is_some());
        assert!(TransmissionOrder::new(vec![0, 0]).is_none());
        assert!(TransmissionOrder::new(vec![1, 2]).is_none());
        assert!(TransmissionOrder::new(vec![]).is_some());
    }

    #[test]
    fn slot_lookups() {
        let order = TransmissionOrder::new(vec![3, 1, 0, 2]).unwrap();
        assert_eq!(order.slot_of(3), Some(0));
        assert_eq!(order.slot_of(2), Some(3));
        assert_eq!(order.slot_of(9), None);
        assert_eq!(order[1], 1);
        assert_eq!(order.before(2), &[3, 1]);
        assert_eq!(order.before(99), &[3, 1, 0, 2]);
    }

    #[test]
    fn rotation_wraps() {
        let order = TransmissionOrder::new(vec![0, 1, 2]).unwrap();
        assert_eq!(order.rotated(1).as_slice(), &[1, 2, 0]);
        assert_eq!(order.rotated(3).as_slice(), &[0, 1, 2]);
        assert_eq!(order.rotated(5).as_slice(), &[2, 0, 1]);
    }

    #[test]
    fn rotation_of_empty_is_empty() {
        let order = TransmissionOrder::new(vec![]).unwrap();
        assert!(order.rotated(4).is_empty());
    }

    #[test]
    fn identity_is_sorted() {
        assert_eq!(TransmissionOrder::identity(4).as_slice(), &[0, 1, 2, 3]);
    }

    #[test]
    fn display_shows_arrows() {
        let order = TransmissionOrder::new(vec![1, 0]).unwrap();
        assert_eq!(order.to_string(), "⟨s1 → s0⟩");
    }

    #[test]
    fn iteration() {
        let order = TransmissionOrder::new(vec![2, 0, 1]).unwrap();
        let collected: Vec<usize> = order.iter().copied().collect();
        assert_eq!(collected, vec![2, 0, 1]);
        let via_into: Vec<usize> = (&order).into_iter().copied().collect();
        assert_eq!(via_into, collected);
    }
}
