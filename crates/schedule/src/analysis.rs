//! Information-exposure analysis of schedules.
//!
//! The attacker's power under a given schedule is determined by *what she
//! has seen when she must commit*. This module computes, for a fixed
//! transmission order and a set of attacked sensors:
//!
//! * how many **correct** intervals precede each attacked slot (the
//!   information available when forging that interval),
//! * whether each attacked slot may use the paper's **active mode**
//!   (`sent ≥ n − f − far`, where `far` counts the attacker's still-unsent
//!   intervals), which removes the `Δ ⊆ forged` constraint,
//! * whether the attacked slots are consecutive (a hypothesis of
//!   Theorem 1).
//!
//! These are the quantities the paper's Section IV argument is built on:
//! Ascending forces precise (dangerous) sensors to commit blind, while
//! Descending hands them full information.

use crate::TransmissionOrder;

/// Exposure of one attacked slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlotExposure {
    /// The attacked sensor's index.
    pub sensor: usize,
    /// Its slot position in the order (0-based).
    pub slot: usize,
    /// Number of *correct* intervals transmitted strictly before the slot.
    pub correct_seen: usize,
    /// Number of measurements (any kind) transmitted strictly before.
    pub sent_before: usize,
    /// Number of attacked intervals not yet sent at this slot, *including
    /// this one* (the paper's `far`).
    pub unsent_attacked: usize,
    /// Whether active mode is allowed: `sent_before ≥ n − f − far`.
    pub active_mode: bool,
}

/// Exposure of a whole attacked-sensor set under one order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExposureReport {
    /// Per-attacked-slot exposure, in slot order.
    pub slots: Vec<SlotExposure>,
    /// Whether the attacked slots are consecutive in the order.
    pub consecutive: bool,
    /// Total number of sensors.
    pub n: usize,
    /// The fault assumption used for the active-mode threshold.
    pub f: usize,
}

impl ExposureReport {
    /// Correct intervals seen before the *first* attacked slot — the
    /// information available when the attacker must start committing.
    pub fn correct_seen_at_first(&self) -> usize {
        self.slots.first().map_or(0, |s| s.correct_seen)
    }

    /// Correct intervals seen before the *last* attacked slot.
    pub fn correct_seen_at_last(&self) -> usize {
        self.slots.last().map_or(0, |s| s.correct_seen)
    }

    /// Whether every attacked slot may use active mode.
    pub fn fully_active(&self) -> bool {
        !self.slots.is_empty() && self.slots.iter().all(|s| s.active_mode)
    }
}

/// Computes the [`ExposureReport`] for `attacked` sensors under `order`
/// with fusion fault assumption `f`.
///
/// Sensors listed in `attacked` but absent from the order are ignored;
/// duplicate entries are ignored.
///
/// # Example
///
/// ```
/// use arsf_schedule::{analysis::exposure, TransmissionOrder};
///
/// // Ascending order of widths {5, 11, 17}: sensor 0 is most precise.
/// let order = TransmissionOrder::new(vec![0, 1, 2]).unwrap();
/// // The attacker holds the most precise sensor; f = 1.
/// let report = exposure(&order, &[0], 1);
/// assert_eq!(report.correct_seen_at_first(), 0); // commits blind
/// assert!(!report.slots[0].active_mode);         // 0 sent < 3 - 1 - 1
///
/// // Descending: the same sensor now transmits last and sees everything.
/// let order = TransmissionOrder::new(vec![2, 1, 0]).unwrap();
/// let report = exposure(&order, &[0], 1);
/// assert_eq!(report.correct_seen_at_first(), 2);
/// assert!(report.slots[0].active_mode);          // 2 sent >= 3 - 1 - 1
/// ```
pub fn exposure(order: &TransmissionOrder, attacked: &[usize], f: usize) -> ExposureReport {
    let n = order.len();
    let is_attacked = |i: usize| attacked.contains(&i);

    let attacked_slots: Vec<usize> = order
        .iter()
        .enumerate()
        .filter(|(_, &sensor)| is_attacked(sensor))
        .map(|(slot, _)| slot)
        .collect();
    let total_attacked = attacked_slots.len();

    let mut slots = Vec::with_capacity(total_attacked);
    for (k, &slot) in attacked_slots.iter().enumerate() {
        let sensor = order[slot];
        let sent_before = slot;
        let correct_seen = order
            .before(slot)
            .iter()
            .filter(|&&s| !is_attacked(s))
            .count();
        let unsent_attacked = total_attacked - k;
        // Paper, Section III-A: active mode requires
        //   sent >= n - f - far.
        let threshold = n.saturating_sub(f + unsent_attacked);
        let active_mode = sent_before >= threshold;
        slots.push(SlotExposure {
            sensor,
            slot,
            correct_seen,
            sent_before,
            unsent_attacked,
            active_mode,
        });
    }

    let consecutive = slots.windows(2).all(|w| w[1].slot == w[0].slot + 1);

    ExposureReport {
        slots,
        consecutive,
        n,
        f,
    }
}

/// The average number of correct intervals visible to the attacker over
/// all single-sensor attacks, a scalar summary used to rank schedules.
///
/// Lower is better for the defender.
///
/// # Example
///
/// ```
/// use arsf_schedule::{analysis::mean_exposure_single_attack, TransmissionOrder};
///
/// let order = TransmissionOrder::identity(4);
/// // Attacking sensor k in slot k sees k earlier (correct) intervals:
/// // mean = (0 + 1 + 2 + 3) / 4.
/// assert_eq!(mean_exposure_single_attack(&order, 1), 1.5);
/// ```
pub fn mean_exposure_single_attack(order: &TransmissionOrder, f: usize) -> f64 {
    let n = order.len();
    if n == 0 {
        return 0.0;
    }
    let total: usize = (0..n)
        .map(|sensor| exposure(order, &[sensor], f).correct_seen_at_first())
        .sum();
    total as f64 / n as f64
}

/// A defender-side risk score for an order: how much information the
/// schedule hands an attacker, weighted by how dangerous each sensor is
/// to compromise.
///
/// Theorems 3 and 4 say compromising *precise* sensors yields the most
/// power, so the score weights each sensor's pre-slot exposure by its
/// precision (`1 / width`, degenerate widths clamped): an order that lets
/// a precise sensor transmit late — informed — scores high (bad).
/// Optionally, sensors the operator believes cannot be spoofed
/// (`trusted`) contribute no risk no matter where they sit.
///
/// The score is a heuristic ranking device, not an expectation; the exact
/// expectations live in the `arsf-attack` expectimax engine. Its value is
/// that it is closed-form, so whole permutation spaces can be searched.
pub fn exposure_risk(order: &TransmissionOrder, widths: &[f64], f: usize, trusted: &[bool]) -> f64 {
    let mut score = 0.0;
    for sensor in 0..order.len() {
        if trusted.get(sensor).copied().unwrap_or(false) {
            continue;
        }
        let report = exposure(order, &[sensor], f);
        let seen = report.correct_seen_at_first() as f64;
        let width = widths.get(sensor).copied().unwrap_or(1.0).max(1e-9);
        score += seen / width;
    }
    score
}

/// Searches every permutation (n ≤ 9) for the order minimising
/// [`exposure_risk`] — the paper's scheduling advice made executable.
///
/// For untrusted sensors with distinct widths the result is the Ascending
/// order (precise sensors first, blind); sensors marked `trusted`
/// (hard to spoof, e.g. an IMU) are pushed to the *end* of the schedule,
/// matching the paper's closing observation that confident-correct
/// sensors "should always be placed last", denying the attacker their
/// measurements.
///
/// Ties are broken towards the lexicographically-smallest order, so the
/// result is deterministic.
///
/// # Panics
///
/// Panics if `widths.len() != trusted.len()` or `widths.len() > 9`
/// (factorial search).
///
/// # Example
///
/// ```
/// use arsf_schedule::analysis::recommend_order;
///
/// // LandShark widths; nobody trusted: plain Ascending.
/// let order = recommend_order(&[0.2, 0.2, 1.0, 2.0], 1, &[false; 4]);
/// assert_eq!(order.as_slice(), &[0, 1, 2, 3]);
///
/// // Declare the camera (sensor 3) unspoofable: it moves last anyway;
/// // declare the GPS (sensor 2) unspoofable: it moves to the end.
/// let order = recommend_order(&[0.2, 0.2, 1.0, 2.0], 1, &[false, false, true, false]);
/// assert_eq!(*order.as_slice().last().unwrap(), 2);
/// ```
pub fn recommend_order(widths: &[f64], f: usize, trusted: &[bool]) -> TransmissionOrder {
    let n = widths.len();
    assert_eq!(n, trusted.len(), "one trust flag per sensor");
    assert!(n <= 9, "permutation search is factorial; n must be <= 9");
    if n == 0 {
        return TransmissionOrder::identity(0);
    }

    let mut best: Option<(f64, Vec<usize>)> = None;
    let mut perm: Vec<usize> = (0..n).collect();
    permute(&mut perm, 0, &mut |candidate| {
        let order = TransmissionOrder::new(candidate.to_vec())
            .unwrap_or_else(|| unreachable!("permute visits permutations of 0..n only"));
        // Primary: risk; secondary: trusted sensors as late as possible
        // (their late slots deny information at zero risk); tertiary:
        // lexicographic for determinism.
        let risk = exposure_risk(&order, widths, f, trusted);
        let trust_earliness: usize = candidate
            .iter()
            .enumerate()
            .filter(|(_, &s)| trusted.get(s).copied().unwrap_or(false))
            .map(|(slot, _)| n - slot)
            .sum();
        let score = risk + trust_earliness as f64 * 1e-6;
        let better = match &best {
            None => true,
            Some((b, bperm)) => {
                score < *b - 1e-12 || ((score - *b).abs() <= 1e-12 && candidate < &bperm[..])
            }
        };
        if better {
            best = Some((score, candidate.to_vec()));
        }
    });
    let winner = best.unwrap_or_else(|| unreachable!("n >= 1, so at least one permutation scored"));
    TransmissionOrder::new(winner.1)
        .unwrap_or_else(|| unreachable!("the winner is one of the visited permutations"))
}

fn permute(items: &mut Vec<usize>, k: usize, visit: &mut impl FnMut(&[usize])) {
    if k == items.len() {
        visit(items);
        return;
    }
    for i in k..items.len() {
        items.swap(k, i);
        permute(items, k + 1, visit);
        items.swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_attacker_first_slot_is_blind_and_passive() {
        let order = TransmissionOrder::new(vec![0, 1, 2]).unwrap();
        let report = exposure(&order, &[0], 1);
        assert_eq!(report.slots.len(), 1);
        let s = report.slots[0];
        assert_eq!(s.correct_seen, 0);
        assert_eq!(s.sent_before, 0);
        assert_eq!(s.unsent_attacked, 1);
        // threshold = 3 - 1 - 1 = 1 > 0 sent: passive.
        assert!(!s.active_mode);
        assert!(!report.fully_active());
    }

    #[test]
    fn single_attacker_last_slot_is_fully_informed_and_active() {
        let order = TransmissionOrder::new(vec![2, 1, 0]).unwrap();
        let report = exposure(&order, &[0], 1);
        let s = report.slots[0];
        assert_eq!(s.correct_seen, 2);
        assert!(s.active_mode);
        assert!(report.fully_active());
        assert!(report.consecutive);
    }

    #[test]
    fn two_attackers_track_far_correctly() {
        // n = 5, f = 2, attacked sensors 0 and 1 in the last two slots.
        let order = TransmissionOrder::new(vec![4, 3, 2, 0, 1]).unwrap();
        let report = exposure(&order, &[0, 1], 2);
        assert_eq!(report.slots.len(), 2);
        let first = report.slots[0];
        let second = report.slots[1];
        // First attacked slot: 3 sent, far = 2, threshold = 5-2-2 = 1.
        assert_eq!(first.sent_before, 3);
        assert_eq!(first.unsent_attacked, 2);
        assert!(first.active_mode);
        // Second: 4 sent, far = 1, threshold = 5-2-1 = 2.
        assert_eq!(second.sent_before, 4);
        assert_eq!(second.unsent_attacked, 1);
        assert!(second.active_mode);
        assert!(report.consecutive);
    }

    #[test]
    fn ascending_start_is_passive_for_both_attackers() {
        // n = 5, f = 2, attacked in the first two slots (Ascending with
        // the two most precise compromised).
        let order = TransmissionOrder::new(vec![0, 1, 2, 3, 4]).unwrap();
        let report = exposure(&order, &[0, 1], 2);
        let first = report.slots[0];
        let second = report.slots[1];
        // threshold for first: 5-2-2 = 1 > 0 sent: passive.
        assert!(!first.active_mode);
        // threshold for second: 5-2-1 = 2 > 1 sent: passive.
        assert!(!second.active_mode);
        assert_eq!(report.correct_seen_at_first(), 0);
        assert_eq!(report.correct_seen_at_last(), 0);
    }

    #[test]
    fn non_consecutive_slots_are_detected() {
        let order = TransmissionOrder::new(vec![0, 2, 1, 3]).unwrap();
        let report = exposure(&order, &[0, 1], 1);
        assert!(!report.consecutive); // slots 0 and 2
    }

    #[test]
    fn attacked_sensors_missing_from_order_are_ignored() {
        let order = TransmissionOrder::identity(3);
        let report = exposure(&order, &[9], 1);
        assert!(report.slots.is_empty());
        assert_eq!(report.correct_seen_at_first(), 0);
        assert!(!report.fully_active());
    }

    #[test]
    fn recommendation_is_ascending_without_trust() {
        let order = recommend_order(&[5.0, 11.0, 17.0], 1, &[false; 3]);
        assert_eq!(order.as_slice(), &[0, 1, 2]);
        let order = recommend_order(&[17.0, 5.0, 11.0], 1, &[false; 3]);
        assert_eq!(order.as_slice(), &[1, 2, 0]);
    }

    #[test]
    fn trusted_sensors_are_scheduled_last() {
        // A trusted precise sensor would normally go first; trust sends
        // it to the back (deny its measurement to the attacker).
        let order = recommend_order(&[0.2, 1.0, 2.0], 1, &[true, false, false]);
        assert_eq!(*order.as_slice().last().unwrap(), 0);
        // The untrusted rest stays in ascending width order.
        assert_eq!(order.as_slice(), &[1, 2, 0]);
    }

    #[test]
    fn all_trusted_degenerates_gracefully() {
        let order = recommend_order(&[1.0, 2.0], 1, &[true, true]);
        assert_eq!(order.len(), 2);
    }

    #[test]
    fn risk_score_prefers_precise_first() {
        let widths = [0.2, 2.0];
        let precise_first = TransmissionOrder::new(vec![0, 1]).unwrap();
        let precise_last = TransmissionOrder::new(vec![1, 0]).unwrap();
        let no_trust = [false, false];
        assert!(
            exposure_risk(&precise_first, &widths, 1, &no_trust)
                < exposure_risk(&precise_last, &widths, 1, &no_trust)
        );
    }

    #[test]
    fn empty_recommendation() {
        let order = recommend_order(&[], 0, &[]);
        assert!(order.is_empty());
    }

    #[test]
    fn mean_exposure_ranks_orders() {
        // For single attacks the mean exposure is the same for any
        // permutation (the attacker occupies each slot exactly once), so
        // this metric distinguishes *which* sensor sits where instead via
        // exposure(); the mean is (0+..+n-1)/n.
        let id = TransmissionOrder::identity(5);
        let rev = TransmissionOrder::new(vec![4, 3, 2, 1, 0]).unwrap();
        assert_eq!(mean_exposure_single_attack(&id, 2), 2.0);
        assert_eq!(mean_exposure_single_attack(&rev, 2), 2.0);
        assert_eq!(
            mean_exposure_single_attack(&TransmissionOrder::identity(0), 1),
            0.0
        );
    }
}
