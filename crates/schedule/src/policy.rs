//! Schedule policies.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::TransmissionOrder;

/// A policy mapping sensor interval widths to a transmission order.
///
/// Ties between equal widths are broken by sensor index, so Ascending and
/// Descending are deterministic; [`SchedulePolicy::Random`] uses the
/// supplied RNG and [`SchedulePolicy::Rotating`] uses the round counter.
///
/// # Example
///
/// ```
/// use arsf_schedule::SchedulePolicy;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let widths = [1.0, 0.2, 0.2, 2.0]; // gps, enc, enc, camera
/// let mut rng = StdRng::seed_from_u64(1);
/// let order = SchedulePolicy::Ascending.order(&widths, 0, &mut rng);
/// assert_eq!(order.as_slice(), &[1, 2, 0, 3]); // encoders first
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SchedulePolicy {
    /// Most precise (smallest width) sensors transmit first — the paper's
    /// recommended schedule.
    Ascending,
    /// Least precise (largest width) sensors transmit first.
    Descending,
    /// A fresh uniformly-random order every round (the paper's "Random
    /// schedule that changes transmission order in every step").
    Random,
    /// An explicit fixed order (validated when applied).
    Fixed(TransmissionOrder),
    /// A fixed base order rotated left by one slot every round.
    Rotating(TransmissionOrder),
}

impl SchedulePolicy {
    /// Produces the transmission order for one round.
    ///
    /// `widths[i]` is the interval width of sensor `i`; `round` is the
    /// communication round counter (used by [`SchedulePolicy::Rotating`]);
    /// `rng` is used by [`SchedulePolicy::Random`].
    ///
    /// # Panics
    ///
    /// Panics if a [`SchedulePolicy::Fixed`] or [`SchedulePolicy::Rotating`]
    /// order's length does not match `widths.len()` — schedules are static
    /// configuration, so a mismatch is a programming error.
    pub fn order<R: Rng + ?Sized>(
        &self,
        widths: &[f64],
        round: u64,
        rng: &mut R,
    ) -> TransmissionOrder {
        let n = widths.len();
        match self {
            SchedulePolicy::Ascending => sort_by_width(widths, false),
            SchedulePolicy::Descending => sort_by_width(widths, true),
            SchedulePolicy::Random => {
                let mut idx: Vec<usize> = (0..n).collect();
                idx.shuffle(rng);
                TransmissionOrder::new(idx)
                    .unwrap_or_else(|| unreachable!("a shuffle of 0..n is a permutation"))
            }
            SchedulePolicy::Fixed(order) => {
                assert_eq!(order.len(), n, "fixed order length must match sensor count");
                order.clone()
            }
            SchedulePolicy::Rotating(base) => {
                assert_eq!(
                    base.len(),
                    n,
                    "rotating order length must match sensor count"
                );
                base.rotated((round % n.max(1) as u64) as usize)
            }
        }
    }

    /// The policy's rank in the paper's Table II exposure ordering, when
    /// it has one: `Ascending` (`0`, the recommended schedule — an
    /// adaptive attacker learns least before transmitting) below `Random`
    /// (`1`) below `Descending` (`2`, the attacker transmits last with
    /// full knowledge of the precise sensors).
    ///
    /// [`SchedulePolicy::Fixed`] and [`SchedulePolicy::Rotating`] return
    /// `None`: their exposure depends on the concrete order, so the
    /// static dominance pass makes no claim about them.
    pub fn exposure_rank(&self) -> Option<u8> {
        match self {
            SchedulePolicy::Ascending => Some(0),
            SchedulePolicy::Random => Some(1),
            SchedulePolicy::Descending => Some(2),
            SchedulePolicy::Fixed(_) | SchedulePolicy::Rotating(_) => None,
        }
    }

    /// A short name for reports and benchmark labels.
    pub fn name(&self) -> &'static str {
        match self {
            SchedulePolicy::Ascending => "ascending",
            SchedulePolicy::Descending => "descending",
            SchedulePolicy::Random => "random",
            SchedulePolicy::Fixed(_) => "fixed",
            SchedulePolicy::Rotating(_) => "rotating",
        }
    }
}

fn sort_by_width(widths: &[f64], descending: bool) -> TransmissionOrder {
    let mut idx: Vec<usize> = (0..widths.len()).collect();
    idx.sort_by(|&a, &b| {
        let cmp = widths[a].total_cmp(&widths[b]);
        let cmp = if descending { cmp.reverse() } else { cmp };
        cmp.then(a.cmp(&b))
    });
    TransmissionOrder::new(idx).unwrap_or_else(|| unreachable!("a sort of 0..n is a permutation"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn ascending_sorts_smallest_first() {
        let order = SchedulePolicy::Ascending.order(&[5.0, 11.0, 17.0], 0, &mut rng());
        assert_eq!(order.as_slice(), &[0, 1, 2]);
        let order = SchedulePolicy::Ascending.order(&[17.0, 5.0, 11.0], 0, &mut rng());
        assert_eq!(order.as_slice(), &[1, 2, 0]);
    }

    #[test]
    fn descending_sorts_largest_first() {
        let order = SchedulePolicy::Descending.order(&[5.0, 11.0, 17.0], 0, &mut rng());
        assert_eq!(order.as_slice(), &[2, 1, 0]);
    }

    #[test]
    fn ties_break_by_index_in_both_directions() {
        let widths = [5.0, 5.0, 5.0, 14.0];
        let asc = SchedulePolicy::Ascending.order(&widths, 0, &mut rng());
        assert_eq!(asc.as_slice(), &[0, 1, 2, 3]);
        let desc = SchedulePolicy::Descending.order(&widths, 0, &mut rng());
        assert_eq!(desc.as_slice(), &[3, 0, 1, 2]);
    }

    #[test]
    fn random_is_a_permutation_and_varies() {
        let widths = [1.0; 6];
        let mut rng = rng();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..20 {
            let order = SchedulePolicy::Random.order(&widths, 0, &mut rng);
            assert_eq!(order.len(), 6);
            seen.insert(order.as_slice().to_vec());
        }
        assert!(seen.len() > 1, "20 shuffles of 6 items should differ");
    }

    #[test]
    fn fixed_returns_the_given_order() {
        let base = TransmissionOrder::new(vec![2, 0, 1]).unwrap();
        let order = SchedulePolicy::Fixed(base.clone()).order(&[1.0, 2.0, 3.0], 9, &mut rng());
        assert_eq!(order, base);
    }

    #[test]
    #[should_panic(expected = "length must match")]
    fn fixed_length_mismatch_panics() {
        let base = TransmissionOrder::new(vec![0, 1]).unwrap();
        let _ = SchedulePolicy::Fixed(base).order(&[1.0, 2.0, 3.0], 0, &mut rng());
    }

    #[test]
    fn rotating_advances_with_round() {
        let base = TransmissionOrder::new(vec![0, 1, 2]).unwrap();
        let policy = SchedulePolicy::Rotating(base);
        let widths = [1.0, 2.0, 3.0];
        assert_eq!(policy.order(&widths, 0, &mut rng()).as_slice(), &[0, 1, 2]);
        assert_eq!(policy.order(&widths, 1, &mut rng()).as_slice(), &[1, 2, 0]);
        assert_eq!(policy.order(&widths, 2, &mut rng()).as_slice(), &[2, 0, 1]);
        assert_eq!(policy.order(&widths, 3, &mut rng()).as_slice(), &[0, 1, 2]);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(SchedulePolicy::Ascending.name(), "ascending");
        assert_eq!(SchedulePolicy::Descending.name(), "descending");
        assert_eq!(SchedulePolicy::Random.name(), "random");
    }

    #[test]
    fn exposure_ranks_follow_table_two() {
        assert_eq!(SchedulePolicy::Ascending.exposure_rank(), Some(0));
        assert_eq!(SchedulePolicy::Random.exposure_rank(), Some(1));
        assert_eq!(SchedulePolicy::Descending.exposure_rank(), Some(2));
        let base = TransmissionOrder::new(vec![0, 1]).unwrap();
        assert_eq!(SchedulePolicy::Fixed(base.clone()).exposure_rank(), None);
        assert_eq!(SchedulePolicy::Rotating(base).exposure_rank(), None);
    }

    #[test]
    fn empty_widths_yield_empty_order() {
        let order = SchedulePolicy::Ascending.order(&[], 0, &mut rng());
        assert!(order.is_empty());
    }
}
