//! The fusion-overlap detector.

use arsf_interval::ops::disjoint_indices;
use arsf_interval::{Interval, Scalar};

/// The outcome of one detection pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetectionReport {
    /// Indices (into the checked slice) of intervals disjoint from the
    /// fusion interval — provably compromised or faulty.
    pub flagged: Vec<usize>,
    /// Number of intervals checked.
    pub checked: usize,
}

impl DetectionReport {
    /// Whether nothing was flagged.
    pub fn all_clear(&self) -> bool {
        self.flagged.is_empty()
    }
}

/// The paper's detection procedure: discard every interval that does not
/// intersect the fusion interval.
///
/// Soundness: when at most `f` sensors are compromised and the fusion used
/// `f`, a correct interval always intersects the fusion interval (both
/// contain the true value), so the detector never flags a correct sensor.
/// Completeness is *not* guaranteed — that asymmetry is precisely what the
/// paper's stealthy attacker exploits.
///
/// # Example
///
/// ```
/// use arsf_detect::OverlapDetector;
/// use arsf_interval::Interval;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let fused = Interval::new(0.0, 1.0)?;
/// let intervals = [Interval::new(0.5, 2.0)?, Interval::new(4.0, 5.0)?];
/// let report = OverlapDetector.detect(&intervals, &fused);
/// assert_eq!(report.flagged, vec![1]);
/// assert!(!report.all_clear());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct OverlapDetector;

impl OverlapDetector {
    /// Flags every interval disjoint from `fusion`.
    pub fn detect<T: Scalar>(
        &self,
        intervals: &[Interval<T>],
        fusion: &Interval<T>,
    ) -> DetectionReport {
        DetectionReport {
            flagged: disjoint_indices(intervals, fusion),
            checked: intervals.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arsf_fusion::marzullo;

    fn iv(lo: f64, hi: f64) -> Interval<f64> {
        Interval::new(lo, hi).unwrap()
    }

    #[test]
    fn correct_sensors_are_never_flagged() {
        // All intervals contain the truth (10): none can be flagged.
        let intervals = [iv(9.0, 11.0), iv(9.5, 10.5), iv(8.0, 12.0)];
        let fused = marzullo::fuse(&intervals, 1).unwrap();
        let report = OverlapDetector.detect(&intervals, &fused);
        assert!(report.all_clear());
        assert_eq!(report.checked, 3);
    }

    #[test]
    fn blatant_forgery_is_flagged() {
        let intervals = [iv(9.0, 11.0), iv(9.5, 10.5), iv(30.0, 31.0)];
        let fused = marzullo::fuse(&intervals, 1).unwrap();
        let report = OverlapDetector.detect(&intervals, &fused);
        assert_eq!(report.flagged, vec![2]);
    }

    #[test]
    fn stealthy_forgery_evades_detection() {
        // The forged interval grazes the fusion interval: undetectable.
        let correct = [iv(9.0, 11.0), iv(9.5, 10.5)];
        let forged = iv(10.5, 12.5); // touches 10.5
        let all = [correct[0], correct[1], forged];
        let fused = marzullo::fuse(&all, 1).unwrap();
        let report = OverlapDetector.detect(&all, &fused);
        assert!(report.all_clear(), "touching intervals overlap");
    }

    #[test]
    fn empty_input_is_all_clear() {
        let report = OverlapDetector.detect::<f64>(&[], &iv(0.0, 1.0));
        assert!(report.all_clear());
        assert_eq!(report.checked, 0);
    }

    #[test]
    fn multiple_flags_in_order() {
        let fused = iv(0.0, 1.0);
        let intervals = [iv(5.0, 6.0), iv(0.5, 0.6), iv(-3.0, -2.0)];
        let report = OverlapDetector.detect(&intervals, &fused);
        assert_eq!(report.flagged, vec![0, 2]);
    }
}
