//! Attack and fault detection for interval sensor fusion.
//!
//! The paper's detection mechanism is geometric: after fusing the `n`
//! transmitted intervals, **any interval disjoint from the fusion interval
//! must be compromised** — a correct interval contains the true value, the
//! fusion interval contains every candidate true value, so the two must
//! overlap. A stealthy attacker therefore constrains her forged intervals
//! to intersect the fusion interval ([`overlap`]).
//!
//! Footnote 1 of the paper sketches the planned refinement: tolerate
//! *transient* faults by flagging a sensor only when it violates the
//! overlap check more than `k` times in a window of `w` rounds. That
//! temporal detector is implemented in [`window`].
//!
//! The round engine in `arsf-core` drives detectors through the
//! object-safe [`Detector`] trait ([`detector`]): [`NoDetector`],
//! [`ImmediateDetector`] and [`WindowedDetector`] ship as stock
//! implementations, and new detectors plug in without touching the
//! engine. Each stock configuration also exposes its static
//! characteristics as a [`DetectorModel`] ([`model`]) — whether it can
//! flag or condemn at all, and its condemnation latency — so analysis
//! layers can reason about detectors without building one.
//!
//! # Example
//!
//! ```
//! use arsf_detect::overlap::OverlapDetector;
//! use arsf_fusion::marzullo;
//! use arsf_interval::Interval;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let intervals = [
//!     Interval::new(9.0, 11.0)?,
//!     Interval::new(9.5, 10.5)?,
//!     Interval::new(30.0, 31.0)?, // blatantly forged
//! ];
//! let fused = marzullo::fuse(&intervals, 1)?;
//! let report = OverlapDetector.detect(&intervals, &fused);
//! assert_eq!(report.flagged, vec![2]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod detector;
pub mod model;
pub mod overlap;
pub mod window;

pub use detector::{Detector, ImmediateDetector, NoDetector, RoundAssessment};
pub use model::DetectorModel;
pub use overlap::{DetectionReport, OverlapDetector};
pub use window::{WindowVerdict, WindowedDetector};
