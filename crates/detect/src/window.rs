//! Sliding-window temporal fault detection.
//!
//! Footnote 1 of the paper: "A generalization of this work will include a
//! fault model over time for each sensor (e.g., a sensor is compromised
//! only if it is faulty more than `f` out of `w` measurements). Thus, a
//! sensor may have a temporary fault without being discarded as
//! compromised." This module implements that generalisation: each sensor
//! accumulates per-round overlap-check verdicts in a ring buffer of the
//! last `w` rounds and is only *condemned* when violations exceed the
//! threshold.

use std::collections::VecDeque;

/// The standing of one sensor after recording a round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WindowVerdict {
    /// No violation in the current window beyond the tolerance.
    Healthy,
    /// Violations present but within tolerance (a transient fault).
    Suspect,
    /// Violations exceeded the tolerance within the window: the sensor is
    /// declared compromised.
    Condemned,
}

/// Per-sensor sliding-window violation counter.
///
/// A sensor is [`WindowVerdict::Condemned`] when strictly more than
/// `tolerance` of its last `window` rounds violated the overlap check.
/// Once condemned, a sensor stays condemned (the paper's system discards
/// it) until [`WindowedDetector::reset`].
///
/// # Example
///
/// ```
/// use arsf_detect::{WindowVerdict, WindowedDetector};
///
/// // Tolerate 1 faulty round out of any 4 consecutive.
/// let mut det = WindowedDetector::new(2, 4, 1);
/// assert_eq!(det.record(0, true), WindowVerdict::Suspect);   // 1 of 4: ok
/// assert_eq!(det.record(0, false), WindowVerdict::Suspect);
/// assert_eq!(det.record(0, true), WindowVerdict::Condemned); // 2 of 4: out
/// assert_eq!(det.record(1, false), WindowVerdict::Healthy);
/// ```
#[derive(Debug, Clone)]
pub struct WindowedDetector {
    window: usize,
    tolerance: usize,
    history: Vec<VecDeque<bool>>,
    condemned: Vec<bool>,
}

impl WindowedDetector {
    /// Creates a detector for `n` sensors with the given window length and
    /// violation tolerance.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0` — an empty window can never observe
    /// anything.
    pub fn new(n: usize, window: usize, tolerance: usize) -> Self {
        assert!(window > 0, "window length must be positive");
        Self {
            window,
            tolerance,
            history: vec![VecDeque::with_capacity(window); n],
            condemned: vec![false; n],
        }
    }

    /// The window length `w`.
    pub fn window(&self) -> usize {
        self.window
    }

    /// The tolerated number of violations per window.
    pub fn tolerance(&self) -> usize {
        self.tolerance
    }

    /// The number of tracked sensors.
    pub fn sensor_count(&self) -> usize {
        self.history.len()
    }

    /// Records one round for `sensor` (`violated` = failed the overlap
    /// check) and returns its current standing.
    ///
    /// # Panics
    ///
    /// Panics if `sensor` is out of range.
    pub fn record(&mut self, sensor: usize, violated: bool) -> WindowVerdict {
        let hist = &mut self.history[sensor];
        if hist.len() == self.window {
            hist.pop_front();
        }
        hist.push_back(violated);
        let violations = hist.iter().filter(|&&v| v).count();
        if violations > self.tolerance {
            self.condemned[sensor] = true;
        }
        self.verdict(sensor)
    }

    /// The current standing of `sensor` without recording anything.
    ///
    /// # Panics
    ///
    /// Panics if `sensor` is out of range.
    pub fn verdict(&self, sensor: usize) -> WindowVerdict {
        if self.condemned[sensor] {
            return WindowVerdict::Condemned;
        }
        let violations = self.history[sensor].iter().filter(|&&v| v).count();
        if violations == 0 {
            WindowVerdict::Healthy
        } else {
            WindowVerdict::Suspect
        }
    }

    /// Indices of all condemned sensors.
    pub fn condemned(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.condemned_into(&mut out);
        out
    }

    /// Appends the indices of all condemned sensors to `out` (ascending),
    /// reusing the caller's allocation.
    pub fn condemned_into(&self, out: &mut Vec<usize>) {
        out.extend(
            self.condemned
                .iter()
                .enumerate()
                .filter(|(_, &c)| c)
                .map(|(i, _)| i),
        );
    }

    /// Clears all history and condemnations (e.g. after replacing a
    /// sensor).
    pub fn reset(&mut self) {
        for h in &mut self.history {
            h.clear();
        }
        self.condemned.fill(false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_fault_is_tolerated() {
        let mut det = WindowedDetector::new(1, 5, 2);
        // Two violations inside the window: suspect, not condemned.
        assert_eq!(det.record(0, true), WindowVerdict::Suspect);
        assert_eq!(det.record(0, false), WindowVerdict::Suspect);
        assert_eq!(det.record(0, true), WindowVerdict::Suspect);
        assert_eq!(det.record(0, false), WindowVerdict::Suspect);
        assert_eq!(det.record(0, false), WindowVerdict::Suspect);
        // The first violation (round 1) slides out of the 5-round window.
        assert_eq!(det.record(0, false), WindowVerdict::Suspect);
        // Round 3's violation is still in the window of rounds 3-7.
        assert_eq!(det.record(0, false), WindowVerdict::Suspect);
        // Window is rounds 4-8: all clear.
        assert_eq!(det.record(0, false), WindowVerdict::Healthy);
    }

    #[test]
    fn persistent_fault_is_condemned() {
        let mut det = WindowedDetector::new(1, 4, 1);
        assert_eq!(det.record(0, true), WindowVerdict::Suspect);
        assert_eq!(det.record(0, true), WindowVerdict::Condemned);
    }

    #[test]
    fn condemnation_is_sticky() {
        let mut det = WindowedDetector::new(1, 3, 0);
        assert_eq!(det.record(0, true), WindowVerdict::Condemned);
        for _ in 0..10 {
            assert_eq!(det.record(0, false), WindowVerdict::Condemned);
        }
        assert_eq!(det.condemned(), vec![0]);
    }

    #[test]
    fn sensors_are_independent() {
        let mut det = WindowedDetector::new(3, 2, 0);
        det.record(1, true);
        assert_eq!(det.verdict(0), WindowVerdict::Healthy);
        assert_eq!(det.verdict(1), WindowVerdict::Condemned);
        assert_eq!(det.verdict(2), WindowVerdict::Healthy);
        assert_eq!(det.condemned(), vec![1]);
    }

    #[test]
    fn reset_clears_everything() {
        let mut det = WindowedDetector::new(2, 2, 0);
        det.record(0, true);
        det.record(1, true);
        assert_eq!(det.condemned().len(), 2);
        det.reset();
        assert!(det.condemned().is_empty());
        assert_eq!(det.verdict(0), WindowVerdict::Healthy);
    }

    #[test]
    fn zero_tolerance_condemns_on_first_violation() {
        let mut det = WindowedDetector::new(1, 10, 0);
        assert_eq!(det.record(0, false), WindowVerdict::Healthy);
        assert_eq!(det.record(0, true), WindowVerdict::Condemned);
    }

    #[test]
    #[should_panic(expected = "window length must be positive")]
    fn zero_window_panics() {
        let _ = WindowedDetector::new(1, 0, 0);
    }

    #[test]
    #[should_panic(expected = "window length must be positive")]
    fn fully_degenerate_config_panics() {
        // Even with no sensors to track, a zero-length window is refused:
        // the `detector-window` lint flags the configuration statically,
        // and the engines would panic here when building it.
        let _ = WindowedDetector::new(0, 0, 0);
    }

    #[test]
    fn zero_sensors_with_a_valid_window_is_inert() {
        // n = 0 builds (nothing to track) but any record() is out of
        // range; the detector just never condemns anything.
        let mut det = WindowedDetector::new(0, 4, 1);
        assert_eq!(det.sensor_count(), 0);
        assert!(det.condemned().is_empty());
        det.reset();
        assert!(det.condemned().is_empty());
    }

    #[test]
    fn accessors() {
        let det = WindowedDetector::new(4, 6, 2);
        assert_eq!(det.window(), 6);
        assert_eq!(det.tolerance(), 2);
        assert_eq!(det.sensor_count(), 4);
    }
}
