//! Static per-detector characteristics, for analysis without execution.
//!
//! A [`DetectorModel`] describes what a stock detector configuration
//! *can* do — whether it flags per-round violations at all, whether it
//! can ever condemn a sensor, and how many violating fused rounds a
//! condemnation takes — from the configuration values alone. The static
//! detectability layer in `arsf-analyze` consumes it to classify
//! attacker × detector cells without running a round; the engines never
//! look at it.

/// The statically known capabilities of one detector configuration.
///
/// Constructed by the per-mode constructors ([`DetectorModel::off`],
/// [`DetectorModel::immediate`], [`DetectorModel::windowed`]), which
/// mirror the three stock [`Detector`](crate::Detector) implementations.
///
/// # Example
///
/// ```
/// use arsf_detect::DetectorModel;
///
/// let model = DetectorModel::windowed(10, 3);
/// assert!(model.flags && model.condemns);
/// // Violations must strictly exceed the tolerance, and the window only
/// // advances on fused rounds: 4 violating fused rounds condemn.
/// assert_eq!(model.condemnation_latency(), Some(4));
/// assert_eq!(DetectorModel::off().condemnation_latency(), None);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub struct DetectorModel {
    /// Whether the detector reports per-round overlap violations at all
    /// (`false` only for the no-op detector).
    pub flags: bool,
    /// Whether the detector can ever *condemn* a sensor (declare it
    /// compromised for the rest of the run).
    pub condemns: bool,
    /// The sliding-window length, for windowed detectors.
    pub window: Option<usize>,
    /// The tolerated violations per window, for windowed detectors.
    pub tolerance: Option<usize>,
}

impl DetectorModel {
    /// The no-op detector: never flags, never condemns.
    pub fn off() -> Self {
        Self {
            flags: false,
            condemns: false,
            window: None,
            tolerance: None,
        }
    }

    /// The paper's immediate rule: every violation is flagged the round
    /// it happens, but the detector is memoryless — it never *condemns*
    /// (declares a sensor compromised for the rest of the run); only the
    /// temporal detector does that.
    pub fn immediate() -> Self {
        Self {
            flags: true,
            condemns: false,
            window: None,
            tolerance: None,
        }
    }

    /// Footnote 1's temporal detector: flags every violation, condemns
    /// when strictly more than `tolerance` of the last `window` rounds
    /// violated.
    ///
    /// A window can hold at most `window` violations, so `tolerance >=
    /// window` (including the degenerate `window == 0`, which
    /// [`WindowedDetector::new`](crate::WindowedDetector::new) refuses
    /// to build) yields a detector that can never condemn.
    pub fn windowed(window: usize, tolerance: usize) -> Self {
        Self {
            flags: true,
            condemns: tolerance < window,
            window: Some(window),
            tolerance: Some(tolerance),
        }
    }

    /// How many *violating fused rounds* a persistently violating sensor
    /// needs before it is condemned, or `None` if this detector can
    /// never condemn.
    ///
    /// Detectors only observe fused rounds (a failed fusion gives the
    /// overlap check nothing to compare against), so the count is in
    /// fused rounds: `tolerance + 1` for a windowed detector —
    /// violations must *strictly* exceed the tolerance, and `tolerance +
    /// 1` consecutive violating rounds fit in any window that can
    /// condemn at all.
    pub fn condemnation_latency(&self) -> Option<usize> {
        if !self.condemns {
            return None;
        }
        Some(match self.tolerance {
            Some(tolerance) => tolerance + 1,
            None => 1,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_can_do_nothing() {
        let model = DetectorModel::off();
        assert!(!model.flags);
        assert!(!model.condemns);
        assert_eq!(model.condemnation_latency(), None);
    }

    #[test]
    fn immediate_flags_but_never_condemns() {
        let model = DetectorModel::immediate();
        assert!(model.flags);
        assert!(!model.condemns);
        assert_eq!(model.condemnation_latency(), None);
    }

    #[test]
    fn windowed_latency_is_tolerance_plus_one() {
        let model = DetectorModel::windowed(10, 3);
        assert_eq!((model.window, model.tolerance), (Some(10), Some(3)));
        assert_eq!(model.condemnation_latency(), Some(4));
        assert_eq!(
            DetectorModel::windowed(5, 0).condemnation_latency(),
            Some(1)
        );
    }

    #[test]
    fn saturated_tolerance_never_condemns() {
        for (window, tolerance) in [(4, 4), (4, 9), (0, 0)] {
            let model = DetectorModel::windowed(window, tolerance);
            assert!(model.flags, "w={window} t={tolerance}");
            assert!(!model.condemns, "w={window} t={tolerance}");
            assert_eq!(model.condemnation_latency(), None);
        }
    }
}
