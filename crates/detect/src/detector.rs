//! The object-safe [`Detector`] interface the round engine drives.
//!
//! The engine in `arsf-core` used to dispatch over a closed
//! `DetectionMode` enum; this trait replaces that dispatch so new
//! detectors plug in without touching the engine. Three stock
//! implementations cover the paper's design space:
//!
//! * [`NoDetector`] — detection disabled (ablation baseline),
//! * [`ImmediateDetector`] — the paper's rule: flag every interval
//!   disjoint from the fusion interval, every round,
//! * [`WindowedDetector`](crate::WindowedDetector) — footnote 1's
//!   temporal model: immediate flags feed a sliding window; a sensor is
//!   *condemned* only when its violations exceed the tolerance.

use arsf_interval::Interval;

use crate::window::WindowedDetector;

/// Reusable per-round detection output. The engine clears and refills
/// one assessment per round instead of allocating result vectors.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RoundAssessment {
    /// Sensors whose transmitted interval was disjoint from the fusion
    /// interval this round (sensor ids, in transmission order).
    pub flagged: Vec<usize>,
    /// Sensors condemned so far by a temporal detector (sensor ids,
    /// ascending); empty for memoryless detectors.
    pub condemned: Vec<usize>,
}

impl RoundAssessment {
    /// An empty assessment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears both result sets, keeping the allocations.
    pub fn clear(&mut self) {
        self.flagged.clear();
        self.condemned.clear();
    }

    /// Whether nothing was flagged or condemned.
    pub fn all_clear(&self) -> bool {
        self.flagged.is_empty() && self.condemned.is_empty()
    }
}

/// An attack/fault detector driven once per fusion round.
///
/// Object-safe: the engine holds a `Box<dyn Detector>`. Implementations
/// may keep per-sensor state between rounds; [`Detector::reset`] returns
/// them to their initial state so one boxed detector can be reused
/// across scenario runs.
pub trait Detector {
    /// A short human-readable name for reports and benchmark labels.
    fn name(&self) -> &str;

    /// Examines one round: `transmitted` holds `(sensor id, interval)`
    /// pairs in transmission order, `fusion` the round's fusion interval.
    /// Findings are appended to `out` (which the engine has cleared).
    fn assess(
        &mut self,
        transmitted: &[(usize, Interval<f64>)],
        fusion: &Interval<f64>,
        out: &mut RoundAssessment,
    );

    /// Clears any state carried between rounds (no-op for memoryless
    /// detectors).
    fn reset(&mut self) {}
}

impl<D: Detector + ?Sized> Detector for Box<D> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn assess(
        &mut self,
        transmitted: &[(usize, Interval<f64>)],
        fusion: &Interval<f64>,
        out: &mut RoundAssessment,
    ) {
        (**self).assess(transmitted, fusion, out);
    }

    fn reset(&mut self) {
        (**self).reset();
    }
}

/// Detection disabled: never flags, never condemns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct NoDetector;

impl Detector for NoDetector {
    fn name(&self) -> &str {
        "off"
    }

    fn assess(
        &mut self,
        _transmitted: &[(usize, Interval<f64>)],
        _fusion: &Interval<f64>,
        _out: &mut RoundAssessment,
    ) {
    }
}

/// The paper's rule as a [`Detector`]: every interval disjoint from the
/// fusion interval is flagged immediately (see [`OverlapDetector`] for
/// the index-based one-shot API).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ImmediateDetector;

impl Detector for ImmediateDetector {
    fn name(&self) -> &str {
        "immediate"
    }

    fn assess(
        &mut self,
        transmitted: &[(usize, Interval<f64>)],
        fusion: &Interval<f64>,
        out: &mut RoundAssessment,
    ) {
        for (sensor, interval) in transmitted {
            if !interval.intersects(fusion) {
                out.flagged.push(*sensor);
            }
        }
    }
}

impl Detector for WindowedDetector {
    fn name(&self) -> &str {
        "windowed"
    }

    /// Immediate overlap flags feed the per-sensor window; sensors whose
    /// violations exceed the tolerance are reported as condemned.
    fn assess(
        &mut self,
        transmitted: &[(usize, Interval<f64>)],
        fusion: &Interval<f64>,
        out: &mut RoundAssessment,
    ) {
        for (sensor, interval) in transmitted {
            let violated = !interval.intersects(fusion);
            if violated {
                out.flagged.push(*sensor);
            }
            self.record(*sensor, violated);
        }
        self.condemned_into(&mut out.condemned);
    }

    fn reset(&mut self) {
        WindowedDetector::reset(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overlap::OverlapDetector;

    fn iv(lo: f64, hi: f64) -> Interval<f64> {
        Interval::new(lo, hi).unwrap()
    }

    fn round() -> Vec<(usize, Interval<f64>)> {
        vec![(2, iv(9.0, 11.0)), (0, iv(9.5, 10.5)), (1, iv(30.0, 31.0))]
    }

    #[test]
    fn no_detector_stays_silent() {
        let mut out = RoundAssessment::new();
        NoDetector.assess(&round(), &iv(9.5, 10.5), &mut out);
        assert!(out.all_clear());
        assert_eq!(NoDetector.name(), "off");
    }

    #[test]
    fn immediate_detector_reports_sensor_ids_not_slots() {
        let mut out = RoundAssessment::new();
        ImmediateDetector.assess(&round(), &iv(9.5, 10.5), &mut out);
        // Slot 2 carries sensor id 1 — the id must be reported.
        assert_eq!(out.flagged, vec![1]);
        assert!(out.condemned.is_empty());
    }

    #[test]
    fn immediate_matches_the_overlap_detector_on_identity_order() {
        let intervals = [iv(9.0, 11.0), iv(9.5, 10.5), iv(30.0, 31.0)];
        let fusion = iv(9.5, 10.5);
        let report = OverlapDetector.detect(&intervals, &fusion);
        let transmitted: Vec<(usize, Interval<f64>)> =
            intervals.iter().copied().enumerate().collect();
        let mut out = RoundAssessment::new();
        ImmediateDetector.assess(&transmitted, &fusion, &mut out);
        assert_eq!(out.flagged, report.flagged);
    }

    #[test]
    fn windowed_detector_condemns_after_tolerance() {
        let mut det = WindowedDetector::new(2, 5, 1);
        let fusion = iv(9.5, 10.5);
        let bad_round = vec![(0, iv(9.6, 10.4)), (1, iv(30.0, 31.0))];
        let mut out = RoundAssessment::new();
        det.assess(&bad_round, &fusion, &mut out);
        assert_eq!(out.flagged, vec![1]);
        assert!(out.condemned.is_empty(), "one violation is tolerated");
        out.clear();
        det.assess(&bad_round, &fusion, &mut out);
        assert_eq!(out.condemned, vec![1], "second violation exceeds tolerance");
        // Reset through the trait clears the window.
        Detector::reset(&mut det);
        out.clear();
        det.assess(&bad_round, &fusion, &mut out);
        assert!(out.condemned.is_empty());
    }

    #[test]
    fn boxed_detectors_dispatch_dynamically() {
        let mut detectors: Vec<Box<dyn Detector>> = vec![
            Box::new(NoDetector),
            Box::new(ImmediateDetector),
            Box::new(WindowedDetector::new(3, 4, 0)),
        ];
        let fusion = iv(9.5, 10.5);
        let mut out = RoundAssessment::new();
        for det in &mut detectors {
            out.clear();
            det.assess(&round(), &fusion, &mut out);
            assert!(!det.name().is_empty());
        }
        assert_eq!(out.flagged, vec![1]);
        assert_eq!(out.condemned, vec![1], "zero tolerance condemns at once");
    }

    #[test]
    fn assessment_clear_keeps_capacity() {
        let mut out = RoundAssessment::new();
        out.flagged.extend([1, 2, 3]);
        out.condemned.push(1);
        let cap = out.flagged.capacity();
        out.clear();
        assert!(out.all_clear());
        assert_eq!(out.flagged.capacity(), cap);
    }
}
