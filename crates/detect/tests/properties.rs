//! Property-based tests for the sliding-window detector: the ring-buffer
//! implementation against a naive recount oracle, and the monotonicity
//! of condemnation.

use arsf_detect::{WindowVerdict, WindowedDetector};
use proptest::prelude::*;

/// The oracle: recount violations over the last `window` rounds from the
/// full sequence, with sticky condemnation.
fn naive_verdicts(seq: &[bool], window: usize, tolerance: usize) -> Vec<WindowVerdict> {
    let mut out = Vec::with_capacity(seq.len());
    let mut condemned = false;
    for t in 0..seq.len() {
        let start = (t + 1).saturating_sub(window);
        let violations = seq[start..=t].iter().filter(|&&v| v).count();
        if violations > tolerance {
            condemned = true;
        }
        out.push(if condemned {
            WindowVerdict::Condemned
        } else if violations == 0 {
            WindowVerdict::Healthy
        } else {
            WindowVerdict::Suspect
        });
    }
    out
}

fn violation_seq() -> impl Strategy<Value = Vec<bool>> {
    prop::collection::vec((0_u8..2).prop_map(|b| b == 1), 0..=60)
}

proptest! {
    #[test]
    fn window_verdict_equals_naive_recount(
        seq in violation_seq(),
        window in 1_usize..=8,
        tolerance in 0_usize..=5,
    ) {
        let mut det = WindowedDetector::new(1, window, tolerance);
        let oracle = naive_verdicts(&seq, window, tolerance);
        for (t, (&violated, expected)) in seq.iter().zip(&oracle).enumerate() {
            let got = det.record(0, violated);
            prop_assert_eq!(
                got, *expected,
                "round {} of {:?} (w = {}, tol = {})", t, seq, window, tolerance
            );
            prop_assert_eq!(det.verdict(0), *expected, "verdict() disagrees at round {}", t);
        }
        let condemned_now = oracle.last() == Some(&WindowVerdict::Condemned);
        prop_assert_eq!(det.condemned(), if condemned_now { vec![0] } else { vec![] });
    }

    #[test]
    fn condemnation_is_monotone_without_reset(
        seq in violation_seq(),
        suffix in violation_seq(),
        window in 1_usize..=8,
        tolerance in 0_usize..=5,
    ) {
        let mut det = WindowedDetector::new(1, window, tolerance);
        let mut condemned_seen = false;
        for &violated in &seq {
            let verdict = det.record(0, violated);
            if condemned_seen {
                prop_assert_eq!(verdict, WindowVerdict::Condemned, "un-condemned mid-sequence");
            }
            condemned_seen |= verdict == WindowVerdict::Condemned;
        }
        // Whatever comes next — including an all-healthy suffix — a
        // condemned sensor stays condemned until reset.
        for &violated in &suffix {
            let verdict = det.record(0, violated);
            if condemned_seen {
                prop_assert_eq!(verdict, WindowVerdict::Condemned, "suffix un-condemned");
            }
            condemned_seen |= verdict == WindowVerdict::Condemned;
        }
        // reset() is the only way back: history and condemnation clear.
        det.reset();
        prop_assert!(det.condemned().is_empty());
        prop_assert_eq!(det.verdict(0), WindowVerdict::Healthy);
    }

    #[test]
    fn sensors_do_not_interfere(
        seq in violation_seq(),
        other in violation_seq(),
        window in 1_usize..=8,
        tolerance in 0_usize..=5,
    ) {
        // Interleaving records for a second sensor must not change the
        // first sensor's verdict stream.
        let mut solo = WindowedDetector::new(1, window, tolerance);
        let mut duo = WindowedDetector::new(2, window, tolerance);
        let mut others = other.iter().cycle();
        for &violated in &seq {
            if let Some(&noise) = others.next() {
                duo.record(1, noise);
            }
            prop_assert_eq!(solo.record(0, violated), duo.record(0, violated));
        }
    }
}
