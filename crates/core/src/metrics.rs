//! Experiment metrics: violation counters and width statistics.

use arsf_interval::Interval;

/// Counts rounds whose fusion interval escapes a safety envelope — the
/// case study's criterion ("the percentage of runs in which the fusion
/// interval's upper bound was above 10.5 mph / lower bound below 9.5").
///
/// # Example
///
/// ```
/// use arsf_core::metrics::ViolationCounter;
/// use arsf_interval::Interval;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut counter = ViolationCounter::new(9.5, 10.5);
/// counter.record(&Interval::new(9.8, 10.2)?);  // safe
/// counter.record(&Interval::new(9.8, 10.7)?);  // upper violation
/// counter.record(&Interval::new(9.3, 10.2)?);  // lower violation
/// assert_eq!(counter.rounds(), 3);
/// assert!((counter.upper_rate() - 1.0 / 3.0).abs() < 1e-12);
/// assert!((counter.lower_rate() - 1.0 / 3.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ViolationCounter {
    lower_bound: f64,
    upper_bound: f64,
    rounds: u64,
    upper_violations: u64,
    lower_violations: u64,
}

impl ViolationCounter {
    /// Creates a counter for the envelope `[lower_bound, upper_bound]`.
    ///
    /// # Panics
    ///
    /// Panics if the bounds are not finite or inverted.
    pub fn new(lower_bound: f64, upper_bound: f64) -> Self {
        assert!(
            lower_bound.is_finite() && upper_bound.is_finite() && lower_bound <= upper_bound,
            "violation envelope must be a finite ordered pair"
        );
        Self {
            lower_bound,
            upper_bound,
            rounds: 0,
            upper_violations: 0,
            lower_violations: 0,
        }
    }

    /// Records one round's fusion interval.
    pub fn record(&mut self, fusion: &Interval<f64>) {
        self.rounds += 1;
        if fusion.hi() > self.upper_bound {
            self.upper_violations += 1;
        }
        if fusion.lo() < self.lower_bound {
            self.lower_violations += 1;
        }
    }

    /// Rounds recorded.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Fraction of rounds whose upper bound escaped (0 when empty).
    pub fn upper_rate(&self) -> f64 {
        rate(self.upper_violations, self.rounds)
    }

    /// Fraction of rounds whose lower bound escaped (0 when empty).
    pub fn lower_rate(&self) -> f64 {
        rate(self.lower_violations, self.rounds)
    }
}

fn rate(hits: u64, total: u64) -> f64 {
    if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    }
}

/// The closed-loop supervisor columns a Table II sweep row reports.
///
/// Produced only by closed-loop scenario runs (see
/// [`ClosedLoopSpec`](crate::scenario::ClosedLoopSpec)); open-loop rows
/// carry `None` and render the columns empty/`null`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SupervisorSummary {
    /// Fraction of supervised rounds whose fusion upper bound escaped
    /// `v + δ1` (Table II row 1). Platoon runs pool all vehicles.
    pub above_rate: f64,
    /// Fraction of supervised rounds whose fusion lower bound escaped
    /// `v − δ2` (Table II row 2). Platoon runs pool all vehicles.
    pub below_rate: f64,
    /// Control periods in which the supervisor preempted the low-level
    /// controller (any vehicle, including fusion-failure brake preempts).
    pub preemptions: u64,
    /// Smallest inter-vehicle gap observed (miles); `None` for a single
    /// vehicle.
    pub min_gap: Option<f64>,
}

/// Per-vehicle fusion statistics of one closed-loop platoon run.
///
/// A platoon's [`BatchSummary`](crate::BatchSummary) describes the
/// **leader** in its headline width/truth columns; this struct carries
/// the same fusion-quality statistics for *every* vehicle (leader first),
/// cumulative over the runner's lifetime, so followers stop being
/// invisible in sweep rows.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VehicleSummary {
    /// Width statistics over this vehicle's fused rounds.
    pub widths: WidthStats,
    /// Rounds whose fused interval did not contain the vehicle's true
    /// speed.
    pub truth_lost: u64,
    /// Rounds where this vehicle's fusion failed outright.
    pub fusion_failures: u64,
}

impl VehicleSummary {
    /// Records one control period: the vehicle's fused interval (if
    /// fusion succeeded) at its true speed.
    pub fn record(&mut self, fusion: Option<&Interval<f64>>, true_speed: f64) {
        match fusion {
            Some(fused) => {
                self.widths.record(fused.width());
                if !fused.contains(true_speed) {
                    self.truth_lost += 1;
                }
            }
            None => self.fusion_failures += 1,
        }
    }
}

/// Streaming width statistics (mean / min / max) without storing samples.
///
/// # Example
///
/// ```
/// use arsf_core::metrics::WidthStats;
///
/// let mut stats = WidthStats::new();
/// stats.record(2.0);
/// stats.record(4.0);
/// assert_eq!(stats.mean(), 3.0);
/// assert_eq!(stats.min(), Some(2.0));
/// assert_eq!(stats.max(), Some(4.0));
/// assert_eq!(stats.count(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WidthStats {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for WidthStats {
    /// Identical to [`WidthStats::new`]. A derived `Default` would zero
    /// the min/max accumulators instead of using the `±INFINITY`
    /// sentinels, so a default-constructed stats recording only positive
    /// widths would report `min() == Some(0.0)`.
    fn default() -> Self {
        Self::new()
    }
}

impl WidthStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        Self {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one width sample.
    pub fn record(&mut self, width: f64) {
        self.count += 1;
        self.sum += width;
        self.min = self.min.min(width);
        self.max = self.max.max(width);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean width (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest sample.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(lo: f64, hi: f64) -> Interval<f64> {
        Interval::new(lo, hi).unwrap()
    }

    #[test]
    fn counter_tracks_both_sides_independently() {
        let mut c = ViolationCounter::new(-1.0, 1.0);
        c.record(&iv(-2.0, 2.0)); // both sides
        c.record(&iv(-0.5, 0.5)); // neither
        assert_eq!(c.rounds(), 2);
        assert_eq!(c.upper_rate(), 0.5);
        assert_eq!(c.lower_rate(), 0.5);
    }

    #[test]
    fn touching_the_envelope_is_not_a_violation() {
        let mut c = ViolationCounter::new(-1.0, 1.0);
        c.record(&iv(-1.0, 1.0));
        assert_eq!(c.upper_rate(), 0.0);
        assert_eq!(c.lower_rate(), 0.0);
    }

    #[test]
    fn empty_counter_rates_are_zero() {
        let c = ViolationCounter::new(0.0, 1.0);
        assert_eq!(c.upper_rate(), 0.0);
        assert_eq!(c.lower_rate(), 0.0);
        assert_eq!(c.rounds(), 0);
    }

    #[test]
    #[should_panic(expected = "finite ordered pair")]
    fn inverted_envelope_panics() {
        let _ = ViolationCounter::new(1.0, 0.0);
    }

    #[test]
    fn vehicle_summary_tracks_fusion_quality() {
        let mut v = VehicleSummary::default();
        v.record(Some(&iv(9.0, 11.0)), 10.0); // fused, truth inside
        v.record(Some(&iv(9.0, 9.8)), 10.0); // fused, truth lost
        v.record(None, 10.0); // fusion failed
        assert_eq!(v.widths.count(), 2);
        assert_eq!(v.truth_lost, 1);
        assert_eq!(v.fusion_failures, 1);
        assert_eq!(v.widths.max(), Some(2.0));
    }

    #[test]
    fn width_stats_accumulate() {
        let mut s = WidthStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), None);
        for w in [3.0, 1.0, 2.0] {
            s.record(w);
        }
        assert_eq!(s.count(), 3);
        assert_eq!(s.mean(), 2.0);
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(3.0));
    }

    #[test]
    fn default_equals_new() {
        let d = WidthStats::default();
        assert_eq!(d, WidthStats::new());
        assert_eq!(d.count(), 0);
        assert_eq!(d.min(), None);
        assert_eq!(d.max(), None);
    }

    #[test]
    fn default_constructed_stats_track_extrema_like_new() {
        // Regression: the derived Default zeroed the sentinels, so a
        // default-constructed stats recording only positive widths
        // reported min() == Some(0.0) (and negative-width… max 0.0).
        let mut d = WidthStats::default();
        d.record(2.0);
        d.record(4.0);
        assert_eq!(d.min(), Some(2.0));
        assert_eq!(d.max(), Some(4.0));
        let mut neg = WidthStats::default();
        neg.record(-3.0);
        assert_eq!(neg.max(), Some(-3.0));
    }
}
