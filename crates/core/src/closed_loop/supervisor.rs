//! The high-level safety supervisor.
//!
//! The case study encodes platoon safety into the fusion interval: "if
//! its upper bound exceeds `v + δ1` mph or the lower bound is less than
//! `v − δ2` mph then a high-level algorithm will preempt the low-level
//! controller to guarantee safety of the vehicles". The supervisor here
//! implements exactly that rule and records the violation statistics
//! Table II reports.

use arsf_interval::Interval;

/// The supervisor's decision for one round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SupervisorAction {
    /// Fusion interval inside the envelope: the PI controller drives.
    Nominal,
    /// Upper bound escaped (`hi > v + δ1`): preempt with braking — the
    /// vehicle may be going too fast to stop in time.
    PreemptBrake,
    /// Lower bound escaped (`lo < v − δ2`): preempt with acceleration —
    /// the vehicle may be about to be rear-ended.
    PreemptAccelerate,
    /// Both bounds escaped: the uncertainty spans the whole envelope;
    /// brake (the conservative action for the platoon's leader-collision
    /// hazard).
    PreemptBoth,
}

/// Safety supervisor for a speed envelope `[target − δ2, target + δ1]`.
///
/// # Example
///
/// ```
/// use arsf_interval::Interval;
/// use arsf_core::closed_loop::supervisor::{Supervisor, SupervisorAction};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut sup = Supervisor::new(10.0, 0.5, 0.5);
/// let action = sup.check(&Interval::new(9.8, 10.2)?);
/// assert_eq!(action, SupervisorAction::Nominal);
/// let action = sup.check(&Interval::new(9.8, 10.7)?);
/// assert_eq!(action, SupervisorAction::PreemptBrake);
/// assert_eq!(sup.upper_violations(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Supervisor {
    target: f64,
    delta_up: f64,
    delta_down: f64,
    rounds: u64,
    upper_violations: u64,
    lower_violations: u64,
}

impl Supervisor {
    /// Creates a supervisor for the given target speed and envelope
    /// half-widths `δ1` (above) and `δ2` (below).
    ///
    /// # Panics
    ///
    /// Panics if any argument is non-finite or a delta is negative.
    pub fn new(target: f64, delta_up: f64, delta_down: f64) -> Self {
        assert!(
            target.is_finite()
                && delta_up.is_finite()
                && delta_down.is_finite()
                && delta_up >= 0.0
                && delta_down >= 0.0,
            "supervisor envelope must be finite with non-negative deltas"
        );
        Self {
            target,
            delta_up,
            delta_down,
            rounds: 0,
            upper_violations: 0,
            lower_violations: 0,
        }
    }

    /// The upper envelope bound `v + δ1`.
    pub fn upper_bound(&self) -> f64 {
        self.target + self.delta_up
    }

    /// The lower envelope bound `v − δ2`.
    pub fn lower_bound(&self) -> f64 {
        self.target - self.delta_down
    }

    /// Checks one fusion interval, records statistics and returns the
    /// action.
    pub fn check(&mut self, fusion: &Interval<f64>) -> SupervisorAction {
        self.rounds += 1;
        let above = fusion.hi() > self.upper_bound();
        let below = fusion.lo() < self.lower_bound();
        if above {
            self.upper_violations += 1;
        }
        if below {
            self.lower_violations += 1;
        }
        match (above, below) {
            (false, false) => SupervisorAction::Nominal,
            (true, false) => SupervisorAction::PreemptBrake,
            (false, true) => SupervisorAction::PreemptAccelerate,
            (true, true) => SupervisorAction::PreemptBoth,
        }
    }

    /// Rounds checked so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Rounds whose upper bound escaped.
    pub fn upper_violations(&self) -> u64 {
        self.upper_violations
    }

    /// Rounds whose lower bound escaped.
    pub fn lower_violations(&self) -> u64 {
        self.lower_violations
    }

    /// Fraction of rounds with an upper violation (Table II row 1).
    pub fn upper_rate(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.upper_violations as f64 / self.rounds as f64
        }
    }

    /// Fraction of rounds with a lower violation (Table II row 2).
    pub fn lower_rate(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.lower_violations as f64 / self.rounds as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(lo: f64, hi: f64) -> Interval<f64> {
        Interval::new(lo, hi).unwrap()
    }

    #[test]
    fn nominal_inside_envelope() {
        let mut sup = Supervisor::new(10.0, 0.5, 0.5);
        assert_eq!(sup.check(&iv(9.5, 10.5)), SupervisorAction::Nominal);
        assert_eq!(sup.upper_violations(), 0);
        assert_eq!(sup.lower_violations(), 0);
    }

    #[test]
    fn each_violation_kind_is_classified() {
        let mut sup = Supervisor::new(10.0, 0.5, 0.5);
        assert_eq!(sup.check(&iv(9.8, 10.6)), SupervisorAction::PreemptBrake);
        assert_eq!(
            sup.check(&iv(9.4, 10.2)),
            SupervisorAction::PreemptAccelerate
        );
        assert_eq!(sup.check(&iv(9.0, 11.0)), SupervisorAction::PreemptBoth);
        assert_eq!(sup.rounds(), 3);
        assert_eq!(sup.upper_violations(), 2);
        assert_eq!(sup.lower_violations(), 2);
    }

    #[test]
    fn rates_match_counts() {
        let mut sup = Supervisor::new(10.0, 0.5, 0.5);
        sup.check(&iv(9.8, 10.2));
        sup.check(&iv(9.8, 10.7));
        assert_eq!(sup.upper_rate(), 0.5);
        assert_eq!(sup.lower_rate(), 0.0);
    }

    #[test]
    fn empty_supervisor_rates_are_zero() {
        let sup = Supervisor::new(10.0, 0.5, 0.5);
        assert_eq!(sup.upper_rate(), 0.0);
        assert_eq!(sup.lower_rate(), 0.0);
    }

    #[test]
    fn asymmetric_envelope() {
        let mut sup = Supervisor::new(10.0, 1.0, 0.25);
        assert_eq!(sup.upper_bound(), 11.0);
        assert_eq!(sup.lower_bound(), 9.75);
        assert_eq!(sup.check(&iv(9.8, 10.9)), SupervisorAction::Nominal);
    }

    #[test]
    #[should_panic(expected = "non-negative deltas")]
    fn negative_delta_panics() {
        let _ = Supervisor::new(10.0, -0.5, 0.5);
    }
}
