//! The low-level PI speed controller.

/// A proportional-integral speed controller with output clamping and
/// anti-windup (the integral term freezes while the output saturates).
///
/// # Example
///
/// ```
/// use arsf_core::closed_loop::controller::PiController;
///
/// let mut pi = PiController::new(1.2, 0.2, 3.0, 6.0);
/// // Below target: accelerate.
/// assert!(pi.update(10.0, 8.0, 0.1) > 0.0);
/// // Above target: brake.
/// assert!(pi.update(10.0, 12.0, 0.1) < 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PiController {
    kp: f64,
    ki: f64,
    max_output: f64,
    min_output: f64,
    integral: f64,
}

impl PiController {
    /// Creates a controller with gains `kp`, `ki` and output limits
    /// `[-max_brake, max_accel]`.
    ///
    /// # Panics
    ///
    /// Panics if a gain or limit is negative or non-finite.
    pub fn new(kp: f64, ki: f64, max_accel: f64, max_brake: f64) -> Self {
        assert!(
            kp.is_finite() && ki.is_finite() && kp >= 0.0 && ki >= 0.0,
            "gains must be finite and non-negative"
        );
        assert!(
            max_accel.is_finite() && max_brake.is_finite() && max_accel >= 0.0 && max_brake >= 0.0,
            "limits must be finite and non-negative"
        );
        Self {
            kp,
            ki,
            max_output: max_accel,
            min_output: -max_brake,
            integral: 0.0,
        }
    }

    /// Computes the acceleration command (mph/s) for the current
    /// estimated speed, advancing the integral state by `dt` seconds.
    pub fn update(&mut self, target: f64, estimate: f64, dt: f64) -> f64 {
        let error = target - estimate;
        let unclamped = self.kp * error + self.ki * (self.integral + error * dt);
        let output = unclamped.clamp(self.min_output, self.max_output);
        // Anti-windup: only integrate while the actuator is not pinned.
        if (output - unclamped).abs() < f64::EPSILON {
            self.integral += error * dt;
        }
        output
    }

    /// Clears the integral state (used on supervisor preemption).
    pub fn reset(&mut self) {
        self.integral = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proportional_response_signs() {
        let mut pi = PiController::new(1.0, 0.0, 5.0, 5.0);
        assert!(pi.update(10.0, 9.0, 0.1) > 0.0);
        assert!(pi.update(10.0, 11.0, 0.1) < 0.0);
        assert_eq!(pi.update(10.0, 10.0, 0.1), 0.0);
    }

    #[test]
    fn output_is_clamped() {
        let mut pi = PiController::new(100.0, 0.0, 3.0, 6.0);
        assert_eq!(pi.update(10.0, 0.0, 0.1), 3.0);
        assert_eq!(pi.update(0.0, 100.0, 0.1), -6.0);
    }

    #[test]
    fn integral_removes_steady_state_error() {
        let mut pi = PiController::new(0.5, 0.5, 5.0, 5.0);
        // Constant error of 1: the command must grow over time.
        let first = pi.update(10.0, 9.0, 0.1);
        let mut last = first;
        for _ in 0..20 {
            last = pi.update(10.0, 9.0, 0.1);
        }
        assert!(last > first);
    }

    #[test]
    fn anti_windup_freezes_integral_when_saturated() {
        let mut pi = PiController::new(0.0, 10.0, 1.0, 1.0);
        // Saturate hard for many steps.
        for _ in 0..100 {
            let out = pi.update(100.0, 0.0, 0.1);
            assert_eq!(out, 1.0);
        }
        // On error reversal the controller must recover immediately
        // instead of unwinding a huge integral.
        let out = pi.update(0.0, 100.0, 0.1);
        assert_eq!(out, -1.0);
    }

    #[test]
    fn reset_clears_state() {
        let mut pi = PiController::new(0.0, 1.0, 5.0, 5.0);
        for _ in 0..10 {
            pi.update(10.0, 9.0, 0.1);
        }
        pi.reset();
        assert_eq!(pi.update(10.0, 10.0, 0.1), 0.0);
    }

    #[test]
    #[should_panic(expected = "gains must be finite")]
    fn negative_gain_panics() {
        let _ = PiController::new(-1.0, 0.0, 1.0, 1.0);
    }
}
