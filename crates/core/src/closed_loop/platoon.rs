//! The three-LandShark platoon from the case study.
//!
//! "Three LandSharks in a platoon moving away from enemy territory. The
//! leader sets a speed target `v` mph for all three vehicles"; keeping
//! every vehicle's speed inside `[v − δ2, v + δ1]` prevents both
//! rear-end collisions within the platoon and the leader outrunning its
//! ability to stop.

use rand::Rng;

use crate::closed_loop::landshark::{LandShark, LandSharkConfig, StepRecord};
use crate::metrics::VehicleSummary;
use crate::RoundOutcome;

/// A column of LandSharks sharing one speed target.
#[derive(Debug)]
pub struct Platoon {
    sharks: Vec<LandShark>,
    start_offsets: Vec<f64>,
    min_gap: f64,
    initial_gap: f64,
    stats: Vec<VehicleSummary>,
}

impl Platoon {
    /// Creates a platoon of `size` vehicles with `gap_miles` initial
    /// spacing, each configured by `config` (cloned per vehicle).
    ///
    /// # Panics
    ///
    /// Panics if `size == 0` or `gap_miles` is not positive.
    pub fn new(size: usize, gap_miles: f64, config: LandSharkConfig) -> Self {
        assert!(size > 0, "a platoon needs at least one vehicle");
        assert!(
            gap_miles > 0.0 && gap_miles.is_finite(),
            "initial gap must be positive"
        );
        let sharks = (0..size).map(|_| LandShark::new(config.clone())).collect();
        let start_offsets = (0..size).map(|i| -(i as f64) * gap_miles).collect();
        Self {
            sharks,
            start_offsets,
            min_gap: gap_miles,
            initial_gap: gap_miles,
            stats: vec![VehicleSummary::default(); size],
        }
    }

    /// The vehicles, leader first.
    pub fn sharks(&self) -> &[LandShark] {
        &self.sharks
    }

    /// The smallest inter-vehicle gap observed so far (miles).
    pub fn min_gap(&self) -> f64 {
        self.min_gap
    }

    /// Whether any two consecutive vehicles have collided (gap ≤ 0).
    pub fn collided(&self) -> bool {
        self.min_gap <= 0.0
    }

    /// Cumulative per-vehicle fusion statistics (leader first) — every
    /// vehicle's engine outcome feeds its own aggregate, so followers are
    /// as observable as the leader in sweep rows.
    pub fn vehicle_stats(&self) -> &[VehicleSummary] {
        &self.stats
    }

    /// Advances every vehicle by one control period and updates the gap
    /// and per-vehicle statistics. Returns the per-vehicle step records,
    /// leader first.
    pub fn step<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Vec<StepRecord> {
        let records: Vec<StepRecord> = self.sharks.iter_mut().map(|s| s.step(rng)).collect();
        self.record_round(&records);
        records
    }

    /// [`Platoon::step`] writing the **leader's** engine outcome into a
    /// caller-owned reusable buffer (followers keep their internal
    /// buffers) — the shape the scenario runner uses so closed-loop
    /// platoon cells report the leader's fusion statistics without
    /// per-round cloning.
    pub fn step_with<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        leader_outcome: &mut RoundOutcome,
    ) -> Vec<StepRecord> {
        let mut records = Vec::with_capacity(self.sharks.len());
        for (i, shark) in self.sharks.iter_mut().enumerate() {
            records.push(if i == 0 {
                shark.step_with(rng, leader_outcome)
            } else {
                shark.step(rng)
            });
        }
        self.record_round(&records);
        records
    }

    fn record_round(&mut self, records: &[StepRecord]) {
        for (stats, record) in self.stats.iter_mut().zip(records) {
            stats.record(record.fusion.as_ref(), record.true_speed);
        }
        self.update_gaps();
    }

    fn update_gaps(&mut self) {
        for i in 1..self.sharks.len() {
            let ahead = self.sharks[i - 1].position() + self.start_offsets[i - 1];
            let behind = self.sharks[i].position() + self.start_offsets[i];
            let gap = ahead - behind;
            if gap < self.min_gap {
                self.min_gap = gap;
            }
        }
    }

    /// The configured initial gap (miles).
    pub fn initial_gap(&self) -> f64 {
        self.initial_gap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::AttackerSpec;
    use arsf_schedule::SchedulePolicy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(3)
    }

    #[test]
    fn honest_platoon_keeps_formation() {
        let mut rng = rng();
        let config = LandSharkConfig::new(10.0, SchedulePolicy::Ascending);
        let mut platoon = Platoon::new(3, 0.01, config);
        for _ in 0..300 {
            platoon.step(&mut rng);
        }
        assert!(!platoon.collided());
        // Gaps cannot shrink much when everyone holds the same speed.
        assert!(
            platoon.min_gap() > 0.5 * platoon.initial_gap(),
            "min gap {} vs initial {}",
            platoon.min_gap(),
            platoon.initial_gap()
        );
    }

    #[test]
    fn attacked_ascending_platoon_stays_safe() {
        let mut rng = rng();
        let config = LandSharkConfig::new(10.0, SchedulePolicy::Ascending)
            .with_attacker(AttackerSpec::RandomEachRound);
        let mut platoon = Platoon::new(3, 0.01, config);
        for _ in 0..300 {
            platoon.step(&mut rng);
        }
        assert!(!platoon.collided());
        let violations: u64 = platoon
            .sharks()
            .iter()
            .map(|s| s.supervisor().upper_violations() + s.supervisor().lower_violations())
            .sum();
        assert_eq!(violations, 0, "ascending neutralises single attackers");
    }

    #[test]
    fn every_vehicle_accumulates_its_own_statistics() {
        // Before the per-vehicle aggregate only the leader's engine fed
        // the summary; followers were invisible.
        let mut rng = rng();
        let config = LandSharkConfig::new(10.0, SchedulePolicy::Descending)
            .with_attacker(AttackerSpec::RandomEachRound);
        let mut platoon = Platoon::new(3, 0.01, config);
        let mut buffer = RoundOutcome::default();
        for _ in 0..200 {
            platoon.step_with(&mut rng, &mut buffer);
        }
        let stats = platoon.vehicle_stats();
        assert_eq!(stats.len(), 3, "one aggregate per vehicle");
        for (i, vehicle) in stats.iter().enumerate() {
            assert_eq!(
                vehicle.widths.count() + vehicle.fusion_failures,
                200,
                "vehicle {i} must account for every round"
            );
            assert!(
                vehicle.widths.mean() > 0.0,
                "vehicle {i} recorded no widths"
            );
        }
        // Independently-sampled vehicles almost surely differ somewhere.
        assert!(
            stats[0] != stats[1] || stats[1] != stats[2],
            "per-vehicle statistics must not alias one engine"
        );
    }

    #[test]
    #[should_panic(expected = "at least one vehicle")]
    fn empty_platoon_panics() {
        let _ = Platoon::new(
            0,
            0.01,
            LandSharkConfig::new(10.0, SchedulePolicy::Ascending),
        );
    }

    #[test]
    #[should_panic(expected = "gap must be positive")]
    fn nonpositive_gap_panics() {
        let _ = Platoon::new(
            2,
            0.0,
            LandSharkConfig::new(10.0, SchedulePolicy::Ascending),
        );
    }
}
