//! Longitudinal vehicle dynamics.
//!
//! The LandShark is modelled as a point mass with bounded
//! acceleration/braking and linear drag — the simplest dynamics that keep
//! speed near a setpoint with bounded wander, which is all the case study
//! needs from the vehicle (the fusion layer only ever sees the speed).

use rand::Rng;

/// Static vehicle parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VehicleParams {
    /// Maximum forward acceleration (mph/s).
    pub max_accel: f64,
    /// Maximum braking deceleration (mph/s, positive number).
    pub max_brake: f64,
    /// Linear drag coefficient (1/s).
    pub drag: f64,
    /// Peak magnitude of the terrain disturbance (mph/s).
    pub disturbance: f64,
}

impl Default for VehicleParams {
    /// LandShark-ish defaults: brisk acceleration, stronger braking, mild
    /// drag and terrain noise.
    fn default() -> Self {
        Self {
            max_accel: 3.0,
            max_brake: 6.0,
            drag: 0.01,
            disturbance: 0.2,
        }
    }
}

/// Longitudinal vehicle state: speed (mph) and travelled distance
/// (mile-equivalents, integrated from speed).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Vehicle {
    params: VehicleParams,
    speed: f64,
    position: f64,
}

impl Vehicle {
    /// Creates a vehicle at rest.
    pub fn new(params: VehicleParams) -> Self {
        Self {
            params,
            speed: 0.0,
            position: 0.0,
        }
    }

    /// Creates a vehicle already moving at `speed` mph.
    pub fn with_speed(params: VehicleParams, speed: f64) -> Self {
        assert!(
            speed.is_finite() && speed >= 0.0,
            "speed must be a finite non-negative value"
        );
        Self {
            params,
            speed,
            position: 0.0,
        }
    }

    /// Current speed in mph.
    pub fn speed(&self) -> f64 {
        self.speed
    }

    /// Travelled distance in miles.
    pub fn position(&self) -> f64 {
        self.position
    }

    /// The parameters.
    pub fn params(&self) -> &VehicleParams {
        &self.params
    }

    /// Advances the dynamics by `dt` seconds under `accel_cmd` (mph/s,
    /// clamped to the actuator limits) plus a uniform terrain
    /// disturbance. Speed never goes negative.
    pub fn step<R: Rng + ?Sized>(&mut self, accel_cmd: f64, dt: f64, rng: &mut R) {
        let a = accel_cmd.clamp(-self.params.max_brake, self.params.max_accel);
        let d = if self.params.disturbance > 0.0 {
            rng.gen_range(-self.params.disturbance..=self.params.disturbance)
        } else {
            0.0
        };
        let dv = (a - self.params.drag * self.speed + d) * dt;
        self.speed = (self.speed + dv).max(0.0);
        self.position += self.speed * dt / 3600.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(8)
    }

    fn quiet_params() -> VehicleParams {
        VehicleParams {
            disturbance: 0.0,
            ..VehicleParams::default()
        }
    }

    #[test]
    fn accelerates_towards_command() {
        let mut rng = rng();
        let mut v = Vehicle::new(quiet_params());
        for _ in 0..100 {
            v.step(3.0, 0.1, &mut rng);
        }
        assert!(
            v.speed() > 10.0,
            "speed {} after 10s of full throttle",
            v.speed()
        );
        assert!(v.position() > 0.0);
    }

    #[test]
    fn speed_never_negative() {
        let mut rng = rng();
        let mut v = Vehicle::with_speed(quiet_params(), 1.0);
        for _ in 0..100 {
            v.step(-100.0, 0.1, &mut rng);
        }
        assert_eq!(v.speed(), 0.0);
    }

    #[test]
    fn command_is_clamped_to_actuator_limits() {
        let mut rng = rng();
        let mut fast = Vehicle::new(quiet_params());
        let mut clamped = Vehicle::new(quiet_params());
        fast.step(1e9, 0.1, &mut rng);
        clamped.step(quiet_params().max_accel, 0.1, &mut rng);
        assert_eq!(fast.speed(), clamped.speed());
    }

    #[test]
    fn drag_decays_speed_without_input() {
        let mut rng = rng();
        let mut v = Vehicle::with_speed(quiet_params(), 20.0);
        let initial = v.speed();
        for _ in 0..50 {
            v.step(0.0, 0.1, &mut rng);
        }
        assert!(v.speed() < initial);
        assert!(v.speed() > 0.0);
    }

    #[test]
    fn disturbance_stays_bounded() {
        let mut rng = rng();
        let params = VehicleParams {
            disturbance: 0.4,
            ..quiet_params()
        };
        let mut v = Vehicle::with_speed(params, 10.0);
        for _ in 0..1000 {
            let before = v.speed();
            v.step(0.0, 0.1, &mut rng);
            // dv bounded by (drag*speed + disturbance) * dt.
            assert!((v.speed() - before).abs() <= (0.05 * before + 0.4) * 0.1 + 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "finite non-negative")]
    fn negative_initial_speed_panics() {
        let _ = Vehicle::with_speed(VehicleParams::default(), -1.0);
    }
}
