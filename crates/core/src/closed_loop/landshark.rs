//! The LandShark: one autonomous vehicle with the case study's sensor
//! suite, fusion pipeline, PI speed controller and safety supervisor.
//!
//! The vehicle owns **one persistent** [`FusionPipeline`] over a boxed
//! [`Fuser`](arsf_fusion::Fuser) built from the configured
//! [`FuserSpec`] — plain Marzullo by default, the dynamics-aware
//! historical defence, or any other stock fuser — so defences run
//! *through* the engine rather than as bolt-on refinements and detection
//! sees the same interval the supervisor does. Faults and attackers use
//! the **identical machinery** as the open-loop pipeline: fault models
//! attach to the suite before the run, the attacker is a declarative
//! [`AttackerSpec`] (any strategy), and per-round attacker changes (the
//! case study's "any sensor can be attacked") go through
//! [`FusionPipeline::set_attacker_config`] instead of rebuilding the
//! engine.

use crate::{DetectionMode, FusionPipeline, PipelineConfig, RoundOutcome};
use arsf_attack::AttackerConfig;
use arsf_fusion::historical::{DynamicsBound, HistoricalFuser};
use arsf_fusion::Fuser;
use arsf_interval::Interval;
use arsf_schedule::SchedulePolicy;
use arsf_sensor::FaultModel;
use rand::Rng;

use crate::closed_loop::controller::PiController;
use crate::closed_loop::supervisor::{Supervisor, SupervisorAction};
use crate::closed_loop::vehicle::{Vehicle, VehicleParams};
use crate::scenario::{apply_faults, AttackerSpec, FuserSpec};

/// Configuration of a single LandShark.
#[derive(Debug, Clone, PartialEq)]
pub struct LandSharkConfig {
    /// Target speed `v` in mph.
    pub target_speed: f64,
    /// Upper envelope half-width `δ1`.
    pub delta_up: f64,
    /// Lower envelope half-width `δ2`.
    pub delta_down: f64,
    /// Communication schedule.
    pub schedule: SchedulePolicy,
    /// Fusion fault assumption.
    pub f: usize,
    /// Control period in seconds.
    pub dt: f64,
    /// Fault models attached to the vehicle's sensors before the run, as
    /// `(sensor index, fault)` pairs — the same wiring the open-loop
    /// pipeline uses.
    pub faults: Vec<(usize, FaultModel)>,
    /// Attacker model — any [`AttackerSpec`], with any strategy.
    pub attacker: AttackerSpec,
    /// The detector the fusion engine runs on fused rounds.
    pub detection: DetectionMode,
    /// Vehicle parameters.
    pub vehicle: VehicleParams,
    /// The fusion algorithm the engine runs (Marzullo by default;
    /// [`FuserSpec::Historical`] is the dynamics-aware follow-up defence,
    /// refining each round with the previous round's propagated
    /// evidence). A historical spec's own `dt` is ignored here: the
    /// vehicle always propagates history at the control period
    /// [`LandSharkConfig::dt`], so the two can never silently diverge.
    pub fuser: FuserSpec,
}

impl LandSharkConfig {
    /// The case study's configuration: `v` mph target, `δ1 = δ2 = 0.5`,
    /// `f = 1`, 100 ms control period, Marzullo fusion, no faults, no
    /// attacker.
    pub fn new(target_speed: f64, schedule: SchedulePolicy) -> Self {
        Self {
            target_speed,
            delta_up: 0.5,
            delta_down: 0.5,
            schedule,
            f: 1,
            dt: 0.1,
            faults: Vec::new(),
            attacker: AttackerSpec::None,
            detection: DetectionMode::Immediate,
            vehicle: VehicleParams::default(),
            fuser: FuserSpec::Marzullo,
        }
    }

    /// Sets the attacker model (builder style).
    #[must_use]
    pub fn with_attacker(mut self, attacker: AttackerSpec) -> Self {
        self.attacker = attacker;
        self
    }

    /// Attaches a fault model to a sensor (builder style).
    #[must_use]
    pub fn with_fault(mut self, sensor: usize, fault: FaultModel) -> Self {
        self.faults.push((sensor, fault));
        self
    }

    /// Sets the detector (builder style).
    #[must_use]
    pub fn with_detection(mut self, detection: DetectionMode) -> Self {
        self.detection = detection;
        self
    }

    /// Sets the fusion algorithm (builder style).
    #[must_use]
    pub fn with_fuser(mut self, fuser: FuserSpec) -> Self {
        self.fuser = fuser;
        self
    }

    /// Enables dynamics-aware historical fusion with the given rate bound
    /// at the current control period (builder-style sugar for
    /// [`LandSharkConfig::with_fuser`] with [`FuserSpec::Historical`]).
    #[must_use]
    pub fn with_history(mut self, bound: DynamicsBound) -> Self {
        self.fuser = FuserSpec::Historical {
            max_rate: bound.max_rate(),
            dt: self.dt,
        };
        self
    }
}

/// One simulation step's record.
#[derive(Debug)]
pub struct StepRecord {
    /// True speed at sampling time.
    pub true_speed: f64,
    /// The fused interval (when fusion succeeded).
    pub fusion: Option<Interval<f64>>,
    /// The supervisor's decision.
    pub action: SupervisorAction,
    /// Sensors flagged by detection this round.
    pub flagged: Vec<usize>,
    /// The full compromised set this round (ascending ids; empty when
    /// nobody was attacked).
    pub attacked: Vec<usize>,
}

/// A LandShark instance: vehicle + sensors + fusion engine + control.
#[derive(Debug)]
pub struct LandShark {
    config: LandSharkConfig,
    pipeline: FusionPipeline<Box<dyn Fuser<f64>>>,
    vehicle: Vehicle,
    pi: PiController,
    supervisor: Supervisor,
    outcome: RoundOutcome,
    /// `AttackerSpec::Fixed`'s set, normalised (sorted, deduped) once
    /// at construction so per-round records are a plain copy.
    fixed_attacked: Vec<usize>,
}

impl LandShark {
    /// Creates a LandShark already cruising at the target speed (the
    /// platoon scenario starts mid-mission).
    ///
    /// # Panics
    ///
    /// Panics if a fault or compromised-sensor index is out of range for
    /// the LandShark suite (validate the scenario with
    /// [`Scenario::validate`](crate::Scenario::validate) first for a
    /// typed error).
    pub fn new(config: LandSharkConfig) -> Self {
        let vehicle = Vehicle::with_speed(config.vehicle, config.target_speed);
        let pi = PiController::new(3.0, 0.8, config.vehicle.max_accel, config.vehicle.max_brake);
        let supervisor = Supervisor::new(config.target_speed, config.delta_up, config.delta_down);
        let mut suite = arsf_sensor::suite::landshark();
        apply_faults(&mut suite, &config.faults);
        // Historical fusion must propagate at the loop's actual control
        // period — config.dt wins over the spec's own dt, so a fuser
        // configured for a different period cannot silently shrink or
        // inflate the dynamics envelope.
        let fuser: Box<dyn Fuser<f64>> = match config.fuser {
            FuserSpec::Historical { max_rate, .. } => Box::new(HistoricalFuser::new(
                config.f,
                DynamicsBound::new(max_rate),
                config.dt,
            )),
            ref other => other.build(config.f),
        };
        let mut pipeline = FusionPipeline::builder(suite)
            .config(
                PipelineConfig::new(config.f, config.schedule.clone())
                    .with_detection(config.detection),
            )
            .fuser(fuser)
            .build();
        // Attacker wiring is the pipeline's own: RandomEachRound installs
        // a persistent strategy whose per-round compromised sensor is
        // drawn inside step(), so the hot loop only swaps the attacker
        // *config*.
        let mut fixed_attacked = Vec::new();
        if let Some((attacker, strategy)) = config.attacker.build(config.f) {
            if matches!(config.attacker, AttackerSpec::Fixed { .. }) {
                fixed_attacked = attacker.compromised().to_vec();
            }
            pipeline.set_attacker(Some((attacker, strategy)));
        }
        Self {
            config,
            pipeline,
            vehicle,
            pi,
            supervisor,
            outcome: RoundOutcome::default(),
            fixed_attacked,
        }
    }

    /// Current true speed (mph).
    pub fn speed(&self) -> f64 {
        self.vehicle.speed()
    }

    /// Travelled distance (miles).
    pub fn position(&self) -> f64 {
        self.vehicle.position()
    }

    /// The safety supervisor (violation statistics).
    pub fn supervisor(&self) -> &Supervisor {
        &self.supervisor
    }

    /// The configuration.
    pub fn config(&self) -> &LandSharkConfig {
        &self.config
    }

    /// The persistent fusion engine (fuser/detector report names, round
    /// counters).
    pub fn pipeline(&self) -> &FusionPipeline<Box<dyn Fuser<f64>>> {
        &self.pipeline
    }

    /// Completed rounds.
    pub fn rounds(&self) -> u64 {
        self.pipeline.rounds()
    }

    /// Runs one control period: sample sensors at the true speed, run the
    /// scheduled fusion round (with the attacker, if any), let the
    /// supervisor vet the fusion interval, and actuate.
    pub fn step<R: Rng + ?Sized>(&mut self, rng: &mut R) -> StepRecord {
        let mut outcome = std::mem::take(&mut self.outcome);
        let record = self.step_with(rng, &mut outcome);
        self.outcome = outcome;
        record
    }

    /// [`LandShark::step`] writing the round's engine outcome into a
    /// caller-owned reusable buffer — the allocation-free shape the
    /// scenario runner uses when sweeping many closed-loop cells.
    pub fn step_with<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        outcome: &mut RoundOutcome,
    ) -> StepRecord {
        let truth = self.vehicle.speed();
        let attacked: Vec<usize> = match &self.config.attacker {
            AttackerSpec::None => Vec::new(),
            AttackerSpec::Fixed { .. } => self.fixed_attacked.clone(),
            AttackerSpec::RandomEachRound => {
                let sensor = rng.gen_range(0..self.pipeline.suite().len());
                // Swap only the compromised set: the boxed strategy
                // persists, so the hot loop performs no re-boxing.
                self.pipeline
                    .set_attacker_config(AttackerConfig::new([sensor], self.config.f));
                vec![sensor]
            }
        };
        self.pipeline.run_round_into(truth, rng, outcome);

        let (action, estimate) = match &outcome.fusion {
            Ok(fused) => (self.supervisor.check(fused), fused.midpoint()),
            // Fusion failure certifies over-budget faults; treat as a
            // brake-preempt with the last known-good estimate (target).
            Err(_) => (SupervisorAction::PreemptBrake, self.config.target_speed),
        };

        // Preemption overrides the actuator for this period but leaves the
        // PI state intact: the supervisor guards against *uncertainty*,
        // not against the controller, and wiping the integral would let
        // drag drag the platoon's speed down between preemptions.
        let accel = match action {
            SupervisorAction::Nominal => {
                self.pi
                    .update(self.config.target_speed, estimate, self.config.dt)
            }
            SupervisorAction::PreemptBrake | SupervisorAction::PreemptBoth => {
                -self.config.vehicle.max_brake * 0.25
            }
            SupervisorAction::PreemptAccelerate => self.config.vehicle.max_accel * 0.25,
        };
        self.vehicle.step(accel, self.config.dt, rng);

        StepRecord {
            true_speed: truth,
            fusion: outcome.fusion.ok(),
            action,
            // Cloning is allocation-free on all-clear rounds; the caller
            // keeps the buffer's vector for the summary aggregation.
            flagged: outcome.flagged.clone(),
            attacked,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::StrategySpec;
    use arsf_sensor::FaultKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(77)
    }

    fn fixed_phantom(sensors: Vec<usize>) -> AttackerSpec {
        AttackerSpec::Fixed {
            sensors,
            strategy: StrategySpec::PhantomOptimal,
        }
    }

    #[test]
    fn fixed_multi_sensor_attack_reports_the_full_set() {
        // Regression: StepRecord used to report only set.first() for
        // fixed attackers, silently misreporting multi-sensor attacks.
        let mut rng = rng();
        let config = LandSharkConfig::new(10.0, SchedulePolicy::Ascending)
            .with_attacker(fixed_phantom(vec![2, 0]));
        let mut shark = LandShark::new(config);
        let rec = shark.step(&mut rng);
        assert_eq!(rec.attacked, vec![0, 2], "full sorted compromised set");
    }

    #[test]
    fn step_with_matches_step_on_identical_streams() {
        let build = || {
            LandShark::new(
                LandSharkConfig::new(10.0, SchedulePolicy::Descending)
                    .with_attacker(AttackerSpec::RandomEachRound),
            )
        };
        let mut rng_a = rng();
        let mut rng_b = rng();
        let mut a = build();
        let mut b = build();
        let mut buffer = RoundOutcome::default();
        for round in 0..100 {
            let ra = a.step(&mut rng_a);
            let rb = b.step_with(&mut rng_b, &mut buffer);
            assert_eq!(ra.fusion, rb.fusion, "round {round}");
            assert_eq!(ra.action, rb.action);
            assert_eq!(ra.flagged, rb.flagged);
            assert_eq!(ra.attacked, rb.attacked);
            assert_eq!(buffer.fusion.as_ref().ok().copied(), rb.fusion);
        }
        assert_eq!(a.speed(), b.speed());
    }

    #[test]
    fn windowed_detection_flows_through_the_config() {
        let config = LandSharkConfig::new(10.0, SchedulePolicy::Ascending).with_detection(
            DetectionMode::Windowed {
                window: 10,
                tolerance: 3,
            },
        );
        let shark = LandShark::new(config);
        assert_eq!(shark.pipeline().detector().name(), "windowed");
    }

    #[test]
    fn honest_shark_holds_speed_without_violations() {
        let mut rng = rng();
        let mut shark = LandShark::new(LandSharkConfig::new(10.0, SchedulePolicy::Ascending));
        for _ in 0..200 {
            let rec = shark.step(&mut rng);
            assert!(rec.flagged.is_empty());
            assert!(rec.attacked.is_empty());
        }
        assert!(
            (shark.speed() - 10.0).abs() < 0.5,
            "speed {}",
            shark.speed()
        );
        assert_eq!(shark.supervisor().upper_violations(), 0);
        assert_eq!(shark.supervisor().lower_violations(), 0);
        assert_eq!(shark.rounds(), 200);
    }

    #[test]
    fn ascending_with_attacked_encoder_never_violates() {
        // The paper's headline: under Ascending the most precise sensor
        // transmits first and a single attacker gains nothing.
        let mut rng = rng();
        let config = LandSharkConfig::new(10.0, SchedulePolicy::Ascending)
            .with_attacker(fixed_phantom(vec![0]));
        let mut shark = LandShark::new(config);
        for _ in 0..300 {
            let rec = shark.step(&mut rng);
            assert!(rec.flagged.is_empty(), "stealthy attacker flagged");
        }
        assert_eq!(shark.supervisor().upper_violations(), 0);
        assert_eq!(shark.supervisor().lower_violations(), 0);
    }

    #[test]
    fn descending_with_attacked_encoder_violates_sometimes() {
        let mut rng = rng();
        let config = LandSharkConfig::new(10.0, SchedulePolicy::Descending)
            .with_attacker(fixed_phantom(vec![0]));
        let mut shark = LandShark::new(config);
        for _ in 0..300 {
            shark.step(&mut rng);
        }
        let total = shark.supervisor().upper_violations() + shark.supervisor().lower_violations();
        assert!(
            total > 0,
            "a fully-informed attacker on the precise sensor must cause violations"
        );
    }

    #[test]
    fn supervisor_preemption_reacts_to_violations() {
        let mut rng = rng();
        let config = LandSharkConfig::new(10.0, SchedulePolicy::Descending)
            .with_attacker(fixed_phantom(vec![0]));
        let mut shark = LandShark::new(config);
        let mut preempted = 0;
        for _ in 0..300 {
            let rec = shark.step(&mut rng);
            if rec.action != SupervisorAction::Nominal {
                preempted += 1;
            }
        }
        assert!(preempted > 0);
        // Despite the attack the vehicle remains roughly at speed: the
        // supervisor acts on uncertainty, not on a wrong point estimate.
        assert!(
            (shark.speed() - 10.0).abs() < 2.0,
            "speed {}",
            shark.speed()
        );
    }

    #[test]
    fn historical_fusion_reduces_descending_violations() {
        // The follow-up defence: dynamics-aware history clips forged
        // extensions, cutting violation rates under the worst schedule.
        let rounds = 800;
        let run = |history: Option<DynamicsBound>| {
            let mut rng = StdRng::seed_from_u64(51);
            let mut config = LandSharkConfig::new(10.0, SchedulePolicy::Descending)
                .with_attacker(fixed_phantom(vec![0]));
            if let Some(bound) = history {
                config = config.with_history(bound);
            }
            let mut shark = LandShark::new(config);
            for _ in 0..rounds {
                shark.step(&mut rng);
            }
            shark.supervisor().upper_violations() + shark.supervisor().lower_violations()
        };
        let without = run(None);
        let with = run(Some(DynamicsBound::new(3.5)));
        assert!(
            (with as f64) < without as f64 * 0.75,
            "history must cut violations by at least a quarter: {with} vs {without}"
        );
    }

    #[test]
    fn historical_fusion_never_loses_the_truth() {
        let mut rng = rng();
        let config = LandSharkConfig::new(10.0, SchedulePolicy::Descending)
            .with_attacker(AttackerSpec::RandomEachRound)
            .with_history(DynamicsBound::new(3.5));
        let mut shark = LandShark::new(config);
        for _ in 0..400 {
            let rec = shark.step(&mut rng);
            if let Some(fused) = rec.fusion {
                assert!(
                    fused.contains(rec.true_speed),
                    "refined interval {fused} lost the truth {}",
                    rec.true_speed
                );
            }
        }
    }

    #[test]
    fn faulted_vehicle_runs_through_the_engine() {
        // Regression: fault injection used to be rejected closed-loop
        // (`closed-loop scenarios do not support fault injection`); the
        // vehicle now wires faults through the pipeline's own machinery.
        let mut rng = rng();
        let config = LandSharkConfig::new(10.0, SchedulePolicy::Ascending)
            .with_fault(2, FaultModel::new(FaultKind::Bias { offset: 3.0 }, 0.3))
            .with_fault(3, FaultModel::new(FaultKind::Silent, 0.5));
        let mut shark = LandShark::new(config);
        let mut flagged_rounds = 0;
        for _ in 0..300 {
            let rec = shark.step(&mut rng);
            if !rec.flagged.is_empty() {
                flagged_rounds += 1;
            }
        }
        assert_eq!(shark.rounds(), 300);
        assert!(
            flagged_rounds > 0,
            "the biased GPS must get flagged on some rounds"
        );
    }

    #[test]
    fn non_phantom_strategies_drive_the_vehicle() {
        // Regression: every fixed strategy except PhantomOptimal used to
        // be rejected closed-loop.
        for strategy in [
            StrategySpec::GreedyHigh,
            StrategySpec::GreedyLow,
            StrategySpec::Truthful,
        ] {
            let mut rng = rng();
            let config = LandSharkConfig::new(10.0, SchedulePolicy::Descending).with_attacker(
                AttackerSpec::Fixed {
                    sensors: vec![0],
                    strategy,
                },
            );
            let mut shark = LandShark::new(config);
            for _ in 0..200 {
                shark.step(&mut rng);
            }
            assert_eq!(shark.rounds(), 200, "{} stalled", strategy.name());
            assert!(
                (shark.speed() - 10.0).abs() < 2.0,
                "{}: speed {} diverged",
                strategy.name(),
                shark.speed()
            );
        }
    }

    #[test]
    fn any_stock_fuser_drives_the_vehicle() {
        // Regression: fusers other than Marzullo/Historical used to be
        // rejected closed-loop.
        for fuser in [
            FuserSpec::BrooksIyengar,
            FuserSpec::Intersection,
            FuserSpec::Hull,
            FuserSpec::InverseVariance,
            FuserSpec::MidpointMedian,
        ] {
            let mut rng = rng();
            let config = LandSharkConfig::new(10.0, SchedulePolicy::Ascending)
                .with_fuser(fuser.clone())
                .with_attacker(AttackerSpec::RandomEachRound);
            let mut shark = LandShark::new(config);
            for _ in 0..150 {
                shark.step(&mut rng);
            }
            assert_eq!(shark.rounds(), 150, "{} stalled", fuser.name());
            assert_eq!(shark.pipeline().fuser().name(), fuser.name());
        }
    }

    #[test]
    fn historical_fuser_always_propagates_at_the_control_period() {
        // Regression: the vehicle must build its historical fuser from
        // config.dt, not from the spec's own dt — otherwise a spec
        // carrying a foreign period silently shrinks or inflates the
        // dynamics envelope relative to the actual control loop.
        let run = |fuser_dt: f64| {
            let mut rng = rng();
            let config = LandSharkConfig::new(10.0, SchedulePolicy::Descending)
                .with_attacker(AttackerSpec::RandomEachRound)
                .with_fuser(FuserSpec::Historical {
                    max_rate: 3.5,
                    dt: fuser_dt,
                });
            let mut shark = LandShark::new(config);
            (0..100)
                .map(|_| shark.step(&mut rng).fusion)
                .collect::<Vec<_>>()
        };
        assert_eq!(
            run(0.1),
            run(99.0),
            "the spec's dt must be superseded by the control period"
        );
    }

    #[test]
    fn random_attack_selection_varies_by_round() {
        let mut rng = rng();
        let config = LandSharkConfig::new(10.0, SchedulePolicy::Random)
            .with_attacker(AttackerSpec::RandomEachRound);
        let mut shark = LandShark::new(config);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            let rec = shark.step(&mut rng);
            assert_eq!(rec.attacked.len(), 1, "one sensor per round");
            seen.extend(rec.attacked);
        }
        assert!(
            seen.len() >= 3,
            "random selection should cover sensors: {seen:?}"
        );
    }
}
