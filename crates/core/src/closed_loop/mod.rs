//! Closed-loop vehicle simulation: the LandShark case study as a
//! first-class engine workload.
//!
//! The DATE'14 case study evaluates the schedule recommendation *inside
//! the control loop*: a LandShark unmanned ground vehicle holds a speed
//! target while an attacker forges sensor intervals, and a high-level
//! supervisor preempts the low-level controller whenever the fusion
//! interval escapes the safety envelope `[v − δ2, v + δ1]`. This module
//! hosts that loop next to the open-loop [`FusionPipeline`](crate::FusionPipeline)
//! so the declarative [`Scenario`](crate::Scenario) / sweep machinery can
//! drive either one — a grid cell may run a bare fusion pipeline, a
//! single vehicle, or a whole platoon (see
//! [`ClosedLoopSpec`](crate::scenario::ClosedLoopSpec)).
//!
//! * [`vehicle`] — longitudinal point-mass dynamics,
//! * [`controller`] — the low-level PI speed controller,
//! * [`supervisor`] — the fusion-bound safety supervisor (Table II's
//!   violation statistics),
//! * [`landshark`] — one vehicle: suite + persistent fusion engine +
//!   controller + supervisor,
//! * [`platoon`] — the three-LandShark platoon with gap tracking.
//!
//! `arsf-sim` re-exports these modules under their original paths, so
//! `arsf_sim::landshark::LandShark` remains the canonical spelling in
//! simulation-facing code.

pub mod controller;
pub mod landshark;
pub mod platoon;
pub mod supervisor;
pub mod vehicle;
