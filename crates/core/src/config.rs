//! Pipeline configuration.

use arsf_schedule::SchedulePolicy;

/// How the controller reacts to intervals disjoint from the fusion
/// interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum DetectionMode {
    /// No detection at all (ablation baseline).
    Off,
    /// The paper's rule: flag immediately on every violation.
    Immediate,
    /// Footnote 1's temporal model: condemn a sensor only when it
    /// violates more than `tolerance` times within the last `window`
    /// rounds.
    Windowed {
        /// Window length `w` in rounds.
        window: usize,
        /// Tolerated violations per window.
        tolerance: usize,
    },
}

/// Validated pipeline configuration: fusion fault assumption, schedule
/// policy and detection mode.
///
/// # Example
///
/// ```
/// use arsf_core::{DetectionMode, PipelineConfig};
/// use arsf_schedule::SchedulePolicy;
///
/// let cfg = PipelineConfig::new(1, SchedulePolicy::Ascending)
///     .with_detection(DetectionMode::Windowed { window: 10, tolerance: 2 });
/// assert_eq!(cfg.f(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineConfig {
    f: usize,
    schedule: SchedulePolicy,
    detection: DetectionMode,
}

impl PipelineConfig {
    /// Creates a configuration with [`DetectionMode::Immediate`]
    /// detection (the paper's default).
    pub fn new(f: usize, schedule: SchedulePolicy) -> Self {
        Self {
            f,
            schedule,
            detection: DetectionMode::Immediate,
        }
    }

    /// Overrides the detection mode (builder style).
    #[must_use]
    pub fn with_detection(mut self, detection: DetectionMode) -> Self {
        self.detection = detection;
        self
    }

    /// The fusion fault assumption `f`.
    pub fn f(&self) -> usize {
        self.f
    }

    /// The schedule policy.
    pub fn schedule(&self) -> &SchedulePolicy {
        &self.schedule
    }

    /// The detection mode.
    pub fn detection(&self) -> DetectionMode {
        self.detection
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_detection_is_immediate() {
        let cfg = PipelineConfig::new(2, SchedulePolicy::Descending);
        assert_eq!(cfg.detection(), DetectionMode::Immediate);
        assert_eq!(cfg.f(), 2);
        assert_eq!(cfg.schedule().name(), "descending");
    }

    #[test]
    fn detection_override() {
        let cfg = PipelineConfig::new(1, SchedulePolicy::Random)
            .with_detection(DetectionMode::Off);
        assert_eq!(cfg.detection(), DetectionMode::Off);
    }
}
