//! Pipeline configuration.

use arsf_detect::{Detector, DetectorModel, ImmediateDetector, NoDetector, WindowedDetector};
use arsf_schedule::SchedulePolicy;

/// Declarative default for the engine's detector: how the controller
/// reacts to intervals disjoint from the fusion interval.
///
/// The engine itself dispatches through the object-safe
/// [`Detector`] trait; this enum is the *configuration-level* name for
/// the three stock detectors, kept declarative so scenarios serialise
/// naturally. An explicit
/// [`PipelineBuilder::detector`](crate::PipelineBuilder::detector)
/// overrides it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum DetectionMode {
    /// No detection at all (ablation baseline).
    Off,
    /// The paper's rule: flag immediately on every violation.
    Immediate,
    /// Footnote 1's temporal model: condemn a sensor only when it
    /// violates more than `tolerance` times within the last `window`
    /// rounds.
    Windowed {
        /// Window length `w` in rounds.
        window: usize,
        /// Tolerated violations per window.
        tolerance: usize,
    },
}

impl DetectionMode {
    /// Builds the stock [`Detector`] this mode names, for a suite of `n`
    /// sensors.
    pub fn detector(&self, n: usize) -> Box<dyn Detector> {
        match *self {
            DetectionMode::Off => Box::new(NoDetector),
            DetectionMode::Immediate => Box::new(ImmediateDetector),
            DetectionMode::Windowed { window, tolerance } => {
                Box::new(WindowedDetector::new(n, window, tolerance))
            }
        }
    }

    /// The static [`DetectorModel`] of this mode: what the detector it
    /// names can do (flag, condemn, and at what latency), derived from
    /// the configuration values alone — nothing is built.
    pub fn model(&self) -> DetectorModel {
        match *self {
            DetectionMode::Off => DetectorModel::off(),
            DetectionMode::Immediate => DetectorModel::immediate(),
            DetectionMode::Windowed { window, tolerance } => {
                DetectorModel::windowed(window, tolerance)
            }
        }
    }
}

/// Validated pipeline configuration: fusion fault assumption, schedule
/// policy and detection mode.
///
/// # Example
///
/// ```
/// use arsf_core::{DetectionMode, PipelineConfig};
/// use arsf_schedule::SchedulePolicy;
///
/// let cfg = PipelineConfig::new(1, SchedulePolicy::Ascending)
///     .with_detection(DetectionMode::Windowed { window: 10, tolerance: 2 });
/// assert_eq!(cfg.f(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineConfig {
    f: usize,
    schedule: SchedulePolicy,
    detection: DetectionMode,
}

impl PipelineConfig {
    /// Creates a configuration with [`DetectionMode::Immediate`]
    /// detection (the paper's default).
    pub fn new(f: usize, schedule: SchedulePolicy) -> Self {
        Self {
            f,
            schedule,
            detection: DetectionMode::Immediate,
        }
    }

    /// Overrides the detection mode (builder style).
    #[must_use]
    pub fn with_detection(mut self, detection: DetectionMode) -> Self {
        self.detection = detection;
        self
    }

    /// The fusion fault assumption `f`.
    pub fn f(&self) -> usize {
        self.f
    }

    /// The schedule policy.
    pub fn schedule(&self) -> &SchedulePolicy {
        &self.schedule
    }

    /// The detection mode.
    pub fn detection(&self) -> DetectionMode {
        self.detection
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_detection_is_immediate() {
        let cfg = PipelineConfig::new(2, SchedulePolicy::Descending);
        assert_eq!(cfg.detection(), DetectionMode::Immediate);
        assert_eq!(cfg.f(), 2);
        assert_eq!(cfg.schedule().name(), "descending");
    }

    #[test]
    fn detection_override() {
        let cfg = PipelineConfig::new(1, SchedulePolicy::Random).with_detection(DetectionMode::Off);
        assert_eq!(cfg.detection(), DetectionMode::Off);
    }

    #[test]
    fn modes_build_their_detectors() {
        assert_eq!(DetectionMode::Off.detector(4).name(), "off");
        assert_eq!(DetectionMode::Immediate.detector(4).name(), "immediate");
        let windowed = DetectionMode::Windowed {
            window: 5,
            tolerance: 1,
        }
        .detector(4);
        assert_eq!(windowed.name(), "windowed");
    }

    #[test]
    fn modes_expose_their_static_models() {
        assert!(!DetectionMode::Off.model().flags);
        let immediate = DetectionMode::Immediate.model();
        assert!(immediate.flags && !immediate.condemns);
        let windowed = DetectionMode::Windowed {
            window: 10,
            tolerance: 3,
        }
        .model();
        assert_eq!(windowed.window, Some(10));
        assert_eq!(windowed.condemnation_latency(), Some(4));
    }
}
