//! Cell-by-cell comparison of two sweep baselines.
//!
//! [`diff`] aligns two [`Baseline`]s **by grid index**, compares every
//! label column verbatim and every numeric column under per-column
//! absolute/relative [`Tolerance`]s, and collects the result into a
//! [`SweepDiff`] whose [`render`](SweepDiff::render) names each drifted
//! cell's grid index, column, baseline value and new value — so fusion
//! *quality* drift reads like a failing test, not a silent number.
//!
//! Because sweeps are deterministic (byte-identical across thread
//! counts), the default configuration is **exact**: any difference is a
//! drift. Tolerances exist for intentional slack — e.g. accepting a
//! ±0.5 pp wobble in a Monte Carlo violation rate after an unrelated
//! change — and are attached per column via
//! [`DiffConfig::with_column`].
//!
//! # Example
//!
//! ```
//! use arsf_core::scenario::{AttackerSpec, Scenario, StrategySpec, SuiteSpec};
//! use arsf_core::sweep::diff::{diff, DiffConfig};
//! use arsf_core::sweep::store::Baseline;
//! use arsf_core::sweep::SweepGrid;
//!
//! let base = Scenario::new("demo", SuiteSpec::Landshark)
//!     .with_attacker(AttackerSpec::Fixed {
//!         sensors: vec![0],
//!         strategy: StrategySpec::PhantomOptimal,
//!     })
//!     .with_rounds(20);
//! let grid = SweepGrid::new(base).seeds([1, 2]);
//! let baseline = Baseline::from_report(&grid, &grid.run_serial());
//! let report = diff(&baseline, &baseline, &DiffConfig::default());
//! assert!(report.is_empty(), "a report never drifts from itself");
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;

use super::store::{Baseline, CellRecord};

/// An absolute + relative tolerance for one numeric column.
///
/// A pair `(baseline, current)` is within tolerance when
/// `|baseline − current| ≤ abs + rel · max(|baseline|, |current|)`
/// (bit-equal values always pass; a `NaN` on either side never does).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    /// Absolute slack.
    pub abs: f64,
    /// Relative slack, scaled by the larger magnitude.
    pub rel: f64,
}

impl Tolerance {
    /// Zero slack: only bit-equal values pass.
    pub const EXACT: Tolerance = Tolerance { abs: 0.0, rel: 0.0 };

    /// Creates a tolerance.
    ///
    /// # Panics
    ///
    /// Panics unless both components are finite and non-negative.
    pub fn new(abs: f64, rel: f64) -> Self {
        assert!(
            abs.is_finite() && abs >= 0.0 && rel.is_finite() && rel >= 0.0,
            "tolerances must be finite and non-negative"
        );
        Self { abs, rel }
    }

    /// Whether `current` is within tolerance of `baseline`.
    pub fn allows(&self, baseline: f64, current: f64) -> bool {
        if baseline == current {
            return true;
        }
        let diff = (baseline - current).abs();
        diff <= self.abs + self.rel * baseline.abs().max(current.abs())
    }
}

impl Default for Tolerance {
    /// [`Tolerance::EXACT`] — deterministic sweeps should not drift at
    /// all unless an algorithm changed.
    fn default() -> Self {
        Tolerance::EXACT
    }
}

/// Per-column tolerance configuration for [`diff`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DiffConfig {
    default: Tolerance,
    columns: Vec<(String, Tolerance)>,
}

impl DiffConfig {
    /// The configuration the baseline *check* harnesses use: a
    /// `1e-12`/`1e-12` default tolerance instead of exact equality.
    ///
    /// Sweeps are bit-deterministic on one machine, but the sensor
    /// noise path goes through `ln`/`cos`, and libm implementations
    /// differ in the last ulp across platforms — a baseline recorded on
    /// one OS could spuriously "drift" by ~1e-16 elsewhere. The
    /// near-exact floor absorbs that while remaining orders of
    /// magnitude below any real fusion-quality regression.
    pub fn near_exact() -> Self {
        Self::default().with_default(Tolerance::new(1e-12, 1e-12))
    }

    /// Sets the tolerance applied to columns without an explicit entry
    /// (builder style; the initial default is [`Tolerance::EXACT`]).
    #[must_use]
    pub fn with_default(mut self, tolerance: Tolerance) -> Self {
        self.default = tolerance;
        self
    }

    /// Attaches a tolerance to one column (builder style). A vector
    /// column family can be named without its index: `vehicle_mean_widths`
    /// covers `vehicle_mean_widths[0]`, `[1]`, … unless an exact indexed
    /// entry also exists.
    #[must_use]
    pub fn with_column(mut self, column: impl Into<String>, tolerance: Tolerance) -> Self {
        self.columns.push((column.into(), tolerance));
        self
    }

    /// The per-column entries attached via [`DiffConfig::with_column`],
    /// in insertion order — static analyses use this to flag tolerance
    /// entries that match no column of a baseline.
    pub fn column_entries(&self) -> &[(String, Tolerance)] {
        &self.columns
    }

    /// The tolerance in force for a column: the exact entry if present,
    /// else the family entry (name with any `[index]` suffix stripped),
    /// else the default.
    pub fn tolerance_for(&self, column: &str) -> Tolerance {
        let lookup = |name: &str| {
            self.columns
                .iter()
                .find(|(c, _)| c == name)
                .map(|(_, t)| *t)
        };
        lookup(column)
            .or_else(|| {
                column
                    .split_once('[')
                    .and_then(|(family, _)| lookup(family))
            })
            .unwrap_or(self.default)
    }
}

/// One observed difference between two baselines.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Drift {
    /// The grid definitions (and therefore content addresses) differ:
    /// the two reports do not describe the same experiment.
    Definition {
        /// The baseline's content address.
        baseline: String,
        /// The current report's content address.
        current: String,
    },
    /// A cell present in the baseline is absent from the current report.
    MissingCell {
        /// The missing cell's grid index.
        cell: u64,
    },
    /// A cell absent from the baseline appeared in the current report.
    ExtraCell {
        /// The new cell's grid index.
        cell: u64,
    },
    /// One aligned cell's column sets differ (a column was added or
    /// removed — e.g. a platoon axis changed the vehicle count).
    Columns {
        /// The cell's grid index.
        cell: u64,
        /// Columns only the baseline has.
        missing: Vec<String>,
        /// Columns only the current report has.
        extra: Vec<String>,
    },
    /// A label column (axis coordinate, seed, condemned set) changed.
    Label {
        /// The cell's grid index.
        cell: u64,
        /// The column name.
        column: String,
        /// The baseline's value.
        baseline: String,
        /// The current report's value.
        current: String,
    },
    /// A numeric column drifted beyond its tolerance.
    Value {
        /// The cell's grid index.
        cell: u64,
        /// The column name.
        column: String,
        /// The baseline's value (`None` = null).
        baseline: Option<f64>,
        /// The current report's value (`None` = null).
        current: Option<f64>,
    },
}

fn render_value(value: Option<f64>) -> String {
    value.map_or("null".to_string(), |v| format!("{v}"))
}

impl Drift {
    /// One human-readable line describing the drift.
    pub fn render(&self) -> String {
        match self {
            Drift::Definition { baseline, current } => {
                format!("grid definition changed: baseline address {baseline} != current {current}")
            }
            Drift::MissingCell { cell } => {
                format!("cell {cell}: present in baseline, missing from current report")
            }
            Drift::ExtraCell { cell } => {
                format!("cell {cell}: absent from baseline, present in current report")
            }
            Drift::Columns {
                cell,
                missing,
                extra,
            } => format!(
                "cell {cell}: column set changed (removed: [{}], added: [{}])",
                missing.join(", "),
                extra.join(", ")
            ),
            Drift::Label {
                cell,
                column,
                baseline,
                current,
            } => format!("cell {cell} `{column}`: baseline `{baseline}` -> current `{current}`"),
            Drift::Value {
                cell,
                column,
                baseline,
                current,
            } => {
                let detail = match (baseline, current) {
                    (Some(b), Some(c)) => {
                        let abs = (b - c).abs();
                        let scale = b.abs().max(c.abs());
                        if scale > 0.0 {
                            format!(" (|Δ| {abs}, rel {})", abs / scale)
                        } else {
                            format!(" (|Δ| {abs})")
                        }
                    }
                    _ => String::new(),
                };
                format!(
                    "cell {cell} `{column}`: baseline {} -> current {}{detail}",
                    render_value(*baseline),
                    render_value(*current)
                )
            }
        }
    }
}

/// The outcome of diffing two baselines: the drifts found plus the
/// comparison counts the summary line reports.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepDiff {
    drifts: Vec<Drift>,
    cells_compared: usize,
    comparisons: usize,
}

impl SweepDiff {
    /// Whether nothing drifted.
    pub fn is_empty(&self) -> bool {
        self.drifts.is_empty()
    }

    /// Number of drifts.
    pub fn len(&self) -> usize {
        self.drifts.len()
    }

    /// The drifts, in cell order.
    pub fn drifts(&self) -> &[Drift] {
        &self.drifts
    }

    /// Cells aligned and compared on both sides.
    pub fn cells_compared(&self) -> usize {
        self.cells_compared
    }

    /// Individual column comparisons performed.
    pub fn comparisons(&self) -> usize {
        self.comparisons
    }

    /// A human-readable multi-line report: one summary line, then one
    /// line per drift naming the cell's grid index, the column, and the
    /// before/after values.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.is_empty() {
            let _ = writeln!(
                out,
                "ok: no drift across {} cell(s) ({} comparisons)",
                self.cells_compared, self.comparisons
            );
        } else {
            let _ = writeln!(
                out,
                "DRIFT: {} difference(s) across {} compared cell(s) ({} comparisons)",
                self.drifts.len(),
                self.cells_compared,
                self.comparisons
            );
            for drift in &self.drifts {
                let _ = writeln!(out, "  {}", drift.render());
            }
        }
        out
    }
}

/// Compares `current` against `baseline` cell by cell.
///
/// Rows are aligned by grid index; every label column is compared
/// verbatim, every numeric column under `config`'s tolerance for it.
/// Definition/address mismatches, missing/extra cells and column-set
/// changes are reported as their own [`Drift`] variants rather than
/// failing the whole comparison, so one report tells the full story.
pub fn diff(baseline: &Baseline, current: &Baseline, config: &DiffConfig) -> SweepDiff {
    let mut result = SweepDiff {
        drifts: Vec::new(),
        cells_compared: 0,
        comparisons: 0,
    };
    if baseline.address != current.address || baseline.definition != current.definition {
        result.drifts.push(Drift::Definition {
            baseline: baseline.address.clone(),
            current: current.address.clone(),
        });
    }
    let current_by_cell: BTreeMap<u64, &CellRecord> =
        current.rows.iter().map(|row| (row.cell, row)).collect();
    let baseline_by_cell: BTreeMap<u64, &CellRecord> =
        baseline.rows.iter().map(|row| (row.cell, row)).collect();
    for (cell, base_row) in &baseline_by_cell {
        match current_by_cell.get(cell) {
            None => result.drifts.push(Drift::MissingCell { cell: *cell }),
            Some(cur_row) => {
                result.cells_compared += 1;
                diff_cell(base_row, cur_row, config, &mut result);
            }
        }
    }
    for cell in current_by_cell.keys() {
        if !baseline_by_cell.contains_key(cell) {
            result.drifts.push(Drift::ExtraCell { cell: *cell });
        }
    }
    result
}

fn diff_cell(
    baseline: &CellRecord,
    current: &CellRecord,
    config: &DiffConfig,
    out: &mut SweepDiff,
) {
    let mut missing: Vec<String> = Vec::new();
    let mut extra: Vec<String> = Vec::new();
    for (column, base_value) in &baseline.labels {
        match current.label(column) {
            None => missing.push(column.clone()),
            Some(cur_value) => {
                out.comparisons += 1;
                if base_value != cur_value {
                    out.drifts.push(Drift::Label {
                        cell: baseline.cell,
                        column: column.clone(),
                        baseline: base_value.clone(),
                        current: cur_value.to_string(),
                    });
                }
            }
        }
    }
    for (column, _) in &current.labels {
        if baseline.label(column).is_none() {
            extra.push(column.clone());
        }
    }
    for (column, base_value) in &baseline.metrics {
        match current.metric(column) {
            None => missing.push(column.clone()),
            Some(cur_value) => {
                out.comparisons += 1;
                let within = match (base_value, cur_value) {
                    (None, None) => true,
                    (Some(b), Some(c)) => config.tolerance_for(column).allows(*b, c),
                    _ => false,
                };
                if !within {
                    out.drifts.push(Drift::Value {
                        cell: baseline.cell,
                        column: column.clone(),
                        baseline: *base_value,
                        current: cur_value,
                    });
                }
            }
        }
    }
    for (column, _) in &current.metrics {
        if baseline.metric(column).is_none() {
            extra.push(column.clone());
        }
    }
    if !missing.is_empty() || !extra.is_empty() {
        out.drifts.push(Drift::Columns {
            cell: baseline.cell,
            missing,
            extra,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::super::SweepGrid;
    use super::*;
    use crate::scenario::{AttackerSpec, Scenario, StrategySpec, SuiteSpec};
    use arsf_schedule::SchedulePolicy;

    fn grid(rounds: u64) -> SweepGrid {
        let base = Scenario::new("diff", SuiteSpec::Landshark)
            .with_attacker(AttackerSpec::Fixed {
                sensors: vec![0],
                strategy: StrategySpec::PhantomOptimal,
            })
            .with_rounds(rounds);
        SweepGrid::new(base)
            .schedules([SchedulePolicy::Ascending, SchedulePolicy::Descending])
            .seeds([2014, 99])
    }

    fn baseline(rounds: u64) -> Baseline {
        let g = grid(rounds);
        Baseline::from_report(&g, &g.run_serial())
    }

    #[test]
    fn tolerance_math_is_symmetric_and_nan_safe() {
        let exact = Tolerance::EXACT;
        assert!(exact.allows(1.5, 1.5));
        assert!(!exact.allows(1.5, 1.5 + 1e-12));
        assert!(exact.allows(0.0, -0.0), "signed zeros compare equal");
        assert!(!exact.allows(f64::NAN, f64::NAN), "NaN never passes");
        let abs = Tolerance::new(0.1, 0.0);
        assert!(abs.allows(1.0, 1.05) && abs.allows(1.05, 1.0));
        assert!(!abs.allows(1.0, 1.2));
        let rel = Tolerance::new(0.0, 0.1);
        assert!(rel.allows(100.0, 109.0) && rel.allows(109.0, 100.0));
        assert!(!rel.allows(100.0, 115.0));
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_tolerance_panics() {
        let _ = Tolerance::new(-0.1, 0.0);
    }

    #[test]
    fn near_exact_absorbs_last_ulp_noise_but_not_regressions() {
        let config = DiffConfig::near_exact();
        let tol = config.tolerance_for("mean_width");
        // A last-ulp libm difference on a ~0.25 mean width passes…
        assert!(tol.allows(0.25, 0.25 + f64::EPSILON));
        // …while anything resembling a real quality drift fails.
        assert!(!tol.allows(0.25, 0.2500001));
        assert!(!tol.allows(0.0, 1e-9), "zeros stay effectively exact");
    }

    #[test]
    fn config_resolves_exact_family_then_default() {
        let config = DiffConfig::default()
            .with_default(Tolerance::new(1.0, 0.0))
            .with_column("mean_width", Tolerance::new(0.5, 0.0))
            .with_column("vehicle_mean_widths", Tolerance::new(0.25, 0.0))
            .with_column("vehicle_mean_widths[1]", Tolerance::new(0.125, 0.0));
        assert_eq!(config.tolerance_for("mean_width").abs, 0.5);
        assert_eq!(config.tolerance_for("vehicle_mean_widths[0]").abs, 0.25);
        assert_eq!(config.tolerance_for("vehicle_mean_widths[1]").abs, 0.125);
        assert_eq!(config.tolerance_for("max_width").abs, 1.0);
    }

    #[test]
    fn identical_baselines_never_drift() {
        let a = baseline(30);
        let result = diff(&a, &a.clone(), &DiffConfig::default());
        assert!(result.is_empty(), "{}", result.render());
        assert_eq!(result.cells_compared(), 4);
        assert!(result.comparisons() > 4 * 10);
        assert!(result.render().starts_with("ok: no drift across 4 cell(s)"));
    }

    #[test]
    fn value_drift_names_cell_column_and_both_values() {
        let a = baseline(30);
        let mut b = a.clone();
        let old = b.rows[2].metrics[0].1.unwrap(); // mean_width
        b.rows[2].metrics[0].1 = Some(old + 1.0);
        let result = diff(&a, &b, &DiffConfig::default());
        assert_eq!(result.len(), 1);
        match &result.drifts()[0] {
            Drift::Value {
                cell,
                column,
                baseline,
                current,
            } => {
                assert_eq!(*cell, 2);
                assert_eq!(column, "mean_width");
                assert_eq!(*baseline, Some(old));
                assert_eq!(*current, Some(old + 1.0));
            }
            other => panic!("expected a value drift, got {other:?}"),
        }
        let rendered = result.render();
        assert!(rendered.contains("cell 2 `mean_width`"), "{rendered}");
        assert!(rendered.contains(&format!("baseline {old}")), "{rendered}");
        assert!(
            rendered.contains(&format!("current {}", old + 1.0)),
            "{rendered}"
        );
        // A tolerance covering the nudge silences it.
        let lax = DiffConfig::default().with_column("mean_width", Tolerance::new(2.0, 0.0));
        assert!(diff(&a, &b, &lax).is_empty());
    }

    #[test]
    fn label_and_address_drifts_are_reported() {
        let a = baseline(30);
        // A different grid: rounds axis changed => address + labels move.
        let b = baseline(31);
        let result = diff(&a, &b, &DiffConfig::default());
        assert!(!result.is_empty());
        assert!(matches!(result.drifts()[0], Drift::Definition { .. }));
        assert!(result
            .drifts()
            .iter()
            .any(|d| matches!(d, Drift::Label { column, .. } if column == "rounds")));
        let rendered = result.render();
        assert!(rendered.starts_with("DRIFT:"), "{rendered}");
        assert!(rendered.contains("grid definition changed"), "{rendered}");
    }

    #[test]
    fn missing_and_extra_cells_are_reported() {
        let a = baseline(30);
        let mut b = a.clone();
        let mut moved = b.rows.remove(3);
        moved.cell = 9;
        b.rows.push(moved);
        let result = diff(&a, &b, &DiffConfig::default());
        assert!(result
            .drifts()
            .iter()
            .any(|d| matches!(d, Drift::MissingCell { cell: 3 })));
        assert!(result
            .drifts()
            .iter()
            .any(|d| matches!(d, Drift::ExtraCell { cell: 9 })));
        assert_eq!(result.cells_compared(), 3);
    }

    #[test]
    fn column_set_changes_are_reported_not_crashed_on() {
        let a = baseline(30);
        let mut b = a.clone();
        b.rows[1]
            .metrics
            .push(("vehicle_mean_widths[0]".to_string(), Some(1.0)));
        b.rows[1].metrics.retain(|(name, _)| name != "min_gap");
        let result = diff(&a, &b, &DiffConfig::default());
        assert_eq!(result.len(), 1);
        match &result.drifts()[0] {
            Drift::Columns {
                cell,
                missing,
                extra,
            } => {
                assert_eq!(*cell, 1);
                assert_eq!(missing, &["min_gap".to_string()]);
                assert_eq!(extra, &["vehicle_mean_widths[0]".to_string()]);
            }
            other => panic!("expected a column-set drift, got {other:?}"),
        }
    }

    #[test]
    fn null_versus_value_is_a_drift() {
        let a = baseline(30);
        let mut b = a.clone();
        let slot = b.rows[0]
            .metrics
            .iter_mut()
            .find(|(name, _)| name == "above_rate")
            .unwrap();
        assert_eq!(slot.1, None, "open-loop rows carry null supervisor columns");
        slot.1 = Some(0.25);
        let result = diff(&a, &b, &DiffConfig::default());
        assert_eq!(result.len(), 1);
        assert!(result.render().contains("baseline null -> current 0.25"));
    }
}
