//! Streaming sweep execution: rows are handed to the caller in grid
//! order as cells finish, with a bounded reorder window instead of a
//! whole-report buffer.
//!
//! [`super::ParallelSweeper`] materialises every row before returning,
//! which caps grid size at available memory and hides all progress
//! until the end. [`StreamingSweeper`] runs the same cells with the
//! same per-cell derived seeds — so its output is byte-identical — but
//! emits each [`SweepRow`] through a caller-supplied sink the moment
//! the in-order prefix is complete.
//!
//! Ordering with bounded memory: workers claim cell indices from a
//! shared counter, but a permit gate caps how many cells may be
//! claimed-and-unemitted at once (the *window*). Finished rows land in
//! a reorder buffer keyed by cell index; the consumer emits the
//! contiguous prefix and releases one permit per emitted row. A slow
//! cell therefore stalls claims after at most `window` rows pile up
//! behind it — the buffer never grows past the window, whatever the
//! thread interleaving.

use std::collections::BTreeMap;
use std::io;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Condvar, Mutex};
use std::thread;

use super::{run_cell, SweepCell, SweepGrid, SweepReport, SweepRow};
use crate::RoundOutcome;

/// Counting-semaphore gate over claimable cells. `close` wakes every
/// blocked worker so an early sink error (or consumer exit) never
/// leaves a thread parked forever.
struct Gate {
    state: Mutex<GateState>,
    cv: Condvar,
}

struct GateState {
    available: usize,
    closed: bool,
}

impl Gate {
    fn new(permits: usize) -> Self {
        Gate {
            state: Mutex::new(GateState {
                available: permits,
                closed: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Blocks until a permit is available; `false` means the gate was
    /// closed and the caller should stop claiming work.
    fn acquire(&self) -> bool {
        let mut state = self.state.lock().unwrap();
        while state.available == 0 && !state.closed {
            state = self.cv.wait(state).unwrap();
        }
        if state.closed {
            return false;
        }
        state.available -= 1;
        true
    }

    fn release(&self) {
        let mut state = self.state.lock().unwrap();
        state.available += 1;
        drop(state);
        self.cv.notify_one();
    }

    fn close(&self) {
        let mut state = self.state.lock().unwrap();
        state.closed = true;
        drop(state);
        self.cv.notify_all();
    }
}

/// Multi-threaded sweep executor that delivers rows in grid order as
/// they complete, holding at most a bounded window of finished rows in
/// memory. Same work partitioning guarantees as
/// [`super::ParallelSweeper`]: per-cell seeds come from the grid, so
/// the emitted rows are byte-identical to a serial run's.
#[derive(Debug, Clone)]
pub struct StreamingSweeper {
    threads: usize,
    window: usize,
}

impl StreamingSweeper {
    /// A sweeper with `threads` workers and a default reorder window of
    /// `threads * 8` cells. Panics if `threads` is zero.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "a sweep needs at least one thread");
        StreamingSweeper {
            threads,
            window: threads * 8,
        }
    }

    /// Overrides the reorder window: the maximum number of cells that
    /// may be claimed but not yet emitted. A window of 1 degenerates to
    /// strictly serial claiming; larger windows let fast cells run
    /// ahead of a slow one. Values below 1 are clamped to 1.
    pub fn with_window(mut self, window: usize) -> Self {
        self.window = window.max(1);
        self
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Streams the whole grid through `sink` in grid order.
    pub fn stream<E>(
        &self,
        grid: &SweepGrid,
        sink: impl FnMut(SweepRow) -> Result<(), E>,
    ) -> Result<(), E> {
        self.try_stream_range(grid, 0..grid.len(), sink)
    }

    /// Streams a contiguous cell range through `sink` in grid order.
    /// Panics if `range.end` exceeds the grid length (matching
    /// [`super::ParallelSweeper::run_range`]).
    pub fn stream_range(
        &self,
        grid: &SweepGrid,
        range: Range<usize>,
        mut sink: impl FnMut(SweepRow),
    ) {
        let result: Result<(), std::convert::Infallible> =
            self.try_stream_range(grid, range, |row| {
                sink(row);
                Ok(())
            });
        // Infallible: the sink cannot fail.
        result.unwrap_or_default();
    }

    /// Streams a contiguous cell range through a fallible `sink` in grid
    /// order. An `Err` stops claiming new cells promptly (in-flight
    /// cells finish and are discarded) and is returned to the caller.
    /// Panics if `range.end` exceeds the grid length.
    pub fn try_stream_range<E>(
        &self,
        grid: &SweepGrid,
        range: Range<usize>,
        mut sink: impl FnMut(SweepRow) -> Result<(), E>,
    ) -> Result<(), E> {
        assert!(
            range.end <= grid.len(),
            "cell range {}..{} exceeds the grid's {} cells",
            range.start,
            range.end,
            grid.len()
        );
        let start = range.start;
        let n = range.len();
        if n == 0 {
            return Ok(());
        }

        if self.threads.min(n) <= 1 {
            // Serial fast path: cells already finish in grid order.
            let mut buffer = RoundOutcome::default();
            for index in range {
                let cell = SweepCell {
                    index,
                    scenario: grid.scenario(index),
                };
                sink(run_cell(cell, &mut buffer))?;
            }
            return Ok(());
        }

        let gate = Gate::new(self.window.max(1));
        let next = AtomicUsize::new(0);
        let stop = AtomicBool::new(false);
        let (tx, rx) = mpsc::channel::<SweepRow>();
        let mut result: Result<(), E> = Ok(());

        thread::scope(|scope| {
            for _ in 0..self.threads.min(n) {
                let tx = tx.clone();
                let gate = &gate;
                let next = &next;
                let stop = &stop;
                scope.spawn(move || {
                    let mut buffer = RoundOutcome::default();
                    loop {
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        if !gate.acquire() {
                            break;
                        }
                        let offset = next.fetch_add(1, Ordering::Relaxed);
                        if offset >= n {
                            // Hand the permit back before leaving, or a
                            // peer blocked in acquire would never wake.
                            gate.release();
                            break;
                        }
                        let index = start + offset;
                        let cell = SweepCell {
                            index,
                            scenario: grid.scenario(index),
                        };
                        let row = run_cell(cell, &mut buffer);
                        if tx.send(row).is_err() {
                            break;
                        }
                    }
                });
            }
            // Only workers hold senders now, so `rx` disconnects once
            // they all finish.
            drop(tx);

            let mut pending: BTreeMap<usize, SweepRow> = BTreeMap::new();
            let mut emit_next = 0usize;
            while emit_next < n {
                let Ok(row) = rx.recv() else {
                    // Workers are gone with rows outstanding: only
                    // possible after an error already stopped the run.
                    break;
                };
                pending.insert(row.cell - start, row);
                let mut failed = false;
                while let Some(row) = pending.remove(&emit_next) {
                    emit_next += 1;
                    gate.release();
                    if let Err(e) = sink(row) {
                        result = Err(e);
                        failed = true;
                        break;
                    }
                }
                if failed {
                    break;
                }
            }
            // Normal completion and early error alike: unpark any
            // still-blocked workers so the scope can join.
            stop.store(true, Ordering::Relaxed);
            gate.close();
            // Drain so no worker blocks on a full... (channel is
            // unbounded, but be explicit about discarding late rows).
            while rx.try_recv().is_ok() {}
        });

        result
    }

    /// Runs the whole grid, collecting the stream into a report —
    /// byte-identical to [`super::ParallelSweeper::run`].
    pub fn run(&self, grid: &SweepGrid) -> SweepReport {
        self.run_range(grid, 0..grid.len())
    }

    /// Runs a contiguous cell range, collecting the stream into a
    /// report. Panics if `range.end` exceeds the grid length.
    pub fn run_range(&self, grid: &SweepGrid, range: Range<usize>) -> SweepReport {
        let mut rows = Vec::with_capacity(range.len());
        self.stream_range(grid, range, |row| rows.push(row));
        SweepReport { rows }
    }

    /// Streams a range as CSV straight into a writer: optional header,
    /// then one [`SweepRow::to_csv_line`] per cell in grid order. The
    /// bytes match [`SweepReport::to_csv`]/`to_csv_body` exactly, but
    /// no report is ever materialised.
    pub fn write_csv<W: io::Write>(
        &self,
        grid: &SweepGrid,
        range: Range<usize>,
        header: bool,
        out: &mut W,
    ) -> io::Result<()> {
        if header {
            out.write_all(SweepReport::csv_header().as_bytes())?;
        }
        self.try_stream_range(grid, range, |row| {
            out.write_all(row.to_csv_line().as_bytes())?;
            out.write_all(b"\n")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{AttackerSpec, FuserSpec, Scenario, StrategySpec, SuiteSpec};
    use crate::sweep::ParallelSweeper;
    use crate::DetectionMode;
    use arsf_schedule::SchedulePolicy;

    fn grid() -> SweepGrid {
        // 2 fusers × 2 detectors × 2 schedules × 2 seeds = 16 cells.
        let base = Scenario::new("stream", SuiteSpec::Landshark)
            .with_attacker(AttackerSpec::Fixed {
                sensors: vec![0],
                strategy: StrategySpec::PhantomOptimal,
            })
            .with_rounds(40);
        SweepGrid::new(base)
            .fusers([FuserSpec::Marzullo, FuserSpec::BrooksIyengar])
            .detectors([DetectionMode::Off, DetectionMode::Immediate])
            .schedules([SchedulePolicy::Ascending, SchedulePolicy::Descending])
            .seeds([2014, 99])
    }

    #[test]
    fn streaming_run_matches_parallel_run_for_all_shapes() {
        let grid = grid();
        let reference = ParallelSweeper::new(2).run(&grid);
        for threads in [1, 2, 3, 8] {
            for window in [1, 2, 8] {
                let streamed = StreamingSweeper::new(threads)
                    .with_window(window)
                    .run(&grid);
                assert_eq!(
                    streamed.to_csv(),
                    reference.to_csv(),
                    "threads={threads} window={window}"
                );
            }
        }
    }

    #[test]
    fn rows_arrive_in_grid_order() {
        let grid = grid();
        let mut seen = Vec::new();
        StreamingSweeper::new(4)
            .with_window(2)
            .stream_range(&grid, 0..grid.len(), |row| seen.push(row.cell));
        let expected: Vec<usize> = (0..grid.len()).collect();
        assert_eq!(seen, expected);
    }

    #[test]
    fn shard_ranges_concatenate_into_the_full_report() {
        let grid = grid();
        let full = ParallelSweeper::new(2).run(&grid).to_csv_body();
        let sweeper = StreamingSweeper::new(3);
        let mut joined = String::new();
        let n = grid.len();
        for range in [0..5, 5..6, 6..6, 6..n] {
            joined.push_str(&sweeper.run_range(&grid, range).to_csv_body());
        }
        assert_eq!(joined, full);
    }

    #[test]
    fn write_csv_matches_to_csv() {
        let grid = grid();
        let expected = ParallelSweeper::new(2).run(&grid).to_csv();
        let mut out = Vec::new();
        StreamingSweeper::new(3)
            .write_csv(&grid, 0..grid.len(), true, &mut out)
            .expect("vec write succeeds");
        assert_eq!(String::from_utf8(out).unwrap(), expected);
    }

    #[test]
    fn sink_error_stops_the_stream_without_deadlock() {
        let grid = grid();
        let mut delivered = 0usize;
        let result: Result<(), &str> =
            StreamingSweeper::new(4)
                .with_window(1)
                .try_stream_range(&grid, 0..grid.len(), |row| {
                    if row.cell >= 3 {
                        return Err("sink full");
                    }
                    delivered += 1;
                    Ok(())
                });
        assert_eq!(result, Err("sink full"));
        assert_eq!(delivered, 3, "exactly the pre-error prefix was delivered");
    }

    #[test]
    #[should_panic(expected = "exceeds the grid")]
    fn out_of_bounds_range_panics_like_parallel_sweeper() {
        let grid = grid();
        StreamingSweeper::new(2).run_range(&grid, 0..grid.len() + 1);
    }
}
