//! Content-addressed persistence of sweep reports.
//!
//! The paper's guarantees are quantitative — fused-interval widths,
//! Table II violation rates — so a regression in fusion *quality* is
//! invisible to ordinary unit tests even though every sweep cell is
//! deterministically reproducible. This module turns a [`SweepReport`]
//! into a **baseline** that future runs are diffed against (see
//! [`diff`](super::diff)):
//!
//! * [`canonical_definition`] — a stable, versioned textual form of a
//!   [`SweepGrid`]'s *semantic* content: every axis, the base scenario's
//!   fault assumption, truth trajectory and closed-loop spec. Formatting
//!   details that do not change what the grid computes (the base
//!   scenario's *name*) are deliberately excluded, so renaming a grid
//!   does not orphan its baseline.
//! * [`content_address`] / [`grid_address`] — the FNV-1a hash of that
//!   canonical form, rendered as 16 hex digits. Equal grids hash equal;
//!   touching any axis produces a new address and therefore a *new*
//!   baseline file instead of silently overwriting the old one.
//! * [`Baseline`] — the address, the definition and one flattened
//!   [`CellRecord`] per grid cell, saved as `baselines/<address>.json`
//!   ([`Baseline::save`]) and loaded back without any external JSON
//!   dependency ([`Baseline::load`]).
//!
//! # Example
//!
//! ```
//! use arsf_core::scenario::{AttackerSpec, Scenario, StrategySpec, SuiteSpec};
//! use arsf_core::sweep::store::{grid_address, Baseline};
//! use arsf_core::sweep::SweepGrid;
//!
//! let base = Scenario::new("demo", SuiteSpec::Landshark)
//!     .with_attacker(AttackerSpec::Fixed {
//!         sensors: vec![0],
//!         strategy: StrategySpec::PhantomOptimal,
//!     })
//!     .with_rounds(30);
//! let grid = SweepGrid::new(base).seeds([1, 2]);
//! let baseline = Baseline::from_report(&grid, &grid.run_serial());
//! assert_eq!(baseline.address, grid_address(&grid));
//! let reloaded = Baseline::from_json(&baseline.to_json()).unwrap();
//! assert_eq!(baseline, reloaded);
//! ```

use std::fmt;
use std::path::{Path, PathBuf};

use crate::scenario::{ClosedLoopSpec, FuserSpec, TruthSpec};
use crate::DetectionMode;

use super::{json_string, SweepGrid, SweepReport, SweepRow};

/// The format tag written into every baseline file; bumped whenever the
/// stored shape changes incompatibly.
pub const FORMAT: &str = "arsf-baseline-v1";

/// A compact, canonical label for a fuser axis entry — unlike
/// [`FuserSpec::name`] it carries the parameters, so two historical
/// fusers with different rate bounds hash differently.
pub fn fuser_label(spec: &FuserSpec) -> String {
    match spec {
        FuserSpec::Historical { max_rate, dt } => format!("historical({max_rate},{dt})"),
        other => other.name().to_string(),
    }
}

/// A compact, canonical label for a detector axis entry (parameters
/// included, same reasoning as [`fuser_label`]).
pub fn detector_label(mode: &DetectionMode) -> String {
    match mode {
        DetectionMode::Off => "off".to_string(),
        DetectionMode::Immediate => "immediate".to_string(),
        DetectionMode::Windowed { window, tolerance } => format!("windowed({window},{tolerance})"),
    }
}

fn truth_label(truth: &TruthSpec) -> String {
    match truth {
        TruthSpec::Constant(v) => format!("constant({v})"),
        TruthSpec::Ramp {
            start,
            rate_per_round,
        } => format!("ramp({start},{rate_per_round})"),
    }
}

fn closed_loop_label(spec: &Option<ClosedLoopSpec>) -> String {
    match spec {
        None => "none".to_string(),
        Some(cl) => {
            let platoon = match cl.platoon {
                None => "none".to_string(),
                Some(p) => format!("{}x{}", p.size, p.gap_miles),
            };
            format!(
                "target:{},up:{},down:{},platoon:{}",
                cl.target_speed, cl.delta_up, cl.delta_down, platoon
            )
        }
    }
}

/// Renders the grid's semantic content — every axis plus the base
/// scenario's fault assumption `f`, truth trajectory and closed-loop
/// spec — in a stable, versioned textual form.
///
/// The base scenario's *name* is deliberately excluded: it changes what
/// the report rows are called, not what they compute, so renaming a grid
/// keeps its content address. Everything that feeds a cell's execution
/// is included, so changing any axis value changes the definition (and
/// the [`content_address`]).
pub fn canonical_definition(grid: &SweepGrid) -> String {
    fn join<I: IntoIterator<Item = String>>(values: I) -> String {
        values.into_iter().collect::<Vec<_>>().join(";")
    }
    let base = &grid.base;
    let mut out = String::new();
    out.push_str("arsf-sweep-grid v1\n");
    out.push_str(&format!("f={}\n", base.f));
    out.push_str(&format!("truth={}\n", truth_label(&base.truth)));
    out.push_str(&format!(
        "closed_loop={}\n",
        closed_loop_label(&base.closed_loop)
    ));
    out.push_str(&format!(
        "suites={}\n",
        join(grid.suites.iter().map(|s| s.label()))
    ));
    out.push_str(&format!(
        "fault_sets={}\n",
        join(
            grid.fault_sets
                .iter()
                .map(|f| crate::scenario::faults_label(f))
        )
    ));
    out.push_str(&format!(
        "attackers={}\n",
        join(grid.attackers.iter().map(|a| a.label()))
    ));
    out.push_str(&format!(
        "schedules={}\n",
        join(grid.schedules.iter().map(|s| s.name().to_string()))
    ));
    out.push_str(&format!(
        "fusers={}\n",
        join(grid.fusers.iter().map(fuser_label))
    ));
    out.push_str(&format!(
        "detectors={}\n",
        join(grid.detectors.iter().map(detector_label))
    ));
    out.push_str(&format!(
        "rounds={}\n",
        join(grid.rounds.iter().map(|r| r.to_string()))
    ));
    out.push_str(&format!(
        "seeds={}\n",
        join(grid.seeds.iter().map(|s| s.to_string()))
    ));
    out
}

/// Hashes a canonical definition into its content address (FNV-1a 64,
/// 16 lowercase hex digits).
pub fn content_address(definition: &str) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in definition.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{hash:016x}")
}

/// The content address of a grid: `content_address(canonical_definition(grid))`.
pub fn grid_address(grid: &SweepGrid) -> String {
    content_address(&canonical_definition(grid))
}

/// The file a grid's baseline lives at inside a baseline directory:
/// `<dir>/<address>.json`.
pub fn baseline_path(dir: impl AsRef<Path>, address: &str) -> PathBuf {
    dir.as_ref().join(format!("{address}.json"))
}

/// One sweep row, flattened for comparison: exact textual *labels*
/// (axis coordinates plus the integer columns, compared verbatim) and
/// numeric *metrics* (compared under [`diff`](super::diff) tolerances).
///
/// Per-vehicle platoon vectors are expanded into indexed columns
/// (`vehicle_mean_widths[0]`, …) so every scalar has its own name in a
/// drift report.
#[derive(Debug, Clone, PartialEq)]
pub struct CellRecord {
    /// The cell's position in grid order — the alignment key for diffs.
    pub cell: u64,
    /// Exact-match columns: suite, faults, attacker, schedule, fuser,
    /// detector, rounds, seed, condemned.
    pub labels: Vec<(String, String)>,
    /// Numeric columns under tolerance: widths, counters, rates, the
    /// supervisor columns (absent open-loop → `None`) and the expanded
    /// per-vehicle vectors.
    pub metrics: Vec<(String, Option<f64>)>,
}

impl CellRecord {
    /// Flattens one report row.
    pub fn from_row(row: &SweepRow) -> Self {
        let s = &row.summary;
        let condemned: Vec<String> = s.condemned.iter().map(|c| c.to_string()).collect();
        let labels = vec![
            ("suite".to_string(), row.suite.clone()),
            ("faults".to_string(), row.faults.clone()),
            ("attacker".to_string(), row.attacker.clone()),
            ("schedule".to_string(), row.schedule.clone()),
            ("fuser".to_string(), s.fuser.clone()),
            ("detector".to_string(), s.detector.clone()),
            ("rounds".to_string(), row.rounds.to_string()),
            ("seed".to_string(), row.seed.to_string()),
            ("condemned".to_string(), condemned.join("|")),
        ];
        let sup = s.supervisor.as_ref();
        let mut metrics = vec![
            ("mean_width".to_string(), Some(s.widths.mean())),
            ("min_width".to_string(), s.widths.min()),
            ("max_width".to_string(), s.widths.max()),
            ("truth_lost".to_string(), Some(s.truth_lost as f64)),
            ("truth_loss_rate".to_string(), Some(s.truth_loss_rate())),
            (
                "fusion_failures".to_string(),
                Some(s.fusion_failures as f64),
            ),
            ("flagged_rounds".to_string(), Some(s.flagged_rounds as f64)),
            ("above_rate".to_string(), sup.map(|v| v.above_rate)),
            ("below_rate".to_string(), sup.map(|v| v.below_rate)),
            ("preemptions".to_string(), sup.map(|v| v.preemptions as f64)),
            ("min_gap".to_string(), sup.and_then(|v| v.min_gap)),
        ];
        for (i, vehicle) in s.vehicles.iter().enumerate() {
            metrics.push((
                format!("vehicle_mean_widths[{i}]"),
                Some(vehicle.widths.mean()),
            ));
            metrics.push((format!("vehicle_max_widths[{i}]"), vehicle.widths.max()));
            metrics.push((
                format!("vehicle_truth_lost[{i}]"),
                Some(vehicle.truth_lost as f64),
            ));
        }
        Self {
            cell: row.cell as u64,
            labels,
            metrics,
        }
    }

    /// Looks a label up by column name.
    pub fn label(&self, column: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(name, _)| name == column)
            .map(|(_, value)| value.as_str())
    }

    /// Looks a metric up by column name (`None` when the column is
    /// absent; `Some(None)` when present but null).
    pub fn metric(&self, column: &str) -> Option<Option<f64>> {
        self.metrics
            .iter()
            .find(|(name, _)| name == column)
            .map(|(_, value)| *value)
    }
}

/// A persisted sweep result: the grid's canonical definition, its
/// content address, and one [`CellRecord`] per cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Baseline {
    /// The grid's content address (the file stem under the baseline
    /// directory).
    pub address: String,
    /// The grid's canonical definition (see [`canonical_definition`]),
    /// stored verbatim so a baseline file is self-describing.
    pub definition: String,
    /// The flattened rows, in grid order.
    pub rows: Vec<CellRecord>,
}

impl Baseline {
    /// Flattens a report produced by `grid` into a baseline.
    pub fn from_report(grid: &SweepGrid, report: &SweepReport) -> Self {
        let definition = canonical_definition(grid);
        Self {
            address: content_address(&definition),
            definition,
            rows: report.rows().iter().map(CellRecord::from_row).collect(),
        }
    }

    /// Renders the baseline as JSON (dependency-free, one row per line;
    /// [`Baseline::from_json`] round-trips the exact value).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"format\": {},\n", json_string(FORMAT)));
        out.push_str(&format!("  \"address\": {},\n", json_string(&self.address)));
        out.push_str(&format!(
            "  \"definition\": {},\n",
            json_string(&self.definition)
        ));
        out.push_str("  \"rows\": [");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"cell\":");
            out.push_str(&row.cell.to_string());
            out.push_str(",\"labels\":{");
            for (j, (name, value)) in row.labels.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{}:{}", json_string(name), json_string(value)));
            }
            out.push_str("},\"metrics\":{");
            for (j, (name, value)) in row.metrics.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let rendered = value.map_or("null".to_string(), |v| format!("{v}"));
                out.push_str(&format!("{}:{}", json_string(name), rendered));
            }
            out.push_str("}}");
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Parses a baseline file's contents.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Parse`] on malformed JSON, a wrong format
    /// tag, or a missing/ill-typed field.
    pub fn from_json(src: &str) -> Result<Self, StoreError> {
        let value = json::parse(src).map_err(StoreError::Parse)?;
        let top = value.as_object("baseline")?;
        let format = get(top, "format")?.as_str("format")?;
        if format != FORMAT {
            return Err(StoreError::Parse(format!(
                "unsupported baseline format `{format}` (expected `{FORMAT}`)"
            )));
        }
        let address = get(top, "address")?.as_str("address")?.to_string();
        let definition = get(top, "definition")?.as_str("definition")?.to_string();
        let mut rows = Vec::new();
        for (i, row) in get(top, "rows")?.as_array("rows")?.iter().enumerate() {
            let row = row.as_object("row")?;
            let cell = get(row, "cell")?.as_u64(&format!("rows[{i}].cell"))?;
            let mut labels = Vec::new();
            for (name, value) in get(row, "labels")?.as_object("labels")? {
                labels.push((name.clone(), value.as_str(name)?.to_string()));
            }
            let mut metrics = Vec::new();
            for (name, value) in get(row, "metrics")?.as_object("metrics")? {
                metrics.push((name.clone(), value.as_nullable_f64(name)?));
            }
            rows.push(CellRecord {
                cell,
                labels,
                metrics,
            });
        }
        Ok(Self {
            address,
            definition,
            rows,
        })
    }

    /// Writes the baseline to `<dir>/<address>.json`, creating the
    /// directory if needed, and returns the path.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the directory or file cannot be
    /// written.
    pub fn save(&self, dir: impl AsRef<Path>) -> Result<PathBuf, StoreError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let path = baseline_path(dir, &self.address);
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// Loads a baseline from an explicit file path.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the file cannot be read and
    /// [`StoreError::Parse`] when its contents are malformed.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let src = std::fs::read_to_string(path)?;
        Self::from_json(&src)
    }

    /// Recomputes the content address of the embedded definition.
    ///
    /// A healthy baseline satisfies
    /// `self.address == self.computed_address()`; anything else means
    /// the file was hand-edited, corrupted, or written by a buggy tool.
    pub fn computed_address(&self) -> String {
        content_address(&self.definition)
    }

    /// Checks that the stored address matches the recomputed address of
    /// the embedded definition.
    ///
    /// # Errors
    ///
    /// Returns an [`AddressMismatch`] carrying both addresses when they
    /// disagree — the content-addressing invariant is broken and the
    /// baseline must not be trusted (or silently re-recorded over).
    pub fn verify_address(&self) -> Result<(), AddressMismatch> {
        let computed = self.computed_address();
        if self.address == computed {
            Ok(())
        } else {
            Err(AddressMismatch {
                stored: self.address.clone(),
                computed,
            })
        }
    }

    /// Loads the baseline a grid addresses inside a baseline directory.
    ///
    /// # Errors
    ///
    /// Same as [`Baseline::load`]; a missing file surfaces as
    /// [`StoreError::Io`] with [`std::io::ErrorKind::NotFound`].
    pub fn load_for_grid(dir: impl AsRef<Path>, grid: &SweepGrid) -> Result<Self, StoreError> {
        Self::load(baseline_path(dir, &grid_address(grid)))
    }
}

fn get<'a>(obj: &'a [(String, json::Json)], key: &str) -> Result<&'a json::Json, StoreError> {
    obj.iter()
        .find(|(name, _)| name == key)
        .map(|(_, value)| value)
        .ok_or_else(|| StoreError::Parse(format!("missing field `{key}`")))
}

/// A baseline whose stored address does not match the recomputed
/// address of its embedded definition (see [`Baseline::verify_address`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddressMismatch {
    /// The address stored in the file.
    pub stored: String,
    /// The address recomputed from the embedded definition.
    pub computed: String,
}

impl fmt::Display for AddressMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "stored content address {} does not match the recomputed address {} \
             of the embedded definition",
            self.stored, self.computed
        )
    }
}

impl std::error::Error for AddressMismatch {}

/// Errors loading or saving a [`Baseline`].
#[derive(Debug)]
pub enum StoreError {
    /// The file could not be read or written.
    Io(std::io::Error),
    /// The file's contents are not a valid baseline.
    Parse(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "baseline I/O error: {e}"),
            StoreError::Parse(e) => write!(f, "baseline parse error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// A minimal recursive-descent JSON parser — exactly the subset the
/// baseline files (and the reports they embed) use. Numbers keep their
/// raw source text so 64-bit integers (derived seeds) survive without a
/// lossy trip through `f64`.
mod json {
    /// One parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Json {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// A number, kept as its raw source text.
        Num(String),
        /// A string.
        Str(String),
        /// An array.
        Arr(Vec<Json>),
        /// An object, in source order.
        Obj(Vec<(String, Json)>),
    }

    impl Json {
        pub fn as_object(&self, what: &str) -> Result<&[(String, Json)], super::StoreError> {
            match self {
                Json::Obj(fields) => Ok(fields),
                other => Err(type_error(what, "an object", other)),
            }
        }

        pub fn as_array(&self, what: &str) -> Result<&[Json], super::StoreError> {
            match self {
                Json::Arr(items) => Ok(items),
                other => Err(type_error(what, "an array", other)),
            }
        }

        pub fn as_str(&self, what: &str) -> Result<&str, super::StoreError> {
            match self {
                Json::Str(s) => Ok(s),
                other => Err(type_error(what, "a string", other)),
            }
        }

        pub fn as_u64(&self, what: &str) -> Result<u64, super::StoreError> {
            match self {
                Json::Num(raw) => raw
                    .parse()
                    .map_err(|_| super::StoreError::Parse(format!("{what}: `{raw}` is not a u64"))),
                other => Err(type_error(what, "an integer", other)),
            }
        }

        pub fn as_nullable_f64(&self, what: &str) -> Result<Option<f64>, super::StoreError> {
            match self {
                Json::Null => Ok(None),
                Json::Num(raw) => raw.parse().map(Some).map_err(|_| {
                    super::StoreError::Parse(format!("{what}: `{raw}` is not a number"))
                }),
                other => Err(type_error(what, "a number or null", other)),
            }
        }
    }

    fn type_error(what: &str, expected: &str, got: &Json) -> super::StoreError {
        let kind = match got {
            Json::Null => "null",
            Json::Bool(_) => "a bool",
            Json::Num(_) => "a number",
            Json::Str(_) => "a string",
            Json::Arr(_) => "an array",
            Json::Obj(_) => "an object",
        };
        super::StoreError::Parse(format!("{what}: expected {expected}, got {kind}"))
    }

    /// Parses one complete JSON document.
    pub fn parse(src: &str) -> Result<Json, String> {
        let mut parser = Parser {
            bytes: src.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(format!("trailing input at byte {}", parser.pos));
        }
        Ok(value)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
                self.pos += 1;
            }
        }

        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn expect(&mut self, byte: u8) -> Result<(), String> {
            if self.peek() == Some(byte) {
                self.pos += 1;
                Ok(())
            } else {
                Err(format!("expected `{}` at byte {}", byte as char, self.pos))
            }
        }

        fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
            if self.bytes[self.pos..].starts_with(text.as_bytes()) {
                self.pos += text.len();
                Ok(value)
            } else {
                Err(format!("invalid literal at byte {}", self.pos))
            }
        }

        fn value(&mut self) -> Result<Json, String> {
            match self.peek() {
                Some(b'{') => self.object(),
                Some(b'[') => self.array(),
                Some(b'"') => self.string().map(Json::Str),
                Some(b'n') => self.literal("null", Json::Null),
                Some(b't') => self.literal("true", Json::Bool(true)),
                Some(b'f') => self.literal("false", Json::Bool(false)),
                Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
                _ => Err(format!("unexpected input at byte {}", self.pos)),
            }
        }

        fn object(&mut self) -> Result<Json, String> {
            self.expect(b'{')?;
            let mut fields = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(b':')?;
                self.skip_ws();
                let value = self.value()?;
                fields.push((key, value));
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
                }
            }
        }

        fn array(&mut self) -> Result<Json, String> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                self.skip_ws();
                items.push(self.value()?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
                }
            }
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                let start = self.pos;
                // Consume a run of plain bytes in one slice.
                while let Some(c) = self.peek() {
                    if c == b'"' || c == b'\\' || c < 0x20 {
                        break;
                    }
                    self.pos += 1;
                }
                out.push_str(
                    core::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| format!("invalid UTF-8 at byte {start}"))?,
                );
                match self.peek() {
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        let escape = self
                            .peek()
                            .ok_or_else(|| "unterminated escape".to_string())?;
                        self.pos += 1;
                        match escape {
                            b'"' => out.push('"'),
                            b'\\' => out.push('\\'),
                            b'/' => out.push('/'),
                            b'b' => out.push('\u{8}'),
                            b'f' => out.push('\u{c}'),
                            b'n' => out.push('\n'),
                            b'r' => out.push('\r'),
                            b't' => out.push('\t'),
                            b'u' => {
                                let end = self.pos + 4;
                                let hex = self
                                    .bytes
                                    .get(self.pos..end)
                                    .and_then(|h| core::str::from_utf8(h).ok())
                                    .ok_or_else(|| "truncated \\u escape".to_string())?;
                                let code = u32::from_str_radix(hex, 16)
                                    .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                                self.pos = end;
                                out.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| format!("invalid codepoint \\u{hex}"))?,
                                );
                            }
                            other => return Err(format!("unknown escape `\\{}`", other as char)),
                        }
                    }
                    _ => return Err("unterminated string".to_string()),
                }
            }
        }

        fn number(&mut self) -> Result<Json, String> {
            let start = self.pos;
            if self.peek() == Some(b'-') {
                self.pos += 1;
            }
            while let Some(c) = self.peek() {
                if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-') {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            let raw =
                core::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
            if raw.is_empty() || raw == "-" || raw.parse::<f64>().is_err() {
                return Err(format!("invalid number `{raw}` at byte {start}"));
            }
            Ok(Json::Num(raw.to_string()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{ParallelSweeper, SweepGrid};
    use super::*;
    use crate::scenario::{AttackerSpec, ClosedLoopSpec, Scenario, StrategySpec, SuiteSpec};
    use arsf_schedule::SchedulePolicy;
    use arsf_sensor::{FaultKind, FaultModel};

    fn attacked_base(rounds: u64) -> Scenario {
        Scenario::new("store", SuiteSpec::Landshark)
            .with_attacker(AttackerSpec::Fixed {
                sensors: vec![0],
                strategy: StrategySpec::PhantomOptimal,
            })
            .with_rounds(rounds)
    }

    fn small_grid(rounds: u64) -> SweepGrid {
        SweepGrid::new(attacked_base(rounds))
            .fusers([FuserSpec::Marzullo, FuserSpec::BrooksIyengar])
            .schedules([SchedulePolicy::Ascending, SchedulePolicy::Descending])
            .seeds([2014, 99])
    }

    #[test]
    fn canonical_definition_is_versioned_and_lists_every_axis() {
        let def = canonical_definition(&small_grid(20));
        assert!(def.starts_with("arsf-sweep-grid v1\n"));
        for line in [
            "f=1",
            "truth=constant(10)",
            "closed_loop=none",
            "suites=landshark",
            "fault_sets=none",
            "attackers=phantom-optimal@0",
            "schedules=ascending;descending",
            "fusers=marzullo;brooks-iyengar",
            "detectors=immediate",
            "rounds=20",
            "seeds=2014;99",
        ] {
            assert!(
                def.contains(&format!("{line}\n")),
                "missing `{line}` in:\n{def}"
            );
        }
    }

    #[test]
    fn address_ignores_the_name_but_tracks_every_axis() {
        let grid = small_grid(20);
        let address = grid_address(&grid);
        // Renaming the base scenario is formatting, not semantics.
        let renamed = SweepGrid::new(attacked_base(20).named("different"))
            .fusers([FuserSpec::Marzullo, FuserSpec::BrooksIyengar])
            .schedules([SchedulePolicy::Ascending, SchedulePolicy::Descending])
            .seeds([2014, 99]);
        assert_eq!(address, grid_address(&renamed));
        // Any axis change moves the address.
        let wider = small_grid(20).seeds([2014, 99, 7]);
        assert_ne!(address, grid_address(&wider));
        let other_rounds = small_grid(21);
        assert_ne!(address, grid_address(&other_rounds));
        let detectors = small_grid(20).detectors([
            crate::DetectionMode::Immediate,
            crate::DetectionMode::Windowed {
                window: 10,
                tolerance: 3,
            },
        ]);
        assert_ne!(address, grid_address(&detectors));
        // Parameters inside an axis entry count too.
        let a = SweepGrid::new(attacked_base(20)).fusers([FuserSpec::Historical {
            max_rate: 2.5,
            dt: 0.1,
        }]);
        let b = SweepGrid::new(attacked_base(20)).fusers([FuserSpec::Historical {
            max_rate: 3.5,
            dt: 0.1,
        }]);
        assert_ne!(grid_address(&a), grid_address(&b));
        // Addresses are 16 lowercase hex digits.
        assert_eq!(address.len(), 16);
        assert!(address.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn baseline_round_trips_through_json() {
        let grid = small_grid(25);
        let report = ParallelSweeper::new(2).run(&grid);
        let baseline = Baseline::from_report(&grid, &report);
        assert_eq!(baseline.rows.len(), 8);
        assert_eq!(baseline.address, grid_address(&grid));
        let reloaded = Baseline::from_json(&baseline.to_json()).expect("round trip");
        assert_eq!(baseline, reloaded);
        // Seeds survive exactly (they exceed f64's integer range).
        let seed = baseline.rows[3].label("seed").unwrap();
        assert_eq!(seed, reloaded.rows[3].label("seed").unwrap());
        assert_eq!(seed.parse::<u64>().unwrap(), report.rows()[3].seed);
    }

    #[test]
    fn closed_loop_rows_flatten_supervisor_and_vehicle_columns() {
        let base = Scenario::new("cl", SuiteSpec::Landshark)
            .with_attacker(AttackerSpec::RandomEachRound)
            .with_rounds(30)
            .with_closed_loop(ClosedLoopSpec::new(10.0).with_platoon(2, 0.01));
        let grid = SweepGrid::new(base);
        let baseline = Baseline::from_report(&grid, &grid.run_serial());
        let row = &baseline.rows[0];
        assert!(row.metric("above_rate").unwrap().is_some());
        assert!(row.metric("min_gap").unwrap().is_some());
        assert!(row.metric("vehicle_mean_widths[1]").is_some());
        assert!(row.metric("vehicle_truth_lost[0]").unwrap().is_some());
        // The definition names the closed-loop spec.
        assert!(baseline
            .definition
            .contains("closed_loop=target:10,up:0.5,down:0.5,platoon:2x0.01"));
        // And open-loop rows carry null supervisor columns instead.
        let open = Baseline::from_report(
            &SweepGrid::new(attacked_base(10)),
            &SweepGrid::new(attacked_base(10)).run_serial(),
        );
        assert_eq!(open.rows[0].metric("above_rate"), Some(None));
        assert!(open.rows[0].metric("vehicle_mean_widths[0]").is_none());
    }

    #[test]
    fn save_and_load_use_the_content_address() {
        let dir = std::env::temp_dir().join(format!(
            "arsf-store-test-{}-{}",
            std::process::id(),
            line!()
        ));
        let grid = SweepGrid::new(attacked_base(15));
        let baseline = Baseline::from_report(&grid, &grid.run_serial());
        let path = baseline.save(&dir).expect("save");
        assert_eq!(
            path,
            baseline_path(&dir, &grid_address(&grid)),
            "file is content-addressed"
        );
        let loaded = Baseline::load_for_grid(&dir, &grid).expect("load");
        assert_eq!(baseline, loaded);
        // A different grid misses with NotFound.
        let other = SweepGrid::new(attacked_base(16));
        match Baseline::load_for_grid(&dir, &other) {
            Err(StoreError::Io(e)) => assert_eq!(e.kind(), std::io::ErrorKind::NotFound),
            other => panic!("expected NotFound, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn verify_address_catches_corruption() {
        let grid = SweepGrid::new(attacked_base(12));
        let mut baseline = Baseline::from_report(&grid, &grid.run_serial());
        assert_eq!(baseline.verify_address(), Ok(()));
        assert_eq!(baseline.computed_address(), baseline.address);
        // Hand-edit the definition: the stored address no longer matches.
        baseline.definition.push_str("rounds=extra\n");
        let err = baseline.verify_address().unwrap_err();
        assert_eq!(err.stored, baseline.address);
        assert_eq!(err.computed, content_address(&baseline.definition));
        assert_ne!(err.stored, err.computed);
        let rendered = err.to_string();
        assert!(rendered.contains(&err.stored), "{rendered}");
        assert!(rendered.contains(&err.computed), "{rendered}");
        // Tampering with the stored address is caught the same way.
        let mut retagged = Baseline::from_report(&grid, &grid.run_serial());
        retagged.address = "0000000000000000".to_string();
        assert!(retagged.verify_address().is_err());
    }

    #[test]
    fn from_json_rejects_malformed_documents() {
        assert!(matches!(
            Baseline::from_json("not json"),
            Err(StoreError::Parse(_))
        ));
        assert!(matches!(
            Baseline::from_json("{}"),
            Err(StoreError::Parse(_))
        ));
        let wrong_format =
            r#"{"format":"arsf-baseline-v0","address":"x","definition":"d","rows":[]}"#;
        match Baseline::from_json(wrong_format) {
            Err(StoreError::Parse(msg)) => assert!(msg.contains("arsf-baseline-v0")),
            other => panic!("expected a format error, got {other:?}"),
        }
        // Trailing garbage is an error, not silently ignored.
        let trailing = format!(
            "{} x",
            r#"{"format":"arsf-baseline-v1","address":"x","definition":"d","rows":[]}"#
        );
        assert!(Baseline::from_json(&trailing).is_err());
    }

    #[test]
    fn json_parser_handles_escapes_and_numbers() {
        let baseline = Baseline {
            address: "00ff".to_string(),
            definition: "line1\nline2 \"quoted\" \\slash\t".to_string(),
            rows: vec![CellRecord {
                cell: u64::MAX,
                labels: vec![("seed".to_string(), u64::MAX.to_string())],
                metrics: vec![
                    ("a".to_string(), Some(-1.5e-3)),
                    ("b".to_string(), None),
                    ("c".to_string(), Some(0.1 + 0.2)),
                ],
            }],
        };
        let reloaded = Baseline::from_json(&baseline.to_json()).expect("round trip");
        assert_eq!(baseline, reloaded, "escapes and numbers survive");
        assert_eq!(reloaded.rows[0].cell, u64::MAX);
        assert_eq!(reloaded.rows[0].metric("c"), Some(Some(0.1 + 0.2)));
    }

    #[test]
    fn fault_axis_reaches_the_definition() {
        let faulty = SweepGrid::new(attacked_base(10)).fault_sets([
            vec![],
            vec![(2, FaultModel::new(FaultKind::Bias { offset: 3.0 }, 0.25))],
        ]);
        let def = canonical_definition(&faulty);
        assert!(def.contains("fault_sets=none;2:bias(3)@0.25"));
        assert_ne!(
            grid_address(&faulty),
            grid_address(&SweepGrid::new(attacked_base(10)))
        );
    }
}
