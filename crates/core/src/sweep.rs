//! Deterministic scenario-grid sweeps, serial or multi-core.
//!
//! The paper's headline results are cross-products — fusers × detectors
//! × attack strategies × schedules — but running them used to mean
//! hand-listing every combination and executing serially. This module
//! turns the cross-product itself into a first-class value:
//!
//! * [`SweepGrid`] — a builder over experiment *axes* (suites, fault
//!   sets, attackers, schedules, fusers, detectors, rounds, seeds) that
//!   lazily yields the cartesian product of [`Scenario`]s. Each cell's
//!   RNG seed is derived deterministically from the seed-axis value and
//!   the cell index ([`derive_seed`]), so any cell is reproducible in
//!   isolation: `grid.scenario(i)` always denotes the same experiment.
//! * [`ParallelSweeper`] — shards grid cells across
//!   [`std::thread::scope`] workers. Each worker owns one reusable
//!   [`RoundOutcome`] buffer and builds its own engines from the cell's
//!   specs (the [`FuserSpec`](crate::scenario::FuserSpec) /
//!   [`DetectionMode`](crate::DetectionMode) factories make per-thread
//!   cloning trivial), so no synchronisation happens inside a cell.
//!   Per-worker results are merged back in **grid order**: the parallel
//!   report is byte-identical to the serial one regardless of thread
//!   interleaving.
//! * [`SweepReport`] — the ordered rows with CSV ([`SweepReport::to_csv`])
//!   and JSON ([`SweepReport::to_json`]) emission for downstream tooling.
//!
//! # Example
//!
//! ```
//! use arsf_core::scenario::{AttackerSpec, FuserSpec, Scenario, StrategySpec, SuiteSpec};
//! use arsf_core::sweep::{ParallelSweeper, SweepGrid};
//! use arsf_core::DetectionMode;
//! use arsf_schedule::SchedulePolicy;
//!
//! let base = Scenario::new("demo", SuiteSpec::Landshark)
//!     .with_attacker(AttackerSpec::Fixed {
//!         sensors: vec![0],
//!         strategy: StrategySpec::PhantomOptimal,
//!     })
//!     .with_rounds(50);
//! let grid = SweepGrid::new(base)
//!     .fusers([FuserSpec::Marzullo, FuserSpec::BrooksIyengar])
//!     .detectors([DetectionMode::Off, DetectionMode::Immediate])
//!     .schedules([SchedulePolicy::Ascending, SchedulePolicy::Descending]);
//! assert_eq!(grid.len(), 8);
//!
//! let serial = grid.run_serial();
//! let parallel = ParallelSweeper::new(4).run(&grid);
//! assert_eq!(serial, parallel);
//! assert_eq!(serial.to_csv(), parallel.to_csv());
//! ```

pub mod diff;
pub mod store;
pub mod stream;

pub use stream::StreamingSweeper;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

use arsf_schedule::SchedulePolicy;
use arsf_sensor::FaultModel;

use crate::runner::{BatchSummary, ScenarioRunner};
use crate::scenario::{faults_label, AttackerSpec, FuserSpec, Scenario, SuiteSpec};
use crate::{DetectionMode, RoundOutcome};

/// Derives the RNG seed for one grid cell from the seed-axis value and
/// the cell index (splitmix64 finalisation over both).
///
/// The derivation is a pure function, so a cell re-run in isolation —
/// on any machine, any thread count — samples the identical measurement
/// stream as the same cell inside a full sweep.
pub fn derive_seed(base: u64, cell: u64) -> u64 {
    fn splitmix64(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    splitmix64(base ^ splitmix64(cell))
}

/// A cartesian product of experiment axes, lazily materialised as
/// [`Scenario`]s.
///
/// Every axis starts as a singleton holding the base scenario's value;
/// the builder methods replace one axis at a time. Cell `i` is decoded
/// in row-major order with the axes nested (slowest to fastest):
/// suites, fault sets, attackers, schedules, fusers, detectors, rounds,
/// seeds.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepGrid {
    base: Scenario,
    suites: Vec<SuiteSpec>,
    fault_sets: Vec<Vec<(usize, FaultModel)>>,
    attackers: Vec<AttackerSpec>,
    schedules: Vec<SchedulePolicy>,
    fusers: Vec<FuserSpec>,
    detectors: Vec<DetectionMode>,
    rounds: Vec<u64>,
    seeds: Vec<u64>,
}

fn axis<T>(values: impl IntoIterator<Item = T>, name: &str) -> Vec<T> {
    let values: Vec<T> = values.into_iter().collect();
    assert!(!values.is_empty(), "{name} axis must not be empty");
    values
}

impl SweepGrid {
    /// Creates a 1-cell grid around a base scenario; builder methods
    /// widen one axis each.
    pub fn new(base: Scenario) -> Self {
        Self {
            suites: vec![base.suite.clone()],
            fault_sets: vec![base.faults.clone()],
            attackers: vec![base.attacker.clone()],
            schedules: vec![base.schedule.clone()],
            fusers: vec![base.fuser.clone()],
            detectors: vec![base.detector],
            rounds: vec![base.rounds],
            seeds: vec![base.seed],
            base,
        }
    }

    /// Sets the sensor-suite axis.
    ///
    /// # Panics
    ///
    /// Panics if the axis is empty (all axis setters do).
    #[must_use]
    pub fn suites(mut self, values: impl IntoIterator<Item = SuiteSpec>) -> Self {
        self.suites = axis(values, "suites");
        self
    }

    /// Sets the fault-injection axis; each entry is one complete set of
    /// `(sensor, fault)` pairs applied to a cell.
    #[must_use]
    pub fn fault_sets(
        mut self,
        values: impl IntoIterator<Item = Vec<(usize, FaultModel)>>,
    ) -> Self {
        self.fault_sets = axis(values, "fault_sets");
        self
    }

    /// Sets the attacker axis.
    #[must_use]
    pub fn attackers(mut self, values: impl IntoIterator<Item = AttackerSpec>) -> Self {
        self.attackers = axis(values, "attackers");
        self
    }

    /// Sets the schedule axis.
    #[must_use]
    pub fn schedules(mut self, values: impl IntoIterator<Item = SchedulePolicy>) -> Self {
        self.schedules = axis(values, "schedules");
        self
    }

    /// Sets the fusion-algorithm axis.
    #[must_use]
    pub fn fusers(mut self, values: impl IntoIterator<Item = FuserSpec>) -> Self {
        self.fusers = axis(values, "fusers");
        self
    }

    /// Sets the detector axis.
    #[must_use]
    pub fn detectors(mut self, values: impl IntoIterator<Item = DetectionMode>) -> Self {
        self.detectors = axis(values, "detectors");
        self
    }

    /// Sets the rounds-per-run axis.
    #[must_use]
    pub fn rounds(mut self, values: impl IntoIterator<Item = u64>) -> Self {
        self.rounds = axis(values, "rounds");
        self
    }

    /// Sets the seed axis (each value spawns one replicate of every other
    /// combination; the per-cell seed is [`derive_seed`]d from it).
    #[must_use]
    pub fn seeds(mut self, values: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = axis(values, "seeds");
        self
    }

    /// The base scenario the grid was built around (its `f`, truth
    /// trajectory and closed-loop spec apply to every cell).
    pub fn base(&self) -> &Scenario {
        &self.base
    }

    /// The sensor-suite axis values.
    pub fn suite_axis(&self) -> &[SuiteSpec] {
        &self.suites
    }

    /// The fault-injection axis values.
    pub fn fault_set_axis(&self) -> &[Vec<(usize, FaultModel)>] {
        &self.fault_sets
    }

    /// The attacker axis values.
    pub fn attacker_axis(&self) -> &[AttackerSpec] {
        &self.attackers
    }

    /// The schedule axis values.
    pub fn schedule_axis(&self) -> &[SchedulePolicy] {
        &self.schedules
    }

    /// The fusion-algorithm axis values.
    pub fn fuser_axis(&self) -> &[FuserSpec] {
        &self.fusers
    }

    /// The detector axis values.
    pub fn detector_axis(&self) -> &[DetectionMode] {
        &self.detectors
    }

    /// The rounds-per-run axis values.
    pub fn rounds_axis(&self) -> &[u64] {
        &self.rounds
    }

    /// The seed axis values (per-cell seeds are [`derive_seed`]d from
    /// them).
    pub fn seed_axis(&self) -> &[u64] {
        &self.seeds
    }

    /// The grid-order cell index of the cell with the given per-axis
    /// coordinates — the inverse of the row-major decoding
    /// [`SweepGrid::scenario`] performs (seeds fastest, suites slowest).
    ///
    /// Static analyses use it to point a finding about an axis *value*
    /// at a concrete representative cell.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of range for its axis.
    pub fn cell_index(&self, coords: AxisCoords) -> usize {
        let axes = [
            (coords.suite, self.suites.len(), "suite"),
            (coords.fault_set, self.fault_sets.len(), "fault_set"),
            (coords.attacker, self.attackers.len(), "attacker"),
            (coords.schedule, self.schedules.len(), "schedule"),
            (coords.fuser, self.fusers.len(), "fuser"),
            (coords.detector, self.detectors.len(), "detector"),
            (coords.rounds, self.rounds.len(), "rounds"),
            (coords.seed, self.seeds.len(), "seed"),
        ];
        let mut index = 0usize;
        for (coord, len, axis) in axes {
            assert!(coord < len, "{axis} coordinate {coord} out of range");
            index = index * len + coord;
        }
        index
    }

    /// Decodes cell `index` back into per-axis coordinates — the inverse
    /// of [`SweepGrid::cell_index`], and the coordinate view of the
    /// row-major decoding [`SweepGrid::scenario`] performs.
    ///
    /// Static analyses use it to enumerate the cells neighbouring a cell
    /// along exactly one axis — the pairs dominance edges connect.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn coords(&self, index: usize) -> AxisCoords {
        assert!(index < self.len(), "cell {index} out of range");
        let mut rem = index;
        let mut pick = |len: usize| {
            let i = rem % len;
            rem /= len;
            i
        };
        // Fastest-varying axes are decoded first, mirroring `scenario`.
        let seed = pick(self.seeds.len());
        let rounds = pick(self.rounds.len());
        let detector = pick(self.detectors.len());
        let fuser = pick(self.fusers.len());
        let schedule = pick(self.schedules.len());
        let attacker = pick(self.attackers.len());
        let fault_set = pick(self.fault_sets.len());
        let suite = pick(self.suites.len());
        AxisCoords {
            suite,
            fault_set,
            attacker,
            schedule,
            fuser,
            detector,
            rounds,
            seed,
        }
    }

    /// The number of grid cells (the product of all axis lengths).
    ///
    /// # Panics
    ///
    /// Panics if the product overflows `usize`.
    #[allow(clippy::len_without_is_empty)] // axes are never empty: len() >= 1
    pub fn len(&self) -> usize {
        [
            self.suites.len(),
            self.fault_sets.len(),
            self.attackers.len(),
            self.schedules.len(),
            self.fusers.len(),
            self.detectors.len(),
            self.rounds.len(),
            self.seeds.len(),
        ]
        .iter()
        .try_fold(1_usize, |acc, &n| acc.checked_mul(n))
        .expect("grid size overflows usize")
    }

    /// Materialises the scenario for cell `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn scenario(&self, index: usize) -> Scenario {
        assert!(index < self.len(), "cell {index} out of range");
        let mut rem = index;
        let mut pick = |len: usize| {
            let i = rem % len;
            rem /= len;
            i
        };
        // Fastest-varying axes are decoded first (row-major, seeds last).
        let seed = self.seeds[pick(self.seeds.len())];
        let rounds = self.rounds[pick(self.rounds.len())];
        let detector = self.detectors[pick(self.detectors.len())];
        let fuser = self.fusers[pick(self.fusers.len())].clone();
        let schedule = self.schedules[pick(self.schedules.len())].clone();
        let attacker = self.attackers[pick(self.attackers.len())].clone();
        let faults = self.fault_sets[pick(self.fault_sets.len())].clone();
        let suite = self.suites[pick(self.suites.len())].clone();
        Scenario {
            name: format!("{}#{}", self.base.name, index),
            suite,
            faults,
            attacker,
            schedule,
            f: self.base.f,
            fuser,
            detector,
            truth: self.base.truth,
            rounds,
            seed: derive_seed(seed, index as u64),
            closed_loop: self.base.closed_loop,
        }
    }

    /// Lazily iterates all cells in grid order.
    pub fn cells(&self) -> Cells<'_> {
        Cells {
            grid: self,
            next: 0,
            len: self.len(),
        }
    }

    /// Runs every cell in grid order on the calling thread (one reused
    /// outcome buffer) — the reference ordering parallel sweeps must
    /// reproduce byte-identically.
    pub fn run_serial(&self) -> SweepReport {
        let mut buffer = RoundOutcome::default();
        let rows = self
            .cells()
            .map(|cell| run_cell(cell, &mut buffer))
            .collect();
        SweepReport { rows }
    }
}

/// Per-axis coordinates of one grid cell (all default to `0`, the first
/// value of each axis) — the argument of [`SweepGrid::cell_index`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AxisCoords {
    /// Index into the suite axis.
    pub suite: usize,
    /// Index into the fault-set axis.
    pub fault_set: usize,
    /// Index into the attacker axis.
    pub attacker: usize,
    /// Index into the schedule axis.
    pub schedule: usize,
    /// Index into the fuser axis.
    pub fuser: usize,
    /// Index into the detector axis.
    pub detector: usize,
    /// Index into the rounds axis.
    pub rounds: usize,
    /// Index into the seed axis.
    pub seed: usize,
}

/// One grid cell: its index in grid order and the materialised scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCell {
    /// Position in grid order.
    pub index: usize,
    /// The cell's complete experiment description.
    pub scenario: Scenario,
}

/// Lazy iterator over a grid's cells (see [`SweepGrid::cells`]).
#[derive(Debug, Clone)]
pub struct Cells<'a> {
    grid: &'a SweepGrid,
    next: usize,
    len: usize,
}

impl Iterator for Cells<'_> {
    type Item = SweepCell;

    fn next(&mut self) -> Option<SweepCell> {
        if self.next >= self.len {
            return None;
        }
        let index = self.next;
        self.next += 1;
        Some(SweepCell {
            index,
            scenario: self.grid.scenario(index),
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.len - self.next;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for Cells<'_> {}

/// Executes one cell into a caller-owned reusable buffer.
fn run_cell(cell: SweepCell, buffer: &mut RoundOutcome) -> SweepRow {
    let summary = ScenarioRunner::new(&cell.scenario).run_into(buffer);
    SweepRow {
        cell: cell.index,
        suite: cell.scenario.suite.label(),
        faults: faults_label(&cell.scenario.faults),
        attacker: cell.scenario.attacker.label(),
        schedule: cell.scenario.schedule.name().to_string(),
        rounds: cell.scenario.rounds,
        seed: cell.scenario.seed,
        summary,
    }
}

/// One report row: the cell's axis coordinates plus its aggregated
/// [`BatchSummary`].
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRow {
    /// The cell index in grid order.
    pub cell: usize,
    /// Suite label (see [`SuiteSpec::label`]).
    pub suite: String,
    /// Fault-set label (see [`faults_label`]) — without it two rows of a
    /// `fault_sets(...)` axis would be indistinguishable except by cell
    /// index.
    pub faults: String,
    /// Attacker label (see [`AttackerSpec::label`]).
    pub attacker: String,
    /// Schedule name.
    pub schedule: String,
    /// Rounds executed.
    pub rounds: u64,
    /// The derived per-cell RNG seed actually used.
    pub seed: u64,
    /// The run's aggregated statistics.
    pub summary: BatchSummary,
}

impl SweepRow {
    /// Renders the row as one CSV data line (no trailing newline) in the
    /// [`SweepReport::csv_header`] column order — the unit both
    /// [`SweepReport::to_csv_body`] and the streaming writers emit, so a
    /// row rendered in isolation is byte-identical to the same row inside
    /// a full report.
    pub fn to_csv_line(&self) -> String {
        let s = &self.summary;
        let condemned: Vec<String> = s.condemned.iter().map(|c| format!("{c}")).collect();
        let sup = s.supervisor.as_ref();
        let join = |parts: Vec<String>| parts.join("|");
        let cells = [
            format!("{}", self.cell),
            csv_field(&s.scenario),
            csv_field(&self.suite),
            csv_field(&self.faults),
            csv_field(&self.attacker),
            csv_field(&self.schedule),
            csv_field(&s.fuser),
            csv_field(&s.detector),
            format!("{}", self.rounds),
            format!("{}", self.seed),
            format!("{}", s.widths.mean()),
            s.widths.min().map_or(String::new(), |w| format!("{w}")),
            s.widths.max().map_or(String::new(), |w| format!("{w}")),
            format!("{}", s.truth_lost),
            format!("{}", s.truth_loss_rate()),
            format!("{}", s.fusion_failures),
            format!("{}", s.flagged_rounds),
            csv_field(&condemned.join("|")),
            sup.map_or(String::new(), |v| format!("{}", v.above_rate)),
            sup.map_or(String::new(), |v| format!("{}", v.below_rate)),
            sup.map_or(String::new(), |v| format!("{}", v.preemptions)),
            sup.and_then(|v| v.min_gap)
                .map_or(String::new(), |g| format!("{g}")),
            join(
                s.vehicles
                    .iter()
                    .map(|v| format!("{}", v.widths.mean()))
                    .collect(),
            ),
            join(
                s.vehicles
                    .iter()
                    .map(|v| v.widths.max().map_or(String::new(), |w| format!("{w}")))
                    .collect(),
            ),
            join(
                s.vehicles
                    .iter()
                    .map(|v| format!("{}", v.truth_lost))
                    .collect(),
            ),
        ];
        cells.join(",")
    }
}

/// An ordered sweep result: rows are always in grid order, whatever
/// thread interleaving produced them.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    rows: Vec<SweepRow>,
}

impl SweepReport {
    /// The rows, in grid order.
    pub fn rows(&self) -> &[SweepRow] {
        &self.rows
    }

    /// The number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the report is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The CSV header line [`SweepReport::to_csv`] emits (trailing
    /// newline included).
    pub fn csv_header() -> &'static str {
        "cell,scenario,suite,faults,attacker,schedule,fuser,detector,rounds,seed,\
         mean_width,min_width,max_width,truth_lost,truth_loss_rate,\
         fusion_failures,flagged_rounds,condemned,\
         above_rate,below_rate,preemptions,min_gap,\
         vehicle_mean_widths,vehicle_max_widths,vehicle_truth_lost\n"
    }

    /// Renders the report as CSV (header + one line per cell). Fields
    /// containing separators are quoted; floats use Rust's shortest
    /// round-trip formatting, so equal reports render byte-identically.
    /// The supervisor columns (`above_rate`, `below_rate`, `preemptions`,
    /// `min_gap`) are empty for open-loop rows, and the per-vehicle
    /// columns (`vehicle_mean_widths`, `vehicle_max_widths`,
    /// `vehicle_truth_lost` — pipe-joined, leader first) are empty for
    /// everything but closed-loop platoon rows.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(Self::csv_header());
        out.push_str(&self.to_csv_body());
        out
    }

    /// [`SweepReport::to_csv`] without the header line — the shape
    /// `--cells` shard outputs use so they concatenate into the full
    /// sweep's CSV without manual header stripping.
    pub fn to_csv_body(&self) -> String {
        let mut out = String::new();
        for row in &self.rows {
            out.push_str(&row.to_csv_line());
            out.push('\n');
        }
        out
    }

    /// Renders the report as a JSON array of row objects (no external
    /// dependencies; strings are escaped, absent min/max and the
    /// supervisor columns of open-loop rows become `null`, and the
    /// per-vehicle columns are arrays — empty for everything but
    /// closed-loop platoon rows).
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let s = &row.summary;
            let condemned: Vec<String> = s.condemned.iter().map(|c| format!("{c}")).collect();
            let sup = s.supervisor.as_ref();
            let vehicle_means: Vec<String> = s
                .vehicles
                .iter()
                .map(|v| format!("{}", v.widths.mean()))
                .collect();
            let vehicle_maxes: Vec<String> = s
                .vehicles
                .iter()
                .map(|v| {
                    v.widths
                        .max()
                        .map_or("null".to_string(), |w| format!("{w}"))
                })
                .collect();
            let vehicle_lost: Vec<String> = s
                .vehicles
                .iter()
                .map(|v| format!("{}", v.truth_lost))
                .collect();
            out.push_str(&format!(
                "\n  {{\"cell\":{},\"scenario\":{},\"suite\":{},\"faults\":{},\"attacker\":{},\
                 \"schedule\":{},\"fuser\":{},\"detector\":{},\"rounds\":{},\"seed\":{},\
                 \"mean_width\":{},\"min_width\":{},\"max_width\":{},\"truth_lost\":{},\
                 \"truth_loss_rate\":{},\"fusion_failures\":{},\"flagged_rounds\":{},\
                 \"condemned\":[{}],\"above_rate\":{},\"below_rate\":{},\
                 \"preemptions\":{},\"min_gap\":{},\"vehicle_mean_widths\":[{}],\
                 \"vehicle_max_widths\":[{}],\"vehicle_truth_lost\":[{}]}}",
                row.cell,
                json_string(&s.scenario),
                json_string(&row.suite),
                json_string(&row.faults),
                json_string(&row.attacker),
                json_string(&row.schedule),
                json_string(&s.fuser),
                json_string(&s.detector),
                row.rounds,
                row.seed,
                s.widths.mean(),
                s.widths
                    .min()
                    .map_or("null".to_string(), |w| format!("{w}")),
                s.widths
                    .max()
                    .map_or("null".to_string(), |w| format!("{w}")),
                s.truth_lost,
                s.truth_loss_rate(),
                s.fusion_failures,
                s.flagged_rounds,
                condemned.join(","),
                sup.map_or("null".to_string(), |v| format!("{}", v.above_rate)),
                sup.map_or("null".to_string(), |v| format!("{}", v.below_rate)),
                sup.map_or("null".to_string(), |v| format!("{}", v.preemptions)),
                sup.and_then(|v| v.min_gap)
                    .map_or("null".to_string(), |g| format!("{g}")),
                vehicle_means.join(","),
                vehicle_maxes.join(","),
                vehicle_lost.join(","),
            ));
        }
        out.push_str("\n]\n");
        out
    }
}

fn csv_field(raw: &str) -> String {
    if raw.contains([',', '"', '\n']) {
        format!("\"{}\"", raw.replace('"', "\"\""))
    } else {
        raw.to_string()
    }
}

fn json_string(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len() + 2);
    out.push('"');
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Shards sweep cells across scoped worker threads.
///
/// Workers pull cell indices from a shared atomic counter (dynamic load
/// balancing — expensive cells do not stall a static shard), build their
/// own per-thread engines from the cell's declarative specs, and reuse
/// one [`RoundOutcome`] buffer each. Results carry their cell index, so
/// the merged [`SweepReport`] is in grid order and byte-identical to
/// [`SweepGrid::run_serial`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelSweeper {
    threads: usize,
}

impl ParallelSweeper {
    /// Creates a sweeper with a fixed worker count.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "a sweep needs at least one worker");
        Self { threads }
    }

    /// A sweeper sized to the machine's available parallelism (1 when
    /// that cannot be determined).
    pub fn auto() -> Self {
        Self::new(thread::available_parallelism().map_or(1, |n| n.get()))
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs every grid cell; rows come back in grid order.
    pub fn run(&self, grid: &SweepGrid) -> SweepReport {
        self.run_indexed(0..grid.len(), &|i| grid.scenario(i))
    }

    /// Runs a contiguous **cell range** of a grid — the shard one process
    /// takes when a sweep is split across machines. Rows keep their
    /// *grid* cell indices and derived seeds, so concatenating the
    /// reports of `0..k` and `k..len` reproduces `run` byte-for-byte and
    /// any shard is reproducible in isolation.
    ///
    /// # Panics
    ///
    /// Panics if the range end exceeds the grid length.
    pub fn run_range(&self, grid: &SweepGrid, range: std::ops::Range<usize>) -> SweepReport {
        assert!(
            range.end <= grid.len(),
            "cell range {}..{} exceeds the {}-cell grid",
            range.start,
            range.end,
            grid.len()
        );
        self.run_indexed(range, &|i| grid.scenario(i))
    }

    /// Runs an explicit scenario list (cell `i` = `scenarios[i]`, used
    /// verbatim — no per-cell seed derivation); rows come back in list
    /// order. This is the entry point for non-cartesian sweeps such as
    /// the preset registry.
    pub fn run_scenarios(&self, scenarios: &[Scenario]) -> SweepReport {
        self.run_indexed(0..scenarios.len(), &|i| scenarios[i].clone())
    }

    fn run_indexed(
        &self,
        range: std::ops::Range<usize>,
        cell_at: &(dyn Fn(usize) -> Scenario + Sync),
    ) -> SweepReport {
        let start = range.start;
        let n = range.len();
        let workers = self.threads.min(n);
        if workers <= 1 {
            let mut buffer = RoundOutcome::default();
            let rows = range
                .map(|index| {
                    run_cell(
                        SweepCell {
                            index,
                            scenario: cell_at(index),
                        },
                        &mut buffer,
                    )
                })
                .collect();
            return SweepReport { rows };
        }

        let next = AtomicUsize::new(0);
        let per_worker: Vec<Vec<SweepRow>> = thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut rows = Vec::new();
                        let mut buffer = RoundOutcome::default();
                        loop {
                            let offset = next.fetch_add(1, Ordering::Relaxed);
                            if offset >= n {
                                break;
                            }
                            let index = start + offset;
                            rows.push(run_cell(
                                SweepCell {
                                    index,
                                    scenario: cell_at(index),
                                },
                                &mut buffer,
                            ));
                        }
                        rows
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("sweep worker panicked"))
                .collect()
        });

        // Merge per-worker batches back into grid order.
        let mut slots: Vec<Option<SweepRow>> = (0..n).map(|_| None).collect();
        for rows in per_worker {
            for row in rows {
                let slot = &mut slots[row.cell - start];
                debug_assert!(slot.is_none(), "cell {} ran twice", row.cell);
                *slot = Some(row);
            }
        }
        SweepReport {
            rows: slots
                .into_iter()
                .map(|r| r.expect("every cell ran exactly once"))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::StrategySpec;
    use arsf_sensor::{FaultKind, FaultModel};

    fn attacked_base(rounds: u64) -> Scenario {
        Scenario::new("grid", SuiteSpec::Landshark)
            .with_attacker(AttackerSpec::Fixed {
                sensors: vec![0],
                strategy: StrategySpec::PhantomOptimal,
            })
            .with_rounds(rounds)
    }

    fn full_grid(rounds: u64) -> SweepGrid {
        // 4 fusers × 3 detectors × 2 schedules × 2 seeds = 48 cells.
        SweepGrid::new(attacked_base(rounds))
            .fusers([
                FuserSpec::Marzullo,
                FuserSpec::BrooksIyengar,
                FuserSpec::InverseVariance,
                FuserSpec::Historical {
                    max_rate: 3.5,
                    dt: 0.1,
                },
            ])
            .detectors([
                DetectionMode::Off,
                DetectionMode::Immediate,
                DetectionMode::Windowed {
                    window: 10,
                    tolerance: 3,
                },
            ])
            .schedules([SchedulePolicy::Ascending, SchedulePolicy::Descending])
            .seeds([2014, 99])
    }

    #[test]
    fn grid_len_is_the_axis_product() {
        assert_eq!(SweepGrid::new(attacked_base(10)).len(), 1);
        assert_eq!(full_grid(10).len(), 48);
        let cells: Vec<_> = full_grid(10).cells().collect();
        assert_eq!(cells.len(), 48);
        for (i, cell) in cells.iter().enumerate() {
            assert_eq!(cell.index, i);
            assert_eq!(cell.scenario.name, format!("grid#{i}"));
        }
    }

    #[test]
    fn cells_iterator_is_lazy_and_exact() {
        let grid = full_grid(10);
        let mut cells = grid.cells();
        assert_eq!(cells.len(), 48);
        cells.next();
        assert_eq!(cells.len(), 47);
        assert_eq!(cells.size_hint(), (47, Some(47)));
    }

    #[test]
    fn every_axis_combination_appears_exactly_once() {
        let grid = full_grid(10);
        let mut combos: Vec<String> = grid
            .cells()
            .map(|c| {
                format!(
                    "{}|{}|{}|{}",
                    c.scenario.fuser.name(),
                    format_args!("{:?}", c.scenario.detector),
                    c.scenario.schedule.name(),
                    c.scenario.seed
                )
            })
            .collect();
        let before = combos.len();
        combos.sort_unstable();
        combos.dedup();
        assert_eq!(combos.len(), before, "duplicate grid cell");
    }

    #[test]
    fn coords_round_trips_through_cell_index() {
        let grid = full_grid(10);
        for index in 0..grid.len() {
            let coords = grid.coords(index);
            assert_eq!(grid.cell_index(coords), index, "cell {index}");
        }
        // Spot-check the decoded coordinates agree with the materialised
        // scenario: cell 1 differs from cell 0 only on the seed axis.
        assert_eq!(grid.coords(0), AxisCoords::default());
        assert_eq!(
            grid.coords(1),
            AxisCoords {
                seed: 1,
                ..AxisCoords::default()
            }
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn coords_rejects_out_of_range_cells() {
        let _ = full_grid(10).coords(48);
    }

    #[test]
    fn cell_seeds_are_deterministic_and_distinct_per_cell() {
        let grid = full_grid(10);
        let a = grid.scenario(17);
        let b = grid.scenario(17);
        assert_eq!(a, b, "cells are pure functions of the index");
        // Two cells sharing the seed-axis value still get distinct
        // derived seeds (the index feeds the derivation).
        let other = grid.scenario(19);
        assert_ne!(a.seed, other.seed);
        // Seeds are the fastest axis: odd cells draw the second value.
        assert_eq!(derive_seed(99, 17), a.seed);
        assert_eq!(derive_seed(2014, 16), grid.scenario(16).seed);
    }

    #[test]
    fn cell_rerun_in_isolation_matches_the_full_sweep() {
        let grid = full_grid(40);
        let report = grid.run_serial();
        for index in [0, 7, 23, 47] {
            let solo = ScenarioRunner::new(&grid.scenario(index)).run();
            assert_eq!(report.rows()[index].summary, solo, "cell {index}");
        }
    }

    #[test]
    fn parallel_report_is_byte_identical_to_serial() {
        let grid = full_grid(30);
        let serial = grid.run_serial();
        for threads in [2, 3, 4, 8] {
            let parallel = ParallelSweeper::new(threads).run(&grid);
            assert_eq!(serial, parallel, "{threads} workers diverged");
            assert_eq!(serial.to_csv(), parallel.to_csv());
            assert_eq!(serial.to_json(), parallel.to_json());
        }
    }

    #[test]
    fn run_scenarios_preserves_list_order() {
        let mut presets = crate::scenario::registry();
        for p in &mut presets {
            p.rounds = 20;
        }
        let report = ParallelSweeper::new(4).run_scenarios(&presets);
        assert_eq!(report.len(), presets.len());
        for (row, preset) in report.rows().iter().zip(&presets) {
            assert_eq!(row.summary.scenario, preset.name);
            assert_eq!(row.seed, preset.seed, "explicit scenarios keep their seed");
        }
        let serial = ParallelSweeper::new(1).run_scenarios(&presets);
        assert_eq!(serial, report);
    }

    #[test]
    fn fault_axis_applies_per_cell() {
        let grid = SweepGrid::new(attacked_base(30))
            .fault_sets([vec![], vec![(2, FaultModel::new(FaultKind::Silent, 1.0))]]);
        assert_eq!(grid.len(), 2);
        let report = grid.run_serial();
        assert_eq!(report.rows()[0].summary.rounds, 30);
        // Both cells fuse every round: a silenced sensor degrades, not
        // fails, and the rows stay in grid order.
        for row in report.rows() {
            assert_eq!(row.summary.fusion_failures, 0);
        }
    }

    #[test]
    fn csv_has_header_and_one_line_per_cell() {
        let grid = SweepGrid::new(attacked_base(20))
            .fusers([FuserSpec::Marzullo, FuserSpec::Hull])
            .fault_sets([
                vec![],
                vec![(2, FaultModel::new(FaultKind::Bias { offset: 3.0 }, 0.25))],
            ]);
        let csv = grid.run_serial().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[0].starts_with("cell,scenario,suite,faults,attacker,schedule,fuser,detector"));
        assert!(lines[0].ends_with("vehicle_mean_widths,vehicle_max_widths,vehicle_truth_lost"));
        assert!(lines[1].contains("marzullo"));
        assert!(lines[2].contains("hull"));
        assert!(lines[1].contains("landshark"));
        assert!(lines[1].contains("phantom-optimal@0"));
        // Regression: the fault-set coordinate used to be omitted, so the
        // two fault-axis rows of a cell were indistinguishable except by
        // index.
        assert!(lines[1].contains(",none,"), "honest cell labels `none`");
        assert!(
            lines[3].contains(",2:bias(3)@0.25,"),
            "faulty cell carries its fault-set label: {}",
            lines[3]
        );
    }

    #[test]
    fn csv_body_is_the_report_without_the_header() {
        let report = SweepGrid::new(attacked_base(10)).run_serial();
        assert_eq!(
            report.to_csv(),
            format!("{}{}", SweepReport::csv_header(), report.to_csv_body())
        );
        assert!(!report.to_csv_body().contains("cell,scenario"));
    }

    #[test]
    fn csv_quotes_fields_with_separators() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
        // A widths suite label contains no comma by construction.
        assert_eq!(SuiteSpec::Widths(vec![5.0, 11.0]).label(), "widths[5|11]");
    }

    #[test]
    fn json_is_escaped_and_structurally_sound() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        let report = SweepGrid::new(attacked_base(10)).run_serial();
        let json = report.to_json();
        assert!(json.starts_with('['));
        assert!(json.ends_with("]\n"));
        assert_eq!(json.matches("\"cell\":").count(), 1);
        assert!(json.contains("\"fuser\":\"marzullo\""));
        assert!(json.contains("\"truth_lost\":"));
    }

    #[test]
    fn cell_ranges_shard_the_grid_reproducibly() {
        let grid = full_grid(20);
        let full = grid.run_serial();
        let sweeper = ParallelSweeper::new(3);
        let a = sweeper.run_range(&grid, 0..17);
        let b = sweeper.run_range(&grid, 17..48);
        assert_eq!(a.len(), 17);
        assert_eq!(b.len(), 31);
        let mut concatenated = a.rows().to_vec();
        concatenated.extend(b.rows().iter().cloned());
        assert_eq!(
            full.rows(),
            &concatenated[..],
            "concatenated shards must reproduce the full sweep"
        );
        // Rows keep their grid cell indices and derived seeds.
        assert_eq!(b.rows()[0].cell, 17);
        assert_eq!(b.rows()[0].seed, grid.scenario(17).seed);
        // Degenerate shards are empty reports, not errors.
        assert!(sweeper.run_range(&grid, 5..5).is_empty());
    }

    #[test]
    #[should_panic(expected = "exceeds the 48-cell grid")]
    fn out_of_bounds_cell_range_panics() {
        let grid = full_grid(5);
        let _ = ParallelSweeper::new(1).run_range(&grid, 40..49);
    }

    #[test]
    fn platoon_rows_emit_per_vehicle_columns() {
        use crate::scenario::ClosedLoopSpec;
        let base = Scenario::new("pv", SuiteSpec::Landshark)
            .with_attacker(AttackerSpec::RandomEachRound)
            .with_rounds(40)
            .with_closed_loop(ClosedLoopSpec::new(10.0).with_platoon(2, 0.01));
        let report = SweepGrid::new(base).run_serial();
        let summary = &report.rows()[0].summary;
        assert_eq!(summary.vehicles.len(), 2);
        let csv = report.to_csv();
        let line = csv.lines().nth(1).expect("data line");
        let expected_means = format!(
            "{}|{}",
            summary.vehicles[0].widths.mean(),
            summary.vehicles[1].widths.mean()
        );
        assert!(
            line.ends_with(&format!(
                ",{expected_means},{}|{},{}|{}",
                summary.vehicles[0].widths.max().unwrap(),
                summary.vehicles[1].widths.max().unwrap(),
                summary.vehicles[0].truth_lost,
                summary.vehicles[1].truth_lost
            )),
            "per-vehicle CSV columns malformed: {line}"
        );
        let json = report.to_json();
        assert!(json.contains(&format!(
            "\"vehicle_mean_widths\":[{}]",
            expected_means.replace('|', ",")
        )));
        assert!(json.contains("\"vehicle_truth_lost\":["));
        // Open-loop rows render the columns empty / as empty arrays.
        let open = SweepGrid::new(attacked_base(10)).run_serial();
        assert!(open.to_csv().lines().nth(1).unwrap().ends_with(",,,"));
        assert!(open.to_json().contains("\"vehicle_mean_widths\":[]"));
    }

    #[test]
    fn cell_index_inverts_the_row_major_decoding() {
        let grid = full_grid(10);
        // Walk every cell: re-encode its decoded coordinates.
        for (index, cell) in grid.cells().enumerate() {
            let coords = AxisCoords {
                fuser: grid
                    .fuser_axis()
                    .iter()
                    .position(|f| *f == cell.scenario.fuser)
                    .unwrap(),
                detector: grid
                    .detector_axis()
                    .iter()
                    .position(|d| *d == cell.scenario.detector)
                    .unwrap(),
                schedule: grid
                    .schedule_axis()
                    .iter()
                    .position(|s| *s == cell.scenario.schedule)
                    .unwrap(),
                seed: grid
                    .seed_axis()
                    .iter()
                    .position(|s| derive_seed(*s, index as u64) == cell.scenario.seed)
                    .unwrap(),
                ..AxisCoords::default()
            };
            assert_eq!(grid.cell_index(coords), index);
        }
        assert_eq!(grid.cell_index(AxisCoords::default()), 0);
    }

    #[test]
    #[should_panic(expected = "fuser coordinate 9 out of range")]
    fn out_of_range_axis_coordinate_panics() {
        let grid = full_grid(10);
        let _ = grid.cell_index(AxisCoords {
            fuser: 9,
            ..AxisCoords::default()
        });
    }

    #[test]
    fn axis_accessors_expose_the_builder_state() {
        let grid = full_grid(10);
        assert_eq!(grid.fuser_axis().len(), 4);
        assert_eq!(grid.detector_axis().len(), 3);
        assert_eq!(grid.schedule_axis().len(), 2);
        assert_eq!(grid.seed_axis(), &[2014, 99]);
        assert_eq!(grid.suite_axis(), &[SuiteSpec::Landshark]);
        assert_eq!(grid.fault_set_axis(), &[vec![]]);
        assert_eq!(grid.attacker_axis().len(), 1);
        assert_eq!(grid.rounds_axis(), &[10]);
        assert_eq!(grid.base().name, "grid");
    }

    #[test]
    fn derive_seed_is_stable_and_spreads() {
        // Pinned values: changing the derivation would silently re-run
        // every published experiment differently.
        assert_eq!(derive_seed(0, 0), derive_seed(0, 0));
        assert_ne!(derive_seed(0, 0), derive_seed(0, 1));
        assert_ne!(derive_seed(0, 0), derive_seed(1, 0));
        let mut seen: Vec<u64> = (0..128).map(|i| derive_seed(2014, i)).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 128, "derived seeds collide");
    }

    #[test]
    #[should_panic(expected = "fusers axis must not be empty")]
    fn empty_axis_panics() {
        let _ = SweepGrid::new(attacked_base(10)).fusers([]);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let _ = ParallelSweeper::new(0);
    }

    #[test]
    fn auto_sweeper_has_at_least_one_worker() {
        assert!(ParallelSweeper::auto().threads() >= 1);
    }
}
